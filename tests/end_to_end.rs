//! End-to-end integration: dataset generation → split → training →
//! evaluation, across crates, asserting the qualitative properties the
//! paper's story depends on.

use groupsa_suite::core::{Ablation, DataContext, GroupSa, GroupSaConfig, ScoreAggregation, Trainer};
use groupsa_suite::data::synthetic::{generate, SyntheticConfig};
use groupsa_suite::data::{split_dataset, Dataset, Split};
use groupsa_suite::eval::{evaluate, EvalTask};

fn small_world(seed: u64) -> (Dataset, Split) {
    let dataset = generate(&SyntheticConfig {
        name: format!("e2e-{seed}"),
        seed,
        num_users: 120,
        num_items: 90,
        num_groups: 240,
        num_topics: 6,
        latent_dim: 6,
        avg_items_per_user: 10.0,
        avg_friends_per_user: 6.0,
        avg_items_per_group: 1.3,
        mean_group_size: 4.0,
        zipf_exponent: 0.8,
        homophily: 0.45,
        social_influence: 0.15,
        expertise_sharpness: 3.5,
        taste_temperature: 0.25,
            consensus_blend: 0.5,
            connectedness_boost: 1.0,
    });
    let split = split_dataset(&dataset, 0.2, 0.1, 42);
    (dataset, split)
}

fn quick_cfg() -> GroupSaConfig {
    GroupSaConfig {
        embed_dim: 16,
        d_k: 16,
        d_ff: 16,
        user_epochs: 5,
        group_epochs: 8,
        ..GroupSaConfig::paper()
    }
}

fn train(dataset: &Dataset, split: &Split, cfg: GroupSaConfig) -> (GroupSa, DataContext) {
    let ctx = DataContext::build(dataset, split, &cfg);
    let mut model = GroupSa::new(cfg.clone(), dataset.num_users, dataset.num_items);
    Trainer::new(cfg).fit(&mut model, &ctx);
    (model, ctx)
}

#[test]
fn trained_groupsa_beats_random_ranking_on_held_out_groups() {
    let (dataset, split) = small_world(1);
    let (model, ctx) = train(&dataset, &split, quick_cfg());

    let full_gi = dataset.group_item_graph();
    let task = EvalTask { test_pairs: &split.test_group_item, full_interactions: &full_gi, num_candidates: 50, ks: vec![10], seed: 3 };
    let hr = evaluate(&model.group_scorer(&ctx), &task).hr(10);
    // Random ranking scores 10/51 ≈ 0.196 in expectation.
    assert!(hr > 0.32, "trained model must clearly beat random: HR@10 = {hr}");
}

#[test]
fn trained_groupsa_beats_popularity_on_group_task() {
    let (dataset, split) = small_world(2);
    let (model, ctx) = train(&dataset, &split, quick_cfg());

    let train_view = split.train_view(&dataset);
    let pop = groupsa_suite::baselines::Pop::fit_many(&[
        &train_view.user_item_graph(),
        &train_view.group_item_graph(),
    ]);
    let full_gi = dataset.group_item_graph();
    let task = EvalTask { test_pairs: &split.test_group_item, full_interactions: &full_gi, num_candidates: 50, ks: vec![10], seed: 3 };
    let ours = evaluate(&model.group_scorer(&ctx), &task).hr(10);
    let theirs = evaluate(&pop, &task).hr(10);
    assert!(
        ours > theirs,
        "personalised group model must beat popularity: {ours} vs {theirs}"
    );
}

#[test]
fn joint_training_outperforms_group_only_training() {
    // The paper's Table V claim, at test scale: Group-G (no user-item
    // data) is clearly worse than full GroupSA.
    let (dataset, split) = small_world(3);
    let (full, ctx_full) = train(&dataset, &split, quick_cfg());
    let (gg, ctx_gg) = train(&dataset, &split, quick_cfg().with_ablation(Ablation::group_g()));

    let full_gi = dataset.group_item_graph();
    let task = EvalTask { test_pairs: &split.test_group_item, full_interactions: &full_gi, num_candidates: 50, ks: vec![10], seed: 3 };
    let hr_full = evaluate(&full.group_scorer(&ctx_full), &task).hr(10);
    let hr_gg = evaluate(&gg.group_scorer(&ctx_gg), &task).hr(10);
    assert!(
        hr_full > hr_gg,
        "joint training must help (Table V shape): full {hr_full} vs Group-G {hr_gg}"
    );
}

#[test]
fn every_ablation_variant_trains_and_evaluates() {
    let (dataset, split) = small_world(4);
    let full_gi = dataset.group_item_graph();
    for ablation in [
        Ablation::full(),
        Ablation::group_a(),
        Ablation::group_s(),
        Ablation::group_i(),
        Ablation::group_f(),
        Ablation::group_g(),
    ] {
        let mut cfg = quick_cfg().with_ablation(ablation);
        cfg.user_epochs = 2;
        cfg.group_epochs = 4;
        let (model, ctx) = train(&dataset, &split, cfg);
        let task = EvalTask { test_pairs: &split.test_group_item, full_interactions: &full_gi, num_candidates: 20, ks: vec![5], seed: 3 };
        let res = evaluate(&model.group_scorer(&ctx), &task);
        assert!(res.hr(5).is_finite(), "{ablation:?} evaluation must be finite");
    }
}

#[test]
fn full_pipeline_is_deterministic() {
    let (dataset, split) = small_world(5);
    let run = || {
        let (model, ctx) = train(&dataset, &split, quick_cfg());
        model.score_group_items(&ctx, 0, &[0, 1, 2, 3, 4])
    };
    assert_eq!(run(), run(), "same seeds must give identical models end-to-end");
}

#[test]
fn fast_mode_is_comparable_to_full_path() {
    // §II-F: fast inference "can help yield comparable results".
    let (dataset, split) = small_world(6);
    let (model, ctx) = train(&dataset, &split, quick_cfg());
    let full_gi = dataset.group_item_graph();
    let task = EvalTask { test_pairs: &split.test_group_item, full_interactions: &full_gi, num_candidates: 50, ks: vec![10], seed: 3 };
    let full = evaluate(&model.group_scorer(&ctx), &task).hr(10);
    let fast = evaluate(&model.fast_group_scorer(&ctx, ScoreAggregation::Average), &task).hr(10);
    assert!(fast > 0.5 * full, "fast mode must stay in the full path's ballpark: {fast} vs {full}");
}

#[test]
fn explanations_cover_all_members_on_trained_model() {
    let (dataset, split) = small_world(7);
    let (model, ctx) = train(&dataset, &split, quick_cfg());
    let t = (0..ctx.num_groups()).find(|&t| ctx.members[t].len() >= 3).expect("multi-member group");
    let e = model.explain_group_prediction(&ctx, t, 0);
    assert_eq!(e.members.len(), e.member_weights.len());
    assert!((e.member_weights.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    assert!(e.members.contains(&e.dominant_member()));
}
