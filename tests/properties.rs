//! Workspace-level property tests: invariants that must hold for any
//! generated dataset and any (untrained or trained) model.

use groupsa_suite::core::{DataContext, GroupSa, GroupSaConfig};
use groupsa_suite::data::synthetic::{generate, SyntheticConfig};
use groupsa_suite::data::{sampling, split_dataset};
use groupsa_suite::eval::{hr_at_k, ndcg_at_k, rank_of_first};
use groupsa_suite::tensor::rng::seeded;
use proptest::prelude::*;

fn synth(seed: u64, users: usize, items: usize, groups: usize) -> SyntheticConfig {
    SyntheticConfig {
        name: format!("prop-{seed}"),
        seed,
        num_users: users,
        num_items: items,
        num_groups: groups,
        num_topics: 4,
        latent_dim: 4,
        avg_items_per_user: 6.0,
        avg_friends_per_user: 4.0,
        avg_items_per_group: 1.3,
        mean_group_size: 3.5,
        zipf_exponent: 0.8,
        homophily: 0.5,
        social_influence: 0.2,
        expertise_sharpness: 3.0,
        taste_temperature: 0.3,
            consensus_blend: 0.5,
            connectedness_boost: 1.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn generated_datasets_are_always_valid(seed in 0u64..1000, users in 40usize..100, items in 30usize..80) {
        let d = generate(&synth(seed, users, items, 30));
        prop_assert_eq!(d.validate(), Ok(()));
        prop_assert!(d.groups.iter().all(|g| !g.is_empty()));
        // Interactions deduplicated.
        let mut ui = d.user_item.clone();
        ui.sort_unstable();
        let len = ui.len();
        ui.dedup();
        prop_assert_eq!(ui.len(), len, "duplicate user-item pairs");
    }

    #[test]
    fn splits_partition_interactions(seed in 0u64..500) {
        let d = generate(&synth(seed, 60, 50, 30));
        let s = split_dataset(&d, 0.25, 0.1, seed ^ 0xF00D);
        let total = s.train_user_item.len() + s.valid_user_item.len() + s.test_user_item.len();
        prop_assert_eq!(total, d.user_item.len());
        let total_g = s.train_group_item.len() + s.valid_group_item.len() + s.test_group_item.len();
        prop_assert_eq!(total_g, d.group_item.len());
    }

    #[test]
    fn negative_samples_never_hit_positives(seed in 0u64..500) {
        let d = generate(&synth(seed, 50, 60, 20));
        let g = d.user_item_graph();
        let mut rng = seeded(seed);
        for u in 0..10usize.min(d.num_users) {
            for n in sampling::sample_negatives(&mut rng, &g, u, 5, false) {
                prop_assert!(!g.has_interaction(u, n));
            }
        }
    }

    #[test]
    fn untrained_model_scores_are_finite_everywhere(seed in 0u64..200) {
        let d = generate(&synth(seed, 50, 40, 20));
        let cfg = GroupSaConfig::tiny();
        let ctx = DataContext::from_train_view(&d, &cfg);
        let model = GroupSa::new(cfg, d.num_users, d.num_items);
        let items: Vec<usize> = (0..10).collect();
        for u in 0..5 {
            prop_assert!(model.score_user_items(&ctx, u, &items).iter().all(|x| x.is_finite()));
        }
        for t in 0..5usize.min(ctx.num_groups()) {
            prop_assert!(model.score_group_items(&ctx, t, &items).iter().all(|x| x.is_finite()));
            let w = model.member_weights(&ctx, t, 0);
            let sum: f32 = w.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "member weights sum {sum}");
        }
    }

    #[test]
    fn metric_identities_hold(scores in prop::collection::vec(-5.0f32..5.0, 2..40), k in 1usize..15) {
        let rank = rank_of_first(&scores);
        prop_assert!(rank < scores.len());
        let hr = hr_at_k(rank, k);
        let ndcg = ndcg_at_k(rank, k);
        prop_assert!((0.0..=1.0).contains(&hr));
        prop_assert!((0.0..=1.0).contains(&ndcg));
        prop_assert!(ndcg <= hr + 1e-12, "NDCG bounded by HR");
        // A strictly-best positive always hits.
        let mut best = scores.clone();
        best[0] = 100.0;
        prop_assert_eq!(rank_of_first(&best), 0);
    }
}
