//! Hermetic-build guard: the workspace must never grow a registry (or
//! git) dependency. Every dependency in every `Cargo.toml` has to be a
//! `path` dependency inside this repository, or a `workspace = true`
//! reference to one. This is what keeps `cargo build --offline` working
//! on a machine that has never talked to crates.io.

use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    // groupsa-suite's manifest dir IS the workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn collect_manifests(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).unwrap() {
        let entry = entry.unwrap();
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() {
            // Skip build output and VCS internals; everything else is
            // in scope so a sneaky nested crate can't hide.
            if name != "target" && name != ".git" {
                collect_manifests(&path, out);
            }
        } else if name == "Cargo.toml" {
            // groupsa-lint's fixture manifests violate the policy on
            // purpose (they are what its cargo-dep rule tests against)
            // and are not workspace members.
            if !path.components().any(|c| c.as_os_str() == "fixtures") {
                out.push(path);
            }
        }
    }
}

/// The dependency-table sections whose entries we police.
fn is_dependency_section(header: &str) -> bool {
    let h = header.trim_matches(|c| c == '[' || c == ']');
    h == "dependencies"
        || h == "dev-dependencies"
        || h == "build-dependencies"
        || h == "workspace.dependencies"
        || h.starts_with("target.") && h.ends_with("dependencies")
        || h.starts_with("dependencies.")
        || h.starts_with("dev-dependencies.")
        || h.starts_with("build-dependencies.")
        || h.starts_with("workspace.dependencies.")
}

/// `true` when a single dependency line declares a hermetic source.
fn line_is_hermetic(line: &str) -> bool {
    let (_, spec) = line.split_once('=').expect("dependency line has '='");
    let spec = spec.trim();
    // `foo = { path = "..." }`, `foo = { workspace = true }` (with any
    // extra keys like `features`), `foo.workspace = true` handled by
    // the caller via key inspection, bare `foo = "1.2"` is a registry
    // version requirement → not hermetic.
    spec.contains("path =") || spec.contains("path=") || spec.contains("workspace = true") || spec.contains("workspace=true")
}

#[test]
fn every_dependency_in_every_manifest_is_a_path_dependency() {
    let root = workspace_root();
    let mut manifests = Vec::new();
    collect_manifests(&root, &mut manifests);
    assert!(
        manifests.len() >= 13,
        "expected the workspace's manifests (root + 8 crates + 4 compat), found {}",
        manifests.len()
    );

    let mut violations = Vec::new();
    for manifest in &manifests {
        let text = std::fs::read_to_string(manifest).unwrap();
        let mut in_dep_section = false;
        let mut dotted_dep_section = false;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line.starts_with('[') {
                in_dep_section = is_dependency_section(line);
                // `[dependencies.foo]` style: the keys that follow ARE
                // the spec, so `version = "1"` without `path` is a
                // violation but `path = "..."` clears the whole block.
                dotted_dep_section = in_dep_section
                    && line.trim_matches(|c| c == '[' || c == ']').contains("dependencies.");
                continue;
            }
            if !in_dep_section || !line.contains('=') {
                continue;
            }
            if dotted_dep_section {
                if line.starts_with("git ") || line.starts_with("git=") || line.starts_with("registry") {
                    violations.push(format!("{}:{}: {}", manifest.display(), lineno + 1, line));
                }
                continue;
            }
            // `foo.workspace = true` is a reference into
            // [workspace.dependencies], which this test also checks.
            let key = line.split('=').next().unwrap().trim();
            if key.ends_with(".workspace") {
                continue;
            }
            if line.contains("git =") || line.contains("git=") || !line_is_hermetic(line) {
                violations.push(format!("{}:{}: {}", manifest.display(), lineno + 1, line));
            }
        }
    }
    assert!(
        violations.is_empty(),
        "non-path dependencies found (hermetic-build policy, see DESIGN.md):\n{}",
        violations.join("\n")
    );
}

#[test]
fn guard_rejects_a_registry_style_line() {
    // Self-test of the classifier, so a refactor can't silently turn
    // the main test into a no-op.
    assert!(!line_is_hermetic(r#"rand = "0.10""#));
    assert!(!line_is_hermetic(r#"serde = { version = "1", features = ["derive"] }"#));
    assert!(line_is_hermetic(r#"rand = { path = "crates/compat/rand" }"#));
    assert!(line_is_hermetic(r#"proptest = { workspace = true }"#));
}

#[test]
fn compat_crates_shadow_the_external_names() {
    // The whole point of crates/compat: consuming code says `rand`,
    // `proptest`, `criterion` and gets the in-tree implementations.
    let root = workspace_root();
    for (dir, expected) in [
        ("rand", "name = \"rand\""),
        ("proptest", "name = \"proptest\""),
        ("criterion", "name = \"criterion\""),
        ("json", "name = \"groupsa-json\""),
    ] {
        let manifest = root.join("crates/compat").join(dir).join("Cargo.toml");
        let text = std::fs::read_to_string(&manifest)
            .unwrap_or_else(|e| panic!("missing compat crate {dir}: {e}"));
        assert!(text.contains(expected), "{} must declare {expected}", manifest.display());
    }
}
