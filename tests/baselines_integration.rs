//! Cross-crate integration of the baseline zoo: every comparison method
//! of the paper's §III-D trains on the same split and produces sane
//! metrics under the shared protocol.

use groupsa_suite::baselines::{Agree, BaselineConfig, Ncf, Pop, SigrLike};
use groupsa_suite::data::synthetic::{generate, SyntheticConfig};
use groupsa_suite::data::{split_dataset, Dataset, Split};
use groupsa_suite::eval::stats::paired_t_test;
use groupsa_suite::eval::{evaluate, EvalResult, EvalTask, Leaderboard};

fn world() -> (Dataset, Split) {
    let dataset = generate(&SyntheticConfig {
        name: "baselines-e2e".into(),
        seed: 9,
        num_users: 100,
        num_items: 80,
        num_groups: 160,
        num_topics: 5,
        latent_dim: 6,
        avg_items_per_user: 10.0,
        avg_friends_per_user: 6.0,
        avg_items_per_group: 1.3,
        mean_group_size: 3.5,
        zipf_exponent: 0.8,
        homophily: 0.5,
        social_influence: 0.15,
        expertise_sharpness: 3.0,
        taste_temperature: 0.25,
            consensus_blend: 0.5,
            connectedness_boost: 1.0,
    });
    let split = split_dataset(&dataset, 0.2, 0.1, 42);
    (dataset, split)
}

fn cfg() -> BaselineConfig {
    BaselineConfig { embed_dim: 16, user_epochs: 4, group_epochs: 8, ..BaselineConfig::tiny() }
}

fn group_task<'a>(dataset: &Dataset, split: &'a Split, full_gi: &'a groupsa_suite::graph::Bipartite) -> EvalTask<'a> {
    let _ = dataset;
    EvalTask { test_pairs: &split.test_group_item, full_interactions: full_gi, num_candidates: 30, ks: vec![5, 10], seed: 11 }
}

#[test]
fn all_baselines_train_and_rank_above_chance_on_training_data() {
    let (dataset, split) = world();
    let train = split.train_view(&dataset);
    let ui = train.user_item_graph();
    let gi = train.group_item_graph();
    let social = train.social_graph();

    // Evaluate each on (a sample of) its own training positives — every
    // learned method must at least fit what it saw.
    let sample: Vec<_> = train.group_item.iter().copied().take(60).collect();
    let fit_task = EvalTask { test_pairs: &sample, full_interactions: &gi, num_candidates: 20, ks: vec![5], seed: 1 };
    let chance = 5.0 / 21.0;

    let mut ncf = Ncf::new(cfg(), dataset.num_groups(), dataset.num_items);
    ncf.fit(&train.group_item, &gi);
    let hr = evaluate(&ncf.scorer(), &fit_task).hr(5);
    assert!(hr > chance + 0.15, "NCF fit: {hr}");

    let mut agree = Agree::new(cfg(), dataset.num_users, dataset.num_items, dataset.groups.clone());
    agree.fit(&train.user_item, &ui, &train.group_item, &gi);
    let hr = evaluate(&agree.group_scorer(), &fit_task).hr(5);
    assert!(hr > chance + 0.15, "AGREE fit: {hr}");

    let mut sigr = SigrLike::new(cfg(), dataset.num_users, dataset.num_items, dataset.groups.clone(), &social);
    sigr.fit(&train.user_item, &ui, &train.group_item, &gi);
    let hr = evaluate(&sigr.group_scorer(), &fit_task).hr(5);
    assert!(hr > chance + 0.15, "SIGR fit: {hr}");
}

#[test]
fn membership_aware_methods_beat_pop_on_held_out_groups() {
    let (dataset, split) = world();
    let train = split.train_view(&dataset);
    let ui = train.user_item_graph();
    let gi = train.group_item_graph();
    let full_gi = dataset.group_item_graph();
    let task = group_task(&dataset, &split, &full_gi);

    let pop = Pop::fit_many(&[&ui, &gi]);
    let pop_hr = evaluate(&pop, &task).hr(10);

    let mut agree = Agree::new(cfg(), dataset.num_users, dataset.num_items, dataset.groups.clone());
    agree.fit(&train.user_item, &ui, &train.group_item, &gi);
    let agree_hr = evaluate(&agree.group_scorer(), &task).hr(10);

    assert!(
        agree_hr >= pop_hr,
        "attention over members must not lose to popularity on cold groups: AGREE {agree_hr} vs Pop {pop_hr}"
    );
}

#[test]
fn leaderboard_and_significance_tooling_compose() {
    let (dataset, split) = world();
    let train = split.train_view(&dataset);
    let ui = train.user_item_graph();
    let gi = train.group_item_graph();
    let full_gi = dataset.group_item_graph();
    let task = group_task(&dataset, &split, &full_gi);

    let pop = Pop::fit_many(&[&ui, &gi]);
    let pop_res: EvalResult = evaluate(&pop, &task);

    let mut agree = Agree::new(cfg(), dataset.num_users, dataset.num_items, dataset.groups.clone());
    agree.fit(&train.user_item, &ui, &train.group_item, &gi);
    let agree_res = evaluate(&agree.group_scorer(), &task);

    let mut lb = Leaderboard::new("integration");
    lb.push("Pop", &pop_res);
    lb.push("AGREE", &agree_res);
    let rendered = lb.to_string();
    assert!(rendered.contains("Pop") && rendered.contains("AGREE"));
    assert!(lb.delta_percent("Pop", 5).is_some());

    // Per-example vectors line up for paired testing.
    let tt = paired_t_test(&agree_res.hr_vector(10), &pop_res.hr_vector(10));
    assert!(tt.p_two_sided.is_finite());
    assert_eq!(agree_res.outcomes.len(), pop_res.outcomes.len());
}

#[test]
fn virtual_user_ncf_cannot_generalise_to_cold_groups() {
    // The paper's motivation for OGR: plain CF with groups as virtual
    // users has nothing to say about groups unseen in training. Its
    // held-out HR should be near chance, far below what it achieves on
    // its own training positives.
    let (dataset, split) = world();
    let train = split.train_view(&dataset);
    let gi = train.group_item_graph();
    let full_gi = dataset.group_item_graph();

    let mut ncf = Ncf::new(cfg(), dataset.num_groups(), dataset.num_items);
    ncf.fit(&train.group_item, &gi);

    let sample: Vec<_> = train.group_item.iter().copied().take(60).collect();
    let fit_task = EvalTask { test_pairs: &sample, full_interactions: &gi, num_candidates: 30, ks: vec![10], seed: 1 };
    let task = group_task(&dataset, &split, &full_gi);
    let fit_hr = evaluate(&ncf.scorer(), &fit_task).hr(10);
    let held_out_hr = evaluate(&ncf.scorer(), &task).hr(10);
    assert!(
        held_out_hr < fit_hr,
        "virtual-user NCF should generalise poorly: held-out {held_out_hr} vs fit {fit_hr}"
    );
}
