//! End-to-end determinism and persistence guarantees.
//!
//! The whole pipeline is seeded: two training runs from the same `u64`
//! seed must produce *byte-identical* JSON checkpoints (the in-tree
//! JSON writer round-trips every `f32` exactly, so checkpoint bytes are
//! a complete fingerprint of the model), and a save/load round-trip
//! must preserve the recommendations the model hands out.

use groupsa_suite::core::{DataContext, GroupMode, GroupSa, GroupSaConfig, Trainer};
use groupsa_suite::data::synthetic::{generate, SyntheticConfig};
use groupsa_suite::data::{split_dataset, Dataset, Split};

fn tiny_world(seed: u64) -> (Dataset, Split) {
    let dataset = generate(&SyntheticConfig {
        name: format!("determinism-{seed}"),
        seed,
        num_users: 60,
        num_items: 45,
        num_groups: 120,
        num_topics: 4,
        latent_dim: 4,
        avg_items_per_user: 8.0,
        avg_friends_per_user: 5.0,
        avg_items_per_group: 1.3,
        mean_group_size: 3.5,
        zipf_exponent: 0.8,
        homophily: 0.45,
        social_influence: 0.15,
        expertise_sharpness: 3.5,
        taste_temperature: 0.25,
        consensus_blend: 0.5,
        connectedness_boost: 1.0,
    });
    let split = split_dataset(&dataset, 0.2, 0.1, 42);
    (dataset, split)
}

fn quick_cfg(seed: u64) -> GroupSaConfig {
    GroupSaConfig {
        embed_dim: 8,
        d_k: 8,
        d_ff: 8,
        user_epochs: 2,
        group_epochs: 3,
        seed,
        ..GroupSaConfig::paper()
    }
}

fn train(dataset: &Dataset, split: &Split, cfg: GroupSaConfig) -> (GroupSa, DataContext) {
    let ctx = DataContext::build(dataset, split, &cfg);
    let mut model = GroupSa::new(cfg.clone(), dataset.num_users, dataset.num_items);
    Trainer::new(cfg).fit(&mut model, &ctx);
    (model, ctx)
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("groupsa-determinism-test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn same_seed_training_runs_write_byte_identical_checkpoints() {
    let (dataset, split) = tiny_world(9);
    let run = |path: &std::path::Path| {
        let (model, _ctx) = train(&dataset, &split, quick_cfg(0xD5EE_D));
        model.save(path, dataset.num_users, dataset.num_items).unwrap();
        std::fs::read(path).unwrap()
    };
    let a = run(&temp_path("run_a.json"));
    let b = run(&temp_path("run_b.json"));
    assert!(!a.is_empty());
    assert_eq!(a, b, "same-seed runs must checkpoint to identical bytes");
}

#[test]
fn different_seeds_write_different_checkpoints() {
    // Guards against the degenerate way to pass the test above (a
    // checkpoint that ignores the parameters entirely).
    let (dataset, split) = tiny_world(10);
    let bytes = |seed: u64, name: &str| {
        let (model, _ctx) = train(&dataset, &split, quick_cfg(seed));
        let path = temp_path(name);
        model.save(&path, dataset.num_users, dataset.num_items).unwrap();
        std::fs::read(path).unwrap()
    };
    assert_ne!(bytes(1, "seed_1.json"), bytes(2, "seed_2.json"));
}

#[test]
fn save_load_roundtrip_preserves_recommendations() {
    let (dataset, split) = tiny_world(11);
    let (model, ctx) = train(&dataset, &split, quick_cfg(7));
    let path = temp_path("roundtrip.json");
    model.save(&path, dataset.num_users, dataset.num_items).unwrap();
    let loaded = GroupSa::load(&path).unwrap();

    for group in 0..4 {
        let before = model.recommend_for_group(&ctx, group, 10, GroupMode::Voting);
        let after = loaded.recommend_for_group(&ctx, group, 10, GroupMode::Voting);
        assert_eq!(before, after, "group {group} recommendations changed across save/load");
    }
    for user in 0..4 {
        let before = model.recommend_for_user(&ctx, user, 10);
        let after = loaded.recommend_for_user(&ctx, user, 10);
        assert_eq!(before, after, "user {user} recommendations changed across save/load");
    }
}

#[test]
fn checkpoint_bytes_survive_a_parse_write_cycle() {
    // The checkpoint is plain JSON: parsing it and re-serialising the
    // loaded model must reproduce the original bytes exactly. This is
    // what makes byte-level comparison a sound fingerprint.
    let (dataset, split) = tiny_world(12);
    let (model, _ctx) = train(&dataset, &split, quick_cfg(3));
    let path = temp_path("cycle_a.json");
    model.save(&path, dataset.num_users, dataset.num_items).unwrap();
    let original = std::fs::read(&path).unwrap();

    let loaded = GroupSa::load(&path).unwrap();
    let path2 = temp_path("cycle_b.json");
    loaded.save(&path2, dataset.num_users, dataset.num_items).unwrap();
    let rewritten = std::fs::read(&path2).unwrap();
    assert_eq!(original, rewritten, "JSON round-trip must be lossless for f32 parameters");
}
