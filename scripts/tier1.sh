#!/usr/bin/env bash
# Tier-1 verification: the workspace must build and test fully offline.
#
# --offline is the point, not an optimisation: every dependency is an
# in-tree path dependency (crates/compat/*), so a build that needs the
# network is a policy violation (see tests/hermetic.rs and DESIGN.md).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline --workspace
