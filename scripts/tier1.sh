#!/usr/bin/env bash
# Tier-1 verification: the workspace must build and test fully offline.
#
# --offline is the point, not an optimisation: every dependency is an
# in-tree path dependency (crates/compat/*), so a build that needs the
# network is a policy violation (see tests/hermetic.rs and DESIGN.md).
set -euo pipefail
cd "$(dirname "$0")/.."

# Optional perf-regression gate: `tier1.sh --bench-gate` additionally
# re-times every kernel in BENCH_kernels.json and fails on a >25%
# ns/op regression (see DESIGN.md §12). Off by default because wall
# times on shared CI boxes are noisy; the smoke run below is always on.
bench_gate=0
for arg in "$@"; do
    case "$arg" in
        --bench-gate) bench_gate=1 ;;
        *) echo "tier1: unknown argument '$arg' (expected --bench-gate)" >&2; exit 2 ;;
    esac
done

# --workspace on the build: the serve smoke test below needs the
# groupsa-serve and serve_bench release binaries, which the root
# package alone would not produce. -D warnings keeps the release build
# warning-free — a warning anywhere in the workspace fails tier 1.
RUSTFLAGS="${RUSTFLAGS:-} -D warnings" cargo build --release --offline --workspace
cargo test -q --offline --workspace

# Static analysis: groupsa-lint walks every .rs file and Cargo.toml in
# the workspace enforcing the determinism / panic-safety / hermeticity
# / float-hygiene / concurrency-discipline invariants (DESIGN.md §11,
# §16). The gate is --diff against the committed report: new findings,
# resolved findings, and suppression-count changes ALL fail — an added
# escape hatch or a vanished baseline finding is a reviewable event
# even when the tree stays "clean". The text rendering (with per-pass
# timings) is printed for lint-cost visibility. To accept an
# intentional change, regenerate the baseline:
#     ./target/release/groupsa-lint --format json > results/lint_report.json
if ! ./target/release/groupsa-lint --format text --diff results/lint_report.json; then
    echo "tier1: lint state drifted from results/lint_report.json (see above)" >&2
    exit 1
fi
echo "tier1: groupsa-lint matches the committed report (0 findings)"

# Kernel bench smoke: every microbench must still run (shapes valid,
# sanity assertions inside the harness pass) on abbreviated profiles;
# results land in results/kernel_bench_smoke.json. Numbers from this
# mode are NOT comparable to BENCH_kernels.json — it exists to keep
# the bench binary from rotting, not to measure.
./target/release/kernel_bench --check >/dev/null
echo "tier1: kernel bench smoke run passed (results/kernel_bench_smoke.json)"

# Full gate only on request (--bench-gate): re-times at the full
# profile and compares against the committed BENCH_kernels.json
# baseline, failing on any kernel >25% slower in ns/op.
if [ "$bench_gate" = 1 ]; then
    ./target/release/kernel_bench --gate BENCH_kernels.json
    echo "tier1: kernel perf gate passed (no >25% regressions vs BENCH_kernels.json)"
fi

# Deterministic data-parallel training: the core trainer tests must
# pass at 1 and at 4 workers, and a short training run must produce
# byte-identical results (losses, validation curve, parameter
# checksum) at both thread counts.
GROUPSA_TRAIN_THREADS=1 cargo test -q --offline -p groupsa-core --lib train
GROUPSA_TRAIN_THREADS=4 cargo test -q --offline -p groupsa-core --lib train
digest1="$(GROUPSA_TRAIN_THREADS=1 ./target/release/train_bench --digest 2>/dev/null)"
digest4="$(GROUPSA_TRAIN_THREADS=4 ./target/release/train_bench --digest 2>/dev/null)"
if [ "$digest1" != "$digest4" ]; then
    echo "tier1: training digest differs between 1 and 4 workers" >&2
    echo "  T=1: $digest1" >&2
    echo "  T=4: $digest4" >&2
    exit 1
fi
echo "tier1: parallel-training digest matches serial"

# Serving smoke test: boot groupsa-serve on an ephemeral port (also
# exporting its frozen model as a snapshot directory) with
# request-lifecycle telemetry sampling every request, drive it with
# the load generator over TCP — first request-per-roundtrip, then the
# pipelined wire path (many requests in flight on one connection,
# replies matched by id) with the MetricsDump exposition page fetched
# and schema-validated (--metrics true), then a live hot-swap onto the
# exported snapshot followed by more validated traffic — render the
# obs_top dashboard once against the live server, ask the server to
# shut down, and require a clean exit from every process.
serve_log="$(mktemp)"
snap_dir="$(mktemp -d)/snap"
trap 'rm -f "$serve_log"; rm -rf "$(dirname "$snap_dir")"' EXIT
./target/release/groupsa-serve --dataset tiny --port 0 --workers 2 \
    --obs-sample 1/1 --snapshot-export "$snap_dir" >"$serve_log" 2>/dev/null &
serve_pid=$!

addr=""
for _ in $(seq 1 50); do
    addr="$(awk '/^LISTENING /{print $2; exit}' "$serve_log")"
    [ -n "$addr" ] && break
    sleep 0.2
done
if [ -z "$addr" ]; then
    echo "tier1: groupsa-serve never announced its address" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi

./target/release/serve_bench --addr "$addr" --clients 3 --requests 8
./target/release/serve_bench --addr "$addr" --clients 3 --requests 16 --pipeline true \
    --metrics true
./target/release/obs_top --addr "$addr" --iterations 1 --plain true >/dev/null
./target/release/serve_bench --addr "$addr" --clients 2 --requests 8 --pipeline true \
    --reload "$snap_dir" --shutdown true
wait "$serve_pid"
echo "tier1: serve smoke test passed (roundtrip, pipelined, metrics page, obs_top, hot-swap)"

# Observability: with GROUPSA_TRACE set, a training run must leave a
# schema-valid JSONL trace behind — and its stdout digest must be
# byte-identical to the untraced runs above (tracing must not perturb
# training; wall-clock fields are zeroed in the digest for exactly
# this comparison).
trace_dir="$(mktemp -d)"
trap 'rm -f "$serve_log"; rm -rf "$trace_dir"' EXIT
digest_traced="$(GROUPSA_TRAIN_THREADS=4 GROUPSA_TRACE="$trace_dir/train_trace.jsonl" \
    ./target/release/train_bench --digest 2>/dev/null)"
if [ "$digest1" != "$digest_traced" ]; then
    echo "tier1: tracing perturbed the training digest" >&2
    echo "  untraced: $digest1" >&2
    echo "  traced:   $digest_traced" >&2
    exit 1
fi
./target/release/trace_check "$trace_dir/train_trace.jsonl" run span epoch window metrics
echo "tier1: traced training digest matches untraced; trace is schema-valid"

# Traced serving: a small in-process serve_bench sweep (--save false so
# the committed results/serve_bench.json is untouched) must emit
# request/batch lifecycle events and a final stats snapshot.
GROUPSA_TRACE="$trace_dir/serve_trace.jsonl" \
    ./target/release/serve_bench --clients 2 --requests 8 --save false >/dev/null
./target/release/trace_check "$trace_dir/serve_trace.jsonl" run batch request stats
echo "tier1: traced serve sweep emitted a schema-valid lifecycle trace"

# Traced serving with telemetry on: the same sweep sampling every
# request must additionally emit per-request lifecycle records and
# shutdown window snapshots, all schema-valid.
GROUPSA_TRACE="$trace_dir/serve_telemetry_trace.jsonl" GROUPSA_OBS_SAMPLE=1/1 \
    ./target/release/serve_bench --clients 2 --requests 8 --save false >/dev/null
./target/release/trace_check "$trace_dir/serve_telemetry_trace.jsonl" \
    run batch request request_record window_snapshot stats
echo "tier1: telemetry-sampled sweep emitted schema-valid request records and window snapshots"

# Snapshot format: write→read round-trip must be bit-exact, every
# corruption family (bad magic, future version, truncation, slab bit
# rot, shard swap) must surface a typed error — never a panic — and a
# fresh fixture write must be byte-identical to the committed golden
# files under results/golden_snapshot/ (format-drift detection; see
# DESIGN.md §13 for the re-versioning policy).
./target/release/snapshot_check --smoke >/dev/null
./target/release/snapshot_check --golden results/golden_snapshot >/dev/null
echo "tier1: snapshot round-trip, corrupt-file rejection, and golden-fixture checks passed"
