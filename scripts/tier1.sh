#!/usr/bin/env bash
# Tier-1 verification: the workspace must build and test fully offline.
#
# --offline is the point, not an optimisation: every dependency is an
# in-tree path dependency (crates/compat/*), so a build that needs the
# network is a policy violation (see tests/hermetic.rs and DESIGN.md).
set -euo pipefail
cd "$(dirname "$0")/.."

# --workspace on the build: the serve smoke test below needs the
# groupsa-serve and serve_bench release binaries, which the root
# package alone would not produce.
cargo build --release --offline --workspace
cargo test -q --offline --workspace

# Serving smoke test: boot groupsa-serve on an ephemeral port, drive it
# with the load generator over TCP (which validates every response),
# ask it to shut down, and require a clean exit from both processes.
serve_log="$(mktemp)"
trap 'rm -f "$serve_log"' EXIT
./target/release/groupsa-serve --dataset tiny --port 0 --workers 2 >"$serve_log" 2>/dev/null &
serve_pid=$!

addr=""
for _ in $(seq 1 50); do
    addr="$(awk '/^LISTENING /{print $2; exit}' "$serve_log")"
    [ -n "$addr" ] && break
    sleep 0.2
done
if [ -z "$addr" ]; then
    echo "tier1: groupsa-serve never announced its address" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi

./target/release/serve_bench --addr "$addr" --clients 3 --requests 8 --shutdown true
wait "$serve_pid"
echo "tier1: serve smoke test passed"
