//! Quickstart: generate a small occasional-group dataset, train GroupSA,
//! and print Top-K recommendations for a held-out group.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use groupsa_suite::core::{DataContext, GroupSa, GroupSaConfig, Trainer};
use groupsa_suite::data::synthetic::SyntheticConfig;
use groupsa_suite::data::{split_dataset, synthetic, DatasetStats};
use groupsa_suite::eval::{evaluate, EvalTask};

fn main() {
    // 1. A small synthetic world: users with latent tastes, a social
    //    network, and ad-hoc groups whose choices follow a latent
    //    expertise-weighted vote (see groupsa-data docs).
    let synth = SyntheticConfig {
        name: "quickstart".into(),
        num_users: 300,
        num_items: 240,
        num_groups: 900,
        ..synthetic::yelp_sim()
    };
    let dataset = synthetic::generate(&synth);
    println!("{}\n", DatasetStats::compute(&dataset));

    // 2. The paper's 80/10/10 split.
    let split = split_dataset(&dataset, 0.2, 0.1, 42);

    // 3. Train GroupSA: stage 1 on user-item data, stage 2 fine-tunes
    //    on group-item data with early stopping on the validation set.
    let cfg = GroupSaConfig { user_epochs: 8, group_epochs: 30, ..GroupSaConfig::paper() };
    let ctx = DataContext::build(&dataset, &split, &cfg);
    let mut model = GroupSa::new(cfg.clone(), dataset.num_users, dataset.num_items);
    println!("training GroupSA ({} parameters)…", model.num_parameters());
    let report = Trainer::new(cfg).fit(&mut model, &ctx);
    println!(
        "final losses: user {:.4?}, group {:.4?}\n",
        report.final_user_loss(),
        report.final_group_loss()
    );

    // 4. Evaluate with the paper's protocol: rank each held-out positive
    //    against 100 never-interacted items.
    let full_gi = dataset.group_item_graph();
    let task = EvalTask::paper(&split.test_group_item, &full_gi, 7);
    let result = evaluate(&model.group_scorer(&ctx), &task);
    println!("group task: HR@5={:.4} NDCG@5={:.4} HR@10={:.4} NDCG@10={:.4}\n",
        result.hr(5), result.ndcg(5), result.hr(10), result.ndcg(10));

    // 5. Top-K recommendations for one held-out group.
    let (group, _) = split.test_group_item[0];
    let candidates: Vec<usize> = (0..dataset.num_items)
        .filter(|&i| !full_gi.has_interaction(group, i))
        .collect();
    let scores = model.score_group_items(&ctx, group, &candidates);
    let mut ranked: Vec<(usize, f32)> = candidates.into_iter().zip(scores).collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));
    println!("group #{group} (members {:?})", dataset.groups[group]);
    println!("top-5 recommendations:");
    for (item, score) in ranked.iter().take(5) {
        println!("  item #{item:4}  score {score:+.4}");
    }
}
