//! Conference trip: the paper's closing scenario (§IV) — attendees who
//! met at a conference plan an event together. The group is brand new
//! (zero group-item history), so everything must come from the members'
//! own histories and social ties. Compares the full voting path with
//! the static aggregation strategies of §III-D.
//!
//! ```bash
//! cargo run --release --example conference_trip
//! ```

use groupsa_suite::core::{DataContext, GroupSa, GroupSaConfig, ScoreAggregation, Trainer};
use groupsa_suite::data::synthetic::{self, SyntheticConfig};
use groupsa_suite::data::split_dataset;

fn main() {
    // A Douban-Event-flavoured world, scaled for a quick run.
    let synth = SyntheticConfig {
        name: "conference".into(),
        num_users: 300,
        num_items: 300,
        num_groups: 900,
        ..synthetic::douban_sim()
    };
    let mut dataset = synthetic::generate(&synth);

    // Form a brand-new occasional group of 4 socially connected users —
    // conference attendees who just met. It has NO group-item history.
    let social = dataset.social_graph();
    let seed_user = (0..dataset.num_users)
        .max_by_key(|&u| social.degree(u))
        .expect("non-empty user set");
    let mut attendees = vec![seed_user];
    attendees.extend(social.neighbors(seed_user).iter().take(3).map(|&u| u as usize));
    dataset.groups.push(attendees.clone());
    let fresh_group = dataset.num_groups() - 1;
    println!("ad-hoc attendee group #{fresh_group}: {attendees:?} (no history)\n");

    let split = split_dataset(&dataset, 0.2, 0.1, 7);
    let cfg = GroupSaConfig { user_epochs: 8, group_epochs: 30, ..GroupSaConfig::paper() };
    let ctx = DataContext::build(&dataset, &split, &cfg);
    let mut model = GroupSa::new(cfg.clone(), dataset.num_users, dataset.num_items);
    println!("training…");
    Trainer::new(cfg).fit(&mut model, &ctx);

    // Rank all events for the fresh group with the full voting path and
    // with each static strategy.
    let candidates: Vec<usize> = (0..dataset.num_items).collect();
    let show = |label: &str, scores: Vec<f32>| {
        let mut ranked: Vec<(usize, f32)> = candidates.iter().copied().zip(scores).collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        let top: Vec<String> = ranked.iter().take(5).map(|(i, s)| format!("#{i}({s:+.2})")).collect();
        println!("{label:22} → {}", top.join("  "));
    };
    show("GroupSA (voting)", model.score_group_items(&ctx, fresh_group, &candidates));
    for agg in [ScoreAggregation::Average, ScoreAggregation::LeastMisery, ScoreAggregation::MaxSatisfaction] {
        show(agg.label(), model.fast_group_scores(&ctx, fresh_group, &candidates, agg));
    }

    // Who would dominate the decision for the top pick?
    let top_item = {
        let scores = model.score_group_items(&ctx, fresh_group, &candidates);
        candidates
            .iter()
            .copied()
            .zip(scores)
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("non-empty candidates")
            .0
    };
    let e = model.explain_group_prediction(&ctx, fresh_group, top_item);
    println!("\nfor the top event #{top_item}, the loudest voice is attendee #{}", e.dominant_member());
    println!(
        "member weights: {}",
        e.members
            .iter()
            .zip(&e.member_weights)
            .map(|(u, w)| format!("#{u}:{w:.3}"))
            .collect::<Vec<_>>()
            .join("  ")
    );
}
