//! Dinner party: a hand-crafted occasional-group scenario showing the
//! *latent voting* behaviour the paper motivates — a food critic's vote
//! dominates the restaurant pick, and the model's member-attention
//! weights reveal it (paper §I and the Table IV case study).
//!
//! ```bash
//! cargo run --release --example dinner_party
//! ```

use groupsa_suite::core::{DataContext, GroupSa, GroupSaConfig, Trainer};
use groupsa_suite::data::Dataset;

/// Builds a small world with two item genres:
/// items 0..10 are restaurants, items 10..20 are cinemas.
/// User 0 is a restaurant expert (ate everywhere), users 1–2 are film
/// buffs. The three of them form occasional group 0.
fn build_world() -> Dataset {
    let mut user_item = Vec::new();
    // User 0: the food critic — dense restaurant history.
    for r in 0..8 {
        user_item.push((0, r));
    }
    // Users 1, 2: cinema-goers with a little restaurant noise.
    for u in 1..3 {
        for c in 10..17 {
            user_item.push((u, c));
        }
        user_item.push((u, 8));
    }
    // Background users make both genres learnable: half like
    // restaurants, half like cinemas, with clear co-occurrence patterns.
    for u in 3..60 {
        let base = if u % 2 == 0 { 0 } else { 10 };
        for k in 0..5 {
            user_item.push((u, base + (u + k) % 10));
        }
    }
    // Social edges: the party knows each other; background users form
    // genre communities.
    let mut social = vec![(0, 1), (1, 2), (0, 2)];
    for u in 3..58 {
        if u % 2 == (u + 2) % 2 {
            social.push((u, u + 2));
        }
    }
    // Groups: our party plus background same-genre pairs whose choices
    // follow the *expert*: restaurant groups pick what their most
    // restaurant-experienced member knows.
    let mut groups = vec![vec![0, 1, 2]];
    let mut group_item = Vec::new();
    for (t, u) in (3..57).step_by(2).enumerate() {
        groups.push(vec![u, u + 1, u + 2]);
        let base = if u % 2 == 0 { 0 } else { 10 };
        group_item.push((t + 1, base + u % 10));
    }
    // The party's one past activity: a restaurant (the critic chose).
    group_item.push((0, 3));

    Dataset {
        name: "dinner-party".into(),
        num_users: 60,
        num_items: 20,
        groups,
        user_item,
        group_item,
        social,
    }
}

fn main() {
    let dataset = build_world();
    assert_eq!(dataset.validate(), Ok(()));

    let cfg = GroupSaConfig {
        user_epochs: 30,
        group_epochs: 40,
        embed_dim: 16,
        d_k: 16,
        d_ff: 16,
        ..GroupSaConfig::paper()
    };
    let ctx = DataContext::from_train_view(&dataset, &cfg);
    let mut model = GroupSa::new(cfg.clone(), dataset.num_users, dataset.num_items);
    println!("training on the dinner-party world…");
    Trainer::new(cfg).fit(&mut model, &ctx);

    // Ask for a restaurant (unvisited ones: 8, 9) vs a cinema (17–19).
    let party = 0;
    println!("\nThe party: critic #0, film buffs #1 and #2\n");
    for &item in &[8usize, 9, 17, 18] {
        let e = model.explain_group_prediction(&ctx, party, item);
        let genre = if item < 10 { "restaurant" } else { "cinema" };
        println!(
            "item #{item:2} ({genre:10}) score {:+.3}  member weights: critic {:.3} | buff1 {:.3} | buff2 {:.3}",
            e.raw_score, e.member_weights[0], e.member_weights[1], e.member_weights[2]
        );
    }

    // The paper's intuition: for restaurant candidates the critic's
    // weight should exceed their uniform share more than for cinemas.
    let critic_weight = |item: usize| model.explain_group_prediction(&ctx, party, item).member_weights[0];
    let rest: f32 = [8usize, 9].iter().map(|&i| critic_weight(i)).sum::<f32>() / 2.0;
    let cine: f32 = [17usize, 18, 19].iter().map(|&i| critic_weight(i)).sum::<f32>() / 3.0;
    println!("\ncritic's mean attention weight: restaurants {rest:.3} vs cinemas {cine:.3}");
    if rest > cine {
        println!("→ the latent vote defers to the food critic for restaurants, as §I motivates.");
    } else {
        println!("→ on this run the critic did not dominate; try more epochs or another seed.");
    }
}
