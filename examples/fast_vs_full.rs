//! Fast vs full group recommendation (paper §II-F): for large groups,
//! running the multi-layer voting network per candidate is expensive;
//! the fast mode scores members individually and averages, trading a
//! little quality for a large latency win.
//!
//! ```bash
//! cargo run --release --example fast_vs_full
//! ```

use groupsa_suite::core::{DataContext, GroupSa, GroupSaConfig, ScoreAggregation, Trainer};
use groupsa_suite::data::synthetic::{self, SyntheticConfig};
use groupsa_suite::data::split_dataset;
use groupsa_suite::eval::{evaluate, EvalTask};
use std::time::Instant;

fn main() {
    let synth = SyntheticConfig {
        name: "fast-vs-full".into(),
        num_users: 300,
        num_items: 240,
        num_groups: 900,
        mean_group_size: 6.0, // bias towards larger groups
        ..synthetic::yelp_sim()
    };
    let dataset = synthetic::generate(&synth);
    let split = split_dataset(&dataset, 0.2, 0.1, 42);
    let cfg = GroupSaConfig { user_epochs: 8, group_epochs: 30, ..GroupSaConfig::paper() };
    let ctx = DataContext::build(&dataset, &split, &cfg);
    let mut model = GroupSa::new(cfg.clone(), dataset.num_users, dataset.num_items);
    println!("training…");
    Trainer::new(cfg).fit(&mut model, &ctx);

    let full_gi = dataset.group_item_graph();
    let task = EvalTask::paper(&split.test_group_item, &full_gi, 7);

    let t = Instant::now();
    let full = evaluate(&model.group_scorer(&ctx), &task);
    let t_full = t.elapsed();

    let t = Instant::now();
    let fast = evaluate(&model.fast_group_scorer(&ctx, ScoreAggregation::Average), &task);
    let t_fast = t.elapsed();

    println!("\n{} test groups × 101 candidates", split.test_group_item.len());
    println!(
        "full voting path : HR@10={:.4} NDCG@10={:.4}   ({t_full:?})",
        full.hr(10),
        full.ndcg(10)
    );
    println!(
        "fast average mode: HR@10={:.4} NDCG@10={:.4}   ({t_fast:?})",
        fast.hr(10),
        fast.ndcg(10)
    );
    println!(
        "\n§II-F's claim: the fast mode 'can help yield comparable results' — here it keeps {:.0}% of full HR@10.",
        100.0 * fast.hr(10) / full.hr(10).max(1e-9)
    );

    // Latency scaling with group size: time a single 100-candidate
    // scoring call for groups of different sizes.
    println!("\nper-request latency by group size (100 candidates):");
    let items: Vec<usize> = (0..100).collect();
    for target in [2usize, 5, 10] {
        if let Some(t_idx) = (0..ctx.num_groups()).find(|&t| ctx.members[t].len() == target) {
            let t = Instant::now();
            for _ in 0..10 {
                let _ = model.score_group_items(&ctx, t_idx, &items);
            }
            let full_us = t.elapsed().as_micros() / 10;
            let t = Instant::now();
            for _ in 0..10 {
                let _ = model.fast_group_scores(&ctx, t_idx, &items, ScoreAggregation::Average);
            }
            let fast_us = t.elapsed().as_micros() / 10;
            println!("  l={target:2}:  full {full_us:>6}µs   fast {fast_us:>6}µs");
        }
    }
}
