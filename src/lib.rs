//! # groupsa-suite
//!
//! Umbrella crate for the `groupsa-rs` workspace — a from-scratch Rust
//! reproduction of *"Group Recommendation with Latent Voting Mechanism"*
//! (ICDE 2020). It re-exports the member crates so the examples and the
//! cross-crate integration tests have a single import root:
//!
//! * [`tensor`] — dense 2-D tensors + reverse-mode autodiff;
//! * [`nn`] — layers, attention blocks, optimizers, losses;
//! * [`graph`] — CSR social/bipartite graphs, centrality, TF-IDF;
//! * [`data`] — dataset model, synthetic generators, splits, sampling;
//! * [`eval`] — HR/NDCG metrics, the 100-negative protocol, t-tests;
//! * [`core`] — the GroupSA model (voting scheme, user modeling, joint
//!   training, fast mode, ablations);
//! * [`baselines`] — Pop, NCF, AGREE, SIGR-like, static aggregation.
//!
//! Start with `examples/quickstart.rs`:
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

pub use groupsa_baselines as baselines;
pub use groupsa_core as core;
pub use groupsa_data as data;
pub use groupsa_eval as eval;
pub use groupsa_graph as graph;
pub use groupsa_nn as nn;
pub use groupsa_tensor as tensor;
