//! `groupsa` — command-line interface to the GroupSA reproduction.
//!
//! A downstream-user workflow without writing any Rust:
//!
//! ```bash
//! groupsa generate --preset yelp --out data.json        # synthetic dataset
//! groupsa train    --data data.json --out model.json    # train GroupSA
//! groupsa evaluate --data data.json --model model.json  # HR/NDCG on held-out data
//! groupsa recommend --data data.json --model model.json --group 17 --k 10
//! groupsa explain  --data data.json --model model.json --group 17 --item 42
//! ```
//!
//! Argument parsing is hand-rolled (the workspace carries no CLI
//! dependency); every flag is `--name value`.

use groupsa_suite::core::{DataContext, GroupMode, GroupSa, GroupSaConfig, ScoreAggregation, Trainer};
use groupsa_suite::data::{split_dataset, synthetic, Dataset, DatasetStats};
use groupsa_suite::eval::{evaluate, EvalTask};
use std::collections::HashMap;
use std::process::ExitCode;

const USAGE: &str = "\
groupsa — GroupSA group recommender (ICDE 2020 reproduction)

USAGE:
  groupsa generate  --preset <yelp|douban> [--seed N] [--users N] [--items N] [--groups N] --out FILE
  groupsa stats     --data FILE
  groupsa train     --data FILE --out MODEL [--user-epochs N] [--group-epochs N] [--seed N]
  groupsa evaluate  --data FILE --model MODEL [--task <user|group|both>]
  groupsa recommend --data FILE --model MODEL --group ID [--k N] [--mode <voting|fast>]
  groupsa explain   --data FILE --model MODEL --group ID --item ID

All interactions are split 80/10/10 (train/valid/test) with seed 42,
matching the paper's protocol; training sees only the training split.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, flags)) = parse(&args) else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&flags),
        "stats" => cmd_stats(&flags),
        "train" => cmd_train(&flags),
        "evaluate" => cmd_evaluate(&flags),
        "recommend" => cmd_recommend(&flags),
        "explain" => cmd_explain(&flags),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type Flags = HashMap<String, String>;

fn parse(args: &[String]) -> Option<(String, Flags)> {
    let cmd = args.first()?.clone();
    let mut flags = HashMap::new();
    let mut i = 1;
    while i < args.len() {
        let key = args[i].strip_prefix("--")?.to_string();
        let value = args.get(i + 1)?.clone();
        flags.insert(key, value);
        i += 2;
    }
    Some((cmd, flags))
}

fn required<'a>(flags: &'a Flags, key: &str) -> Result<&'a str, String> {
    flags.get(key).map(String::as_str).ok_or_else(|| format!("missing required flag --{key}"))
}

fn numeric<T: std::str::FromStr>(flags: &Flags, key: &str) -> Result<Option<T>, String> {
    match flags.get(key) {
        None => Ok(None),
        Some(v) => v.parse().map(Some).map_err(|_| format!("--{key}: cannot parse '{v}'")),
    }
}

fn cmd_generate(flags: &Flags) -> Result<(), String> {
    let preset = required(flags, "preset")?;
    let mut cfg = match preset {
        "yelp" => synthetic::yelp_sim(),
        "douban" => synthetic::douban_sim(),
        other => return Err(format!("unknown preset '{other}' (yelp|douban)")),
    };
    if let Some(seed) = numeric(flags, "seed")? {
        cfg.seed = seed;
    }
    if let Some(n) = numeric(flags, "users")? {
        cfg.num_users = n;
    }
    if let Some(n) = numeric(flags, "items")? {
        cfg.num_items = n;
    }
    if let Some(n) = numeric(flags, "groups")? {
        cfg.num_groups = n;
    }
    let out = required(flags, "out")?;
    let dataset = synthetic::generate(&cfg);
    dataset.save_json(out).map_err(|e| e.to_string())?;
    println!("{}", DatasetStats::compute(&dataset));
    println!("wrote {out}");
    Ok(())
}

fn load_dataset(flags: &Flags) -> Result<Dataset, String> {
    let path = required(flags, "data")?;
    let d = Dataset::load_json(path).map_err(|e| format!("loading {path}: {e}"))?;
    d.validate().map_err(|e| format!("{path} is not a valid dataset: {e}"))?;
    Ok(d)
}

fn cmd_stats(flags: &Flags) -> Result<(), String> {
    println!("{}", DatasetStats::compute(&load_dataset(flags)?));
    Ok(())
}

fn training_config(flags: &Flags) -> Result<GroupSaConfig, String> {
    let mut cfg = GroupSaConfig::paper();
    if let Some(n) = numeric(flags, "user-epochs")? {
        cfg.user_epochs = n;
    }
    if let Some(n) = numeric(flags, "group-epochs")? {
        cfg.group_epochs = n;
    }
    if let Some(s) = numeric(flags, "seed")? {
        cfg.seed = s;
    }
    cfg.validate()?;
    Ok(cfg)
}

fn cmd_train(flags: &Flags) -> Result<(), String> {
    let dataset = load_dataset(flags)?;
    let out = required(flags, "out")?;
    let cfg = training_config(flags)?;
    let split = split_dataset(&dataset, 0.2, 0.1, 42);
    let ctx = DataContext::build(&dataset, &split, &cfg);
    let mut model = GroupSa::new(cfg.clone(), dataset.num_users, dataset.num_items);
    println!("training GroupSA ({} parameters)…", model.num_parameters());
    let report = Trainer::new(cfg).fit(&mut model, &ctx);
    println!(
        "done: user loss {:?}, group loss {:?}, best valid HR@10 {:?}",
        report.final_user_loss(),
        report.final_group_loss(),
        report.valid_hr.iter().cloned().fold(None::<f64>, |m, v| Some(m.map_or(v, |m| m.max(v))))
    );
    model
        .save(out, dataset.num_users, dataset.num_items)
        .map_err(|e| format!("saving {out}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}

/// Loads the model and rebuilds the training context the way `train`
/// created it (same split seed).
fn load_model_and_ctx(flags: &Flags, dataset: &Dataset) -> Result<(GroupSa, DataContext), String> {
    let path = required(flags, "model")?;
    let model = GroupSa::load(path).map_err(|e| format!("loading {path}: {e}"))?;
    let split = split_dataset(dataset, 0.2, 0.1, 42);
    let ctx = DataContext::build(dataset, &split, model.config());
    Ok((model, ctx))
}

fn cmd_evaluate(flags: &Flags) -> Result<(), String> {
    let dataset = load_dataset(flags)?;
    let (model, ctx) = load_model_and_ctx(flags, &dataset)?;
    let split = split_dataset(&dataset, 0.2, 0.1, 42);
    let task_kind = flags.get("task").map(String::as_str).unwrap_or("both");

    if task_kind == "user" || task_kind == "both" {
        let full = dataset.user_item_graph();
        let task = EvalTask::paper(&split.test_user_item, &full, 7);
        let r = evaluate(&model.user_scorer(&ctx), &task);
        println!(
            "user : HR@5={:.4} NDCG@5={:.4} HR@10={:.4} NDCG@10={:.4} MRR={:.4} ({} test pairs)",
            r.hr(5), r.ndcg(5), r.hr(10), r.ndcg(10), r.mrr(), r.outcomes.len()
        );
    }
    if task_kind == "group" || task_kind == "both" {
        let full = dataset.group_item_graph();
        let task = EvalTask::paper(&split.test_group_item, &full, 7);
        let r = evaluate(&model.group_scorer(&ctx), &task);
        println!(
            "group: HR@5={:.4} NDCG@5={:.4} HR@10={:.4} NDCG@10={:.4} MRR={:.4} ({} test pairs)",
            r.hr(5), r.ndcg(5), r.hr(10), r.ndcg(10), r.mrr(), r.outcomes.len()
        );
    }
    if !["user", "group", "both"].contains(&task_kind) {
        return Err(format!("--task must be user|group|both, got '{task_kind}'"));
    }
    Ok(())
}

fn cmd_recommend(flags: &Flags) -> Result<(), String> {
    let dataset = load_dataset(flags)?;
    let (model, ctx) = load_model_and_ctx(flags, &dataset)?;
    let group: usize = numeric(flags, "group")?.ok_or("missing required flag --group")?;
    if group >= ctx.num_groups() {
        return Err(format!("group {group} out of range ({} groups)", ctx.num_groups()));
    }
    let k: usize = numeric(flags, "k")?.unwrap_or(10);
    let mode = match flags.get("mode").map(String::as_str).unwrap_or("voting") {
        "voting" => GroupMode::Voting,
        "fast" => GroupMode::Fast(ScoreAggregation::Average),
        other => return Err(format!("--mode must be voting|fast, got '{other}'")),
    };
    println!("group #{group} (members {:?})", ctx.members[group]);
    for rec in model.recommend_for_group(&ctx, group, k, mode) {
        println!("  item #{:<6} score {:+.4}", rec.item, rec.score);
    }
    Ok(())
}

fn cmd_explain(flags: &Flags) -> Result<(), String> {
    let dataset = load_dataset(flags)?;
    let (model, ctx) = load_model_and_ctx(flags, &dataset)?;
    let group: usize = numeric(flags, "group")?.ok_or("missing required flag --group")?;
    let item: usize = numeric(flags, "item")?.ok_or("missing required flag --item")?;
    if group >= ctx.num_groups() {
        return Err(format!("group {group} out of range ({} groups)", ctx.num_groups()));
    }
    if item >= ctx.num_items {
        return Err(format!("item {item} out of range ({} items)", ctx.num_items));
    }
    let e = model.explain_group_prediction(&ctx, group, item);
    println!("group #{group} × item #{item}: p={:.4} (raw {:+.4})", e.probability, e.raw_score);
    for (u, w) in e.members.iter().zip(&e.member_weights) {
        let marker = if *u == e.dominant_member() { " ← dominant" } else { "" };
        println!("  member #{u:<6} γ = {w:.4}{marker}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(pairs: &[(&str, &str)]) -> Flags {
        pairs.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect()
    }

    #[test]
    fn parse_splits_command_and_flags() {
        let args: Vec<String> = ["train", "--data", "d.json", "--out", "m.json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (cmd, f) = parse(&args).unwrap();
        assert_eq!(cmd, "train");
        assert_eq!(f.get("data").unwrap(), "d.json");
        assert_eq!(f.get("out").unwrap(), "m.json");
    }

    #[test]
    fn parse_rejects_dangling_flag() {
        let args: Vec<String> = ["train", "--data"].iter().map(|s| s.to_string()).collect();
        assert!(parse(&args).is_none());
    }

    #[test]
    fn numeric_flag_errors_are_descriptive() {
        let f = flags(&[("seed", "not-a-number")]);
        let err = numeric::<u64>(&f, "seed").unwrap_err();
        assert!(err.contains("seed"));
        assert_eq!(numeric::<u64>(&f, "absent").unwrap(), None);
    }

    #[test]
    fn training_config_applies_overrides() {
        let f = flags(&[("user-epochs", "3"), ("group-epochs", "4"), ("seed", "9")]);
        let cfg = training_config(&f).unwrap();
        assert_eq!(cfg.user_epochs, 3);
        assert_eq!(cfg.group_epochs, 4);
        assert_eq!(cfg.seed, 9);
    }

    #[test]
    fn unknown_preset_is_an_error() {
        let f = flags(&[("preset", "netflix"), ("out", "/tmp/x.json")]);
        assert!(cmd_generate(&f).unwrap_err().contains("preset"));
    }
}
