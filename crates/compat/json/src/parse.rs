//! A recursive-descent JSON parser (RFC 8259).
//!
//! Supports the full grammar including unicode escapes and surrogate
//! pairs; depth-limited to keep malicious inputs from overflowing the
//! stack. Errors carry the byte offset of the first problem.

use crate::Json;
use std::fmt;

/// A parse or conversion error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    message: String,
}

impl JsonError {
    /// An error with the given description.
    pub fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for JsonError {}

const MAX_DEPTH: usize = 128;

pub(crate) fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_whitespace();
    let value = p.value(0)?;
    p.skip_whitespace();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl fmt::Display) -> JsonError {
        JsonError::new(format!("{message} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", byte as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("document nests too deeply"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.error(format!("unexpected character '{}'", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(format!("invalid literal (expected '{text}')")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy unescaped UTF-8 runs wholesale.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            if self.pos > start {
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.error("unescaped control character in string")),
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let c = self.peek().ok_or_else(|| self.error("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0C}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let first = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&first) {
                    // High surrogate: a \uXXXX low surrogate must follow.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let second = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&second) {
                            return Err(self.error("invalid low surrogate"));
                        }
                        0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                    } else {
                        return Err(self.error("unpaired high surrogate"));
                    }
                } else if (0xDC00..0xE000).contains(&first) {
                    return Err(self.error("unpaired low surrogate"));
                } else {
                    first
                };
                out.push(
                    char::from_u32(code).ok_or_else(|| self.error("invalid unicode escape"))?,
                );
            }
            other => return Err(self.error(format!("invalid escape '\\{}'", other as char))),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let c = self.peek().ok_or_else(|| self.error("truncated \\u escape"))?;
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.error("non-hex digit in \\u escape"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: `0` alone or a nonzero-led digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => self.digits()?,
            _ => return Err(self.error("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.error(format!("invalid number '{text}'")))
    }

    fn digits(&mut self) -> Result<(), JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.error("expected digit"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_value_kind() {
        let doc = parse(
            r#"{"a": [1, -2.5, 1e3, 0.25e-1], "b": {"nested": null}, "c": true, "d": false, "s": "x"}"#,
        )
        .unwrap();
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 4);
        assert_eq!(doc.get("a").unwrap().as_array().unwrap()[2], Json::Number(1000.0));
        assert_eq!(doc.get("b").unwrap().get("nested"), Some(&Json::Null));
        assert_eq!(doc.get("c"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("s").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn parses_escapes_and_surrogate_pairs() {
        let doc = parse(r#""a\n\t\"\\\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(doc.as_str(), Some("a\n\t\"\\é😀"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,", "{\"a\" 1}", "tru", "01", "1.", "1e", "\"\\q\"", "\"unterminated",
            "[1] extra", "{\"a\": \"\\ud800\"}", "nan",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(5000) + &"]".repeat(5000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn roundtrips_through_writer() {
        let text = r#"{"name":"yelp-sim","xs":[1,2.5,-3],"ok":true,"none":null}"#;
        let doc = parse(text).unwrap();
        assert_eq!(doc.to_compact_string(), text);
        assert_eq!(parse(&doc.to_pretty_string()).unwrap(), doc);
    }

    #[test]
    fn whitespace_everywhere_is_fine() {
        let doc = parse(" \n\t{ \"a\" : [ 1 , 2 ] , \"b\" : { } } \r\n").unwrap();
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(doc.get("b"), Some(&Json::Object(vec![])));
    }
}
