//! Hand-rolled JSON for the hermetic workspace.
//!
//! Replaces `serde`/`serde_json` (hermetic-build policy, DESIGN.md §7)
//! with the small surface the workspace actually needs:
//!
//! * [`Json`] — an owned JSON document (parse / write, compact and
//!   pretty);
//! * [`ToJson`] / [`FromJson`] — conversion traits, implemented for the
//!   primitives, `String`, `Option`, `Vec`, tuples — and for every
//!   persisted workspace type via the [`impl_json_struct!`] /
//!   [`impl_json_enum!`] macros placed next to the type definitions;
//! * [`to_string`] / [`to_string_pretty`] / [`from_str`] — the
//!   `serde_json`-shaped entry points;
//! * [`json!`] — object/array literals for ad-hoc payloads.
//!
//! ## Format guarantees
//!
//! * Object keys keep **insertion order** — struct serialisation is
//!   deterministic, which is what makes checkpoint files byte-identical
//!   across runs with the same seed.
//! * Numbers are held as `f64` and written with Rust's shortest
//!   round-trip formatting. `f32` values are widened exactly, so a
//!   write → parse → narrow round-trip reproduces the original bits
//!   (every `f32` is exactly representable as `f64`).
//! * Enums serialise like serde's externally-tagged default: unit
//!   variants as `"Variant"`, struct variants as
//!   `{"Variant": {..fields..}}`.

mod parse;
mod write;

pub use parse::JsonError;

/// An owned JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (held as `f64`; integers are written without a
    /// fractional part).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; keys keep insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        parse::parse(text)
    }

    /// Member lookup on an object (`None` for absent keys or non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Compact rendering (no whitespace).
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        write::write_compact(self, &mut out);
        out
    }

    /// Pretty rendering (two-space indent).
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        write::write_pretty(self, 0, &mut out);
        out
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Number(_) => "number",
            Json::String(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_compact_string())
    }
}

/// Conversion into a [`Json`] document.
pub trait ToJson {
    /// The JSON form of `self`.
    fn to_json(&self) -> Json;
}

/// Conversion out of a [`Json`] document.
pub trait FromJson: Sized {
    /// Reconstructs `Self`, describing the first mismatch on failure.
    fn from_json(json: &Json) -> Result<Self, JsonError>;
}

/// Serialises compactly — the `serde_json::to_string` replacement.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_compact_string()
}

/// Serialises with indentation — the `serde_json::to_string_pretty`
/// replacement.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_pretty_string()
}

/// Parses and converts — the `serde_json::from_str` replacement.
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&Json::parse(text)?)
}

/// Extracts and converts an object field — the helper the derive
/// macros expand to.
pub fn field<T: FromJson>(json: &Json, name: &str) -> Result<T, JsonError> {
    let value = json
        .get(name)
        .ok_or_else(|| JsonError::new(format!("missing field '{name}' in {}", json.kind())))?;
    T::from_json(value)
        .map_err(|e| JsonError::new(format!("field '{name}': {e}")))
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(json.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json {
            Json::Bool(b) => Ok(*b),
            other => Err(JsonError::new(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::String(self.clone())
    }
}

impl FromJson for String {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json {
            Json::String(s) => Ok(s.clone()),
            other => Err(JsonError::new(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::String(self.to_string())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Number(*self)
    }
}

impl FromJson for f64 {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        json.as_f64()
            .ok_or_else(|| JsonError::new(format!("expected number, found {}", json.kind())))
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        // Exact: every f32 is representable as f64.
        Json::Number(f64::from(*self))
    }
}

impl FromJson for f32 {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(f64::from_json(json)? as f32)
    }
}

macro_rules! impl_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Number(*self as f64)
            }
        }

        impl FromJson for $t {
            fn from_json(json: &Json) -> Result<Self, JsonError> {
                let n = f64::from_json(json)?;
                if n.fract() != 0.0 {
                    return Err(JsonError::new(format!(
                        "expected integer, found fractional number {n}"
                    )));
                }
                if n < <$t>::MIN as f64 || n > <$t>::MAX as f64 {
                    return Err(JsonError::new(format!(
                        "number {n} out of range for {}",
                        stringify!($t)
                    )));
                }
                Ok(n as $t)
            }
        }
    )*};
}

impl_json_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json {
            Json::Null => Ok(None),
            other => Ok(Some(T::from_json(other)?)),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let items = json
            .as_array()
            .ok_or_else(|| JsonError::new(format!("expected array, found {}", json.kind())))?;
        items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                T::from_json(item).map_err(|e| JsonError::new(format!("element {i}: {e}")))
            })
            .collect()
    }
}

macro_rules! impl_json_tuple {
    ($(($len:literal: $($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: ToJson),+> ToJson for ($($t,)+) {
            fn to_json(&self) -> Json {
                Json::Array(vec![$(self.$idx.to_json()),+])
            }
        }

        impl<$($t: FromJson),+> FromJson for ($($t,)+) {
            fn from_json(json: &Json) -> Result<Self, JsonError> {
                let items = json.as_array().ok_or_else(|| {
                    JsonError::new(format!("expected {}-tuple array, found {}", $len, json.kind()))
                })?;
                if items.len() != $len {
                    return Err(JsonError::new(format!(
                        "expected {}-tuple, found array of {}",
                        $len,
                        items.len()
                    )));
                }
                Ok(($($t::from_json(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_json_tuple! {
    (1: A.0)
    (2: A.0, B.1)
    (3: A.0, B.1, C.2)
    (4: A.0, B.1, C.2, D.3)
}

/// Implements [`ToJson`] / [`FromJson`] for a named-field struct as an
/// object with one member per listed field, in listed order. Invoke in
/// the module defining the struct (private fields are fine):
///
/// ```ignore
/// impl_json_struct!(Checkpoint { version, config, num_users });
/// ```
#[macro_export]
macro_rules! impl_json_struct {
    ($name:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $name {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Object(vec![
                    $((stringify!($field).to_string(), $crate::ToJson::to_json(&self.$field)),)+
                ])
            }
        }

        impl $crate::FromJson for $name {
            fn from_json(json: &$crate::Json) -> Result<Self, $crate::JsonError> {
                Ok(Self {
                    $($field: $crate::field(json, stringify!($field))?,)+
                })
            }
        }
    };
}

/// Implements [`ToJson`] / [`FromJson`] for an enum of unit and/or
/// struct variants, in serde's externally-tagged format:
///
/// ```ignore
/// impl_json_enum!(Closeness { Direct, CommonNeighbors { min_common }, All });
/// ```
#[macro_export]
macro_rules! impl_json_enum {
    ($name:ident { $($variant:ident $({ $($vfield:ident),+ $(,)? })?),+ $(,)? }) => {
        impl $crate::ToJson for $name {
            fn to_json(&self) -> $crate::Json {
                match self {
                    $($crate::impl_json_enum!(@pattern $name $variant $({ $($vfield),+ })?) =>
                        $crate::impl_json_enum!(@serialize $variant $({ $($vfield),+ })?),)+
                }
            }
        }

        impl $crate::FromJson for $name {
            fn from_json(json: &$crate::Json) -> Result<Self, $crate::JsonError> {
                $($crate::impl_json_enum!(@deserialize json, $name, $variant $({ $($vfield),+ })?);)+
                Err($crate::JsonError::new(format!(
                    concat!("no variant of ", stringify!($name), " matches {}"),
                    json
                )))
            }
        }
    };
    (@pattern $name:ident $variant:ident) => { $name::$variant };
    (@pattern $name:ident $variant:ident { $($vfield:ident),+ }) => {
        $name::$variant { $($vfield),+ }
    };
    (@serialize $variant:ident) => {
        $crate::Json::String(stringify!($variant).to_string())
    };
    (@serialize $variant:ident { $($vfield:ident),+ }) => {
        $crate::Json::Object(vec![(
            stringify!($variant).to_string(),
            $crate::Json::Object(vec![
                $((stringify!($vfield).to_string(), $crate::ToJson::to_json($vfield)),)+
            ]),
        )])
    };
    (@deserialize $json:ident, $name:ident, $variant:ident) => {
        if $json.as_str() == Some(stringify!($variant)) {
            return Ok($name::$variant);
        }
    };
    (@deserialize $json:ident, $name:ident, $variant:ident { $($vfield:ident),+ }) => {
        if let Some(inner) = $json.get(stringify!($variant)) {
            return Ok($name::$variant {
                $($vfield: $crate::field(inner, stringify!($vfield))?,)+
            });
        }
    };
}

/// Builds a [`Json`] value from a literal: `json!({"k": v, ..})`,
/// `json!([a, b])`, `json!(null)`, or any [`ToJson`] expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Json::Null };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Json::Object(vec![
            $(($key.to_string(), $crate::ToJson::to_json(&$value)),)*
        ])
    };
    ([ $($value:expr),* $(,)? ]) => {
        $crate::Json::Array(vec![$($crate::ToJson::to_json(&$value)),*])
    };
    ($value:expr) => { $crate::ToJson::to_json(&$value) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Demo {
        id: usize,
        label: String,
        weights: Vec<f32>,
        pair: (u32, u32),
        note: Option<String>,
    }

    impl_json_struct!(Demo { id, label, weights, pair, note });

    #[derive(Debug, PartialEq)]
    enum Mode {
        Plain,
        Tuned { strength: usize },
    }

    impl_json_enum!(Mode { Plain, Tuned { strength } });

    fn demo() -> Demo {
        Demo {
            id: 7,
            label: "hello \"world\"\n".to_string(),
            weights: vec![0.1, -2.5e-8, 3.0],
            pair: (4, 5),
            note: None,
        }
    }

    #[test]
    fn struct_roundtrip_compact_and_pretty() {
        let d = demo();
        assert_eq!(from_str::<Demo>(&to_string(&d)).unwrap(), d);
        assert_eq!(from_str::<Demo>(&to_string_pretty(&d)).unwrap(), d);
    }

    #[test]
    fn field_order_is_declaration_order() {
        let text = to_string(&demo());
        let id_pos = text.find("\"id\"").unwrap();
        let label_pos = text.find("\"label\"").unwrap();
        let weights_pos = text.find("\"weights\"").unwrap();
        assert!(id_pos < label_pos && label_pos < weights_pos);
    }

    #[test]
    fn enum_roundtrip_both_variant_kinds() {
        for m in [Mode::Plain, Mode::Tuned { strength: 3 }] {
            let text = to_string(&m);
            assert_eq!(from_str::<Mode>(&text).unwrap(), m);
        }
        assert_eq!(to_string(&Mode::Plain), "\"Plain\"");
        assert_eq!(to_string(&Mode::Tuned { strength: 3 }), "{\"Tuned\":{\"strength\":3}}");
    }

    #[test]
    fn f32_roundtrip_is_bit_exact() {
        let values = [0.1f32, -1.0e-20, 3.4e38, f32::MIN_POSITIVE, 1.0 / 3.0];
        for &v in &values {
            let back: f32 = from_str(&to_string(&v)).unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "value {v}");
        }
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(to_string(&42usize), "42");
        assert_eq!(to_string(&-3i64), "-3");
        // JSON does not distinguish 2 from 2.0; integral floats render
        // as integers and parse back to the same value.
        assert_eq!(to_string(&2.0f64), "2");
        assert_eq!(from_str::<f64>("2").unwrap(), 2.0);
    }

    #[test]
    fn integer_parsing_rejects_fractions_and_overflow() {
        assert!(from_str::<usize>("1.5").is_err());
        assert!(from_str::<u8>("300").is_err());
        assert!(from_str::<usize>("-1").is_err());
        assert_eq!(from_str::<u8>("255").unwrap(), 255);
    }

    #[test]
    fn json_literal_macro() {
        let weights = vec![0.5f32, 0.5];
        let v = json!({"model": "GroupSA", "item": 3usize, "weights": weights, "flag": true});
        let text = v.to_compact_string();
        assert!(text.starts_with("{\"model\":\"GroupSA\""));
        assert_eq!(v.get("item").and_then(Json::as_f64), Some(3.0));
        assert_eq!(json!(null), Json::Null);
        assert_eq!(json!([1usize, 2usize]).as_array().unwrap().len(), 2);
    }

    #[test]
    fn option_roundtrip() {
        let d = Demo { note: Some("x".into()), ..demo() };
        assert_eq!(from_str::<Demo>(&to_string(&d)).unwrap(), d);
    }

    #[test]
    fn missing_field_names_the_field() {
        let err = from_str::<Demo>("{\"id\": 1}").unwrap_err();
        assert!(err.to_string().contains("label"), "{err}");
    }
}
