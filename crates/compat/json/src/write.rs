//! JSON rendering: compact and two-space-indent pretty.

use crate::Json;

pub(crate) fn write_compact(json: &Json, out: &mut String) {
    match json {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Number(n) => write_number(*n, out),
        Json::String(s) => write_string(s, out),
        Json::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Json::Object(members) => {
            out.push('{');
            for (i, (key, value)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_compact(value, out);
            }
            out.push('}');
        }
    }
}

pub(crate) fn write_pretty(json: &Json, indent: usize, out: &mut String) {
    match json {
        Json::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Json::Object(members) if !members.is_empty() => {
            out.push_str("{\n");
            for (i, (key, value)) in members.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_string(key, out);
                out.push_str(": ");
                write_pretty(value, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

fn push_indent(indent: usize, out: &mut String) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Writes a number. Integral values in the exactly-representable range
/// render without a fractional part; everything else uses Rust's
/// shortest round-trip formatting (decimal, never exponent — always
/// valid JSON). Non-finite values have no JSON form and render as
/// `null`, matching `serde_json`'s behaviour.
fn write_number(n: f64, out: &mut String) {
    use std::fmt::Write;
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= (1u64 << 53) as f64 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    use std::fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quote_characters() {
        let mut out = String::new();
        write_string("a\"b\\c\nd\u{01}", &mut out);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn numbers_render_plainly() {
        let mut out = String::new();
        write_number(0.25, &mut out);
        assert_eq!(out, "0.25");
        out.clear();
        write_number(-17.0, &mut out);
        assert_eq!(out, "-17");
        out.clear();
        write_number(f64::NAN, &mut out);
        assert_eq!(out, "null");
    }

    #[test]
    fn pretty_nests_with_two_spaces() {
        let doc = Json::Object(vec![(
            "xs".to_string(),
            Json::Array(vec![Json::Number(1.0), Json::Number(2.0)]),
        )]);
        assert_eq!(doc.to_pretty_string(), "{\n  \"xs\": [\n    1,\n    2\n  ]\n}");
        assert_eq!(doc.to_compact_string(), "{\"xs\":[1,2]}");
    }

    #[test]
    fn empty_containers_stay_compact_in_pretty_mode() {
        let doc = Json::Array(vec![Json::Object(vec![]), Json::Array(vec![])]);
        assert_eq!(doc.to_pretty_string(), "[\n  {},\n  []\n]");
    }
}
