//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngExt;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.random::<$t>()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Arbitrary for f32 {
    /// Finite values spanning a wide magnitude range (no NaN/inf — the
    /// suites assert on arithmetic identities).
    fn arbitrary(rng: &mut TestRng) -> Self {
        let magnitude = 10f32.powf(rng.random_range(-3.0f32..3.0));
        let sign = if rng.random::<bool>() { 1.0 } else { -1.0 };
        sign * magnitude * rng.random::<f32>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let magnitude = 10f64.powf(rng.random_range(-3.0f64..3.0));
        let sign = if rng.random::<bool>() { 1.0 } else { -1.0 };
        sign * magnitude * rng.random::<f64>()
    }
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the full domain of `T`: `any::<u64>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_from_seed;

    #[test]
    fn any_u64_spreads_over_the_domain() {
        let rng = &mut rng_from_seed(5);
        let xs: Vec<u64> = (0..64).map(|_| any::<u64>().generate(rng)).collect();
        assert!(xs.iter().any(|&x| x > u64::MAX / 2));
        assert!(xs.iter().any(|&x| x < u64::MAX / 2));
    }

    #[test]
    fn any_floats_are_finite() {
        let rng = &mut rng_from_seed(6);
        for _ in 0..1000 {
            assert!(any::<f32>().generate(rng).is_finite());
            assert!(any::<f64>().generate(rng).is_finite());
        }
    }
}
