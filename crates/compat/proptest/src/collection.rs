//! Collection strategies: `prop::collection::vec(element, size)`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngExt;
use std::ops::{Range, RangeInclusive};

/// Anything accepted as the size argument of [`vec`]: an exact length
/// or a (half-open / inclusive) length range.
pub trait IntoSizeRange {
    /// Converts into inclusive `(min, max)` bounds.
    fn into_bounds(self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn into_bounds(self) -> (usize, usize) {
        (self, self)
    }
}

impl IntoSizeRange for Range<usize> {
    fn into_bounds(self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range {self:?}");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn into_bounds(self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty size range {self:?}");
        (*self.start(), *self.end())
    }
}

/// The strategy returned by [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    min_len: usize,
    max_len: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.min_len == self.max_len {
            self.min_len
        } else {
            rng.random_range(self.min_len..=self.max_len)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for `Vec`s whose elements come from `element` and whose
/// length is `size` (an exact `usize` or a range).
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min_len, max_len) = size.into_bounds();
    VecStrategy { element, min_len, max_len }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_from_seed;

    #[test]
    fn exact_size_is_exact() {
        let rng = &mut rng_from_seed(7);
        let v = vec(0u64..10, 12usize).generate(rng);
        assert_eq!(v.len(), 12);
        assert!(v.iter().all(|&x| x < 10));
    }

    #[test]
    fn ranged_size_stays_in_range_and_varies() {
        let rng = &mut rng_from_seed(8);
        let strat = vec(-1.0f32..1.0, 0..10);
        let lens: Vec<usize> = (0..200).map(|_| strat.generate(rng).len()).collect();
        assert!(lens.iter().all(|&l| l < 10));
        assert!(lens.iter().collect::<std::collections::HashSet<_>>().len() > 3);
    }

    #[test]
    fn tuple_elements_work() {
        let rng = &mut rng_from_seed(9);
        let v = vec((0usize..5, 0usize..7), 1..20).generate(rng);
        assert!(!v.is_empty() && v.len() < 20);
        assert!(v.iter().all(|&(a, b)| a < 5 && b < 7));
    }
}
