//! Test execution: configuration, seeding, case errors and the
//! [`TestRunner`] handle that strategies draw values from.

use rand::SeedableRng;
use std::fmt;

/// The RNG all strategies sample from.
pub type TestRng = rand::StdRng;

/// Harness configuration. Named `ProptestConfig` in the prelude, like
/// upstream.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        // Upstream proptest's default.
        Self { cases: 256 }
    }
}

/// A failed test case (produced by `prop_assert!` and friends).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// FNV-1a over the test's fully qualified name: a stable, per-test base
/// seed, overridable with `PROPTEST_SEED`.
pub fn base_seed(test_name: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(seed) = s.trim().parse::<u64>() {
            return seed;
        }
        eprintln!("[proptest] ignoring unparsable PROPTEST_SEED={s:?}");
    }
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Derives the seed of case `index` from a base seed (SplitMix64-style
/// mixing, so consecutive cases get unrelated streams).
pub fn case_seed(base: u64, index: u32) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The RNG for one case.
pub fn rng_from_seed(seed: u64) -> TestRng {
    TestRng::seed_from_u64(seed)
}

/// A handle that strategies can draw values from via
/// [`Strategy::new_tree`](crate::strategy::Strategy::new_tree) —
/// the explicit-runner API used by tests that generate auxiliary values
/// inside a property body.
pub struct TestRunner {
    rng: TestRng,
}

impl TestRunner {
    /// A runner with the given base seed.
    pub fn from_seed(seed: u64) -> Self {
        Self { rng: rng_from_seed(seed) }
    }

    /// A runner whose stream is identical on every run and platform —
    /// mirrors `proptest::test_runner::TestRunner::deterministic()`.
    pub fn deterministic() -> Self {
        Self::from_seed(0x5EED_5EED_5EED_5EED)
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}

impl Default for TestRunner {
    fn default() -> Self {
        Self::deterministic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_seed_is_stable_per_name() {
        assert_eq!(base_seed("a::b"), base_seed("a::b"));
        assert_ne!(base_seed("a::b"), base_seed("a::c"));
    }

    #[test]
    fn case_seeds_differ() {
        let b = base_seed("x");
        assert_ne!(case_seed(b, 0), case_seed(b, 1));
        assert_ne!(case_seed(b, 1), case_seed(b, 2));
    }

    #[test]
    fn deterministic_runner_repeats() {
        use rand::Rng;
        let mut a = TestRunner::deterministic();
        let mut b = TestRunner::deterministic();
        assert_eq!(a.rng().next_u64(), b.rng().next_u64());
    }
}
