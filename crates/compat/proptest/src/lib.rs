//! In-tree, dependency-free property-testing harness.
//!
//! A drop-in replacement for the slice of the `proptest` crate this
//! workspace uses (hermetic-build policy, DESIGN.md §7):
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]` and
//!   multiple `fn name(pat in strategy, ..) { .. }` items per block);
//! * [`prop_assert!`] / [`prop_assert_eq!`];
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`,
//!   implemented for ranges, tuples and [`strategy::Just`];
//! * [`arbitrary::any`] for primitive types;
//! * [`collection::vec`] with exact or ranged lengths;
//! * [`test_runner::TestRunner`] (notably `deterministic()`) and
//!   [`strategy::ValueTree`].
//!
//! ## Seeding and reproduction
//!
//! Unlike upstream proptest, case generation is **deterministic by
//! default**: each test derives its base seed from its fully qualified
//! name, so CI failures always reproduce locally. Every failure message
//! prints the base seed and the failing case's derived seed; set
//! `PROPTEST_SEED=<n>` to re-run a suite under a different (or a
//! reported) base seed.
//!
//! Shrinking is intentionally not implemented — failures report the
//! reproducing seed instead of a minimised value, which is enough for
//! the small, structured inputs these suites generate.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Glob-import surface: `use proptest::prelude::*;`.

    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Runs one property over `config.cases` generated inputs, panicking
/// with the reproducing seeds on the first failure. This is the
/// engine behind the [`proptest!`] macro; it is public so the macro
/// expansion can call it.
pub fn run_property<F>(
    test_name: &str,
    config: &test_runner::Config,
    mut case: F,
) where
    F: FnMut(&mut test_runner::TestRng) -> Result<(), test_runner::TestCaseError>,
{
    let base_seed = test_runner::base_seed(test_name);
    for i in 0..config.cases {
        let case_seed = test_runner::case_seed(base_seed, i);
        let mut rng = test_runner::rng_from_seed(case_seed);
        if let Err(e) = case(&mut rng) {
            panic!(
                "[proptest] property '{test_name}' failed on case {}/{}: {e}\n\
                 [proptest] reproduce with PROPTEST_SEED={base_seed} (failing case seed: {case_seed})",
                i + 1,
                config.cases,
            );
        }
    }
}

/// The macro heart of the harness. Each `fn name(pat in strategy, ..)
/// { body }` item becomes a `#[test]` that draws its inputs from the
/// strategies and runs the body `cases` times; `prop_assert!` failures
/// abort the case with a reproducing-seed report.
#[macro_export]
macro_rules! proptest {
    // With a leading `#![proptest_config(..)]` inner attribute.
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@harness ($config) $($rest)*);
    };
    // Without one: default configuration.
    ($(#[$meta:meta])* fn $($rest:tt)*) => {
        $crate::proptest!(@harness ($crate::test_runner::Config::default()) $(#[$meta])* fn $($rest)*);
    };
    (@harness ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                $crate::run_property(
                    concat!(module_path!(), "::", stringify!($name)),
                    &config,
                    |__proptest_rng| {
                        $(let $pat = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)+
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the current
/// case (with its reproducing seed) instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&($left), &($right));
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&($left), &($right));
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&($left), &($right));
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}
