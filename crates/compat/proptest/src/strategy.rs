//! Strategies: composable recipes for generating test inputs.

use crate::test_runner::{TestRng, TestRunner};
use rand::RngExt;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no shrinking: a strategy is just a
/// deterministic function of the RNG stream, and failures are
/// reproduced by seed rather than by minimised value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Generates one value wrapped in a [`ValueTree`], drawing
    /// randomness from an explicit [`TestRunner`] — the API used to
    /// generate auxiliary values inside a property body.
    fn new_tree(&self, runner: &mut TestRunner) -> Result<SampledTree<Self::Value>, String>
    where
        Self: Sized,
        Self::Value: Clone,
    {
        Ok(SampledTree { value: self.generate(runner.rng()) })
    }

    /// A strategy that applies `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// A strategy that generates a value, builds a second strategy from
    /// it with `f`, and samples that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }
}

/// A generated value. Upstream uses value trees for shrinking; here the
/// tree is just the sampled value.
pub trait ValueTree {
    /// The type of the held value.
    type Value;

    /// The value this tree currently represents.
    fn current(&self) -> Self::Value;
}

/// The [`ValueTree`] produced by [`Strategy::new_tree`].
#[derive(Clone, Debug)]
pub struct SampledTree<T> {
    value: T,
}

impl<T: Clone> ValueTree for SampledTree<T> {
    type Value = T;

    fn current(&self) -> T {
        self.value.clone()
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

macro_rules! impl_strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
    (@inclusive $($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);
impl_strategy_for_ranges!(@inclusive u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_tuples {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuples! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_from_seed;

    #[test]
    fn ranges_sample_within_bounds() {
        let rng = &mut rng_from_seed(1);
        for _ in 0..500 {
            let v = (3usize..9).generate(rng);
            assert!((3..9).contains(&v));
            let f = (-2.0f32..2.0).generate(rng);
            assert!((-2.0..2.0).contains(&f));
            let i = (1usize..=6).generate(rng);
            assert!((1..=6).contains(&i));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let rng = &mut rng_from_seed(2);
        let doubled = (1usize..5).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = doubled.generate(rng);
            assert!(v % 2 == 0 && (2..10).contains(&v));
        }
        let dependent = (1usize..4).prop_flat_map(|n| (Just(n), 0usize..n));
        for _ in 0..100 {
            let (n, k) = dependent.generate(rng);
            assert!(k < n);
        }
    }

    #[test]
    fn tuples_generate_elementwise() {
        let rng = &mut rng_from_seed(3);
        let (a, b, c, d) = (0u64..10, 0usize..5, -1.0f32..1.0, Just(7i32)).generate(rng);
        assert!(a < 10 && b < 5 && (-1.0..1.0).contains(&c));
        assert_eq!(d, 7);
    }

    #[test]
    fn new_tree_uses_the_runner_stream() {
        let mut r1 = TestRunner::deterministic();
        let mut r2 = TestRunner::deterministic();
        let s = 0u64..u64::MAX;
        let a = s.new_tree(&mut r1).unwrap().current();
        let b = s.new_tree(&mut r2).unwrap().current();
        assert_eq!(a, b, "deterministic runners agree");
        let c = s.new_tree(&mut r1).unwrap().current();
        assert_ne!(a, c, "the stream advances");
    }
}
