//! Concrete generators.

use crate::{Rng, SeedableRng};

/// The workspace-standard deterministic generator: xoshiro256++
/// (Blackman & Vigna 2019) — 256-bit state, period 2²⁵⁶ − 1, excellent
/// statistical quality, and a few nanoseconds per draw.
///
/// The name mirrors `rand::rngs::StdRng` so consuming code is
/// unchanged, but unlike the registry crate the stream is **pinned
/// forever**: checkpoints, tables and tests depend on it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn step(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step()
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // xoshiro's state must not be all zero (the all-zero state is a
        // fixed point). SplitMix64 expansion never produces it from
        // `seed_from_u64`, but `from_seed([0; 32])` must still work.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        Self { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs of xoshiro256++ from the reference C code with
        // state {1, 2, 3, 4}.
        let mut s = [0u8; 32];
        s[0] = 1;
        s[8] = 2;
        s[16] = 3;
        s[24] = 4;
        let mut rng = StdRng::from_seed(s);
        assert_eq!(rng.next_u64(), 41943041);
        assert_eq!(rng.next_u64(), 58720359);
        assert_eq!(rng.next_u64(), 3588806011781223);
        assert_eq!(rng.next_u64(), 3591011842654386);
    }

    #[test]
    fn zero_seed_does_not_wedge() {
        let mut rng = StdRng::from_seed([0; 32]);
        let outputs: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(outputs.iter().any(|&x| x != 0));
        assert!(outputs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = StdRng::seed_from_u64(0);
        let mut b = StdRng::seed_from_u64(1);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
