//! In-tree, dependency-free replacement for the `rand` crate.
//!
//! The workspace builds with **zero registry dependencies** (hermetic-build
//! policy, DESIGN.md §7). This crate re-implements exactly the `rand 0.10`
//! API surface the workspace consumes:
//!
//! * [`Rng`] — the core source-of-randomness trait (`next_u32`/`next_u64`);
//! * [`RngExt`] — value sampling: `random::<T>()`, `random_range`,
//!   `random_bool`, `shuffle`, `choose` (blanket-implemented for every
//!   [`Rng`]);
//! * [`SeedableRng`] — construction from seeds, including the
//!   `seed_from_u64` entry point every experiment uses;
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator whose
//!   256-bit state is expanded from a `u64` seed with SplitMix64.
//!
//! Determinism is a hard guarantee: for a fixed seed, every sampling
//! method yields the same sequence on every platform and every run —
//! this is what makes the paper's tables reproducible from a single
//! `u64` (and it is the reason the workspace pins an in-tree generator
//! instead of a registry crate whose stream may change between minor
//! versions).

pub mod rngs;

pub use rngs::StdRng;

/// A source of uniformly distributed random bits.
///
/// Implementors only provide `next_u64`; everything else (including all
/// value-level sampling in [`RngExt`]) is derived from it.
pub trait Rng {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits (upper half of
    /// [`Rng::next_u64`], which are the strongest bits of xoshiro-family
    /// generators).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// A type that can be sampled uniformly from its "natural" domain by
/// [`RngExt::random`]: `[0, 1)` for floats, the full value range for
/// integers, a fair coin for `bool`.
pub trait StandardSample: Sized {
    /// Draws one sample from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision (all representable).
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (all representable).
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // The top bit of the strongest word.
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that [`RngExt::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one sample uniformly from the range.
    ///
    /// # Panics
    /// If the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, bound)` by rejection sampling — unbiased for
/// every bound (the naive modulo would skew small values).
fn u64_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Largest multiple of `bound` that fits in a u64; values at or above
    // it would be over-represented after the modulo and are rejected.
    let zone = u64::MAX - (u64::MAX % bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range {:?}", self);
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(u64_below(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range {lo}..={hi}");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(u64_below(rng, span) as $t)
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range {:?}", self);
                let unit = <$t as StandardSample>::sample(rng); // [0, 1)
                let v = self.start + (self.end - self.start) * unit;
                // `start + span * u` can round up to exactly `end`; remap
                // that boundary case to `start` to keep the half-open
                // contract (probability ≈ one ulp, bias negligible).
                if v < self.end { v } else { self.start }
            }
        }
    )*};
}

impl_range_float!(f32, f64);

/// Value-level sampling helpers, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// A sample from `T`'s natural domain: `[0, 1)` for `f32`/`f64`, the
    /// full range for integers, a fair coin for `bool`.
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// If the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }

    /// An unbiased Fisher–Yates shuffle of `slice`.
    fn shuffle<T>(&mut self, slice: &mut [T])
    where
        Self: Sized,
    {
        for i in (1..slice.len()).rev() {
            slice.swap(i, self.random_range(0..=i));
        }
    }

    /// A uniformly random element of `slice`, or `None` if it is empty.
    fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T>
    where
        Self: Sized,
    {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.random_range(0..slice.len())])
        }
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The full-entropy seed type (32 bytes for [`StdRng`]).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it to a full seed
    /// with SplitMix64 — the recommended constructor for reproducible
    /// experiments.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: the standard seed-expansion generator (Steele, Lea &
/// Flood 2014). Used only to turn a `u64` into full-entropy state for
/// [`StdRng`]; never exposed as a user-facing stream.
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(state: u64) -> Self {
        Self { state }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn splitmix_reference_vector() {
        // Reference sequence for seed 1234567 from the SplitMix64 paper's
        // public-domain implementation.
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f32 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn random_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let a = rng.random_range(3usize..17);
            assert!((3..17).contains(&a));
            let b = rng.random_range(0usize..=4);
            assert!(b <= 4);
            let c = rng.random_range(-2.5f32..2.5);
            assert!((-2.5..2.5).contains(&c));
            let d = rng.random_range(-7i64..-3);
            assert!((-7..-3).contains(&d));
        }
    }

    #[test]
    fn random_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.random_range(5usize..5);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_stays_in_slice() {
        let mut rng = StdRng::seed_from_u64(17);
        let xs = [10, 20, 30];
        for _ in 0..100 {
            assert!(xs.contains(rng.choose(&xs).unwrap()));
        }
        assert_eq!(rng.choose::<i32>(&[]), None);
    }

    #[test]
    fn fill_bytes_fills_every_length() {
        let mut rng = StdRng::seed_from_u64(19);
        for len in 0..20 {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0), "64 zero bits is a 2^-64 event");
            }
        }
    }

    #[test]
    fn works_through_mut_references() {
        fn takes_impl(rng: &mut impl Rng) -> f32 {
            rng.random::<f32>()
        }
        let mut rng = StdRng::seed_from_u64(23);
        let a = takes_impl(&mut rng);
        let b = takes_impl(&mut &mut rng);
        assert!(a.is_finite() && b.is_finite());
    }
}
