//! In-tree, dependency-free wall-clock benchmark harness.
//!
//! A drop-in replacement for the slice of the `criterion` crate the
//! workspace's benches use (hermetic-build policy, DESIGN.md §7):
//! [`Criterion`] with `sample_size` / `measurement_time`,
//! `bench_function`, `benchmark_group` + [`BenchmarkGroup`]'s
//! `bench_with_input` / `finish`, [`BenchmarkId`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Methodology (simpler than upstream, but honest): each benchmark is
//! warmed up, then run for `sample_size` samples, each sample timing a
//! batch of iterations sized so the whole measurement fits in
//! `measurement_time`. The report prints the min / median / mean
//! per-iteration time in adaptive units. There is no statistical
//! outlier analysis and no HTML report — numbers go to stdout, and
//! regression tracking is done by the experiment harness, not here.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`]: an identity function opaque
/// to the optimiser.
pub use std::hint::black_box;

/// How [`Bencher::iter_batched`] amortises setup cost. The in-tree
/// harness always times routine-only (setup excluded), so the variants
/// only document intent; all behave identically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state: upstream would batch many per sample.
    SmallInput,
    /// Large per-iteration state: upstream would batch few per sample.
    LargeInput,
    /// Fresh setup for every routine call.
    PerIteration,
}

/// Identifies one benchmark within a group: a function name, a
/// parameter, or both.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the sample's iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with a fresh `setup()` product per call; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Summary statistics of one benchmark's collected samples, in
/// nanoseconds per iteration. Returned by [`Criterion::bench_stats`]
/// for programmatic consumers (the workspace's perf-regression gate);
/// the printed report shows the same numbers.
#[derive(Clone, Copy, Debug)]
pub struct SampleStats {
    /// Fastest observed sample (ns/iteration) — the least-noisy
    /// estimate of the kernel's true cost, and what regression gating
    /// should compare.
    pub min_ns: f64,
    /// Median sample (ns/iteration).
    pub median_ns: f64,
    /// Mean over all samples (ns/iteration).
    pub mean_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
}

/// One benchmark's collected samples (per-iteration durations).
struct Samples {
    per_iter_ns: Vec<f64>,
}

impl Samples {
    fn stats(&mut self) -> SampleStats {
        self.per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let n = self.per_iter_ns.len();
        let min = self.per_iter_ns[0];
        let median = if n % 2 == 1 {
            self.per_iter_ns[n / 2]
        } else {
            (self.per_iter_ns[n / 2 - 1] + self.per_iter_ns[n / 2]) / 2.0
        };
        let mean = self.per_iter_ns.iter().sum::<f64>() / n as f64;
        SampleStats { min_ns: min, median_ns: median, mean_ns: mean, samples: n }
    }

    fn report(&mut self, label: &str) -> SampleStats {
        let stats = self.stats();
        println!(
            "{label:<48} min {:>10}  median {:>10}  mean {:>10}  ({} samples)",
            fmt_ns(stats.min_ns),
            fmt_ns(stats.median_ns),
            fmt_ns(stats.mean_ns),
            stats.samples
        );
        stats
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the target wall-clock budget of one benchmark's measurement.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget of one benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(self, name.to_string(), f);
        self
    }

    /// Runs a single benchmark and returns its summary statistics in
    /// addition to printing the usual report line. This is the entry
    /// point for programmatic consumers — upstream criterion exposes
    /// timings only through report files, but the workspace's
    /// perf-regression gate needs the numbers in-process.
    pub fn bench_stats<F>(&mut self, name: &str, f: F) -> SampleStats
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(self, name.to_string(), f)
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }
}

/// A named collection of related benchmarks (`group/benchmark-id`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark of the group with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(self.criterion, label, |b| f(b, input));
        self
    }

    /// Runs one benchmark of the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkIdOrName>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().0);
        run_benchmark(self.criterion, label, |b| f(b));
        self
    }

    /// Ends the group (upstream flushes reports here; accepted for
    /// source compatibility).
    pub fn finish(self) {}
}

/// Either a plain name or a [`BenchmarkId`], for
/// [`BenchmarkGroup::bench_function`].
pub struct BenchmarkIdOrName(String);

impl From<&str> for BenchmarkIdOrName {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkIdOrName {
    fn from(s: String) -> Self {
        Self(s)
    }
}

impl From<BenchmarkId> for BenchmarkIdOrName {
    fn from(id: BenchmarkId) -> Self {
        Self(id.to_string())
    }
}

fn run_benchmark<F>(criterion: &Criterion, label: String, mut f: F) -> SampleStats
where
    F: FnMut(&mut Bencher),
{
    // Warm-up: run single iterations until the budget is spent, and use
    // the observed cost to size the measurement batches.
    let warm_up_start = Instant::now();
    let mut warm_up_iters: u64 = 0;
    let mut warm_up_elapsed = Duration::ZERO;
    while warm_up_start.elapsed() < criterion.warm_up_time {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        warm_up_elapsed += b.elapsed;
        warm_up_iters += 1;
    }
    let per_iter = warm_up_elapsed.as_secs_f64() / warm_up_iters.max(1) as f64;

    // Size each sample so that `sample_size` samples fill the budget.
    let budget_per_sample =
        criterion.measurement_time.as_secs_f64() / criterion.sample_size as f64;
    let iters_per_sample = if per_iter > 0.0 {
        (budget_per_sample / per_iter).round().max(1.0) as u64
    } else {
        1
    };

    let mut samples = Samples { per_iter_ns: Vec::with_capacity(criterion.sample_size) };
    for _ in 0..criterion.sample_size {
        let mut b = Bencher { iters: iters_per_sample, elapsed: Duration::ZERO };
        f(&mut b);
        samples
            .per_iter_ns
            .push(b.elapsed.as_secs_f64() * 1e9 / iters_per_sample as f64);
    }
    samples.report(&label)
}

/// Declares a group of benchmark functions, either positionally
/// (`criterion_group!(benches, f, g)`) or with an explicit
/// configuration (`criterion_group! { name = ..; config = ..;
/// targets = .. }`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_criterion() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_runs_the_closure() {
        let mut calls = 0u64;
        fast_criterion().bench_function("unit", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn groups_and_inputs_work() {
        let mut c = fast_criterion();
        let mut group = c.benchmark_group("g");
        let input = vec![1u64, 2, 3];
        group.bench_with_input(BenchmarkId::new("sum", input.len()), &input, |b, xs| {
            b.iter(|| xs.iter().sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn iter_batched_gets_fresh_inputs() {
        let mut seen = Vec::new();
        let mut counter = 0u64;
        fast_criterion().bench_function("batched", |b| {
            b.iter_batched(
                || {
                    counter += 1;
                    counter
                },
                |input| seen.push(input),
                BatchSize::LargeInput,
            )
        });
        assert!(!seen.is_empty());
        assert!(seen.windows(2).all(|w| w[1] > w[0]), "inputs are fresh each call");
    }

    #[test]
    fn bench_stats_returns_ordered_summaries() {
        let stats = fast_criterion().bench_stats("stats", |b| {
            b.iter(|| black_box(1u64.wrapping_mul(3)))
        });
        assert_eq!(stats.samples, 3);
        assert!(stats.min_ns > 0.0);
        assert!(stats.min_ns <= stats.median_ns, "min ≤ median");
        assert!(stats.median_ns <= stats.mean_ns || stats.mean_ns >= stats.min_ns);
        assert!(stats.mean_ns.is_finite());
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(2_000_000_000.0).ends_with('s'));
    }
}
