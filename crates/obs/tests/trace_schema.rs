//! End-to-end trace test: enable tracing via `GROUPSA_TRACE`, emit
//! spans and events through the public API, then parse the resulting
//! JSONL file with `groupsa-json` and validate it against the schema.
//!
//! This lives in its own integration-test binary (own process) because
//! the trace sink is process-global and latches its configuration on
//! first use: the environment variable must be set before any
//! instrumentation point runs, and sibling test binaries must not see
//! it. Everything therefore happens inside ONE `#[test]`.

use groupsa_json::Json;
use groupsa_obs::schema::validate_trace;
use groupsa_obs::{emit, enabled, global, maybe_timer, span, to_json};

#[test]
fn emitted_trace_validates_against_schema() {
    let path = std::env::temp_dir().join(format!("groupsa-obs-schema-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    // Must precede every obs call in this process: the sink latches on
    // first use.
    std::env::set_var(groupsa_obs::TRACE_ENV, &path);
    assert!(enabled(), "tracing must be on once GROUPSA_TRACE points at a writable path");

    // Nested spans with payload fields.
    {
        let outer = span!("fit", "threads" => 2usize);
        assert!(!outer.is_noop());
        for round in 0..2u64 {
            let _inner = span!("group_epoch", "round" => round);
        }
    }

    // A histogram-backed timer (records into the global registry).
    {
        let hist = global().histogram("test.timer_us");
        let _t = maybe_timer(&hist);
        assert!(maybe_timer(&hist).is_some());
    }

    // One event of every remaining kind, through the public emitter.
    emit(
        "epoch",
        &[
            ("stage", to_json(&"user")),
            ("epoch", to_json(&0usize)),
            ("loss", to_json(&0.69f64)),
            ("lr", to_json(&0.01f64)),
            ("seconds", to_json(&0.25f64)),
            ("examples", to_json(&128usize)),
            ("examples_per_sec", to_json(&512.0f64)),
            ("forward_us", to_json(&100u64)),
            ("backward_us", to_json(&200u64)),
            ("merge_us", to_json(&30u64)),
            ("step_us", to_json(&40u64)),
        ],
    );
    emit(
        "window",
        &[
            ("stage", to_json(&"group")),
            ("round", to_json(&3u64)),
            ("start", to_json(&0usize)),
            ("len", to_json(&32usize)),
            ("forward_us", to_json(&10u64)),
            ("backward_us", to_json(&20u64)),
            ("merge_us", to_json(&3u64)),
            ("step_us", to_json(&4u64)),
        ],
    );
    emit(
        "request",
        &[
            ("id", to_json(&7u64)),
            ("outcome", to_json(&"ok")),
            ("queue_us", to_json(&15u64)),
            ("score_us", to_json(&120u64)),
        ],
    );
    emit("batch", &[("n", to_json(&4usize)), ("form_us", to_json(&2u64))]);
    emit("metrics", &[("registry", to_json(&global().snapshot()))]);
    emit("run", &[("label", to_json(&"trace-schema-test"))]);

    // Spans from another thread must interleave safely and restart
    // their own nesting depth.
    std::thread::Builder::new()
        .name("obs-test-worker".into())
        .spawn(|| {
            let _s = span!("worker_span");
        })
        .unwrap()
        .join()
        .unwrap();

    // Parse + schema-validate the file we just wrote.
    let text = std::fs::read_to_string(&path).expect("trace file must exist");
    let summary = validate_trace(&text).expect("every emitted line must satisfy the schema");
    assert_eq!(summary.count("span"), 4, "fit + 2 epochs + worker span");
    assert_eq!(summary.count("epoch"), 1);
    assert_eq!(summary.count("window"), 1);
    assert_eq!(summary.count("request"), 1);
    assert_eq!(summary.count("batch"), 1);
    assert_eq!(summary.count("metrics"), 1);
    assert_eq!(summary.count("run"), 1);

    // Structural details beyond the generic schema: seq is strictly
    // increasing, inner spans precede their parent (emitted on drop)
    // with depth 1, and the timed histogram made it into the metrics
    // dump.
    let events: Vec<Json> = text.lines().map(|l| Json::parse(l).unwrap()).collect();
    let seqs: Vec<f64> = events.iter().map(|e| e.get("seq").unwrap().as_f64().unwrap()).collect();
    assert!(seqs.windows(2).all(|w| w[1] > w[0]), "seq must be monotone: {seqs:?}");

    let spans: Vec<&Json> =
        events.iter().filter(|e| e.get("kind").unwrap().as_str() == Some("span")).collect();
    assert_eq!(spans[0].get("name").unwrap().as_str(), Some("group_epoch"));
    assert_eq!(spans[0].get("depth").unwrap().as_f64(), Some(1.0));
    assert_eq!(spans[0].get("round").unwrap().as_f64(), Some(0.0));
    let fit = spans.iter().find(|s| s.get("name").unwrap().as_str() == Some("fit")).unwrap();
    assert_eq!(fit.get("depth").unwrap().as_f64(), Some(0.0));
    assert_eq!(fit.get("threads").unwrap().as_f64(), Some(2.0));
    let worker = spans.iter().find(|s| s.get("name").unwrap().as_str() == Some("worker_span")).unwrap();
    assert_eq!(worker.get("depth").unwrap().as_f64(), Some(0.0), "fresh thread starts at depth 0");
    assert_eq!(worker.get("thread").unwrap().as_str(), Some("obs-test-worker"));

    let metrics = events.iter().find(|e| e.get("kind").unwrap().as_str() == Some("metrics")).unwrap();
    let hists = metrics.get("registry").unwrap().get("histograms").unwrap().as_array().unwrap();
    let timer = hists
        .iter()
        .find(|h| h.get("name").unwrap().as_str() == Some("test.timer_us"))
        .expect("timed histogram must appear in the registry dump");
    assert!(timer.get("histogram").unwrap().get("count").unwrap().as_f64().unwrap() >= 1.0);

    let _ = std::fs::remove_file(&path);
}
