//! The record ring under contention: pushes from many threads must
//! never block, never deadlock, and never let a reader observe a torn
//! record — the properties that make it safe on the serve hot path.

use groupsa_obs::record::{RecordOutcome, RecordRing, RequestRecord};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A record whose fields are all derived from its id, so a reader can
/// prove a snapshot entry was stored atomically: any mix of two
/// writers' fields breaks the relations.
fn derived(id: u64) -> RequestRecord {
    RequestRecord {
        id,
        arrival_us: id.wrapping_mul(3),
        outcome: RecordOutcome::Completed,
        queue_us: id.wrapping_mul(5),
        batch: id.wrapping_mul(7),
        score_us: id.wrapping_mul(11),
        write_us: id.wrapping_mul(13),
        total_us: id.wrapping_mul(17),
        slow: false,
    }
}

fn is_derived(r: &RequestRecord) -> bool {
    r.arrival_us == r.id.wrapping_mul(3)
        && r.queue_us == r.id.wrapping_mul(5)
        && r.batch == r.id.wrapping_mul(7)
        && r.score_us == r.id.wrapping_mul(11)
        && r.write_us == r.id.wrapping_mul(13)
        && r.total_us == r.id.wrapping_mul(17)
}

/// 8 writers hammer a deliberately tiny ring (every push contends for
/// the same few slots) while a reader snapshots continuously. The test
/// *completing* proves pushes never block behind each other or the
/// reader; the field relations prove no snapshot ever contains a torn
/// record; the push accounting proves nothing waited — every attempt
/// either stored or dropped.
#[test]
fn contended_writers_never_block_and_readers_never_see_torn_records() {
    const WRITERS: u64 = 8;
    const PER_WRITER: u64 = 20_000;
    let ring = Arc::new(RecordRing::new(4));
    let stop = Arc::new(AtomicBool::new(false));

    let reader = {
        let ring = Arc::clone(&ring);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut snapshots = 0u64;
            while !stop.load(Ordering::Relaxed) {
                for record in ring.snapshot() {
                    assert!(is_derived(&record), "torn record surfaced: {record:?}");
                }
                snapshots += 1;
            }
            snapshots
        })
    };

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..PER_WRITER {
                    ring.push(&derived(w * PER_WRITER + i + 1));
                }
            })
        })
        .collect();
    for writer in writers {
        writer.join().expect("a blocked or panicked writer would hang the join");
    }
    stop.store(true, Ordering::Relaxed);
    let snapshots = reader.join().expect("reader panicked");

    assert!(snapshots > 0, "the reader ran concurrently with the writers");
    assert_eq!(
        ring.pushed(),
        WRITERS * PER_WRITER,
        "every push attempt was claimed (none waited, none was lost silently)"
    );
    // Drops are the designed overwrite-oldest contention outcome and
    // only make sense bounded by the attempts (a 4-slot ring under 8
    // writers is deliberately pathological, so no fraction is pinned
    // here — see the realistic-capacity test below).
    assert!(ring.dropped() <= ring.pushed());
    // Quiescent now: a final snapshot is full and fully consistent.
    let settled = ring.snapshot();
    assert_eq!(settled.len(), ring.capacity());
    assert!(settled.iter().all(is_derived));
}

/// At a realistic capacity the same contention pattern drops almost
/// nothing: same-slot collisions need two writers exactly `capacity`
/// claims apart inside one store window.
#[test]
fn realistic_capacity_rarely_drops_under_contention() {
    let ring = Arc::new(RecordRing::new(1024));
    let writers: Vec<_> = (0..8u64)
        .map(|w| {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..20_000u64 {
                    ring.push(&derived(w * 20_000 + i + 1));
                }
            })
        })
        .collect();
    for writer in writers {
        writer.join().unwrap();
    }
    assert_eq!(ring.pushed(), 160_000);
    assert!(
        ring.dropped() < ring.pushed() / 100,
        "dropped {} of {} pushes at capacity 1024",
        ring.dropped(),
        ring.pushed()
    );
}

/// Sampling decisions and slow capture compose with the ring across
/// threads: with `1/N` sampling, concurrent observers file exactly the
/// id-hash-selected subset, independent of interleaving.
#[test]
fn concurrent_observers_file_exactly_the_deterministic_sample() {
    use groupsa_obs::{Telemetry, TelemetryConfig};
    const IDS: u64 = 4000;
    let telemetry = Arc::new(Telemetry::new(TelemetryConfig {
        sample_every: 8,
        slow_us: u64::MAX,
        ring_capacity: IDS as usize,
    }));
    let threads: Vec<_> = (0..4u64)
        .map(|t| {
            let telemetry = Arc::clone(&telemetry);
            std::thread::spawn(move || {
                for id in (t * IDS / 4)..((t + 1) * IDS / 4) {
                    let sampled = telemetry.sampled(id);
                    telemetry.observe(
                        RequestRecord { id, total_us: 10, ..Default::default() },
                        sampled,
                    );
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let mut got: Vec<u64> = telemetry.records().iter().map(|r| r.id).collect();
    got.sort_unstable();
    let want: Vec<u64> = (0..IDS).filter(|&id| groupsa_obs::hash_id(id) % 8 == 0).collect();
    assert_eq!(got, want, "the filed set is exactly the id-hash sample");
}
