//! The overhead-when-disabled contract: with `GROUPSA_TRACE` unset,
//! every instrumentation point must be an inert near-no-op (one atomic
//! load on the fast path — no I/O, no clock reads for spans, no
//! allocation). Own test binary so the process-global sink latches the
//! *disabled* state without interference from the traced schema test.

use groupsa_obs::{emit, enabled, global, maybe_timer, span, to_json};
use std::time::Instant;

#[test]
fn disabled_instrumentation_is_inert_and_cheap() {
    // Must precede the first obs call: the sink latches on first use.
    std::env::remove_var(groupsa_obs::TRACE_ENV);
    assert!(!enabled(), "tracing must be off without GROUPSA_TRACE");

    // Functionally inert: spans are no-ops, timers are absent, nothing
    // is recorded and nothing is written.
    let s = span!("anything", "x" => 1usize);
    assert!(s.is_noop());
    drop(s);
    let hist = global().histogram("disabled.timer_us");
    assert!(maybe_timer(&hist).is_none());
    emit("run", &[("label", to_json(&"never written"))]);
    assert_eq!(hist.count(), 0, "disabled timers must not record");

    // Cheap: a million disabled span + gate checks in well under a
    // second of budget (the real cost is a few ns each; the bound is
    // deliberately loose so slow CI machines never flake).
    let start = Instant::now();
    for i in 0..1_000_000u64 {
        let _s = span!("hot", "i" => i);
        let _ = enabled();
    }
    let elapsed = start.elapsed();
    assert!(
        elapsed.as_secs_f64() < 2.0,
        "1M disabled spans took {elapsed:?} — the disabled path must be near-zero cost"
    );
}
