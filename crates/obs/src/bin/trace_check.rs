//! CI validator for `GROUPSA_TRACE` JSONL files.
//!
//! ```text
//! trace_check FILE [required_kind...]
//! ```
//!
//! Validates every line against the schema in `groupsa_obs::schema`,
//! prints the per-kind event counts, and exits nonzero if any line is
//! malformed, the file is empty, or any of the listed `required_kind`s
//! has no events.

use std::process::ExitCode;

fn run() -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    let path = args.next().ok_or("usage: trace_check FILE [required_kind...]")?;
    let required: Vec<String> = args.collect();

    let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
    let summary = groupsa_obs::schema::validate_trace(&text).map_err(|e| format!("{path}: {e}"))?;
    if summary.events == 0 {
        return Err(format!("{path}: trace contains no events"));
    }
    let counts: Vec<String> =
        summary.kinds.iter().map(|(k, n)| format!("{k}={n}")).collect();
    println!("trace_check: {path}: {} events ({})", summary.events, counts.join(" "));
    for kind in &required {
        if summary.count(kind) == 0 {
            return Err(format!("{path}: no '{kind}' events (required)"));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("trace_check: {e}");
            ExitCode::FAILURE
        }
    }
}
