//! `obs_top` — a refreshing terminal dashboard over a live
//! `groupsa-serve` instance.
//!
//! ```text
//! obs_top --addr HOST:PORT [--interval-ms N] [--iterations N] [--plain true]
//! ```
//!
//! Each tick sends one `MetricsDump` request over the NDJSON/TCP
//! protocol, parses the Prometheus-style page through
//! [`groupsa_obs::expo::parse`], and renders windowed rates, lifetime
//! totals, stage latencies, and the most recent slow requests. With
//! `--iterations 0` (the default) it refreshes forever at
//! `--interval-ms` (default 1000); `--iterations 1` is the one-shot
//! mode tier-1 uses to prove the page renders end-to-end. `--plain
//! true` suppresses the ANSI clear-screen between frames (for logs and
//! transcripts).
//!
//! The protocol frames are built and parsed through `groupsa-json`
//! directly (`{"MetricsDump":{"id":N}}` out, `{"Metrics":{...}}`
//! back), so the dashboard needs no dependency on the serve crate.

use groupsa_obs::expo::{self, ParsedPage};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;

fn parse_flags() -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut args = std::env::args().skip(1);
    while let Some(key) = args.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("unexpected argument `{key}` (flags are --key value)"));
        };
        let value = args.next().ok_or_else(|| format!("--{name} needs a value"))?;
        flags.insert(name.to_string(), value);
    }
    Ok(flags)
}

/// One `MetricsDump` round trip: send the request line, read the
/// response line, unwrap the page text.
fn fetch_page(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, id: u64) -> Result<String, String> {
    let request = format!("{{\"MetricsDump\":{{\"id\":{id}}}}}\n");
    stream.write_all(request.as_bytes()).map_err(|e| format!("send: {e}"))?;
    stream.flush().map_err(|e| format!("send: {e}"))?;
    let mut line = String::new();
    let n = reader.read_line(&mut line).map_err(|e| format!("recv: {e}"))?;
    if n == 0 {
        return Err("server closed the connection".into());
    }
    let json = groupsa_json::Json::parse(&line).map_err(|e| format!("bad response: {e}"))?;
    let metrics = json
        .get("Metrics")
        .ok_or_else(|| format!("expected a Metrics response, got: {}", line.trim()))?;
    metrics
        .get("page")
        .and_then(|p| p.as_str())
        .map(str::to_string)
        .ok_or_else(|| "Metrics response without a page".into())
}

fn value(page: &ParsedPage, name: &str) -> f64 {
    page.value(name).unwrap_or(0.0)
}

fn windowed(page: &ParsedPage, name: &str, window: &str) -> f64 {
    page.value_with(name, ("window", window)).unwrap_or(0.0)
}

fn render(page: &ParsedPage, addr: &str, tick: u64) -> String {
    let mut out = String::new();
    let line = |out: &mut String, text: String| {
        out.push_str(&text);
        out.push('\n');
    };
    line(&mut out, format!("obs_top — {addr} (tick {tick})"));
    for window in ["10s", "60s"] {
        line(
            &mut out,
            format!(
                "  window {window:>3}: {:8.1} req/s  {:7.1} ok/s  {:5.1} shed/s  {:5.1} limited/s  p50 {:>6}µs  p95 {:>6}µs",
                windowed(page, "groupsa_serve_window_submitted_per_s", window),
                windowed(page, "groupsa_serve_window_completed_per_s", window),
                windowed(page, "groupsa_serve_window_shed_per_s", window),
                windowed(page, "groupsa_serve_window_limited_per_s", window),
                windowed(page, "groupsa_serve_window_p50_latency_us", window),
                windowed(page, "groupsa_serve_window_p95_latency_us", window),
            ),
        );
    }
    line(
        &mut out,
        format!(
            "  totals: submitted {}  completed {}  errors {}  expired {}  shed {}  rejected {}  limited {}",
            value(page, "groupsa_serve_submitted_total"),
            value(page, "groupsa_serve_completed_total"),
            value(page, "groupsa_serve_errors_total"),
            value(page, "groupsa_serve_expired_total"),
            value(page, "groupsa_serve_shed_total"),
            value(page, "groupsa_serve_rejected_total"),
            value(page, "groupsa_serve_limited_total"),
        ),
    );
    line(
        &mut out,
        format!(
            "  queue: depth {} (max {})  batches {} (max {})  connections {} (max {})  reloads {}",
            page.value_with("groupsa_serve_queue_depth", ("stat", "last")).unwrap_or(0.0),
            page.value_with("groupsa_serve_queue_depth", ("stat", "max")).unwrap_or(0.0),
            value(page, "groupsa_serve_batches_total"),
            page.value_with("groupsa_serve_batch_size", ("stat", "max")).unwrap_or(0.0),
            page.value_with("groupsa_serve_open_connections", ("stat", "last")).unwrap_or(0.0),
            page.value_with("groupsa_serve_open_connections", ("stat", "max")).unwrap_or(0.0),
            value(page, "groupsa_serve_reloads_total"),
        ),
    );
    let stage = |name: &str| {
        let count = value(page, &format!("{name}_count"));
        let mean = if count == 0.0 { 0.0 } else { value(page, &format!("{name}_sum")) / count };
        format!("mean {mean:.0}µs/{count:.0}")
    };
    line(
        &mut out,
        format!(
            "  stages: queue {}  score {}  write {}  total {}",
            stage("groupsa_serve_queue_wait_us"),
            stage("groupsa_serve_score_us"),
            stage("groupsa_serve_write_us"),
            stage("groupsa_serve_latency_us"),
        ),
    );
    line(
        &mut out,
        format!(
            "  telemetry: sample 1/{}  ring pushed {}  dropped {}",
            value(page, "groupsa_obs_sample_every"),
            value(page, "groupsa_obs_ring_pushed_total"),
            value(page, "groupsa_obs_ring_dropped_total"),
        ),
    );
    let slow = page.all("groupsa_serve_slow_request_us");
    line(&mut out, format!("  slow requests ({}):", slow.len()));
    for sample in slow.iter().rev().take(8) {
        let label = |key: &str| {
            sample
                .labels
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.as_str())
                .unwrap_or("?")
        };
        line(
            &mut out,
            format!(
                "    id={:<8} outcome={:<8} total={}µs (queue {}µs, score {}µs, write {}µs)",
                label("id"),
                label("outcome"),
                sample.value,
                label("queue_us"),
                label("score_us"),
                label("write_us"),
            ),
        );
    }
    out
}

fn run() -> Result<(), String> {
    let flags = parse_flags()?;
    let addr = flags.get("addr").ok_or("--addr HOST:PORT is required")?.clone();
    let interval_ms: u64 =
        flags.get("interval-ms").map_or(Ok(1000), |v| v.parse().map_err(|_| "--interval-ms"))?;
    let iterations: u64 =
        flags.get("iterations").map_or(Ok(0), |v| v.parse().map_err(|_| "--iterations"))?;
    let plain: bool =
        flags.get("plain").map_or(Ok(false), |v| v.parse().map_err(|_| "--plain"))?;

    let mut stream = TcpStream::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut reader =
        BufReader::new(stream.try_clone().map_err(|e| format!("clone stream: {e}"))?);
    let mut tick = 0u64;
    loop {
        tick += 1;
        let text = fetch_page(&mut stream, &mut reader, tick)?;
        let page = expo::parse(&text).map_err(|e| format!("exposition did not parse: {e}"))?;
        let frame = render(&page, &addr, tick);
        let mut stdout = std::io::stdout().lock();
        if !plain {
            // Clear and home between frames, like top(1).
            let _ = stdout.write_all(b"\x1b[2J\x1b[H");
        }
        stdout.write_all(frame.as_bytes()).map_err(|e| format!("stdout: {e}"))?;
        stdout.flush().map_err(|e| format!("stdout: {e}"))?;
        if iterations != 0 && tick >= iterations {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("obs_top: {e}");
            ExitCode::FAILURE
        }
    }
}
