//! Lock-cheap metric primitives and the named registry.
//!
//! Counters, gauges, and log₂ histograms are plain structs over
//! relaxed atomics — they can be embedded directly in a subsystem's
//! own metrics struct (the serve engine does this, so two engines in
//! one process never share counters) or handed out as `Arc`s by a
//! [`Registry`] keyed by name (the process-wide [`global`] registry
//! collects the cross-cutting `nn.*` timers). Updates never take a
//! lock; the registry's name table is locked only when a handle is
//! created or a snapshot is taken.

use groupsa_json::impl_json_struct;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Duration;

/// Number of log₂ histogram buckets; bucket `i > 0` covers
/// `[2^(i−1), 2^i)`, bucket 0 covers the value `0`. With microsecond
/// samples the top bucket starts at 2³⁸ µs ≈ 76 h, so it never
/// saturates in practice.
pub const NUM_BUCKETS: usize = 40;

/// The bucket a value falls into: 0 for 0, otherwise
/// `⌈log₂(v+1)⌉` clamped to the top bucket.
pub fn bucket_of(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(NUM_BUCKETS - 1)
}

/// Upper bound of a bucket — the value percentile queries report.
pub fn bucket_upper(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else {
        1u64 << bucket
    }
}

/// Histogram percentile: the upper bound of the first bucket whose
/// cumulative count reaches `q·total` — exact to within the bucket's
/// power-of-two resolution. `total` must be the sum of `counts`.
pub fn percentile(counts: &[u64], total: u64, q: f64) -> u64 {
    if total == 0 {
        return 0;
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut cum = 0;
    for (i, &c) in counts.iter().enumerate() {
        cum += c;
        if cum >= rank {
            return bucket_upper(i);
        }
    }
    bucket_upper(counts.len() - 1)
}

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A sampled value that remembers both the most recent sample and the
/// high-watermark. The pair is what makes saturation visible: a queue
/// that drained just before the snapshot still shows its peak depth.
#[derive(Debug, Default)]
pub struct Gauge {
    last: AtomicU64,
    max: AtomicU64,
}

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample: overwrites the last value, raises the
    /// high-watermark if exceeded.
    pub fn set(&self, value: u64) {
        self.last.store(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// The most recent sample.
    pub fn last(&self) -> u64 {
        self.last.load(Ordering::Relaxed)
    }

    /// The largest sample ever recorded.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }
}

/// A log₂-bucketed histogram with exact count and sum (so the mean is
/// exact while percentiles have power-of-two resolution).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a duration in microseconds (saturating on overflow).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The raw bucket counts (relaxed reads).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    /// A point-in-time copy with derived mean and percentiles
    /// (consistent-enough: relaxed reads, exact once writers are
    /// quiescent).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self.bucket_counts();
        // Derive the total from the buckets themselves so count,
        // percentiles, and buckets are mutually consistent even if a
        // concurrent `record` lands between the loads.
        let count: u64 = buckets.iter().sum();
        let sum = self.sum();
        HistogramSnapshot {
            count,
            sum,
            mean: if count == 0 { 0.0 } else { sum as f64 / count as f64 },
            p50: percentile(&buckets, count, 0.50),
            p95: percentile(&buckets, count, 0.95),
            p99: percentile(&buckets, count, 0.99),
            buckets,
        }
    }
}

/// Serialisable histogram state: exact count/sum/mean, histogram-derived
/// percentiles (bucket upper bounds), and the raw bucket array.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Recorded samples.
    pub count: u64,
    /// Sum of samples (exact).
    pub sum: u64,
    /// Mean sample (exact).
    pub mean: f64,
    /// Median (bucket upper bound).
    pub p50: u64,
    /// 95th percentile (bucket upper bound).
    pub p95: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
    /// Raw log₂ bucket counts.
    pub buckets: Vec<u64>,
}

impl_json_struct!(HistogramSnapshot { count, sum, mean, p50, p95, p99, buckets });

/// One named counter in a [`RegistrySnapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct CounterEntry {
    /// Metric name.
    pub name: String,
    /// Counter value.
    pub value: u64,
}

impl_json_struct!(CounterEntry { name, value });

/// One named gauge in a [`RegistrySnapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct GaugeEntry {
    /// Metric name.
    pub name: String,
    /// Most recent sample.
    pub last: u64,
    /// High-watermark.
    pub max: u64,
}

impl_json_struct!(GaugeEntry { name, last, max });

/// One named histogram in a [`RegistrySnapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramEntry {
    /// Metric name.
    pub name: String,
    /// The histogram's derived snapshot.
    pub histogram: HistogramSnapshot,
}

impl_json_struct!(HistogramEntry { name, histogram });

/// A point-in-time copy of a whole [`Registry`], sorted by name so the
/// serialised form is deterministic.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// All counters.
    pub counters: Vec<CounterEntry>,
    /// All gauges.
    pub gauges: Vec<GaugeEntry>,
    /// All histograms.
    pub histograms: Vec<HistogramEntry>,
}

impl_json_struct!(RegistrySnapshot { counters, gauges, histograms });

/// A named collection of metrics. Handles are `Arc`s: look one up once
/// (get-or-create by name), cache it, update it lock-free forever
/// after.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<Vec<(String, Arc<Counter>)>>,
    gauges: Mutex<Vec<(String, Arc<Gauge>)>>,
    histograms: Mutex<Vec<(String, Arc<Histogram>)>>,
}

fn get_or_create<T: Default>(table: &Mutex<Vec<(String, Arc<T>)>>, name: &str) -> Arc<T> {
    // A panic elsewhere must not take metrics down with it: the table
    // is a grow-only Vec, structurally valid even if a holder panicked,
    // so recover the guard instead of propagating the poison.
    let mut table = table.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some((_, v)) = table.iter().find(|(n, _)| n == name) {
        return Arc::clone(v);
    }
    let v = Arc::new(T::default());
    table.push((name.to_string(), Arc::clone(&v)));
    v
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_create(&self.counters, name)
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_create(&self.gauges, name)
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_create(&self.histograms, name)
    }

    /// A name-sorted snapshot of every registered metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let mut counters: Vec<CounterEntry> = self
            .counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(n, c)| CounterEntry { name: n.clone(), value: c.get() })
            .collect();
        let mut gauges: Vec<GaugeEntry> = self
            .gauges
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(n, g)| GaugeEntry { name: n.clone(), last: g.last(), max: g.max() })
            .collect();
        let mut histograms: Vec<HistogramEntry> = self
            .histograms
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(n, h)| HistogramEntry { name: n.clone(), histogram: h.snapshot() })
            .collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        gauges.sort_by(|a, b| a.name.cmp(&b.name));
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        RegistrySnapshot { counters, gauges, histograms }
    }
}

/// The process-wide registry: cross-cutting instrumentation (the
/// `nn.*` per-call timers, bench markers) records here, and trace
/// `metrics` events dump it.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // Bucket 0 holds only the value 0.
        assert_eq!(bucket_of(0), 0);
        // Bucket i > 0 covers [2^(i-1), 2^i): check both edges around
        // every boundary up to the top bucket.
        for i in 1..NUM_BUCKETS - 1 {
            let lower = 1u64 << (i - 1);
            assert_eq!(bucket_of(lower), i, "lower edge of bucket {i}");
            assert_eq!(bucket_of(2 * lower - 1), i, "upper edge of bucket {i}");
            assert_eq!(bucket_of(2 * lower), i + 1, "first value past bucket {i}");
        }
        // Everything at or beyond 2^38 lands in the top bucket.
        assert_eq!(bucket_of(1 << (NUM_BUCKETS - 1)), NUM_BUCKETS - 1);
        assert_eq!(bucket_of(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 2);
        assert_eq!(bucket_upper(11), 2048);
    }

    #[test]
    fn percentiles_on_empty_histogram_are_zero() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!((s.count, s.sum, s.p50, s.p95, s.p99), (0, 0, 0, 0, 0));
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.buckets.len(), NUM_BUCKETS);
        assert!(s.buckets.iter().all(|&c| c == 0));
    }

    #[test]
    fn percentiles_on_single_bucket_fill_report_that_bucket() {
        let h = Histogram::new();
        // 1000 samples of value 5 → bucket 3 ([4, 8)), upper bound 8.
        for _ in 0..1000 {
            h.record(5);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 5000);
        assert_eq!((s.p50, s.p95, s.p99), (8, 8, 8));
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.buckets[3], 1000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 1000);
    }

    #[test]
    fn percentiles_on_synthetic_two_mode_fill_are_exact() {
        let h = Histogram::new();
        // 90 samples at 8 µs (bucket (4,8] → upper 16 since 8 is the
        // lower edge of bucket 4) and 10 at 1000 µs (bucket upper 1024).
        for _ in 0..90 {
            h.record(8);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        let s = h.snapshot();
        assert_eq!(s.p50, 16);
        assert_eq!(s.p95, 1024);
        assert_eq!(s.p99, 1024);
        // Rank arithmetic at the boundary: p90 is the last fast sample,
        // p91 the first slow one.
        assert_eq!(percentile(&s.buckets, s.count, 0.90), 16);
        assert_eq!(percentile(&s.buckets, s.count, 0.91), 1024);
    }

    #[test]
    fn percentile_rank_clamps_at_both_ends() {
        let counts = {
            let h = Histogram::new();
            h.record(1);
            h.bucket_counts()
        };
        assert_eq!(percentile(&counts, 1, 0.0), 2, "q=0 still reports the first sample");
        assert_eq!(percentile(&counts, 1, 1.0), 2);
    }

    /// The boundary-convention audit, pinned sample by sample:
    ///
    /// * value `0` is its own bucket (upper bound 0) — a histogram of
    ///   zeros reports every percentile as exactly 0;
    /// * value `1` lands in bucket 1, reported as its upper bound 2;
    /// * an exact power of two `2^k` is the *lower* edge of bucket
    ///   `k + 1` (`[2^k, 2^(k+1))`), so it reports as `2^(k+1)` — the
    ///   convention is "upper bound of the containing half-open
    ///   bucket", never the sample itself;
    /// * anything at or past `2^(NUM_BUCKETS−2)` saturates into the
    ///   top bucket and reports as `2^(NUM_BUCKETS−1)`.
    #[test]
    fn percentile_convention_is_pinned_at_exact_bucket_boundaries() {
        let zeros = Histogram::new();
        for _ in 0..10 {
            zeros.record(0);
        }
        let s = zeros.snapshot();
        assert_eq!((s.p50, s.p95, s.p99), (0, 0, 0), "bucket 0 holds exactly the value 0");

        let ones = Histogram::new();
        ones.record(1);
        let s = ones.snapshot();
        assert_eq!((s.p50, s.p99), (2, 2), "1 ∈ bucket 1 = [1,2) → upper bound 2");

        for k in [3u32, 10, 20] {
            let edge = Histogram::new();
            edge.record(1 << k);
            let s = edge.snapshot();
            assert_eq!(
                s.p50,
                1 << (k + 1),
                "2^{k} is the lower edge of [2^{k}, 2^{}) → upper bound 2^{}",
                k + 1,
                k + 1
            );
            // One below the edge stays in the previous bucket.
            let below = Histogram::new();
            below.record((1 << k) - 1);
            assert_eq!(below.snapshot().p50, 1 << k);
        }

        let top = Histogram::new();
        top.record(1 << (NUM_BUCKETS - 2)); // first value of the top bucket
        top.record(u64::MAX); // saturates into the same bucket
        let s = top.snapshot();
        assert_eq!(s.buckets[NUM_BUCKETS - 1], 2);
        assert_eq!(s.p99, 1 << (NUM_BUCKETS - 1), "top bucket reports 2^39");
    }

    /// A mixed fill across the boundary cases: the rank arithmetic
    /// (`ceil(q·total)` clamped to `[1, total]`, first bucket whose
    /// cumulative count reaches it) walks zeros → ones → edge values
    /// in order.
    #[test]
    fn percentile_rank_walks_mixed_boundary_fill_in_order() {
        let h = Histogram::new();
        for _ in 0..50 {
            h.record(0);
        }
        for _ in 0..40 {
            h.record(1);
        }
        for _ in 0..10 {
            h.record(16); // lower edge of [16, 32)
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, 0, "rank 50 is the last zero");
        assert_eq!(percentile(&s.buckets, s.count, 0.51), 2, "rank 51 is the first 1");
        assert_eq!(s.p95, 32, "rank 95 is an edge sample: upper bound of [16,32)");
        assert_eq!(s.p99, 32);
    }

    #[test]
    fn gauge_tracks_last_and_high_watermark() {
        let g = Gauge::new();
        g.set(3);
        g.set(11);
        g.set(2);
        assert_eq!(g.last(), 2, "last must be the most recent sample");
        assert_eq!(g.max(), 11, "max must be the high-watermark");
    }

    #[test]
    fn registry_returns_same_handle_for_same_name() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("x").get(), 3);
        assert_eq!(r.counter("y").get(), 0);
    }

    #[test]
    fn registry_snapshot_is_name_sorted_and_serialisable() {
        let r = Registry::new();
        r.counter("z.late").inc();
        r.counter("a.early").add(5);
        r.gauge("depth").set(7);
        r.histogram("lat").record(100);
        let s = r.snapshot();
        assert_eq!(s.counters[0].name, "a.early");
        assert_eq!(s.counters[1].name, "z.late");
        assert_eq!(s.gauges[0].last, 7);
        assert_eq!(s.histograms[0].histogram.count, 1);
        let text = groupsa_json::to_string(&s);
        assert_eq!(groupsa_json::from_str::<RegistrySnapshot>(&text).unwrap(), s);
    }

    #[test]
    fn histogram_is_safe_under_concurrent_recording() {
        let h = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        h.record((t * 1000 + i) as u64 % 37);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 4000);
    }
}
