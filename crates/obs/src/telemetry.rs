//! Request-lifecycle telemetry: deterministic sampling, the record
//! ring, and the sliding windows behind one enable gate.
//!
//! A [`Telemetry`] instance is embedded per owner (each serve engine's
//! `Metrics` carries one), configured by a [`TelemetryConfig`] read
//! either from the environment or injected directly by tests and
//! benches:
//!
//! * `GROUPSA_OBS_SAMPLE=1/N` — record every request whose id-hash is
//!   `0 mod N` (`1/1` records everything). Unset, empty, or malformed
//!   means telemetry is **off**.
//! * `GROUPSA_OBS_SLOW_US=µs` — requests slower than this are captured
//!   even when sampled out (default [`DEFAULT_SLOW_US`]).
//! * `GROUPSA_OBS_RING=n` — record-ring capacity (default
//!   [`DEFAULT_RING_CAPACITY`]).
//!
//! ## Determinism and the zero-overhead contract
//!
//! Sampling hashes the client-chosen request id through a fixed
//! SplitMix64 finalizer — no RNG, no per-process seed — so the same
//! workload samples the same requests on every run, and telemetry can
//! never perturb anything seeded. When disabled, every entry point
//! checks one immutable boolean and returns: no clock read, no atomic
//! RMW, no allocation — the same contract `GROUPSA_TRACE` gating keeps
//! (DESIGN §10), so serve responses are bit-identical with telemetry
//! compiled in but off.

use crate::record::{RecordRing, RequestRecord};
use crate::window::{TimeWindows, WindowKind, WindowStats};
use std::time::Instant;

/// Environment variable holding the sampling spec (`1/N`).
pub const SAMPLE_ENV: &str = "GROUPSA_OBS_SAMPLE";

/// Environment variable overriding the slow-request threshold (µs).
pub const SLOW_US_ENV: &str = "GROUPSA_OBS_SLOW_US";

/// Environment variable overriding the record-ring capacity.
pub const RING_ENV: &str = "GROUPSA_OBS_RING";

/// Default slow-request threshold: 50 ms end-to-end.
pub const DEFAULT_SLOW_US: u64 = 50_000;

/// Default record-ring capacity.
pub const DEFAULT_RING_CAPACITY: usize = 1024;

/// The fixed SplitMix64 finalizer used as the sampling hash: id in,
/// well-mixed 64 bits out, no state. Public so tests and tools can
/// predict exactly which ids a `1/N` config samples.
pub fn hash_id(id: u64) -> u64 {
    let mut z = id.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Telemetry tuning, injectable per engine (tests/benches) or read
/// from the environment (production binaries).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Record one request in `sample_every` by id-hash; `0` disables
    /// telemetry entirely.
    pub sample_every: u64,
    /// Requests with `total_us` at or above this are captured even
    /// when sampled out.
    pub slow_us: u64,
    /// Record-ring capacity.
    pub ring_capacity: usize,
}

impl TelemetryConfig {
    /// Telemetry off: the zero-overhead default.
    pub const fn disabled() -> Self {
        TelemetryConfig {
            sample_every: 0,
            slow_us: DEFAULT_SLOW_US,
            ring_capacity: DEFAULT_RING_CAPACITY,
        }
    }

    /// Sampling one request in `every` (0 = off), defaults elsewhere.
    pub const fn sampling(every: u64) -> Self {
        TelemetryConfig {
            sample_every: every,
            slow_us: DEFAULT_SLOW_US,
            ring_capacity: DEFAULT_RING_CAPACITY,
        }
    }

    /// Parses a `GROUPSA_OBS_SAMPLE` spec: `1/N` (or bare `N`, meaning
    /// the same) → `N`; anything else → `0` (off). No panics — a
    /// malformed spec silently disables telemetry rather than taking
    /// the server down.
    pub fn parse_sample(spec: &str) -> u64 {
        let spec = spec.trim();
        let denom = match spec.split_once('/') {
            Some(("1", denom)) => denom.trim(),
            Some(_) => return 0,
            None => spec,
        };
        denom.parse::<u64>().unwrap_or(0)
    }

    /// Reads the three `GROUPSA_OBS_*` variables; unset/malformed
    /// `GROUPSA_OBS_SAMPLE` means disabled.
    pub fn from_env() -> Self {
        let sample_every =
            std::env::var(SAMPLE_ENV).ok().map_or(0, |spec| Self::parse_sample(&spec));
        let slow_us = std::env::var(SLOW_US_ENV)
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(DEFAULT_SLOW_US);
        let ring_capacity = std::env::var(RING_ENV)
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(DEFAULT_RING_CAPACITY);
        TelemetryConfig { sample_every, slow_us, ring_capacity }
    }
}

/// Per-owner telemetry state: the enable gate, the sampling decision,
/// the record ring, and the sliding windows. See the module docs.
#[derive(Debug)]
pub struct Telemetry {
    cfg: TelemetryConfig,
    /// Epoch for `arrival_us` and the window second index. Read only
    /// inside the enabled gate.
    start: Instant,
    ring: RecordRing,
    windows: TimeWindows,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::disabled()
    }
}

impl Telemetry {
    /// Telemetry with an explicit config.
    pub fn new(cfg: TelemetryConfig) -> Self {
        Telemetry {
            cfg,
            start: Instant::now(),
            ring: RecordRing::new(cfg.ring_capacity),
            windows: TimeWindows::new(),
        }
    }

    /// Telemetry configured from the `GROUPSA_OBS_*` environment.
    pub fn from_env() -> Self {
        Self::new(TelemetryConfig::from_env())
    }

    /// Telemetry that is off (every entry point returns immediately).
    pub fn disabled() -> Self {
        Self::new(TelemetryConfig::disabled())
    }

    /// The zero-overhead gate: one immutable boolean. Everything else
    /// in this type is a no-op when this is `false`.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.cfg.sample_every != 0
    }

    /// The active config.
    pub fn config(&self) -> TelemetryConfig {
        self.cfg
    }

    /// Whether request `id` is in the deterministic sample: enabled
    /// and `hash_id(id) % sample_every == 0`.
    #[inline]
    pub fn sampled(&self, id: u64) -> bool {
        self.enabled() && hash_id(id) % self.cfg.sample_every == 0
    }

    /// µs since this telemetry instance started (the `arrival_us`
    /// epoch). Only meaningful — and only called — when enabled.
    pub fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// µs from telemetry start to `t` (0 when `t` predates it, which
    /// only a caller-constructed Instant can).
    pub fn us_since_start(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.start).as_micros() as u64
    }

    /// Tallies one window event in the current second. No-op (and no
    /// clock read) when disabled.
    pub fn note(&self, kind: WindowKind) {
        if self.enabled() {
            self.windows.note(kind, self.start.elapsed().as_secs());
        }
    }

    /// Tallies one completed-request latency sample in the current
    /// second. No-op when disabled.
    pub fn note_latency_us(&self, us: u64) {
        if self.enabled() {
            self.windows.note_latency_us(us, self.start.elapsed().as_secs());
        }
    }

    /// Files a finished record: marks it slow when `total_us` crosses
    /// the threshold, pushes it to the ring when sampled *or* slow,
    /// and mirrors it into the trace (`request_record` event) when
    /// tracing is on. `sampled` is the admission-time
    /// [`Telemetry::sampled`] decision, passed back in so the hash is
    /// computed once per request.
    pub fn observe(&self, mut record: RequestRecord, sampled: bool) {
        if !self.enabled() {
            return;
        }
        record.slow = record.total_us >= self.cfg.slow_us;
        if !(sampled || record.slow) {
            return;
        }
        self.ring.push(&record);
        if crate::enabled() {
            crate::emit(
                "request_record",
                &[
                    ("id", crate::to_json(&record.id)),
                    ("outcome", crate::to_json(&record.outcome.name())),
                    ("arrival_us", crate::to_json(&record.arrival_us)),
                    ("queue_us", crate::to_json(&record.queue_us)),
                    ("batch", crate::to_json(&record.batch)),
                    ("score_us", crate::to_json(&record.score_us)),
                    ("write_us", crate::to_json(&record.write_us)),
                    ("total_us", crate::to_json(&record.total_us)),
                    ("slow", crate::to_json(&record.slow)),
                ],
            );
        }
    }

    /// Every completely-stored record, oldest arrival first.
    pub fn records(&self) -> Vec<RequestRecord> {
        self.ring.snapshot()
    }

    /// Only the records captured as slow, oldest first.
    pub fn slow_records(&self) -> Vec<RequestRecord> {
        self.ring.snapshot().into_iter().filter(|r| r.slow).collect()
    }

    /// Windowed rates/percentiles over the last `window_s` seconds.
    /// All-zero when disabled (no clock read).
    pub fn window_stats(&self, window_s: u64) -> WindowStats {
        if !self.enabled() {
            return WindowStats { window_s, ..WindowStats::default() };
        }
        self.windows.stats(window_s, self.start.elapsed().as_secs())
    }

    /// Total ring pushes attempted (sampled + slow captures).
    pub fn ring_pushed(&self) -> u64 {
        self.ring.pushed()
    }

    /// Ring pushes dropped under same-slot contention.
    pub fn ring_dropped(&self) -> u64 {
        self.ring.dropped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordOutcome;

    #[test]
    fn sample_spec_parsing() {
        assert_eq!(TelemetryConfig::parse_sample("1/1"), 1);
        assert_eq!(TelemetryConfig::parse_sample("1/64"), 64);
        assert_eq!(TelemetryConfig::parse_sample(" 1/8 "), 8);
        assert_eq!(TelemetryConfig::parse_sample("16"), 16);
        assert_eq!(TelemetryConfig::parse_sample("2/3"), 0, "only 1/N specs");
        assert_eq!(TelemetryConfig::parse_sample("off"), 0);
        assert_eq!(TelemetryConfig::parse_sample(""), 0);
    }

    #[test]
    fn sampling_is_deterministic_and_roughly_one_in_n() {
        let t = Telemetry::new(TelemetryConfig::sampling(64));
        let first: Vec<u64> = (0..10_000).filter(|&id| t.sampled(id)).collect();
        let again: Vec<u64> = (0..10_000).filter(|&id| t.sampled(id)).collect();
        assert_eq!(first, again, "no RNG: the sample is a pure function of the id");
        // 10 000 ids at 1/64 ≈ 156 expected; the fixed hash gives a
        // fixed count — pin a loose band so a hash change is caught.
        assert!((100..=220).contains(&first.len()), "got {}", first.len());
        let all = Telemetry::new(TelemetryConfig::sampling(1));
        assert!((0..1000).all(|id| all.sampled(id)), "1/1 samples everything");
    }

    #[test]
    fn disabled_telemetry_ignores_everything() {
        let t = Telemetry::disabled();
        assert!(!t.enabled());
        assert!(!t.sampled(0), "even hash 0 is not sampled when off");
        t.note(WindowKind::Submitted);
        t.note_latency_us(10);
        t.observe(RequestRecord { id: 1, total_us: u64::MAX, ..Default::default() }, true);
        assert!(t.records().is_empty());
        assert_eq!(t.window_stats(10), WindowStats { window_s: 10, ..Default::default() });
    }

    #[test]
    fn slow_requests_are_captured_even_when_sampled_out() {
        let cfg = TelemetryConfig { sample_every: 1 << 60, slow_us: 1000, ring_capacity: 16 };
        let t = Telemetry::new(cfg);
        t.observe(RequestRecord { id: 1, total_us: 999, ..Default::default() }, false);
        t.observe(RequestRecord { id: 2, total_us: 1000, ..Default::default() }, false);
        let records = t.records();
        assert_eq!(records.len(), 1, "only the slow request is captured");
        assert_eq!(records[0].id, 2);
        assert!(records[0].slow);
        assert_eq!(t.slow_records().len(), 1);
    }

    #[test]
    fn sampled_records_keep_their_outcome_and_fast_ones_are_not_slow() {
        let t = Telemetry::new(TelemetryConfig::sampling(1));
        t.observe(
            RequestRecord { id: 3, outcome: RecordOutcome::Shed, total_us: 5, ..Default::default() },
            true,
        );
        let records = t.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].outcome, RecordOutcome::Shed);
        assert!(!records[0].slow);
    }
}
