//! Prometheus-style text exposition: a renderer for metrics pages and
//! a parser for validating them.
//!
//! The format is the familiar line protocol — `# TYPE name kind`
//! headers followed by `name{label="value",…} value` samples;
//! histograms expand to cumulative `name_bucket{le="…"}` samples plus
//! `name_sum` / `name_count` — restricted to what this workspace needs
//! (no `# HELP`, no exemplars, no escaped quotes inside label values).
//! The serve crate renders its `MetricsDump` page through
//! [`Exposition`]; `serve_bench` and tier-1 validate the page through
//! [`parse`]; `obs_top` renders its dashboard from the parsed samples.
//!
//! Metric names are sanitised through [`sanitize`] (`.` and any other
//! non-`[a-zA-Z0-9_]` byte become `_`), so registry names like
//! `nn.attention.forward_us` expose as `nn_attention_forward_us`.

use crate::registry::{bucket_upper, HistogramSnapshot, RegistrySnapshot};

/// Rewrites `name` into the exposition charset: `[a-zA-Z0-9_]`, with
/// every other byte (registry dots, say) replaced by `_`.
pub fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' }).collect()
}

fn format_value(value: f64) -> String {
    if value == value.trunc() && value.abs() < 1e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

/// An exposition page under construction. Emits one `# TYPE` header
/// per metric name (the first time the name appears) and tracks the
/// declared names so callers can assert coverage.
#[derive(Debug, Default)]
pub struct Exposition {
    out: String,
    names: Vec<String>,
}

impl Exposition {
    /// An empty page.
    pub fn new() -> Self {
        Exposition::default()
    }

    /// Metric names declared so far (sanitised, in declaration order).
    pub fn names(&self) -> &[String] {
        &self.names
    }

    fn declare(&mut self, name: &str, kind: &str) -> bool {
        if self.names.iter().any(|n| n == name) {
            return false;
        }
        self.names.push(name.to_string());
        self.out.push_str("# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
        true
    }

    fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (key, val)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(key);
                self.out.push_str("=\"");
                // Keep the parser trivial: strip the two bytes the
                // quoting cannot carry.
                self.out.extend(val.chars().filter(|&c| c != '"' && c != '\\'));
                self.out.push('"');
            }
            self.out.push('}');
        }
        self.out.push(' ');
        self.out.push_str(&format_value(value));
        self.out.push('\n');
    }

    /// Emits a counter sample.
    pub fn counter(&mut self, name: &str, value: u64) {
        let name = sanitize(name);
        self.declare(&name, "counter");
        self.sample(&name, &[], value as f64);
    }

    /// Emits a gauge sample.
    pub fn gauge(&mut self, name: &str, value: f64) {
        let name = sanitize(name);
        self.declare(&name, "gauge");
        self.sample(&name, &[], value);
    }

    /// Emits a labelled gauge sample; repeated names share one `# TYPE`
    /// header (e.g. the same windowed rate at `window="10s"` and
    /// `window="60s"`).
    pub fn labeled_gauge(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        let name = sanitize(name);
        self.declare(&name, "gauge");
        self.sample(&name, labels, value);
    }

    /// Emits a full histogram: cumulative `_bucket{le="…"}` samples
    /// over the workspace's log₂ buckets (empty buckets elided — the
    /// closing `+Inf` carries the total), then `_sum` and `_count`.
    pub fn histogram(&mut self, name: &str, snapshot: &HistogramSnapshot) {
        let name = sanitize(name);
        self.declare(&name, "histogram");
        let mut cumulative = 0u64;
        for (i, count) in snapshot.buckets.iter().enumerate() {
            cumulative += count;
            if *count == 0 {
                continue; // elide empty buckets; `+Inf` closes the series
            }
            let le = bucket_upper(i).to_string();
            self.sample(&format!("{name}_bucket"), &[("le", le.as_str())], cumulative as f64);
        }
        self.sample(&format!("{name}_bucket"), &[("le", "+Inf")], snapshot.count as f64);
        self.sample(&format!("{name}_sum"), &[], snapshot.sum as f64);
        self.sample(&format!("{name}_count"), &[], snapshot.count as f64);
    }

    /// Renders an entire [`RegistrySnapshot`] (names prefixed with
    /// `prefix`, sanitised).
    pub fn registry(&mut self, prefix: &str, snapshot: &RegistrySnapshot) {
        for counter in &snapshot.counters {
            self.counter(&format!("{prefix}{}", counter.name), counter.value);
        }
        for gauge in &snapshot.gauges {
            let name = sanitize(&format!("{prefix}{}", gauge.name));
            self.declare(&name, "gauge");
            self.sample(&name, &[("stat", "last")], gauge.last as f64);
            self.sample(&name, &[("stat", "max")], gauge.max as f64);
        }
        for histogram in &snapshot.histograms {
            self.histogram(&format!("{prefix}{}", histogram.name), &histogram.histogram);
        }
    }

    /// The finished page text.
    pub fn render(self) -> String {
        self.out
    }
}

/// One parsed sample line.
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedSample {
    /// Sample name (may carry a `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Label pairs, in order.
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: f64,
}

/// A parsed exposition page: declared types plus every sample.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ParsedPage {
    /// `(name, kind)` per `# TYPE` header, in order.
    pub types: Vec<(String, String)>,
    /// Every sample line, in order.
    pub samples: Vec<ParsedSample>,
}

impl ParsedPage {
    /// Whether the page declares metric `name` (via its `# TYPE`
    /// header).
    pub fn declares(&self, name: &str) -> bool {
        self.types.iter().any(|(n, _)| n == name)
    }

    /// The first sample value for exactly `name` with no label filter.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.samples.iter().find(|s| s.name == name).map(|s| s.value)
    }

    /// The first sample value for `name` carrying the given label pair.
    pub fn value_with(&self, name: &str, label: (&str, &str)) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels.iter().any(|(k, v)| k == label.0 && v == label.1))
            .map(|s| s.value)
    }

    /// Every sample for `name`, in page order.
    pub fn all(&self, name: &str) -> Vec<&ParsedSample> {
        self.samples.iter().filter(|s| s.name == name).collect()
    }
}

fn parse_labels(text: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = text;
    while !rest.is_empty() {
        let eq = rest.find("=\"").ok_or_else(|| format!("label without =\": '{rest}'"))?;
        let key = rest[..eq].trim_start_matches(',').to_string();
        let after = &rest[eq + 2..];
        let close = after.find('"').ok_or_else(|| format!("unterminated label value: '{rest}'"))?;
        labels.push((key, after[..close].to_string()));
        rest = &after[close + 1..];
    }
    Ok(labels)
}

/// Parses an exposition page, validating the line grammar: every
/// non-comment line must be `name[{labels}] value` with a numeric
/// value, every `# TYPE` must name a known kind. Returns the first
/// offending line in the error.
pub fn parse(text: &str) -> Result<ParsedPage, String> {
    let mut page = ParsedPage::default();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        let fail = |what: &str| format!("line {}: {what}: '{line}'", lineno + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.trim().split_whitespace();
            if parts.next() == Some("TYPE") {
                let name = parts.next().ok_or_else(|| fail("TYPE without a name"))?;
                let kind = parts.next().ok_or_else(|| fail("TYPE without a kind"))?;
                if !["counter", "gauge", "histogram"].contains(&kind) {
                    return Err(fail("unknown metric kind"));
                }
                page.types.push((name.to_string(), kind.to_string()));
            }
            continue;
        }
        let (head, value) = line.rsplit_once(' ').ok_or_else(|| fail("no value"))?;
        let value: f64 = value.parse().map_err(|_| fail("value is not a number"))?;
        let (name, labels) = match head.split_once('{') {
            Some((name, rest)) => {
                let body = rest.strip_suffix('}').ok_or_else(|| fail("unterminated labels"))?;
                (name, parse_labels(body).map_err(|e| fail(&e))?)
            }
            None => (head, Vec::new()),
        };
        if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(fail("bad metric name"));
        }
        page.samples.push(ParsedSample { name: name.to_string(), labels, value });
    }
    Ok(page)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Histogram;

    #[test]
    fn render_then_parse_roundtrips() {
        let mut e = Exposition::new();
        e.counter("serve.submitted_total", 42);
        e.gauge("queue_depth", 3.5);
        e.labeled_gauge("window_req_per_s", &[("window", "10s")], 120.25);
        e.labeled_gauge("window_req_per_s", &[("window", "60s")], 80.0);
        let h = Histogram::new();
        h.record(8);
        h.record(1000);
        e.histogram("latency_us", &h.snapshot());
        let text = e.render();
        let page = parse(&text).expect("rendered pages must parse");
        assert!(page.declares("serve_submitted_total"), "dots sanitised");
        assert_eq!(page.value("serve_submitted_total"), Some(42.0));
        assert_eq!(page.value("queue_depth"), Some(3.5));
        assert_eq!(page.value_with("window_req_per_s", ("window", "10s")), Some(120.25));
        assert_eq!(page.value_with("window_req_per_s", ("window", "60s")), Some(80.0));
        assert_eq!(page.value("latency_us_count"), Some(2.0));
        assert_eq!(page.value("latency_us_sum"), Some(1008.0));
        assert_eq!(page.value_with("latency_us_bucket", ("le", "+Inf")), Some(2.0));
        // One TYPE header per name, even with two labelled samples.
        assert_eq!(page.types.iter().filter(|(n, _)| n == "window_req_per_s").count(), 1);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let mut e = Exposition::new();
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(8);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        e.histogram("lat", &h.snapshot());
        let page = parse(&e.render()).unwrap();
        // 8 µs lands in bucket 4 (upper bound 16): cumulative 90 there.
        assert_eq!(page.value_with("lat_bucket", ("le", "16")), Some(90.0));
        assert_eq!(page.value_with("lat_bucket", ("le", "1024")), Some(100.0));
        assert_eq!(page.value_with("lat_bucket", ("le", "+Inf")), Some(100.0));
        // Cumulative counts never decrease in page order.
        let buckets = page.all("lat_bucket");
        assert!(buckets.windows(2).all(|w| w[0].value <= w[1].value));
    }

    #[test]
    fn registry_snapshots_render_with_prefix() {
        let r = crate::registry::Registry::new();
        r.counter("hits").inc();
        r.gauge("depth").set(7);
        r.histogram("nn.forward_us").record(100);
        let mut e = Exposition::new();
        e.registry("reg_", &r.snapshot());
        let page = parse(&e.render()).unwrap();
        assert_eq!(page.value("reg_hits"), Some(1.0));
        assert_eq!(page.value_with("reg_depth", ("stat", "last")), Some(7.0));
        assert_eq!(page.value_with("reg_depth", ("stat", "max")), Some(7.0));
        assert_eq!(page.value("reg_nn_forward_us_count"), Some(1.0));
    }

    #[test]
    fn malformed_pages_are_rejected_with_line_numbers() {
        assert!(parse("name_only\n").is_err());
        assert!(parse("bad-name 1\n").is_err());
        assert!(parse("x{le=\"1\" 2\n").is_err(), "unterminated labels");
        assert!(parse("x nan_text\n").is_err());
        let err = parse("good 1\n# TYPE t teapot\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn sanitize_keeps_the_exposition_charset() {
        assert_eq!(sanitize("nn.attention.forward_us"), "nn_attention_forward_us");
        assert_eq!(sanitize("ok_name_9"), "ok_name_9");
        assert_eq!(sanitize("a b/c"), "a_b_c");
    }
}
