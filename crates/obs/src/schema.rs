//! The trace-file contract: what a `GROUPSA_TRACE` JSONL file must
//! contain, and a validator for it.
//!
//! Every line is one JSON object with the common fields
//!
//! | field    | type   | meaning                                   |
//! |----------|--------|-------------------------------------------|
//! | `kind`   | string | event kind (table below)                  |
//! | `seq`    | number | per-process monotone sequence number      |
//! | `t_us`   | number | µs since the trace file was opened        |
//! | `thread` | string | emitting thread's name (or id)            |
//!
//! and kind-specific required fields:
//!
//! | kind      | required fields                                                   |
//! |-----------|-------------------------------------------------------------------|
//! | `span`    | `name`:str, `dur_us`:num, `depth`:num                             |
//! | `epoch`   | `stage`:{user,group,mix}, `epoch`, `loss`, `lr`, `seconds`, `examples`, `examples_per_sec`, `forward_us`, `backward_us`, `merge_us`, `step_us` |
//! | `window`  | `stage`:str, `round`, `start`, `len`, `forward_us`, `backward_us`, `merge_us`, `step_us` |
//! | `request` | `id`:num, `outcome`:{ok,error,expired}, `queue_us`:num, `score_us`:num |
//! | `request_record` | `id`, `arrival_us`, `queue_us`, `batch`, `score_us`, `write_us`, `total_us`:num, `outcome`:{ok,error,expired,shed,rejected} |
//! | `window_snapshot` | `window_s`, `submitted_per_s`, `completed_per_s`, `errors_per_s`, `shed_per_s`, `limited_per_s`, `p50_latency_us`, `p95_latency_us`:num |
//! | `batch`   | `n`:num, `form_us`:num                                            |
//! | `metrics` | `registry`:object with `counters`/`gauges`/`histograms` arrays    |
//! | `stats`   | `stats`:object                                                    |
//! | `run`     | `label`:str                                                       |
//!
//! Events may carry extra fields beyond these (spans attach their
//! payload fields, epochs may add context); validation checks presence
//! and type of the required set, and rejects unknown kinds so the
//! schema table above stays the single source of truth.

use groupsa_json::Json;

/// Per-kind event counts of a validated trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceSummary {
    /// Total validated events.
    pub events: usize,
    /// `(kind, count)` pairs, sorted by kind.
    pub kinds: Vec<(String, usize)>,
}

impl TraceSummary {
    /// How many events of `kind` the trace contained.
    pub fn count(&self, kind: &str) -> usize {
        self.kinds.iter().find(|(k, _)| k == kind).map_or(0, |(_, n)| *n)
    }
}

fn require<'a>(obj: &'a Json, field: &str) -> Result<&'a Json, String> {
    obj.get(field).ok_or_else(|| format!("missing required field '{field}'"))
}

fn require_number(obj: &Json, field: &str) -> Result<f64, String> {
    require(obj, field)?
        .as_f64()
        .ok_or_else(|| format!("field '{field}' must be a number"))
}

fn require_string<'a>(obj: &'a Json, field: &str) -> Result<&'a str, String> {
    require(obj, field)?
        .as_str()
        .ok_or_else(|| format!("field '{field}' must be a string"))
}

fn require_string_in(obj: &Json, field: &str, allowed: &[&str]) -> Result<(), String> {
    let v = require_string(obj, field)?;
    if allowed.contains(&v) {
        Ok(())
    } else {
        Err(format!("field '{field}' must be one of {allowed:?}, found '{v}'"))
    }
}

fn require_numbers(obj: &Json, fields: &[&str]) -> Result<(), String> {
    for f in fields {
        require_number(obj, f)?;
    }
    Ok(())
}

/// Validates one parsed event object, returning its kind.
pub fn validate_event(event: &Json) -> Result<String, String> {
    if !matches!(event, Json::Object(_)) {
        return Err(format!("event must be an object, found {}", event.kind()));
    }
    let kind = require_string(event, "kind")?.to_string();
    require_number(event, "seq")?;
    require_number(event, "t_us")?;
    require_string(event, "thread")?;
    match kind.as_str() {
        "span" => {
            require_string(event, "name")?;
            require_numbers(event, &["dur_us", "depth"])?;
        }
        "epoch" => {
            require_string_in(event, "stage", &["user", "group", "mix"])?;
            require_numbers(
                event,
                &[
                    "epoch",
                    "loss",
                    "lr",
                    "seconds",
                    "examples",
                    "examples_per_sec",
                    "forward_us",
                    "backward_us",
                    "merge_us",
                    "step_us",
                ],
            )?;
        }
        "window" => {
            require_string(event, "stage")?;
            require_numbers(
                event,
                &["round", "start", "len", "forward_us", "backward_us", "merge_us", "step_us"],
            )?;
        }
        "request" => {
            require_string_in(event, "outcome", &["ok", "error", "expired"])?;
            require_numbers(event, &["id", "queue_us", "score_us"])?;
        }
        "request_record" => {
            require_string_in(event, "outcome", &["ok", "error", "expired", "shed", "rejected"])?;
            require_numbers(
                event,
                &["id", "arrival_us", "queue_us", "batch", "score_us", "write_us", "total_us"],
            )?;
        }
        "window_snapshot" => {
            require_numbers(
                event,
                &[
                    "window_s",
                    "submitted_per_s",
                    "completed_per_s",
                    "errors_per_s",
                    "shed_per_s",
                    "limited_per_s",
                    "p50_latency_us",
                    "p95_latency_us",
                ],
            )?;
        }
        "batch" => {
            require_numbers(event, &["n", "form_us"])?;
        }
        "metrics" => {
            let registry = require(event, "registry")?;
            for table in ["counters", "gauges", "histograms"] {
                require(registry, table)?
                    .as_array()
                    .ok_or_else(|| format!("registry.{table} must be an array"))?;
            }
        }
        "stats" => {
            let stats = require(event, "stats")?;
            if !matches!(stats, Json::Object(_)) {
                return Err("field 'stats' must be an object".to_string());
            }
        }
        "run" => {
            require_string(event, "label")?;
        }
        other => return Err(format!("unknown event kind '{other}'")),
    }
    Ok(kind)
}

/// Validates a whole JSONL trace (one event per non-empty line),
/// returning per-kind counts. The first invalid line fails the whole
/// file, with its line number in the error.
pub fn validate_trace(text: &str) -> Result<TraceSummary, String> {
    let mut summary = TraceSummary::default();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event = Json::parse(line).map_err(|e| format!("line {}: not JSON: {e}", lineno + 1))?;
        let kind = validate_event(&event).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        summary.events += 1;
        match summary.kinds.iter_mut().find(|(k, _)| *k == kind) {
            Some((_, n)) => *n += 1,
            None => summary.kinds.push((kind, 1)),
        }
    }
    summary.kinds.sort();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(kind: &str, extra: &str) -> String {
        let comma = if extra.is_empty() { "" } else { "," };
        format!("{{\"kind\":\"{kind}\",\"seq\":0,\"t_us\":12.5,\"thread\":\"main\"{comma}{extra}}}")
    }

    #[test]
    fn valid_events_of_every_kind_pass() {
        let lines = [
            base("span", "\"name\":\"fit\",\"dur_us\":10,\"depth\":0,\"round\":3"),
            base(
                "epoch",
                "\"stage\":\"user\",\"epoch\":0,\"loss\":0.69,\"lr\":0.01,\"seconds\":0.5,\
                 \"examples\":100,\"examples_per_sec\":200,\"forward_us\":1,\"backward_us\":2,\
                 \"merge_us\":3,\"step_us\":4",
            ),
            base(
                "window",
                "\"stage\":\"group\",\"round\":1,\"start\":0,\"len\":32,\"forward_us\":1,\
                 \"backward_us\":2,\"merge_us\":3,\"step_us\":4",
            ),
            base("request", "\"id\":7,\"outcome\":\"ok\",\"queue_us\":15,\"score_us\":120"),
            base(
                "request_record",
                "\"id\":7,\"outcome\":\"shed\",\"arrival_us\":10,\"queue_us\":0,\"batch\":0,\
                 \"score_us\":0,\"write_us\":0,\"total_us\":3,\"slow\":false",
            ),
            base(
                "window_snapshot",
                "\"window_s\":10,\"submitted_per_s\":120.5,\"completed_per_s\":118,\
                 \"errors_per_s\":0,\"shed_per_s\":2.5,\"limited_per_s\":0,\
                 \"p50_latency_us\":256,\"p95_latency_us\":2048",
            ),
            base("batch", "\"n\":4,\"form_us\":2"),
            base("metrics", "\"registry\":{\"counters\":[],\"gauges\":[],\"histograms\":[]}"),
            base("stats", "\"stats\":{\"submitted\":1}"),
            base("run", "\"label\":\"serve_bench\""),
        ];
        let text = lines.join("\n");
        let summary = validate_trace(&text).expect("all kinds must validate");
        assert_eq!(summary.events, 10);
        assert_eq!(summary.count("span"), 1);
        assert_eq!(summary.count("epoch"), 1);
        assert_eq!(summary.count("request_record"), 1);
        assert_eq!(summary.count("window_snapshot"), 1);
        assert_eq!(summary.count("absent"), 0);
    }

    #[test]
    fn request_record_outcome_extends_the_request_vocabulary() {
        let fields = |outcome: &str| {
            format!(
                "\"id\":1,\"outcome\":\"{outcome}\",\"arrival_us\":0,\"queue_us\":0,\"batch\":0,\
                 \"score_us\":0,\"write_us\":0,\"total_us\":0"
            )
        };
        for outcome in ["ok", "error", "expired", "shed", "rejected"] {
            validate_trace(&base("request_record", &fields(outcome))).unwrap();
        }
        let err = validate_trace(&base("request_record", &fields("dropped"))).unwrap_err();
        assert!(err.contains("outcome"), "{err}");
        // The plain `request` event does NOT accept the refusal names.
        let plain = base("request", "\"id\":1,\"outcome\":\"shed\",\"queue_us\":0,\"score_us\":0");
        assert!(validate_trace(&plain).is_err());
    }

    #[test]
    fn window_snapshot_requires_every_rate_field() {
        let missing = base("window_snapshot", "\"window_s\":10,\"submitted_per_s\":1");
        let err = validate_trace(&missing).unwrap_err();
        assert!(err.contains("completed_per_s"), "{err}");
    }

    #[test]
    fn missing_required_field_is_rejected_with_line_number() {
        let text = format!("{}\n{}", base("batch", "\"n\":4,\"form_us\":2"), base("span", "\"dur_us\":10,\"depth\":0"));
        let err = validate_trace(&text).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("name"), "{err}");
    }

    #[test]
    fn wrong_type_unknown_kind_and_bad_enum_are_rejected() {
        assert!(validate_trace(&base("batch", "\"n\":\"four\",\"form_us\":2")).is_err());
        assert!(validate_trace(&base("teapot", "")).is_err());
        let bad_outcome = base("request", "\"id\":1,\"outcome\":\"dropped\",\"queue_us\":1,\"score_us\":1");
        let err = validate_trace(&bad_outcome).unwrap_err();
        assert!(err.contains("outcome"), "{err}");
        assert!(validate_trace("not json").is_err());
    }

    #[test]
    fn missing_common_fields_are_rejected() {
        assert!(validate_trace("{\"kind\":\"run\",\"label\":\"x\"}").is_err());
        assert!(validate_trace("{\"seq\":0,\"t_us\":0,\"thread\":\"t\"}").is_err());
    }

    #[test]
    fn blank_lines_are_ignored() {
        let text = format!("\n{}\n\n", base("run", "\"label\":\"x\""));
        assert_eq!(validate_trace(&text).unwrap().events, 1);
    }
}
