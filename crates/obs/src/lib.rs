//! # groupsa-obs
//!
//! Hermetic (std-only) observability for the groupsa-rs workspace:
//! one substrate for counting, timing, and tracing across training,
//! serving, and the benchmark binaries.
//!
//! Three pieces:
//!
//! * [`registry`] — lock-cheap metric primitives ([`Counter`],
//!   [`Gauge`], [`Histogram`] with log₂ buckets and derived
//!   p50/p95/p99) plus a named [`Registry`] of them. All updates are
//!   relaxed atomics; the only lock is the registry's name table,
//!   taken on handle creation, never on the update path. The serve
//!   crate's request metrics are built from these primitives, and a
//!   process-wide [`global`] registry collects cross-cutting timers
//!   (e.g. the `nn.*` per-call histograms).
//! * [`trace`] — structured span tracing and a JSONL event emitter
//!   gated by the `GROUPSA_TRACE=path` environment variable. When the
//!   variable is unset, [`enabled`] is a single atomic load and every
//!   [`span!`], [`emit`], and [`maybe_timer`] call is a no-op: default
//!   runs pay near-zero cost and — critically — observability never
//!   touches an RNG, so traced and untraced training produce
//!   bit-identical parameters.
//! * [`schema`] — the trace-file contract: [`schema::validate_trace`]
//!   parses an emitted JSONL file and checks the required fields of
//!   every event kind. The `trace_check` binary wraps it for CI.
//!
//! On top of those, request-lifecycle telemetry for the serve path:
//!
//! * [`record`] — per-request [`RequestRecord`]s in a lock-free
//!   overwrite-oldest [`RecordRing`];
//! * [`window`] — per-second [`TimeWindows`] deriving 10 s / 60 s
//!   rates and windowed percentiles;
//! * [`telemetry`] — the [`Telemetry`] facade gating both behind
//!   deterministic `GROUPSA_OBS_SAMPLE=1/N` id-hash sampling (plus
//!   unconditional slow-request capture);
//! * [`expo`] — a Prometheus-style text exposition renderer/parser
//!   (the `MetricsDump` page format), polled by the `obs_top`
//!   dashboard binary.
//!
//! ## Capturing a trace
//!
//! ```text
//! GROUPSA_TRACE=results/train_trace.jsonl ./target/release/train_bench --digest
//! ./target/release/trace_check results/train_trace.jsonl epoch window metrics
//! ```
//!
//! Every line is one JSON object with the common fields `kind`, `seq`
//! (per-process monotone), `t_us` (µs since the trace opened), and
//! `thread`, plus kind-specific payload fields (see [`schema`]).

#![warn(missing_docs)]

pub mod expo;
pub mod record;
pub mod registry;
pub mod schema;
pub mod telemetry;
pub mod trace;
pub mod window;

pub use record::{RecordOutcome, RecordRing, RequestRecord};
pub use registry::{
    bucket_of, bucket_upper, global, percentile, Counter, Gauge, Histogram, HistogramSnapshot,
    Registry, RegistrySnapshot, NUM_BUCKETS,
};
pub use telemetry::{hash_id, Telemetry, TelemetryConfig, SAMPLE_ENV, SLOW_US_ENV};
pub use trace::{emit, enabled, maybe_timer, to_json, ScopedTimer, Span, TRACE_ENV};
pub use window::{TimeWindows, WindowKind, WindowStats};
