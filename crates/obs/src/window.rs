//! Sliding-window time series: a ring of per-second tallies from which
//! windowed rates (req/s, shed/s, …) and windowed latency percentiles
//! over the last 10 s / 60 s are derived — so a long-lived server's
//! `Stats` can report *current* behaviour, not just lifetime totals.
//!
//! The module is deliberately clock-free: every entry point takes the
//! caller's second index (seconds since the owner's epoch — see
//! [`crate::telemetry::Telemetry`], which derives it from one
//! `Instant`). That keeps the tallies exactly testable and keeps all
//! ambient-clock reads in the owner, inside its enabled gate.
//!
//! ## Slot recycling
//!
//! [`WINDOW_SLOTS`] per-second slots are addressed by `sec %
//! WINDOW_SLOTS`; each carries a stamp (`sec + 1`, so `0` means never
//! used). The first writer of a new second claims the slot with a CAS
//! on the stamp and zeroes its tallies. The claim-then-zero sequence
//! is not atomic as a whole: a burst of writers crossing a second
//! boundary can lose a handful of increments to the reset, and a
//! reader can observe a slot mid-reset. Windows are *rate estimates* —
//! these boundary races smudge a second by a few events at worst, and
//! never block anyone. Exact accounting lives in the lifetime counters,
//! not here.

use crate::registry::{percentile, NUM_BUCKETS};
use groupsa_json::impl_json_struct;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-second slots kept; windows up to `WINDOW_SLOTS − 1` seconds can
/// be summed without a recycled slot aliasing into the range.
pub const WINDOW_SLOTS: usize = 64;

/// The per-second event tallies a window tracks, mirroring the serve
/// outcome vocabulary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowKind {
    /// Requests admitted to the queue.
    Submitted,
    /// Requests answered successfully.
    Completed,
    /// Requests answered with a non-deadline error.
    Errors,
    /// Requests dropped on deadline expiry.
    Expired,
    /// Requests shed by deadline-aware admission control.
    Shed,
    /// Requests refused by a per-connection rate limit.
    Limited,
    /// Requests refused at admission (queue full / stopping).
    Rejected,
}

const NUM_KINDS: usize = 7;

impl WindowKind {
    fn index(self) -> usize {
        match self {
            WindowKind::Submitted => 0,
            WindowKind::Completed => 1,
            WindowKind::Errors => 2,
            WindowKind::Expired => 3,
            WindowKind::Shed => 4,
            WindowKind::Limited => 5,
            WindowKind::Rejected => 6,
        }
    }
}

struct SecSlot {
    /// `sec + 1` of the second this slot currently tallies; `0` = never
    /// used.
    stamp: AtomicU64,
    counts: [AtomicU64; NUM_KINDS],
    latency: [AtomicU64; NUM_BUCKETS],
}

impl SecSlot {
    fn empty() -> Self {
        SecSlot {
            stamp: AtomicU64::new(0),
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            latency: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A ring of per-second tallies; see the module docs for semantics.
pub struct TimeWindows {
    slots: Box<[SecSlot]>,
}

impl Default for TimeWindows {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeWindows {
    /// A fresh, all-empty window ring.
    pub fn new() -> Self {
        TimeWindows { slots: (0..WINDOW_SLOTS).map(|_| SecSlot::empty()).collect() }
    }

    /// The slot for `sec`, recycled (stamped and zeroed) if it still
    /// tallies an older second.
    fn claim(&self, sec: u64) -> &SecSlot {
        let slot = &self.slots[(sec % WINDOW_SLOTS as u64) as usize];
        let want = sec + 1;
        let current = slot.stamp.load(Ordering::Acquire);
        if current != want
            && slot
                .stamp
                .compare_exchange(current, want, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
        {
            // We won the recycle: zero the stale tallies. Racing
            // writers of the same second may increment before we zero
            // (a benign boundary smudge, see module docs).
            for count in &slot.counts {
                count.store(0, Ordering::Relaxed);
            }
            for bucket in &slot.latency {
                bucket.store(0, Ordering::Relaxed);
            }
        }
        slot
    }

    /// Tallies one `kind` event in second `sec`.
    pub fn note(&self, kind: WindowKind, sec: u64) {
        self.claim(sec).counts[kind.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Tallies one completed-request latency sample in second `sec`.
    pub fn note_latency_us(&self, us: u64, sec: u64) {
        self.claim(sec).latency[crate::registry::bucket_of(us)].fetch_add(1, Ordering::Relaxed);
    }

    /// Derives windowed rates and latency percentiles over the
    /// `window_s` seconds ending at `now_sec` (inclusive — the current,
    /// possibly partial, second counts). Only slots still stamped with
    /// a second inside the window contribute.
    pub fn stats(&self, window_s: u64, now_sec: u64) -> WindowStats {
        let window_s = window_s.clamp(1, WINDOW_SLOTS as u64 - 1);
        let first = now_sec.saturating_sub(window_s - 1);
        let mut totals = [0u64; NUM_KINDS];
        let mut latency = vec![0u64; NUM_BUCKETS];
        for sec in first..=now_sec {
            let slot = &self.slots[(sec % WINDOW_SLOTS as u64) as usize];
            if slot.stamp.load(Ordering::Acquire) != sec + 1 {
                continue; // never used, or already recycled past the window
            }
            for (total, count) in totals.iter_mut().zip(&slot.counts) {
                *total += count.load(Ordering::Relaxed);
            }
            for (sum, bucket) in latency.iter_mut().zip(&slot.latency) {
                *sum += bucket.load(Ordering::Relaxed);
            }
        }
        let rate = |kind: WindowKind| totals[kind.index()] as f64 / window_s as f64;
        let samples: u64 = latency.iter().sum();
        WindowStats {
            window_s,
            submitted_per_s: rate(WindowKind::Submitted),
            completed_per_s: rate(WindowKind::Completed),
            errors_per_s: rate(WindowKind::Errors),
            shed_per_s: rate(WindowKind::Shed),
            limited_per_s: rate(WindowKind::Limited),
            p50_latency_us: percentile(&latency, samples, 0.50),
            p95_latency_us: percentile(&latency, samples, 0.95),
        }
    }
}

impl std::fmt::Debug for TimeWindows {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimeWindows").field("slots", &self.slots.len()).finish()
    }
}

/// Windowed rates and latency percentiles, derived by
/// [`TimeWindows::stats`]. Rates are events per second averaged over
/// the window; percentiles are histogram bucket upper bounds in µs,
/// computed only from samples inside the window.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WindowStats {
    /// Window length in seconds.
    pub window_s: u64,
    /// Admitted requests per second.
    pub submitted_per_s: f64,
    /// Successful answers per second.
    pub completed_per_s: f64,
    /// Error answers per second.
    pub errors_per_s: f64,
    /// Admission sheds per second.
    pub shed_per_s: f64,
    /// Rate-limit refusals per second.
    pub limited_per_s: f64,
    /// Windowed median latency (µs, bucket upper bound).
    pub p50_latency_us: u64,
    /// Windowed 95th-percentile latency (µs, bucket upper bound).
    pub p95_latency_us: u64,
}

impl_json_struct!(WindowStats {
    window_s,
    submitted_per_s,
    completed_per_s,
    errors_per_s,
    shed_per_s,
    limited_per_s,
    p50_latency_us,
    p95_latency_us,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_average_over_the_window() {
        let w = TimeWindows::new();
        // 30 submissions in second 100, 10 in second 101.
        for _ in 0..30 {
            w.note(WindowKind::Submitted, 100);
        }
        for _ in 0..10 {
            w.note(WindowKind::Submitted, 101);
        }
        let s = w.stats(10, 101);
        assert_eq!(s.window_s, 10);
        assert!((s.submitted_per_s - 4.0).abs() < 1e-12, "40 events / 10 s");
        let s1 = w.stats(1, 101);
        assert!((s1.submitted_per_s - 10.0).abs() < 1e-12, "only the current second");
    }

    #[test]
    fn old_seconds_age_out_of_the_window() {
        let w = TimeWindows::new();
        w.note(WindowKind::Shed, 5);
        assert!(w.stats(10, 5).shed_per_s > 0.0);
        assert_eq!(w.stats(10, 30).shed_per_s, 0.0, "second 5 is outside [21, 30]");
    }

    #[test]
    fn slot_recycling_zeroes_the_stale_second() {
        let w = TimeWindows::new();
        for _ in 0..50 {
            w.note(WindowKind::Submitted, 3);
        }
        // Second 3 + WINDOW_SLOTS lands in the same slot; claiming it
        // must discard the stale tallies rather than inherit 50 events.
        let later = 3 + WINDOW_SLOTS as u64;
        w.note(WindowKind::Submitted, later);
        let s = w.stats(1, later);
        assert!((s.submitted_per_s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn windowed_percentiles_cover_only_the_window() {
        let w = TimeWindows::new();
        // Slow requests long ago, fast ones now.
        for _ in 0..100 {
            w.note_latency_us(100_000, 2);
        }
        for _ in 0..100 {
            w.note_latency_us(100, 40);
        }
        let now = w.stats(10, 40);
        assert_eq!(now.p95_latency_us, 128, "100 µs lands in (64,128]");
        let all = w.stats(60, 40);
        assert_eq!(all.p95_latency_us, 131_072, "60 s window still sees the slow burst");
    }

    #[test]
    fn empty_windows_are_all_zero() {
        let s = TimeWindows::new().stats(10, 1000);
        assert_eq!(s, WindowStats { window_s: 10, ..WindowStats::default() });
    }

    #[test]
    fn window_stats_roundtrip_as_json() {
        let w = TimeWindows::new();
        w.note(WindowKind::Completed, 7);
        w.note_latency_us(300, 7);
        let s = w.stats(10, 7);
        let text = groupsa_json::to_string(&s);
        assert_eq!(groupsa_json::from_str::<WindowStats>(&text).unwrap(), s);
    }
}
