//! Structured span tracing and the `GROUPSA_TRACE` JSONL emitter.
//!
//! The trace sink is process-global and initialised lazily from the
//! `GROUPSA_TRACE` environment variable on first use. When the
//! variable is unset (the default), [`enabled`] is a single atomic
//! load, [`Span::enter`] returns an inert guard without reading the
//! clock, and [`emit`] returns immediately — the disabled path does no
//! allocation, no I/O, and (by construction) never touches an RNG, so
//! tracing cannot perturb training determinism.
//!
//! When enabled, every call appends one JSON object per line to the
//! trace file. Lines are written with a single `write_all` under a
//! mutex (no buffering), so the file is valid JSONL even if the
//! process is killed mid-run and needs no flush-at-exit hook.
//!
//! Spans nest per thread: a thread-local depth counter stamps each
//! span event with its nesting level, and span events are emitted on
//! drop (so a parent's `dur_us` covers its children, which appear
//! earlier in the file).

use crate::registry::Histogram;
use groupsa_json::Json;
use std::cell::Cell;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// The environment variable that turns tracing on: its value is the
/// JSONL output path.
pub const TRACE_ENV: &str = "GROUPSA_TRACE";

struct Sink {
    file: Mutex<std::fs::File>,
    start: Instant,
    seq: AtomicU64,
}

static SINK: OnceLock<Option<Sink>> = OnceLock::new();

fn sink() -> Option<&'static Sink> {
    SINK.get_or_init(|| {
        let path = match std::env::var(TRACE_ENV) {
            Ok(p) if !p.trim().is_empty() => p,
            _ => return None,
        };
        if let Some(parent) = Path::new(&path).parent() {
            if !parent.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(parent);
            }
        }
        match std::fs::File::create(&path) {
            Ok(file) => Some(Sink { file: Mutex::new(file), start: Instant::now(), seq: AtomicU64::new(0) }),
            Err(e) => {
                eprintln!("groupsa-obs: cannot open {TRACE_ENV}={path}: {e}; tracing disabled");
                None
            }
        }
    })
    .as_ref()
}

/// Whether tracing is on for this process (`GROUPSA_TRACE` was set to
/// an openable path when the first instrumentation point ran). The
/// fast path after initialisation is one atomic load.
pub fn enabled() -> bool {
    sink().is_some()
}

/// Converts any serialisable value to a [`Json`] field payload —
/// helper the [`span!`](crate::span) macro expands to.
pub fn to_json<T: groupsa_json::ToJson>(value: &T) -> Json {
    value.to_json()
}

thread_local! {
    static DEPTH: Cell<u64> = const { Cell::new(0) };
}

fn thread_label() -> String {
    let current = std::thread::current();
    match current.name() {
        Some(name) => name.to_string(),
        None => format!("{:?}", current.id()),
    }
}

fn write_event(s: &Sink, kind: &str, fields: &[(&str, Json)]) {
    let mut members: Vec<(String, Json)> = Vec::with_capacity(fields.len() + 4);
    members.push(("kind".to_string(), Json::String(kind.to_string())));
    members.push(("seq".to_string(), Json::Number(s.seq.fetch_add(1, Ordering::Relaxed) as f64)));
    members.push(("t_us".to_string(), Json::Number(s.start.elapsed().as_micros() as f64)));
    members.push(("thread".to_string(), Json::String(thread_label())));
    for (name, value) in fields {
        members.push((name.to_string(), value.clone()));
    }
    let mut line = Json::Object(members).to_compact_string();
    line.push('\n');
    // Tracing is best-effort; recover a poisoned sink rather than let
    // an unrelated panic cascade into every traced thread.
    let mut file = s.file.lock().unwrap_or_else(PoisonError::into_inner);
    let _ = file.write_all(line.as_bytes());
}

/// Emits one event line (no-op when tracing is disabled). The common
/// fields `kind`/`seq`/`t_us`/`thread` are added automatically.
pub fn emit(kind: &str, fields: &[(&str, Json)]) {
    if let Some(s) = sink() {
        write_event(s, kind, fields);
    }
}

struct SpanLive {
    name: &'static str,
    start: Instant,
    depth: u64,
    fields: Vec<(&'static str, Json)>,
}

/// A scoped timer that emits a `span` event when dropped. Create with
/// [`Span::enter`] or the [`span!`](crate::span) macro; inert (and
/// nearly free) when tracing is disabled.
pub struct Span {
    live: Option<SpanLive>,
}

impl Span {
    /// Opens a span. `fields` are extra payload members attached to
    /// the emitted event.
    pub fn enter(name: &'static str, fields: Vec<(&'static str, Json)>) -> Span {
        if !enabled() {
            return Span { live: None };
        }
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        Span { live: Some(SpanLive { name, start: Instant::now(), depth, fields }) }
    }

    /// An inert span — what the [`span!`](crate::span) macro returns
    /// on the disabled path, without building its field vector.
    pub fn disabled() -> Span {
        Span { live: None }
    }

    /// `true` when this span does nothing (tracing disabled).
    pub fn is_noop(&self) -> bool {
        self.live.is_none()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else { return };
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        if let Some(s) = sink() {
            let mut fields: Vec<(&str, Json)> = Vec::with_capacity(live.fields.len() + 3);
            fields.push(("name", Json::String(live.name.to_string())));
            fields.push(("dur_us", Json::Number(live.start.elapsed().as_micros() as f64)));
            fields.push(("depth", Json::Number(live.depth as f64)));
            fields.extend(live.fields);
            write_event(s, "span", &fields);
        }
    }
}

/// Opens a [`Span`] guard: `span!("group_epoch", "round" => round)`.
/// The first argument is the span name; the rest are
/// `"key" => value` payload fields (any `ToJson` value).
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::enter($name, Vec::new())
    };
    ($name:expr, $($key:literal => $value:expr),+ $(,)?) => {
        // Gate before building the field vector: the disabled path
        // must not allocate or serialise anything.
        if $crate::enabled() {
            $crate::Span::enter($name, vec![$(($key, $crate::to_json(&$value))),+])
        } else {
            $crate::Span::disabled()
        }
    };
}

/// A scoped timer recording into a [`Histogram`] on drop — the
/// per-call instrumentation the `nn` layers use. Obtain via
/// [`maybe_timer`].
pub struct ScopedTimer<'a> {
    hist: &'a Histogram,
    start: Instant,
}

impl Drop for ScopedTimer<'_> {
    fn drop(&mut self) {
        self.hist.record_duration(self.start.elapsed());
    }
}

/// A [`ScopedTimer`] over `hist` when tracing is enabled, `None`
/// otherwise — so hot paths pay one atomic load when disabled.
pub fn maybe_timer(hist: &Histogram) -> Option<ScopedTimer<'_>> {
    if enabled() {
        Some(ScopedTimer { hist, start: Instant::now() })
    } else {
        None
    }
}
