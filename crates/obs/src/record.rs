//! Per-request lifecycle records and the fixed-capacity lock-free ring
//! that stores them.
//!
//! A [`RequestRecord`] is the compact trail one request leaves behind
//! as it flows admission → queue → worker → writer: when it arrived,
//! whether it was admitted or refused, how long it queued, which
//! coalesced batch scored it, how long scoring and serialisation took,
//! and how it ended. Records are *sampled* (see
//! [`crate::telemetry::Telemetry`]) and kept in a [`RecordRing`] — a
//! fixed-capacity overwrite-oldest buffer whose push path is a handful
//! of relaxed atomic stores, so recording can never block or slow the
//! serving hot path.
//!
//! ## Ring semantics (seqlock slots)
//!
//! Each slot carries a sequence word: even = stable, odd = a writer is
//! mid-store. Writers claim the next slot with a single
//! `fetch_add` on the head index, flip the slot's sequence odd with a
//! CAS, store the fields, and flip it back even. If the CAS fails —
//! the ring lapped itself and another writer holds the same slot — the
//! record is dropped (counted in [`RecordRing::dropped`]): losing the
//! oldest entry under overwrite-oldest semantics, never waiting.
//! Readers snapshot by re-checking the sequence word around the field
//! loads and skip torn slots, so a snapshot contains only records that
//! were stored completely.

use std::sync::atomic::{AtomicU64, Ordering};

/// How a recorded request left the system. The wire names (lowercase,
/// via [`RecordOutcome::name`]) extend the `request` trace event's
/// `ok`/`error`/`expired` vocabulary with the two admission refusals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RecordOutcome {
    /// Answered successfully.
    #[default]
    Completed,
    /// Answered with a non-deadline error.
    Error,
    /// Dropped on deadline expiry while queued.
    Expired,
    /// Shed by deadline-aware admission control (counted submitted).
    Shed,
    /// Refused at admission — queue full or engine stopping (never
    /// counted submitted).
    Rejected,
}

impl RecordOutcome {
    /// The lowercase wire name used in trace events and exposition
    /// labels.
    pub fn name(self) -> &'static str {
        match self {
            RecordOutcome::Completed => "ok",
            RecordOutcome::Error => "error",
            RecordOutcome::Expired => "expired",
            RecordOutcome::Shed => "shed",
            RecordOutcome::Rejected => "rejected",
        }
    }

    fn code(self) -> u64 {
        match self {
            RecordOutcome::Completed => 0,
            RecordOutcome::Error => 1,
            RecordOutcome::Expired => 2,
            RecordOutcome::Shed => 3,
            RecordOutcome::Rejected => 4,
        }
    }

    fn from_code(code: u64) -> RecordOutcome {
        match code {
            1 => RecordOutcome::Error,
            2 => RecordOutcome::Expired,
            3 => RecordOutcome::Shed,
            4 => RecordOutcome::Rejected,
            _ => RecordOutcome::Completed,
        }
    }
}

/// One request's lifecycle trail. All times are microseconds; `arrival_us`
/// is measured from the owning [`crate::telemetry::Telemetry`]'s start,
/// the rest are durations of lifecycle phases.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RequestRecord {
    /// The client-chosen request id (also the sampling key).
    pub id: u64,
    /// Arrival at admission, µs since telemetry start.
    pub arrival_us: u64,
    /// How the request ended.
    pub outcome: RecordOutcome,
    /// Time spent queued before a worker popped it.
    pub queue_us: u64,
    /// The coalesced batch that drained it (`0` = never batched:
    /// refused at admission or answered by a dying pool).
    pub batch: u64,
    /// Model-scoring time (0 for expired/refused requests).
    pub score_us: u64,
    /// Serialize-and-write time on the connection's writer thread
    /// (0 for blocking in-process submissions).
    pub write_us: u64,
    /// Admission to final reply, end to end.
    pub total_us: u64,
    /// Captured unconditionally because `total_us` crossed the
    /// slow-request threshold (sampled-out slow requests still land in
    /// the ring).
    pub slow: bool,
}

const SLOT_FIELDS: usize = 8;

/// One seqlock slot: `seq` even = stable, odd = mid-write.
struct Slot {
    seq: AtomicU64,
    data: [AtomicU64; SLOT_FIELDS],
}

impl Slot {
    fn empty() -> Self {
        Slot { seq: AtomicU64::new(0), data: [const { AtomicU64::new(0) }; SLOT_FIELDS] }
    }
}

fn pack(record: &RequestRecord) -> [u64; SLOT_FIELDS] {
    [
        record.id,
        record.arrival_us,
        record.outcome.code() | u64::from(record.slow) << 8,
        record.queue_us,
        record.batch,
        record.score_us,
        record.write_us,
        record.total_us,
    ]
}

fn unpack(data: [u64; SLOT_FIELDS]) -> RequestRecord {
    RequestRecord {
        id: data[0],
        arrival_us: data[1],
        outcome: RecordOutcome::from_code(data[2] & 0xff),
        slow: data[2] & 0x100 != 0,
        queue_us: data[3],
        batch: data[4],
        score_us: data[5],
        write_us: data[6],
        total_us: data[7],
    }
}

/// Fixed-capacity overwrite-oldest record store with a non-blocking
/// push path: one `fetch_add` claims a slot, a CAS-guarded seqlock
/// protects readers from torn stores, and contention on a lapped slot
/// drops the record instead of waiting.
pub struct RecordRing {
    slots: Box<[Slot]>,
    head: AtomicU64,
    dropped: AtomicU64,
}

impl RecordRing {
    /// A ring holding the most recent `capacity.max(1)` records.
    pub fn new(capacity: usize) -> Self {
        let slots = (0..capacity.max(1)).map(|_| Slot::empty()).collect();
        RecordRing { slots, head: AtomicU64::new(0), dropped: AtomicU64::new(0) }
    }

    /// How many records this ring can hold.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total push attempts since creation (successful or dropped).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Pushes dropped because the ring lapped itself onto a slot
    /// another writer was still storing (overwrite-oldest under
    /// extreme contention; never a wait).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Stores `record`, overwriting the oldest entry. Never blocks:
    /// the only shared state is the head index (`fetch_add`) and the
    /// claimed slot's sequence word (one CAS that *drops on failure*).
    pub fn push(&self, record: &RequestRecord) {
        let index = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(index % self.slots.len() as u64) as usize];
        let seq = slot.seq.load(Ordering::Relaxed);
        if seq & 1 == 1 {
            // A lapped writer is still mid-store; drop rather than spin.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if slot.seq.compare_exchange(seq, seq + 1, Ordering::Acquire, Ordering::Relaxed).is_err() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        for (cell, value) in slot.data.iter().zip(pack(record)) {
            cell.store(value, Ordering::Relaxed);
        }
        slot.seq.store(seq + 2, Ordering::Release);
    }

    /// A consistent copy of every completely-stored record, oldest
    /// arrival first. Slots a writer is mid-storing (or that were
    /// overwritten during the read) are skipped, never torn.
    pub fn snapshot(&self) -> Vec<RequestRecord> {
        let mut records = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let before = slot.seq.load(Ordering::Acquire);
            if before == 0 || before & 1 == 1 {
                continue; // never written, or a writer is mid-store
            }
            let data = std::array::from_fn(|i| slot.data[i].load(Ordering::Relaxed));
            if slot.seq.load(Ordering::Acquire) != before {
                continue; // overwritten while reading: skip the torn copy
            }
            records.push(unpack(data));
        }
        records.sort_by_key(|r| (r.arrival_us, r.id));
        records
    }
}

impl std::fmt::Debug for RecordRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecordRing")
            .field("capacity", &self.capacity())
            .field("pushed", &self.pushed())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64) -> RequestRecord {
        RequestRecord {
            id,
            arrival_us: 10 * id,
            outcome: RecordOutcome::Completed,
            queue_us: id + 1,
            batch: id / 4,
            score_us: 2 * id,
            write_us: 3 * id,
            total_us: 6 * id + 1,
            slow: id % 7 == 0,
        }
    }

    #[test]
    fn push_then_snapshot_roundtrips_every_field() {
        let ring = RecordRing::new(8);
        for id in 1..=5 {
            ring.push(&record(id));
        }
        let got = ring.snapshot();
        assert_eq!(got, (1..=5).map(record).collect::<Vec<_>>());
        assert_eq!(ring.pushed(), 5);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn ring_overwrites_oldest_beyond_capacity() {
        let ring = RecordRing::new(4);
        for id in 1..=10 {
            ring.push(&record(id));
        }
        let got = ring.snapshot();
        assert_eq!(got, (7..=10).map(record).collect::<Vec<_>>(), "only the newest 4 survive");
    }

    #[test]
    fn outcome_and_slow_pack_roundtrip() {
        for outcome in [
            RecordOutcome::Completed,
            RecordOutcome::Error,
            RecordOutcome::Expired,
            RecordOutcome::Shed,
            RecordOutcome::Rejected,
        ] {
            for slow in [false, true] {
                let r = RequestRecord { id: 1, outcome, slow, ..RequestRecord::default() };
                assert_eq!(unpack(pack(&r)), r);
            }
        }
    }

    #[test]
    fn zero_capacity_is_clamped_and_empty_ring_snapshots_empty() {
        let ring = RecordRing::new(0);
        assert_eq!(ring.capacity(), 1);
        assert!(ring.snapshot().is_empty());
        ring.push(&record(1));
        ring.push(&record(2));
        assert_eq!(ring.snapshot(), vec![record(2)]);
    }

    #[test]
    fn outcome_wire_names_are_stable() {
        let outcomes = [
            (RecordOutcome::Completed, "ok"),
            (RecordOutcome::Error, "error"),
            (RecordOutcome::Expired, "expired"),
            (RecordOutcome::Shed, "shed"),
            (RecordOutcome::Rejected, "rejected"),
        ];
        for (outcome, name) in outcomes {
            assert_eq!(outcome.name(), name);
            assert_eq!(RecordOutcome::from_code(outcome.code()), outcome);
        }
    }
}
