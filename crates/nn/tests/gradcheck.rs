//! Finite-difference gradient checks for the layers the voting scheme
//! depends on most: the socially-masked self-attention of Eq. (3)–(5)
//! and the BPR ranking losses of Eq. (21)/(24). Every analytic backward
//! pass is verified against `groupsa_tensor::check`'s central-difference
//! approximation — with respect to the *input* and with respect to every
//! registered *parameter*.

use groupsa_nn::attention::social_bias_mask;
use groupsa_nn::loss::{bpr_one_vs_rest, bpr_pairwise};
use groupsa_nn::{ParamStore, SelfAttention};
use groupsa_tensor::check::assert_grad_matches;
use groupsa_tensor::rng::{gaussian_matrix, seeded};
use groupsa_tensor::{Graph, Matrix};

fn members(l: usize, d: usize, seed: u64) -> Matrix {
    gaussian_matrix(&mut seeded(seed), l, d, 0.0, 0.8)
}

/// A sparse "friendship" pattern with an asymmetric structure, so the
/// mask actually changes the attention distribution.
fn ring_mask(l: usize) -> (Vec<Vec<bool>>, Matrix) {
    let allowed: Vec<Vec<bool>> =
        (0..l).map(|i| (0..l).map(|j| (i + 1) % l == j).collect()).collect();
    let mask = social_bias_mask(&allowed);
    (allowed, mask)
}

#[test]
fn masked_attention_input_gradient_matches_finite_differences() {
    let mut rng = seeded(11);
    let mut store = ParamStore::new();
    let attn = SelfAttention::new(&mut store, &mut rng, "a", 4, 4);
    let (_, mask) = ring_mask(4);
    let x0 = members(4, 4, 12);
    // A fixed non-uniform projection keeps every output coordinate in
    // the loss (mean_all alone would null out sign structure).
    let proj = Matrix::from_fn(4, 4, |r, c| ((2 * r + c) as f32 * 0.7).sin());
    assert_grad_matches(&x0, 1e-2, 5e-2, |m| {
        let mut g = Graph::new();
        let x = g.leaf(m.clone());
        let z = attn.forward(&mut g, &store, x, Some(&mask));
        let w = g.leaf(proj.clone());
        let p = g.mul_elem(z, w);
        let loss = g.sum_all(p);
        (g.value(loss).scalar(), g.backward(loss).get(x).unwrap().clone())
    });
}

#[test]
fn masked_attention_parameter_gradients_match_finite_differences() {
    let mut rng = seeded(21);
    let mut store = ParamStore::new();
    let attn = SelfAttention::new(&mut store, &mut rng, "a", 4, 4);
    let (_, mask) = ring_mask(5);
    let x0 = members(5, 4, 22);
    // Check wq, wk and wv by perturbing each slot's value in turn and
    // reading the accumulated gradient back out of the store.
    for slot in 0..store.len() {
        let p0 = store.value(slot).clone();
        let name = store.get(slot).name().to_string();
        assert_grad_matches(&p0, 1e-2, 5e-2, |m| {
            store.get_mut(slot).value = m.clone();
            store.zero_grads();
            let mut g = Graph::new();
            let x = g.leaf(x0.clone());
            let z = attn.forward(&mut g, &store, x, Some(&mask));
            let loss = g.mean_all(z);
            let scalar = g.value(loss).scalar();
            let grads = g.backward(loss);
            store.accumulate(&g, &grads);
            let analytic = store.get(slot).grad.clone();
            (scalar, analytic)
        });
        store.get_mut(slot).value = p0;
        eprintln!("parameter '{name}' gradient verified");
    }
}

#[test]
fn bpr_one_vs_rest_gradient_matches_finite_differences() {
    // 1 positive + 3 negatives, scores straddling zero.
    let s0 = Matrix::from_vec(4, 1, vec![0.9, -0.4, 0.15, 0.6]);
    assert_grad_matches(&s0, 1e-3, 1e-2, |m| {
        let mut g = Graph::new();
        let s = g.leaf(m.clone());
        let l = bpr_one_vs_rest(&mut g, s);
        (g.value(l).scalar(), g.backward(l).get(s).unwrap().clone())
    });
}

#[test]
fn bpr_pairwise_gradients_match_for_both_arguments() {
    let pos0 = Matrix::from_vec(3, 1, vec![0.8, -0.1, 0.3]);
    let neg0 = Matrix::from_vec(3, 1, vec![0.2, 0.5, -0.7]);
    assert_grad_matches(&pos0, 1e-3, 1e-2, |m| {
        let mut g = Graph::new();
        let pos = g.leaf(m.clone());
        let neg = g.leaf(neg0.clone());
        let l = bpr_pairwise(&mut g, pos, neg);
        (g.value(l).scalar(), g.backward(l).get(pos).unwrap().clone())
    });
    assert_grad_matches(&neg0, 1e-3, 1e-2, |m| {
        let mut g = Graph::new();
        let pos = g.leaf(pos0.clone());
        let neg = g.leaf(m.clone());
        let l = bpr_pairwise(&mut g, pos, neg);
        (g.value(l).scalar(), g.backward(l).get(neg).unwrap().clone())
    });
}

#[test]
fn attention_gradient_flows_through_bpr_end_to_end() {
    // Compose the two: member embeddings → masked self-attention →
    // linear score head → BPR. The gradient w.r.t. the embeddings must
    // still match finite differences through the whole chain.
    let mut rng = seeded(31);
    let mut store = ParamStore::new();
    let attn = SelfAttention::new(&mut store, &mut rng, "a", 4, 4);
    let (_, mask) = ring_mask(4);
    let x0 = members(4, 4, 32);
    let head = Matrix::from_fn(4, 1, |r, _| (r as f32 + 1.0) * 0.3);
    assert_grad_matches(&x0, 1e-2, 5e-2, |m| {
        let mut g = Graph::new();
        let x = g.leaf(m.clone());
        let z = attn.forward(&mut g, &store, x, Some(&mask));
        let h = g.leaf(head.clone());
        let scores = g.matmul(z, h); // l×1: row 0 is "the positive"
        let l = bpr_one_vs_rest(&mut g, scores);
        (g.value(l).scalar(), g.backward(l).get(x).unwrap().clone())
    });
}

#[test]
fn masked_attention_gets_zero_gradient_from_masked_positions() {
    // With a mask that forbids everyone except self, member i's output
    // depends only on member i — so d output_row_0 / d x_row_1 must be
    // exactly zero, and the finite difference agrees.
    let l = 3;
    let allowed: Vec<Vec<bool>> = (0..l).map(|i| (0..l).map(|j| i == j).collect()).collect();
    let mask = social_bias_mask(&allowed);
    let mut rng = seeded(41);
    let mut store = ParamStore::new();
    let attn = SelfAttention::new(&mut store, &mut rng, "a", 4, 4);
    let x0 = members(l, 4, 42);

    let row0_sum = |m: &Matrix| {
        let mut g = Graph::new();
        let x = g.leaf(m.clone());
        let z = attn.forward(&mut g, &store, x, Some(&mask));
        let r0 = g.slice_rows(z, 0, 1);
        let s = g.sum_all(r0);
        (g.value(s).scalar(), g.backward(s).get(x).unwrap().clone())
    };
    let (_, analytic) = row0_sum(&x0);
    for j in 1..l {
        for c in 0..4 {
            assert_eq!(
                analytic[(j, c)],
                0.0,
                "row 0 must not receive gradient from isolated member {j}"
            );
        }
    }
    assert_grad_matches(&x0, 1e-2, 5e-2, |m| row0_sum(m));
}
