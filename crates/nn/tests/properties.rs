//! Property-based tests: invariants of layers, losses and optimizers.

use groupsa_nn::attention::social_bias_mask;
use groupsa_nn::loss::bpr_one_vs_rest;
use groupsa_nn::optim::{Adam, Optimizer, Sgd};
use groupsa_nn::{Init, LayerNorm, Mlp, ParamStore, SelfAttention, VanillaAttention};
use groupsa_tensor::rng::seeded;
use groupsa_tensor::{Graph, Matrix};
use proptest::prelude::*;

fn matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = seeded(seed);
    groupsa_tensor::rng::gaussian_matrix(&mut rng, rows, cols, 0.0, 1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn attention_rows_always_distributions(l in 1usize..8, seed in 0u64..500) {
        let mut rng = seeded(seed);
        let mut store = ParamStore::new();
        let attn = SelfAttention::new(&mut store, &mut rng, "a", 8, 8);
        let x = matrix(l, 8, seed ^ 1);
        let (_, w) = attn.forward_inference(&store, &x, None);
        for row in w.rows_iter() {
            let s: f32 = row.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4, "row sum {s}");
            prop_assert!(row.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
        }
    }

    #[test]
    fn masked_attention_respects_arbitrary_masks(l in 2usize..7, seed in 0u64..300) {
        let mut rng = seeded(seed);
        let mut store = ParamStore::new();
        let attn = SelfAttention::new(&mut store, &mut rng, "a", 6, 6);
        let x = matrix(l, 6, seed ^ 2);
        // Random boolean adjacency.
        let allowed: Vec<Vec<bool>> = (0..l).map(|i| (0..l).map(|j| (i * 7 + j * 3 + seed as usize) % 3 == 0).collect()).collect();
        let mask = social_bias_mask(&allowed);
        let (_, w) = attn.forward_inference(&store, &x, Some(&mask));
        for i in 0..l {
            for j in 0..l {
                if i != j && !allowed[i][j] {
                    prop_assert_eq!(w[(i, j)], 0.0, "masked edge {}→{} must get zero weight", i, j);
                }
            }
            prop_assert!(w[(i, i)] > 0.0, "diagonal stays open");
        }
    }

    #[test]
    fn vanilla_attention_invariant_under_row_count(n in 1usize..9, seed in 0u64..300) {
        let mut rng = seeded(seed);
        let mut store = ParamStore::new();
        let va = VanillaAttention::new(&mut store, &mut rng, "v", 4, 6);
        let rows = matrix(n, 4, seed ^ 3);
        let w = va.weights_inference(&store, &rows);
        prop_assert_eq!(w.shape(), (1, n));
        prop_assert!((w.sum() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn layer_norm_output_row_stats(rows in 1usize..6, seed in 0u64..300) {
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 8);
        let x = matrix(rows, 8, seed ^ 4);
        let y = ln.forward_inference(&store, &x);
        for row in y.rows_iter() {
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            prop_assert!(mean.abs() < 1e-3, "fresh LN output rows are centred, mean {mean}");
        }
    }

    #[test]
    fn bpr_loss_positive_and_decreasing_in_margin(base in -3.0f32..3.0, gap in 0.01f32..4.0) {
        let loss_at = |margin: f32| {
            let mut g = Graph::new();
            let s = g.leaf(Matrix::from_vec(2, 1, vec![base + margin, base]));
            let l = bpr_one_vs_rest(&mut g, s);
            g.value(l).scalar()
        };
        let small = loss_at(gap * 0.5);
        let large = loss_at(gap);
        prop_assert!(small > 0.0 && large > 0.0);
        prop_assert!(large < small, "larger margin ⇒ smaller loss");
    }

    #[test]
    fn optimizers_reduce_a_convex_loss(seed in 0u64..200, lr in 0.005f32..0.1) {
        for which in 0..2 {
            let mut store = ParamStore::new();
            let slot = store.add("theta", matrix(1, 4, seed));
            let target = matrix(1, 4, seed ^ 9);
            let mut adam;
            let mut sgd;
            let opt: &mut dyn Optimizer = if which == 0 {
                adam = Adam::new(lr);
                &mut adam
            } else {
                sgd = Sgd::new(lr);
                &mut sgd
            };
            let loss = |store: &ParamStore| {
                store.value(slot).sub(&target).frobenius_norm()
            };
            let before = loss(&store);
            for _ in 0..60 {
                let mut g = Graph::new();
                let th = g.param_full(slot, store.value(slot));
                let t = g.leaf(target.clone());
                let d = g.sub(th, t);
                let sq = g.mul_elem(d, d);
                let l = g.sum_all(sq);
                let grads = g.backward(l);
                store.accumulate(&g, &grads);
                opt.step(&mut store);
            }
            let after = loss(&store);
            prop_assert!(after < before, "optimizer {which} must make progress: {before} → {after}");
        }
    }

    #[test]
    fn mlp_is_deterministic_and_finite(seed in 0u64..300, rows in 1usize..6) {
        let mut rng = seeded(seed);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, &mut rng, "m", &[6, 10, 1], false);
        let x = matrix(rows, 6, seed ^ 5);
        let a = mlp.forward_inference(&store, &x);
        let b = mlp.forward_inference(&store, &x);
        prop_assert_eq!(a.clone(), b);
        prop_assert!(a.is_finite());
        prop_assert_eq!(a.shape(), (rows, 1));
    }

    #[test]
    fn glorot_init_is_bounded_and_seeded(rows in 1usize..30, cols in 1usize..30, seed in 0u64..500) {
        let a = Init::Glorot.build(&mut seeded(seed), rows, cols);
        let b = Init::Glorot.build(&mut seeded(seed), rows, cols);
        prop_assert_eq!(a.clone(), b);
        let limit = (6.0 / (rows + cols) as f32).sqrt();
        prop_assert!(a.as_slice().iter().all(|&x| x.abs() <= limit));
    }
}
