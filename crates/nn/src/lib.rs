//! # groupsa-nn
//!
//! Neural-network building blocks for the GroupSA reproduction: parameter
//! storage, initialisation, layers (linear, embedding, MLP, layer-norm,
//! dropout), the attention machinery of the paper (masked scaled
//! dot-product *social self-attention*, position-wise FFN, transformer-style
//! encoder layers, and the two-layer "vanilla" attention scorer used for
//! preference aggregation), optimizers (SGD, dense & row-sparse Adam) and
//! the BPR pairwise ranking loss.
//!
//! Everything is built on the autodiff tape of [`groupsa_tensor`]:
//! a layer owns *slots* into a [`ParamStore`] and records its forward pass
//! onto a [`Graph`](groupsa_tensor::Graph); after `backward`, the trainer
//! calls [`ParamStore::accumulate`] to pull gradients off the tape
//! (scatter-adding embedding-row gradients) and then an
//! [`optim`] optimizer to update the parameters.
//!
//! ```
//! use groupsa_nn::{ParamStore, Linear, Init, optim::{Adam, Optimizer}};
//! use groupsa_tensor::{Graph, Matrix, rng};
//!
//! let mut rng = rng::seeded(1);
//! let mut store = ParamStore::new();
//! let layer = Linear::new(&mut store, &mut rng, "fc", 4, 2, Init::Glorot);
//! let mut adam = Adam::default_paper();
//!
//! let x = Matrix::ones(3, 4);
//! let mut g = Graph::new();
//! let xs = g.leaf(x);
//! let y = layer.forward(&mut g, &store, xs);
//! let loss = g.mean_all(y);
//! let grads = g.backward(loss);
//! store.accumulate(&g, &grads);
//! adam.step(&mut store);
//! ```

#![warn(missing_docs)]

pub mod attention;
pub mod dropout;
pub mod embedding;
pub mod ffn;
pub mod init;
pub mod layernorm;
pub mod linear;
pub mod loss;
pub mod mlp;
pub mod optim;
pub mod param;

pub use attention::{SelfAttention, TransformerLayer, VanillaAttention};
pub use dropout::Dropout;
pub use embedding::Embedding;
pub use ffn::FeedForward;
pub use init::Init;
pub use layernorm::LayerNorm;
pub use linear::Linear;
pub use mlp::Mlp;
pub use param::{GradSink, ParamStore, Parameter};
