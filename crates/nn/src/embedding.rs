//! Embedding tables with row-sparse gradients.

use crate::{Init, ParamStore};
use groupsa_tensor::{Graph, Matrix, NodeId};
use rand::Rng;

/// An `n×d` lookup table. Lookups enter the autodiff graph as gathered
/// rows whose gradients are scatter-added back into the table — the
/// mechanism that keeps per-example training cheap over the user, item
/// and group tables of the paper.
#[derive(Clone, Debug)]
pub struct Embedding {
    slot: usize,
    count: usize,
    dim: usize,
}

impl Embedding {
    /// Registers an embedding table of `count` rows of dimension `dim`
    /// (the paper initialises embeddings with Glorot, §III-E).
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        count: usize,
        dim: usize,
        init: Init,
    ) -> Self {
        let slot = store.add(format!("{name}.table"), init.build(rng, count, dim));
        Self { slot, count, dim }
    }

    /// Number of rows (vocabulary size).
    pub fn count(&self) -> usize {
        self.count
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The parameter slot of the underlying table.
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Records a lookup of `indices` on `g`, returning a
    /// `indices.len()×dim` node.
    ///
    /// # Panics
    /// If any index is out of bounds.
    pub fn lookup(&self, g: &mut Graph, store: &ParamStore, indices: &[usize]) -> NodeId {
        g.param_rows(self.slot, store.value(self.slot), indices)
    }

    /// Gradient-free lookup for inference paths.
    pub fn lookup_inference(&self, store: &ParamStore, indices: &[usize]) -> Matrix {
        store.value(self.slot).gather_rows(indices)
    }

    /// Borrows one embedding row.
    pub fn row<'s>(&self, store: &'s ParamStore, index: usize) -> &'s [f32] {
        store.value(self.slot).row(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Optimizer};
    use groupsa_tensor::rng::seeded;

    #[test]
    fn lookup_returns_table_rows() {
        let mut rng = seeded(1);
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, &mut rng, "user", 6, 3, Init::Glorot);
        assert_eq!(emb.count(), 6);
        assert_eq!(emb.dim(), 3);

        let mut g = Graph::new();
        let e = emb.lookup(&mut g, &store, &[5, 0]);
        assert_eq!(g.value(e).row(0), emb.row(&store, 5));
        assert_eq!(g.value(e).row(1), emb.row(&store, 0));
        assert_eq!(emb.lookup_inference(&store, &[2]).row(0), emb.row(&store, 2));
    }

    #[test]
    fn training_moves_only_looked_up_rows() {
        let mut rng = seeded(2);
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, &mut rng, "item", 5, 2, Init::Glorot);
        let before = store.value(emb.slot()).clone();

        let mut g = Graph::new();
        let e = emb.lookup(&mut g, &store, &[3]);
        let sq = g.mul_elem(e, e);
        let loss = g.sum_all(sq);
        let grads = g.backward(loss);
        store.accumulate(&g, &grads);
        Adam::new(0.1).step(&mut store);

        let after = store.value(emb.slot());
        assert_ne!(after.row(3), before.row(3));
        for r in [0usize, 1, 2, 4] {
            assert_eq!(after.row(r), before.row(r));
        }
    }

    #[test]
    fn repeated_indices_accumulate_gradient() {
        let mut store = ParamStore::new();
        let mut rng = seeded(3);
        let emb = Embedding::new(&mut store, &mut rng, "e", 3, 1, Init::Const(1.0));

        let mut g = Graph::new();
        let e = emb.lookup(&mut g, &store, &[1, 1, 1]);
        let loss = g.sum_all(e);
        let grads = g.backward(loss);
        store.accumulate(&g, &grads);
        assert_eq!(store.get(emb.slot()).grad.row(1), &[3.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_lookup_panics() {
        let mut rng = seeded(4);
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, &mut rng, "e", 2, 2, Init::Glorot);
        let mut g = Graph::new();
        let _ = emb.lookup(&mut g, &store, &[2]);
    }
}
