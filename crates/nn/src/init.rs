//! Weight-initialisation strategies.
//!
//! The paper (§III-E) uses Glorot for embedding layers and `N(0, 0.1²)`
//! for hidden layers; both are captured by [`Init`].

use groupsa_tensor::{rng, Matrix};
use rand::Rng;

/// How a parameter matrix is initialised.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Init {
    /// Glorot / Xavier uniform (paper's embedding initialiser).
    Glorot,
    /// Gaussian with mean 0 and the given standard deviation
    /// (the paper uses `Gaussian(0.1)` for hidden layers).
    Gaussian(f32),
    /// All zeros (biases).
    Zeros,
    /// All ones (layer-norm gain).
    Ones,
    /// Every element set to the given constant.
    Const(f32),
}

impl Init {
    /// The paper's hidden-layer initialiser.
    pub const PAPER_HIDDEN: Init = Init::Gaussian(0.1);

    /// Materialises a `rows × cols` matrix.
    pub fn build(self, rng: &mut impl Rng, rows: usize, cols: usize) -> Matrix {
        match self {
            Init::Glorot => rng::glorot_uniform(rng, rows, cols),
            Init::Gaussian(std) => rng::gaussian_matrix(rng, rows, cols, 0.0, std),
            Init::Zeros => Matrix::zeros(rows, cols),
            Init::Ones => Matrix::ones(rows, cols),
            Init::Const(c) => Matrix::full(rows, cols, c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use groupsa_tensor::rng::seeded;

    #[test]
    fn shapes_and_values() {
        let mut r = seeded(5);
        assert_eq!(Init::Zeros.build(&mut r, 2, 3), Matrix::zeros(2, 3));
        assert_eq!(Init::Ones.build(&mut r, 2, 2), Matrix::ones(2, 2));
        assert_eq!(Init::Const(0.5).build(&mut r, 1, 4), Matrix::full(1, 4, 0.5));
        assert_eq!(Init::Glorot.build(&mut r, 8, 8).shape(), (8, 8));
    }

    #[test]
    fn gaussian_std_controls_spread() {
        let mut r = seeded(6);
        let narrow = Init::Gaussian(0.01).build(&mut r, 50, 50);
        let mut r = seeded(6);
        let wide = Init::Gaussian(1.0).build(&mut r, 50, 50);
        assert!(narrow.frobenius_norm() < wide.frobenius_norm());
    }

    #[test]
    fn deterministic_under_same_seed() {
        let a = Init::Glorot.build(&mut seeded(9), 4, 4);
        let b = Init::Glorot.build(&mut seeded(9), 4, 4);
        assert_eq!(a, b);
    }
}
