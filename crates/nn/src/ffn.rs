//! Position-wise feed-forward network (paper Eq. 6).

use crate::{Init, Linear, ParamStore};
use groupsa_tensor::{Graph, Matrix, NodeId};
use rand::Rng;

/// `FFN(z) = ReLU(z·W₁ + b₁)·W₂ + b₂` — the second sub-layer of every
/// voting round in the stacked self-attention network (paper Eq. 6).
#[derive(Clone, Debug)]
pub struct FeedForward {
    l1: Linear,
    l2: Linear,
}

impl FeedForward {
    /// Builds a `d_model → d_ff → d_model` feed-forward block.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        d_model: usize,
        d_ff: usize,
    ) -> Self {
        Self {
            l1: Linear::new(store, rng, &format!("{name}.ffn1"), d_model, d_ff, Init::PAPER_HIDDEN),
            l2: Linear::new(store, rng, &format!("{name}.ffn2"), d_ff, d_model, Init::PAPER_HIDDEN),
        }
    }

    /// Model width (input and output dimensionality).
    pub fn d_model(&self) -> usize {
        self.l1.in_dim()
    }

    /// Records the forward pass for a `batch×d_model` node.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: NodeId) -> NodeId {
        let h = self.l1.forward(g, store, x);
        let h = g.relu(h);
        self.l2.forward(g, store, h)
    }

    /// Gradient-free forward pass (activation applied in place — no
    /// extra allocation beyond the two affine outputs).
    pub fn forward_inference(&self, store: &ParamStore, x: &Matrix) -> Matrix {
        let mut h = self.l1.forward_inference(store, x);
        h.map_inplace(groupsa_tensor::ops::relu);
        self.l2.forward_inference(store, &h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use groupsa_tensor::check::assert_grad_matches;
    use groupsa_tensor::rng::seeded;

    #[test]
    fn preserves_width() {
        let mut rng = seeded(1);
        let mut store = ParamStore::new();
        let ffn = FeedForward::new(&mut store, &mut rng, "f", 8, 16);
        assert_eq!(ffn.d_model(), 8);
        let mut g = Graph::new();
        let x = g.leaf(Matrix::ones(3, 8));
        let y = ffn.forward(&mut g, &store, x);
        assert_eq!(g.value(y).shape(), (3, 8));
    }

    #[test]
    fn graph_and_inference_agree() {
        let mut rng = seeded(2);
        let mut store = ParamStore::new();
        let ffn = FeedForward::new(&mut store, &mut rng, "f", 4, 6);
        let x = Matrix::from_fn(2, 4, |r, c| 0.3 * (r + c) as f32 - 0.4);
        let mut g = Graph::new();
        let xs = g.leaf(x.clone());
        let y = ffn.forward(&mut g, &store, xs);
        assert!(g.value(y).approx_eq(&ffn.forward_inference(&store, &x), 1e-5));
    }

    #[test]
    fn gradient_check() {
        let mut rng = seeded(3);
        let mut store = ParamStore::new();
        let ffn = FeedForward::new(&mut store, &mut rng, "f", 3, 5);
        let x0 = Matrix::from_fn(2, 3, |r, c| 0.4 * (r as f32) - 0.25 * (c as f32) + 0.2);
        assert_grad_matches(&x0, 1e-2, 3e-2, |m| {
            let mut g = Graph::new();
            let x = g.leaf(m.clone());
            let y = ffn.forward(&mut g, &store, x);
            let loss = g.mean_all(y);
            (g.value(loss).scalar(), g.backward(loss).get(x).unwrap().clone())
        });
    }
}
