//! Multi-layer perceptron towers (paper Eq. 19, 20, 22).

use crate::{Init, Linear, ParamStore};
use groupsa_tensor::{Graph, Matrix, NodeId};
use rand::Rng;

/// A stack of [`Linear`] layers with ReLU between them.
///
/// Two shapes appear in the paper:
/// * the *fusion* MLP of Eq. (19), whose every layer (including the last)
///   is activated — build with `activate_last = true`;
/// * the *prediction* towers of Eq. (20)/(22), whose last layer is a
///   plain linear scorer (`ŷ = wᵀ·c`) — build with `activate_last = false`.
#[derive(Clone, Debug)]
pub struct Mlp {
    layers: Vec<Linear>,
    activate_last: bool,
}

impl Mlp {
    /// Builds an MLP mapping `dims[0] → dims[1] → … → dims.last()`.
    ///
    /// # Panics
    /// If `dims` has fewer than two entries.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        dims: &[usize],
        activate_last: bool,
    ) -> Self {
        assert!(dims.len() >= 2, "Mlp::new: need at least input and output dims, got {dims:?}");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(store, rng, &format!("{name}.{i}"), w[0], w[1], Init::PAPER_HIDDEN))
            .collect();
        Self { layers, activate_last }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Number of affine layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// All parameter slots (weights and biases, layer by layer) — used
    /// for warm-starting one tower from another of identical shape.
    pub fn param_slots(&self) -> Vec<usize> {
        self.layers
            .iter()
            .flat_map(|l| {
                let (w, b) = l.param_slots();
                [w, b]
            })
            .collect()
    }

    /// Records the forward pass for a `batch×in_dim` node.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: NodeId) -> NodeId {
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(g, store, h);
            if i < last || self.activate_last {
                h = g.relu(h);
            }
        }
        h
    }

    /// Gradient-free forward pass. Unlike the graph path this records
    /// no tape and allocates only the per-layer outputs (activations
    /// are applied in place, and the input is never copied).
    pub fn forward_inference(&self, store: &ParamStore, x: &Matrix) -> Matrix {
        // lint: allow(panic-reach) — structural invariant: Mlp::new rejects empty layer lists.
        let (first, rest) = self.layers.split_first().expect("Mlp has at least one layer");
        let mut h = first.forward_inference(store, x);
        if !rest.is_empty() || self.activate_last {
            h.map_inplace(groupsa_tensor::ops::relu);
        }
        for (i, layer) in rest.iter().enumerate() {
            h = layer.forward_inference(store, &h);
            if i + 1 < rest.len() || self.activate_last {
                h.map_inplace(groupsa_tensor::ops::relu);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use groupsa_tensor::rng::seeded;

    #[test]
    fn dims_and_depth() {
        let mut rng = seeded(1);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, &mut rng, "m", &[8, 16, 4, 1], false);
        assert_eq!(mlp.in_dim(), 8);
        assert_eq!(mlp.out_dim(), 1);
        assert_eq!(mlp.depth(), 3);
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn single_dim_panics() {
        let mut rng = seeded(1);
        let mut store = ParamStore::new();
        let _ = Mlp::new(&mut store, &mut rng, "m", &[8], false);
    }

    #[test]
    fn unactivated_head_can_go_negative() {
        let mut rng = seeded(2);
        let mut store = ParamStore::new();
        let scorer = Mlp::new(&mut store, &mut rng, "m", &[4, 8, 1], false);
        // With many random inputs, a linear head must produce some
        // negative scores; a ReLU head could not.
        let x = Matrix::from_fn(64, 4, |r, c| ((r * 7 + c * 3) % 13) as f32 - 6.0);
        let y = scorer.forward_inference(&store, &x);
        assert!(y.min() < 0.0, "linear scoring head should produce negatives");
    }

    #[test]
    fn activated_last_layer_is_nonnegative() {
        let mut rng = seeded(3);
        let mut store = ParamStore::new();
        let fusion = Mlp::new(&mut store, &mut rng, "m", &[4, 8, 4], true);
        let x = Matrix::from_fn(16, 4, |r, c| (r as f32 - 8.0) * 0.5 + c as f32 * 0.1);
        let y = fusion.forward_inference(&store, &x);
        assert!(y.min() >= 0.0);
    }

    #[test]
    fn graph_and_inference_agree() {
        let mut rng = seeded(4);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, &mut rng, "m", &[3, 5, 2], false);
        let x = Matrix::from_fn(4, 3, |r, c| 0.2 * (r + 2 * c) as f32 - 0.5);
        let mut g = Graph::new();
        let xs = g.leaf(x.clone());
        let y = mlp.forward(&mut g, &store, xs);
        assert!(g.value(y).approx_eq(&mlp.forward_inference(&store, &x), 1e-5));
    }
}
