//! Pairwise ranking losses (paper Eq. 21 and 24).
//!
//! Both the group-item and user-item tasks are trained with the BPR
//! pairwise objective `−ln σ(ŷ_pos − ŷ_neg)` over one observed positive
//! and `N` sampled negatives. Implemented via the stable identity
//! `−ln σ(x) = softplus(−x)`. The `λ‖Θ‖²` term is applied as optimizer
//! weight decay (see [`crate::optim`]).

use groupsa_tensor::{Graph, NodeId};

/// BPR loss pairing each row of `pos` with the same row of `neg`
/// (`n×1` each): `mean softplus(neg − pos)`.
pub fn bpr_pairwise(g: &mut Graph, pos: NodeId, neg: NodeId) -> NodeId {
    let diff = g.sub(neg, pos);
    let sp = g.softplus(diff);
    g.mean_all(sp)
}

/// BPR loss for one positive against `N` negatives: `scores` is
/// `(1+N)×1` with the positive in row 0 (the paper's per-example
/// sampling scheme, §II-E "Training Method").
///
/// # Panics
/// If `scores` has fewer than 2 rows.
pub fn bpr_one_vs_rest(g: &mut Graph, scores: NodeId) -> NodeId {
    let rows = g.value(scores).rows();
    assert!(rows >= 2, "bpr_one_vs_rest: need 1 positive + ≥1 negative, got {rows} rows");
    let pos = g.slice_rows(scores, 0, 1);
    let pos = g.repeat_rows(pos, rows - 1);
    let neg = g.slice_rows(scores, 1, rows - 1);
    bpr_pairwise(g, pos, neg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use groupsa_tensor::check::assert_grad_matches;
    use groupsa_tensor::Matrix;

    #[test]
    fn loss_is_ln2_when_scores_equal() {
        let mut g = Graph::new();
        let s = g.leaf(Matrix::from_vec(3, 1, vec![0.5, 0.5, 0.5]));
        let l = bpr_one_vs_rest(&mut g, s);
        assert!((g.value(l).scalar() - std::f32::consts::LN_2).abs() < 1e-5);
    }

    #[test]
    fn loss_decreases_as_margin_grows() {
        let margin_loss = |m: f32| {
            let mut g = Graph::new();
            let s = g.leaf(Matrix::from_vec(2, 1, vec![m, 0.0]));
            let l = bpr_one_vs_rest(&mut g, s);
            g.value(l).scalar()
        };
        assert!(margin_loss(2.0) < margin_loss(1.0));
        assert!(margin_loss(1.0) < margin_loss(0.0));
        assert!(margin_loss(0.0) < margin_loss(-1.0));
        // Saturation: a huge margin drives the loss to ~0.
        assert!(margin_loss(30.0) < 1e-6);
    }

    #[test]
    fn loss_is_always_positive() {
        for m in [-5.0f32, -1.0, 0.0, 1.0, 5.0] {
            let mut g = Graph::new();
            let s = g.leaf(Matrix::from_vec(2, 1, vec![m, 0.0]));
            let l = bpr_one_vs_rest(&mut g, s);
            assert!(g.value(l).scalar() > 0.0);
        }
    }

    #[test]
    fn gradient_pushes_positive_up_and_negatives_down() {
        let mut g = Graph::new();
        let s = g.leaf(Matrix::from_vec(3, 1, vec![0.0, 0.0, 0.0]));
        let l = bpr_one_vs_rest(&mut g, s);
        let grads = g.backward(l);
        let ds = grads.get(s).unwrap();
        assert!(ds[(0, 0)] < 0.0, "positive score gradient must be negative (ascent direction up)");
        assert!(ds[(1, 0)] > 0.0);
        assert!(ds[(2, 0)] > 0.0);
    }

    #[test]
    fn bpr_gradient_check() {
        let s0 = Matrix::from_vec(4, 1, vec![0.7, -0.2, 0.1, 0.4]);
        assert_grad_matches(&s0, 1e-3, 1e-2, |m| {
            let mut g = Graph::new();
            let s = g.leaf(m.clone());
            let l = bpr_one_vs_rest(&mut g, s);
            (g.value(l).scalar(), g.backward(l).get(s).unwrap().clone())
        });
    }

    #[test]
    fn pairwise_matches_manual_formula() {
        let mut g = Graph::new();
        let pos = g.leaf(Matrix::from_vec(2, 1, vec![1.0, 2.0]));
        let neg = g.leaf(Matrix::from_vec(2, 1, vec![0.5, 3.0]));
        let l = bpr_pairwise(&mut g, pos, neg);
        let expected = (groupsa_tensor::ops::softplus(-0.5) + groupsa_tensor::ops::softplus(1.0)) / 2.0;
        assert!((g.value(l).scalar() - expected).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "need 1 positive")]
    fn one_vs_rest_requires_negatives() {
        let mut g = Graph::new();
        let s = g.leaf(Matrix::from_vec(1, 1, vec![0.5]));
        let _ = bpr_one_vs_rest(&mut g, s);
    }
}
