//! The attention machinery of the paper.
//!
//! Three pieces:
//!
//! * [`SelfAttention`] — scaled dot-product self-attention with an
//!   additive bias mask, exactly paper Eq. (1)–(5). The *social bias
//!   matrix* `S ∈ {0, −∞}^{l×l}` is passed as the mask: `−∞` disables
//!   attention between socially unconnected group members.
//! * [`TransformerLayer`] — one *voting round*: social self-attention and
//!   a position-wise FFN, each wrapped in residual + LayerNorm
//!   ("LayerNorm(x + Sublayer(x))", §II-C), with optional dropout.
//! * [`VanillaAttention`] — the two-layer scoring network of
//!   Eq. (9)–(10) (also Eq. 13–14 and 17–18): a softmax over per-row
//!   scores `w₂ᵀ·ReLU(W₁·[a ⊕ b] + b₁) + b₂`, used to aggregate member
//!   (or item / friend) representations.

use crate::{Dropout, FeedForward, Init, LayerNorm, Linear, ParamStore};
use groupsa_obs::{Histogram, ScopedTimer};
use groupsa_tensor::{ops, Graph, Matrix, NodeId};
use rand::Rng;
use std::sync::{Arc, OnceLock};

/// A per-call timer into the named histogram of the process-wide
/// metrics registry — `None` (one atomic load, no clock read) unless
/// `GROUPSA_TRACE` is on. The `Arc` handle is cached in `slot`, so the
/// registry lock is taken once per histogram per process.
fn layer_timer(slot: &'static OnceLock<Arc<Histogram>>, name: &'static str) -> Option<ScopedTimer<'static>> {
    if !groupsa_obs::enabled() {
        return None;
    }
    groupsa_obs::maybe_timer(slot.get_or_init(|| groupsa_obs::global().histogram(name)))
}

static ATTN_FORWARD: OnceLock<Arc<Histogram>> = OnceLock::new();
static ATTN_INFER: OnceLock<Arc<Histogram>> = OnceLock::new();
static VOTING_FORWARD: OnceLock<Arc<Histogram>> = OnceLock::new();
static VOTING_INFER: OnceLock<Arc<Histogram>> = OnceLock::new();
static VANILLA_FORWARD: OnceLock<Arc<Histogram>> = OnceLock::new();
static VANILLA_INFER: OnceLock<Arc<Histogram>> = OnceLock::new();

/// Builds the `{0, −∞}` additive mask of paper Eq. (5) from a boolean
/// adjacency: `allowed[i][j] == true` keeps the attention edge `i → j`.
///
/// The diagonal is always kept — Eq. (1)'s `q_i·k_i` term ("how much user
/// `u_i` insists on her/his own opinions") is part of every sub-voting
/// process.
pub fn social_bias_mask(allowed: &[Vec<bool>]) -> Matrix {
    let l = allowed.len();
    Matrix::from_fn(l, l, |i, j| {
        if i == j || allowed[i][j] {
            0.0
        } else {
            f32::NEG_INFINITY
        }
    })
}

/// Scaled dot-product self-attention with additive bias mask
/// (paper Eq. 1–5).
#[derive(Clone, Debug)]
pub struct SelfAttention {
    wq: usize,
    wk: usize,
    wv: usize,
    d_k: usize,
}

impl SelfAttention {
    /// Registers the query/key/value projections `d_model → d_k/d_k/d_v`.
    /// The paper sets `d_model = d_k = d_v = 32`; for residual
    /// connections `d_v` must equal `d_model`, which this constructor
    /// enforces by using `d_model` for the value width.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        d_model: usize,
        d_k: usize,
    ) -> Self {
        let wq = store.add(format!("{name}.wq"), Init::PAPER_HIDDEN.build(rng, d_model, d_k));
        let wk = store.add(format!("{name}.wk"), Init::PAPER_HIDDEN.build(rng, d_model, d_k));
        let wv = store.add(format!("{name}.wv"), Init::PAPER_HIDDEN.build(rng, d_model, d_model));
        Self { wq, wk, wv, d_k }
    }

    /// Records the forward pass: `x` is `l×d_model`, `mask` (if given) is
    /// an `l×l` additive bias (`0` or `−∞`). Returns the `l×d_model`
    /// sub-group representations `z_i` of Eq. (3).
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: NodeId, mask: Option<&Matrix>) -> NodeId {
        let _t = layer_timer(&ATTN_FORWARD, "nn.attention.forward_us");
        let wq = g.param_full(self.wq, store.value(self.wq));
        let wk = g.param_full(self.wk, store.value(self.wk));
        let wv = g.param_full(self.wv, store.value(self.wv));
        let q = g.matmul(x, wq);
        let k = g.matmul(x, wk);
        let v = g.matmul(x, wv);
        let kt = g.transpose(k);
        let scores = g.matmul(q, kt);
        let scores = g.scale(scores, 1.0 / (self.d_k as f32).sqrt());
        let scores = match mask {
            Some(m) => g.add_const(scores, m),
            None => scores,
        };
        let attn = g.softmax_rows(scores);
        g.matmul(attn, v)
    }

    /// Gradient-free forward pass; also returns the `l×l` attention
    /// distribution (used by the Table IV case-study explainer).
    pub fn forward_inference(&self, store: &ParamStore, x: &Matrix, mask: Option<&Matrix>) -> (Matrix, Matrix) {
        let _t = layer_timer(&ATTN_INFER, "nn.attention.infer_us");
        let q = x.matmul(store.value(self.wq));
        let k = x.matmul(store.value(self.wk));
        let v = x.matmul(store.value(self.wv));
        // Scale, mask-add and softmax all mutate the score matrix in
        // place — same values as the allocating chain this replaces
        // (`scale` → `zip_map` → `softmax_rows`), minus three `l×l`
        // allocations on the serve hot path.
        let mut scores = q.matmul_transpose_b(&k);
        scores.scale_assign(1.0 / (self.d_k as f32).sqrt());
        if let Some(m) = mask {
            scores.add_assign(m);
        }
        ops::softmax_rows_inplace(&mut scores);
        let z = scores.matmul(&v);
        (z, scores)
    }
}

/// One stacked *voting round*: social self-attention and FFN sub-layers,
/// each wrapped in residual + LayerNorm (paper §II-C and Fig. 2).
#[derive(Clone, Debug)]
pub struct TransformerLayer {
    attn: SelfAttention,
    ffn: FeedForward,
    ln1: LayerNorm,
    ln2: LayerNorm,
    dropout: Dropout,
}

impl TransformerLayer {
    /// Builds one layer with width `d_model`, attention width `d_k`,
    /// FFN width `d_ff`, and dropout probability `dropout_p`.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        d_model: usize,
        d_k: usize,
        d_ff: usize,
        dropout_p: f32,
    ) -> Self {
        Self {
            attn: SelfAttention::new(store, rng, &format!("{name}.attn"), d_model, d_k),
            ffn: FeedForward::new(store, rng, &format!("{name}"), d_model, d_ff),
            ln1: LayerNorm::new(store, &format!("{name}.ln1"), d_model),
            ln2: LayerNorm::new(store, &format!("{name}.ln2"), d_model),
            dropout: Dropout::new(dropout_p),
        }
    }

    /// Records one voting round for the `l×d_model` member matrix `x`.
    pub fn forward(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        rng: &mut impl Rng,
        x: NodeId,
        mask: Option<&Matrix>,
        training: bool,
    ) -> NodeId {
        let _t = layer_timer(&VOTING_FORWARD, "nn.voting_round.forward_us");
        let z = self.attn.forward(g, store, x, mask);
        let z = self.dropout.forward(g, rng, z, training);
        let res = g.add(x, z);
        let h = self.ln1.forward(g, store, res);

        let f = self.ffn.forward(g, store, h);
        let f = self.dropout.forward(g, rng, f, training);
        let res2 = g.add(h, f);
        self.ln2.forward(g, store, res2)
    }

    /// Gradient-free forward pass.
    pub fn forward_inference(&self, store: &ParamStore, x: &Matrix, mask: Option<&Matrix>) -> Matrix {
        let _t = layer_timer(&VOTING_INFER, "nn.voting_round.infer_us");
        let (z, _) = self.attn.forward_inference(store, x, mask);
        let h = self.ln1.forward_inference(store, &x.add(&z));
        let f = self.ffn.forward_inference(store, &h);
        self.ln2.forward_inference(store, &h.add(&f))
    }

    /// The attention distribution of this layer's self-attention
    /// sub-layer (diagnostics / case studies).
    pub fn attention_weights(&self, store: &ParamStore, x: &Matrix, mask: Option<&Matrix>) -> Matrix {
        self.attn.forward_inference(store, x, mask).1
    }
}

/// The two-layer "vanilla" attention scorer of Eq. (9)–(10):
/// given `n` rows of `[context ⊕ candidate]` features, produces a
/// softmax-normalised `1×n` weight row.
#[derive(Clone, Debug)]
pub struct VanillaAttention {
    l1: Linear,
    l2: Linear,
}

impl VanillaAttention {
    /// Builds a scorer over `in_dim`-wide concatenated rows with a
    /// `hidden`-wide first layer.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        in_dim: usize,
        hidden: usize,
    ) -> Self {
        Self {
            l1: Linear::new(store, rng, &format!("{name}.att1"), in_dim, hidden, Init::PAPER_HIDDEN),
            l2: Linear::new(store, rng, &format!("{name}.att2"), hidden, 1, Init::PAPER_HIDDEN),
        }
    }

    /// Records the raw (pre-softmax) scores as a `1×n` row — exposed so
    /// callers can add biases (e.g. SIGR's global-influence term)
    /// before normalising.
    pub fn raw_scores(&self, g: &mut Graph, store: &ParamStore, rows: NodeId) -> NodeId {
        let h = self.l1.forward(g, store, rows);
        let h = g.relu(h);
        let s = self.l2.forward(g, store, h); // n×1
        g.transpose(s) // 1×n
    }

    /// Records the scorer: `rows` is `n×in_dim`; returns the `1×n`
    /// softmax weight row.
    pub fn weights(&self, g: &mut Graph, store: &ParamStore, rows: NodeId) -> NodeId {
        let _t = layer_timer(&VANILLA_FORWARD, "nn.vanilla_attention.forward_us");
        let s = self.raw_scores(g, store, rows);
        g.softmax_rows(s)
    }

    /// Records weighted aggregation: softmax weights over `rows`
    /// (`n×in_dim`) applied to `values` (`n×d`), returning `1×d`.
    pub fn aggregate(&self, g: &mut Graph, store: &ParamStore, rows: NodeId, values: NodeId) -> NodeId {
        let w = self.weights(g, store, rows);
        g.matmul(w, values)
    }

    /// Gradient-free weights for inference / explanation (activation
    /// applied in place — no tape, no extra allocation).
    pub fn weights_inference(&self, store: &ParamStore, rows: &Matrix) -> Matrix {
        let _t = layer_timer(&VANILLA_INFER, "nn.vanilla_attention.infer_us");
        let mut h = self.l1.forward_inference(store, rows);
        h.map_inplace(ops::relu);
        let s = self.l2.forward_inference(store, &h); // n×1
        let mut w = s.transpose();
        ops::softmax_inplace(w.row_mut(0));
        w
    }

    /// Gradient-free aggregation.
    pub fn aggregate_inference(&self, store: &ParamStore, rows: &Matrix, values: &Matrix) -> Matrix {
        self.weights_inference(store, rows).matmul(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use groupsa_tensor::check::assert_grad_matches;
    use groupsa_tensor::rng::seeded;

    fn members(l: usize, d: usize) -> Matrix {
        Matrix::from_fn(l, d, |r, c| ((r * d + c) as f32 * 0.37).sin())
    }

    #[test]
    fn social_bias_mask_shapes_and_diagonal() {
        let allowed = vec![
            vec![false, true, false],
            vec![true, false, false],
            vec![false, false, false],
        ];
        let m = social_bias_mask(&allowed);
        assert_eq!(m.shape(), (3, 3));
        // Diagonal always open even though allowed[i][i] = false.
        for i in 0..3 {
            assert_eq!(m[(i, i)], 0.0);
        }
        assert_eq!(m[(0, 1)], 0.0);
        assert_eq!(m[(1, 0)], 0.0);
        assert_eq!(m[(0, 2)], f32::NEG_INFINITY);
        assert_eq!(m[(2, 0)], f32::NEG_INFINITY);
    }

    #[test]
    fn attention_rows_are_distributions() {
        let mut rng = seeded(1);
        let mut store = ParamStore::new();
        let attn = SelfAttention::new(&mut store, &mut rng, "a", 8, 8);
        let x = members(4, 8);
        let (_, w) = attn.forward_inference(&store, &x, None);
        for row in w.rows_iter() {
            assert!((row.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn isolated_member_attends_only_to_self() {
        let mut rng = seeded(2);
        let mut store = ParamStore::new();
        let attn = SelfAttention::new(&mut store, &mut rng, "a", 8, 8);
        let x = members(3, 8);
        // Member 2 has no social ties inside the group.
        let allowed = vec![
            vec![false, true, false],
            vec![true, false, false],
            vec![false, false, false],
        ];
        let mask = social_bias_mask(&allowed);
        let (z, w) = attn.forward_inference(&store, &x, Some(&mask));
        assert!((w[(2, 2)] - 1.0).abs() < 1e-5, "isolated member weight on self: {}", w[(2, 2)]);
        assert_eq!(w[(2, 0)], 0.0);
        assert_eq!(w[(2, 1)], 0.0);
        // Its output is exactly its own value projection.
        let v = x.matmul(store.value_of_wv(&attn));
        assert!(z.row(2).iter().zip(v.row(2)).all(|(a, b)| (a - b).abs() < 1e-5));
    }

    #[test]
    fn full_mask_matches_unmasked() {
        let mut rng = seeded(3);
        let mut store = ParamStore::new();
        let attn = SelfAttention::new(&mut store, &mut rng, "a", 6, 6);
        let x = members(4, 6);
        let allowed = vec![vec![true; 4]; 4];
        let mask = social_bias_mask(&allowed);
        let (z1, _) = attn.forward_inference(&store, &x, None);
        let (z2, _) = attn.forward_inference(&store, &x, Some(&mask));
        assert!(z1.approx_eq(&z2, 1e-6));
    }

    #[test]
    fn graph_and_inference_agree_masked() {
        let mut rng = seeded(4);
        let mut store = ParamStore::new();
        let attn = SelfAttention::new(&mut store, &mut rng, "a", 6, 4);
        let x = members(3, 6);
        let allowed = vec![
            vec![false, true, true],
            vec![true, false, false],
            vec![true, false, false],
        ];
        let mask = social_bias_mask(&allowed);
        let mut g = Graph::new();
        let xs = g.leaf(x.clone());
        let y = attn.forward(&mut g, &store, xs, Some(&mask));
        let (z, _) = attn.forward_inference(&store, &x, Some(&mask));
        assert!(g.value(y).approx_eq(&z, 1e-5));
    }

    #[test]
    fn attention_gradient_check() {
        let mut rng = seeded(5);
        let mut store = ParamStore::new();
        let attn = SelfAttention::new(&mut store, &mut rng, "a", 4, 4);
        let x0 = members(3, 4);
        let allowed = vec![
            vec![false, true, false],
            vec![true, false, true],
            vec![false, true, false],
        ];
        let mask = social_bias_mask(&allowed);
        assert_grad_matches(&x0, 1e-2, 5e-2, |m| {
            let mut g = Graph::new();
            let x = g.leaf(m.clone());
            let z = attn.forward(&mut g, &store, x, Some(&mask));
            let loss = g.mean_all(z);
            (g.value(loss).scalar(), g.backward(loss).get(x).unwrap().clone())
        });
    }

    #[test]
    fn transformer_layer_preserves_shape_and_agrees() {
        let mut rng = seeded(6);
        let mut store = ParamStore::new();
        let layer = TransformerLayer::new(&mut store, &mut rng, "t", 8, 8, 16, 0.0);
        let x = members(5, 8);
        let mut g = Graph::new();
        let xs = g.leaf(x.clone());
        let mut drng = seeded(0);
        let y = layer.forward(&mut g, &store, &mut drng, xs, None, false);
        assert_eq!(g.value(y).shape(), (5, 8));
        assert!(g.value(y).approx_eq(&layer.forward_inference(&store, &x, None), 1e-4));
    }

    #[test]
    fn transformer_layer_gradient_check() {
        let mut rng = seeded(7);
        let mut store = ParamStore::new();
        let layer = TransformerLayer::new(&mut store, &mut rng, "t", 4, 4, 8, 0.0);
        let x0 = members(3, 4);
        assert_grad_matches(&x0, 1e-2, 8e-2, |m| {
            let mut g = Graph::new();
            let x = g.leaf(m.clone());
            let mut drng = seeded(0);
            let y = layer.forward(&mut g, &store, &mut drng, x, None, false);
            let w = g.leaf(Matrix::from_fn(3, 4, |r, c| ((r + c) as f32).cos()));
            let p = g.mul_elem(y, w);
            let loss = g.sum_all(p);
            (g.value(loss).scalar(), g.backward(loss).get(x).unwrap().clone())
        });
    }

    #[test]
    fn vanilla_attention_weights_form_distribution() {
        let mut rng = seeded(8);
        let mut store = ParamStore::new();
        let va = VanillaAttention::new(&mut store, &mut rng, "v", 6, 8);
        let rows = Matrix::from_fn(5, 6, |r, c| (r as f32 - c as f32) * 0.2);
        let w = va.weights_inference(&store, &rows);
        assert_eq!(w.shape(), (1, 5));
        assert!((w.sum() - 1.0).abs() < 1e-5);
        assert!(w.as_slice().iter().all(|&p| p > 0.0));
    }

    #[test]
    fn vanilla_attention_aggregate_is_convex_combination() {
        let mut rng = seeded(9);
        let mut store = ParamStore::new();
        let va = VanillaAttention::new(&mut store, &mut rng, "v", 4, 8);
        let rows = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32 * 0.1);
        let values = Matrix::from_fn(3, 2, |r, _| r as f32);
        let agg = va.aggregate_inference(&store, &rows, &values);
        // Convex combination of {0, 1, 2} must lie in [0, 2].
        assert!(agg.as_slice().iter().all(|&x| (0.0..=2.0).contains(&x)));
    }

    #[test]
    fn vanilla_attention_graph_matches_inference() {
        let mut rng = seeded(10);
        let mut store = ParamStore::new();
        let va = VanillaAttention::new(&mut store, &mut rng, "v", 4, 6);
        let rows = Matrix::from_fn(4, 4, |r, c| ((r * 3 + c) as f32 * 0.21).cos());
        let values = Matrix::from_fn(4, 3, |r, c| (r + c) as f32 * 0.5);
        let mut g = Graph::new();
        let rs = g.leaf(rows.clone());
        let vs = g.leaf(values.clone());
        let agg = va.aggregate(&mut g, &store, rs, vs);
        assert!(g.value(agg).approx_eq(&va.aggregate_inference(&store, &rows, &values), 1e-5));
    }
}

#[cfg(test)]
impl ParamStore {
    /// Test helper: the raw value-projection of a [`SelfAttention`].
    fn value_of_wv(&self, attn: &SelfAttention) -> &Matrix {
        self.value(attn.wv)
    }
}
