//! Parameter storage shared by all models in the workspace.
//!
//! Parameters live outside the autodiff tape. Each training step builds a
//! fresh [`Graph`], pulls the needed parameters (or embedding rows) onto
//! it, and after `backward` calls [`ParamStore::accumulate`] to move the
//! gradients back — scatter-adding row gradients for embedding lookups so
//! that per-example training over large tables stays cheap.

use groupsa_tensor::{Binding, Grads, Graph, Matrix};
use std::collections::BTreeSet;

/// A single named parameter tensor with its gradient accumulator,
/// Adam moments, and row-dirtiness tracking for sparse updates.
pub struct Parameter {
    name: String,
    /// Current value.
    pub value: Matrix,
    /// Accumulated gradient (zeroed by [`ParamStore::zero_grads`] or after
    /// an optimizer step).
    pub grad: Matrix,
    /// First-moment (Adam) state.
    pub(crate) m: Matrix,
    /// Second-moment (Adam) state.
    pub(crate) v: Matrix,
    /// Adam step counter (shared by all rows for bias correction).
    pub(crate) step: u64,
    /// Rows whose gradient is non-trivial since the last step; `None`
    /// means "all rows" (a dense/full-parameter gradient was accumulated).
    pub(crate) dirty: Dirty,
}

/// Which rows of a parameter carry gradient.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Dirty {
    /// Nothing accumulated since the last step.
    Clean,
    /// Only these rows.
    Rows(BTreeSet<usize>),
    /// The whole matrix.
    Full,
}

impl Parameter {
    fn new(name: String, value: Matrix) -> Self {
        let (r, c) = value.shape();
        Self {
            name,
            value,
            grad: Matrix::zeros(r, c),
            m: Matrix::zeros(r, c),
            v: Matrix::zeros(r, c),
            step: 0,
            dirty: Dirty::Clean,
        }
    }

    /// The parameter's registration name (diagnostics only).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// `true` if any gradient has been accumulated since the last step.
    pub fn has_grad(&self) -> bool {
        self.dirty != Dirty::Clean
    }

    /// Number of scalar elements.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// `true` when the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    pub(crate) fn mark_rows(&mut self, rows: impl IntoIterator<Item = usize>) {
        match &mut self.dirty {
            Dirty::Full => {}
            Dirty::Rows(set) => set.extend(rows),
            d @ Dirty::Clean => *d = Dirty::Rows(rows.into_iter().collect()),
        }
    }

    pub(crate) fn mark_full(&mut self) {
        self.dirty = Dirty::Full;
    }

    /// Zeroes the gradient and clears row-dirtiness.
    pub fn zero_grad(&mut self) {
        match std::mem::replace(&mut self.dirty, Dirty::Clean) {
            Dirty::Clean => {}
            Dirty::Full => self.grad.fill(0.0),
            Dirty::Rows(rows) => {
                for r in rows {
                    self.grad.row_mut(r).fill(0.0);
                }
            }
        }
    }
}

/// A detached gradient accumulation: the per-parameter contributions of
/// one backward pass, captured *without* touching a [`ParamStore`].
///
/// This is the hand-off type of the data-parallel trainer: each worker
/// thread holds the store immutably, runs forward/backward on its own
/// [`Graph`], and collects the resulting binding gradients into a sink;
/// the training thread then [`ParamStore::merge`]s the sinks in a fixed
/// example order. Entries preserve the graph's binding order, and
/// `merge` replays exactly the additions [`ParamStore::accumulate`]
/// would have performed, so the two paths are bit-identical.
pub struct GradSink {
    entries: Vec<(usize, SinkGrad)>,
}

enum SinkGrad {
    /// A dense gradient for the whole parameter.
    Full(Matrix),
    /// Row gradients to scatter-add at the given table rows.
    Rows(Vec<usize>, Matrix),
}

impl GradSink {
    /// Captures the gradients of every bound leaf of `graph` that the
    /// loss reached, in binding order.
    pub fn collect(graph: &Graph, grads: &Grads) -> Self {
        let mut entries = Vec::new();
        for (node, binding) in graph.bindings() {
            let Some(g) = grads.get(*node) else { continue };
            match binding {
                Binding::Full { slot } => entries.push((*slot, SinkGrad::Full(g.clone()))),
                Binding::Rows { slot, indices } => {
                    entries.push((*slot, SinkGrad::Rows(indices.clone(), g.clone())))
                }
            }
        }
        Self { entries }
    }

    /// Number of captured binding gradients.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the loss reached no bound parameter.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// An append-only registry of [`Parameter`]s addressed by `usize` slots.
///
/// Layers remember the slots they registered; the trainer owns the store.
#[derive(Default)]
pub struct ParamStore {
    params: Vec<Parameter>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter, returning its slot.
    pub fn add(&mut self, name: impl Into<String>, value: Matrix) -> usize {
        self.params.push(Parameter::new(name.into(), value));
        self.params.len() - 1
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// `true` when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar parameters (for model-size reporting).
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(Parameter::len).sum()
    }

    /// Borrows a parameter.
    pub fn get(&self, slot: usize) -> &Parameter {
        &self.params[slot]
    }

    /// Mutably borrows a parameter.
    pub fn get_mut(&mut self, slot: usize) -> &mut Parameter {
        &mut self.params[slot]
    }

    /// The current value of a parameter (shorthand used by layers).
    pub fn value(&self, slot: usize) -> &Matrix {
        &self.params[slot].value
    }

    /// Iterates over all parameters.
    pub fn iter(&self) -> impl Iterator<Item = &Parameter> {
        self.params.iter()
    }

    /// Iterates mutably over all parameters.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Parameter> {
        self.params.iter_mut()
    }

    /// Zeroes every accumulated gradient.
    pub fn zero_grads(&mut self) {
        self.params.iter_mut().for_each(Parameter::zero_grad);
    }

    /// Pulls gradients for every bound leaf of `graph` out of `grads`
    /// and accumulates them into the corresponding parameters
    /// (scatter-adding for row bindings).
    ///
    /// Nodes the loss did not reach are skipped.
    pub fn accumulate(&mut self, graph: &Graph, grads: &Grads) {
        for (node, binding) in graph.bindings() {
            let Some(g) = grads.get(*node) else { continue };
            match binding {
                Binding::Full { slot } => {
                    let p = &mut self.params[*slot];
                    p.grad.add_assign(g);
                    p.mark_full();
                }
                Binding::Rows { slot, indices } => {
                    let p = &mut self.params[*slot];
                    p.grad.scatter_add_rows(indices, g);
                    p.mark_rows(indices.iter().copied());
                }
            }
        }
    }

    /// Accumulates a detached [`GradSink`] into the parameters, in the
    /// sink's entry order — the same additions, in the same order, as
    /// [`ParamStore::accumulate`] on the originating graph.
    pub fn merge(&mut self, sink: &GradSink) {
        for (slot, grad) in &sink.entries {
            let p = &mut self.params[*slot];
            match grad {
                SinkGrad::Full(g) => {
                    p.grad.add_assign(g);
                    p.mark_full();
                }
                SinkGrad::Rows(indices, g) => {
                    p.grad.scatter_add_rows(indices, g);
                    p.mark_rows(indices.iter().copied());
                }
            }
        }
    }

    /// Global L2 norm of all accumulated gradients.
    pub fn grad_norm(&self) -> f32 {
        self.params
            .iter()
            .map(|p| {
                let n = p.grad.frobenius_norm();
                n * n
            })
            .sum::<f32>()
            .sqrt()
    }

    /// Copies every parameter's current value (for best-checkpoint
    /// tracking during early stopping).
    pub fn snapshot_values(&self) -> Vec<Matrix> {
        self.params.iter().map(|p| p.value.clone()).collect()
    }

    /// Restores values captured by [`ParamStore::snapshot_values`].
    ///
    /// # Panics
    /// If the snapshot does not match the store's parameters.
    pub fn restore_values(&mut self, snapshot: &[Matrix]) {
        assert_eq!(snapshot.len(), self.params.len(), "snapshot/parameter count mismatch");
        for (p, v) in self.params.iter_mut().zip(snapshot) {
            assert_eq!(p.value.shape(), v.shape(), "snapshot shape mismatch for {}", p.name);
            p.value = v.clone();
        }
    }

    /// Clears optimizer state (Adam moments and step counters) on every
    /// parameter — used at the stage boundary of two-stage training so
    /// fine-tuning starts with fresh step sizes instead of the inflated
    /// second moments of the previous stage.
    pub fn reset_optimizer_state(&mut self) {
        for p in &mut self.params {
            p.m.fill(0.0);
            p.v.fill(0.0);
            p.step = 0;
        }
    }

    /// Scales all gradients so their global norm does not exceed
    /// `max_norm`. Returns the pre-clip norm.
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for p in &mut self.params {
                p.grad.scale_assign(s);
            }
        }
        norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut store = ParamStore::new();
        let a = store.add("w", Matrix::ones(2, 3));
        let b = store.add("b", Matrix::zeros(1, 3));
        assert_eq!(store.len(), 2);
        assert_eq!(store.num_scalars(), 9);
        assert_eq!(store.get(a).name(), "w");
        assert_eq!(store.value(b).shape(), (1, 3));
    }

    #[test]
    fn accumulate_full_binding() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::from_vec(1, 2, vec![2.0, 3.0]));

        let mut g = Graph::new();
        let ws = g.param_full(w, store.value(w));
        let sq = g.mul_elem(ws, ws);
        let loss = g.sum_all(sq);
        let grads = g.backward(loss);
        store.accumulate(&g, &grads);

        // d(w²)/dw = 2w.
        assert_eq!(store.get(w).grad.as_slice(), &[4.0, 6.0]);
        assert!(store.get(w).has_grad());
    }

    #[test]
    fn accumulate_rows_binding_scatters() {
        let mut store = ParamStore::new();
        let table = store.add("emb", Matrix::from_fn(4, 2, |r, _| r as f32));

        let mut g = Graph::new();
        let e = g.param_rows(table, store.value(table), &[2, 2, 0]);
        let s = g.scale(e, 1.0);
        let loss = g.sum_all(s);
        let grads = g.backward(loss);
        store.accumulate(&g, &grads);

        let grad = &store.get(table).grad;
        assert_eq!(grad.row(2), &[2.0, 2.0]); // gathered twice
        assert_eq!(grad.row(0), &[1.0, 1.0]);
        assert_eq!(grad.row(1), &[0.0, 0.0]);
        assert_eq!(grad.row(3), &[0.0, 0.0]);
        match &store.get(table).dirty {
            Dirty::Rows(rows) => assert_eq!(rows.iter().copied().collect::<Vec<_>>(), vec![0, 2]),
            other => panic!("expected Rows dirtiness, got {other:?}"),
        }
    }

    #[test]
    fn zero_grads_clears_only_dirty_rows() {
        let mut store = ParamStore::new();
        let t = store.add("emb", Matrix::zeros(3, 1));
        store.get_mut(t).grad.row_mut(1)[0] = 5.0;
        store.get_mut(t).mark_rows([1usize]);
        store.zero_grads();
        assert_eq!(store.get(t).grad.row(1), &[0.0]);
        assert!(!store.get(t).has_grad());
    }

    #[test]
    fn grad_norm_and_clipping() {
        let mut store = ParamStore::new();
        let a = store.add("a", Matrix::zeros(1, 2));
        store.get_mut(a).grad = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        store.get_mut(a).mark_full();
        assert!((store.grad_norm() - 5.0).abs() < 1e-6);
        let pre = store.clip_grad_norm(1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((store.grad_norm() - 1.0).abs() < 1e-5);
        // Clipping below the max is a no-op.
        let pre2 = store.clip_grad_norm(10.0);
        assert!((pre2 - 1.0).abs() < 1e-5);
        assert!((store.grad_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn sink_merge_is_bit_identical_to_direct_accumulate() {
        // Two stores with identical parameters; one accumulates the
        // backward pass directly, the other through a detached sink.
        let build = || {
            let mut store = ParamStore::new();
            let w = store.add("w", Matrix::from_vec(1, 2, vec![0.25, -1.5]));
            let emb = store.add("emb", Matrix::from_fn(4, 2, |r, c| (r * 2 + c) as f32 * 0.3));
            (store, w, emb)
        };
        let (mut direct, w, emb) = build();
        let (mut via_sink, _, _) = build();

        let run = |store: &ParamStore| {
            let mut g = Graph::new();
            let ws = g.param_full(w, store.value(w));
            let rows = g.param_rows(emb, store.value(emb), &[2, 0, 2]);
            let sq = g.mul_elem(ws, ws);
            let a = g.sum_all(sq);
            let b = g.sum_all(rows);
            let loss = g.add(a, b);
            let grads = g.backward(loss);
            (g, grads)
        };

        let (g1, grads1) = run(&direct);
        direct.accumulate(&g1, &grads1);

        let (g2, grads2) = run(&via_sink);
        let sink = GradSink::collect(&g2, &grads2);
        assert_eq!(sink.len(), 2);
        via_sink.merge(&sink);

        for slot in [w, emb] {
            assert_eq!(direct.get(slot).grad, via_sink.get(slot).grad);
            assert_eq!(direct.get(slot).dirty, via_sink.get(slot).dirty);
        }
    }

    #[test]
    fn sink_skips_unreached_bindings() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::ones(1, 1));
        let u = store.add("unused", Matrix::ones(1, 1));
        let mut g = Graph::new();
        let ws = g.param_full(w, store.value(w));
        let _orphan = g.param_full(u, store.value(u));
        let loss = g.sum_all(ws);
        let grads = g.backward(loss);
        let sink = GradSink::collect(&g, &grads);
        assert_eq!(sink.len(), 1);
        assert!(!sink.is_empty());
        store.merge(&sink);
        assert!(store.get(w).has_grad());
        assert!(!store.get(u).has_grad());
    }

    #[test]
    fn accumulate_skips_unreached_bindings() {
        let mut store = ParamStore::new();
        let w = store.add("w", Matrix::ones(1, 1));
        let u = store.add("unused", Matrix::ones(1, 1));

        let mut g = Graph::new();
        let ws = g.param_full(w, store.value(w));
        let _orphan = g.param_full(u, store.value(u));
        let loss = g.sum_all(ws);
        let grads = g.backward(loss);
        store.accumulate(&g, &grads);
        assert!(store.get(w).has_grad());
        assert!(!store.get(u).has_grad());
    }
}
