//! Fully-connected affine layer.

use crate::{Init, ParamStore};
use groupsa_tensor::{Graph, Matrix, NodeId};
use rand::Rng;

/// An affine map `y = x·W + b` with `W: in×out`, `b: 1×out`.
#[derive(Clone, Debug)]
pub struct Linear {
    w: usize,
    b: usize,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers weights (initialised by `init`) and a zero bias under
    /// `name.w` / `name.b`.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        init: Init,
    ) -> Self {
        let w = store.add(format!("{name}.w"), init.build(rng, in_dim, out_dim));
        let b = store.add(format!("{name}.b"), Matrix::zeros(1, out_dim));
        Self { w, b, in_dim, out_dim }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The `(weight, bias)` parameter slots of this layer.
    pub fn param_slots(&self) -> (usize, usize) {
        (self.w, self.b)
    }

    /// Records the forward pass on `g` for a `batch×in` input node.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: NodeId) -> NodeId {
        let w = g.param_full(self.w, store.value(self.w));
        let b = g.param_full(self.b, store.value(self.b));
        g.linear(x, w, b)
    }

    /// Gradient-free forward pass for inference paths.
    pub fn forward_inference(&self, store: &ParamStore, x: &Matrix) -> Matrix {
        x.matmul(store.value(self.w)).add_row_broadcast(store.value(self.b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Optimizer};
    use groupsa_tensor::check::assert_grad_matches;
    use groupsa_tensor::rng::seeded;

    #[test]
    fn forward_shapes() {
        let mut rng = seeded(1);
        let mut store = ParamStore::new();
        let l = Linear::new(&mut store, &mut rng, "fc", 4, 3, Init::Glorot);
        assert_eq!((l.in_dim(), l.out_dim()), (4, 3));

        let mut g = Graph::new();
        let x = g.leaf(Matrix::ones(5, 4));
        let y = l.forward(&mut g, &store, x);
        assert_eq!(g.value(y).shape(), (5, 3));
    }

    #[test]
    fn inference_matches_graph_forward() {
        let mut rng = seeded(2);
        let mut store = ParamStore::new();
        let l = Linear::new(&mut store, &mut rng, "fc", 3, 2, Init::Gaussian(0.5));
        let x = Matrix::from_fn(4, 3, |r, c| (r as f32 - c as f32) * 0.3);

        let mut g = Graph::new();
        let xs = g.leaf(x.clone());
        let y = l.forward(&mut g, &store, xs);
        assert!(g.value(y).approx_eq(&l.forward_inference(&store, &x), 1e-6));
    }

    #[test]
    fn gradient_check_through_layer() {
        let mut rng = seeded(3);
        let mut store = ParamStore::new();
        let l = Linear::new(&mut store, &mut rng, "fc", 3, 2, Init::Glorot);
        let x0 = Matrix::from_fn(2, 3, |r, c| 0.2 * (r + c) as f32 - 0.1);
        assert_grad_matches(&x0, 1e-2, 2e-2, |m| {
            let mut g = Graph::new();
            let x = g.leaf(m.clone());
            let y = l.forward(&mut g, &store, x);
            let t = g.tanh(y);
            let loss = g.sum_all(t);
            (g.value(loss).scalar(), g.backward(loss).get(x).unwrap().clone())
        });
    }

    #[test]
    fn layer_learns_identity_map() {
        // Fit y = x on scalars: W→1, b→0.
        let mut rng = seeded(4);
        let mut store = ParamStore::new();
        let l = Linear::new(&mut store, &mut rng, "fc", 1, 1, Init::Gaussian(0.1));
        let mut opt = Adam::new(0.05);
        for step in 0..400 {
            let x = ((step % 10) as f32 - 5.0) / 5.0;
            let mut g = Graph::new();
            let xs = g.leaf(Matrix::full(1, 1, x));
            let y = l.forward(&mut g, &store, xs);
            let t = g.leaf(Matrix::full(1, 1, x));
            let d = g.sub(y, t);
            let sq = g.mul_elem(d, d);
            let loss = g.sum_all(sq);
            let grads = g.backward(loss);
            store.accumulate(&g, &grads);
            opt.step(&mut store);
        }
        let y = l.forward_inference(&store, &Matrix::full(1, 1, 0.7));
        assert!((y.scalar() - 0.7).abs() < 0.05, "got {}", y.scalar());
    }
}
