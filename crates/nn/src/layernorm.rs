//! Layer normalisation with learned affine parameters.

use crate::ParamStore;
use groupsa_tensor::{ops, Graph, Matrix, NodeId};

/// Row-wise layer normalisation `LN(x) = γ ⊙ (x − μ)/σ + β`, applied
/// after every residual connection of the voting network
/// (paper §II-C: "LayerNorm(x + Sublayer(x))").
#[derive(Clone, Debug)]
pub struct LayerNorm {
    gamma: usize,
    beta: usize,
    dim: usize,
    eps: f32,
}

impl LayerNorm {
    /// Registers γ=1, β=0 parameters of width `dim`.
    pub fn new(store: &mut ParamStore, name: &str, dim: usize) -> Self {
        let gamma = store.add(format!("{name}.gamma"), Matrix::ones(1, dim));
        let beta = store.add(format!("{name}.beta"), Matrix::zeros(1, dim));
        Self { gamma, beta, dim, eps: 1e-5 }
    }

    /// Normalised width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Records the forward pass for a `batch×dim` node.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: NodeId) -> NodeId {
        let gamma = g.param_full(self.gamma, store.value(self.gamma));
        let beta = g.param_full(self.beta, store.value(self.beta));
        g.layer_norm(x, gamma, beta, self.eps)
    }

    /// Gradient-free forward pass.
    pub fn forward_inference(&self, store: &ParamStore, x: &Matrix) -> Matrix {
        ops::layer_norm_rows(x, store.value(self.gamma), store.value(self.beta), self.eps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_layer_standardises_rows() {
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 4);
        assert_eq!(ln.dim(), 4);
        let x = Matrix::from_vec(2, 4, vec![1.0, 2.0, 3.0, 4.0, -10.0, 0.0, 10.0, 20.0]);
        let y = ln.forward_inference(&store, &x);
        for row in y.rows_iter() {
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-4);
        }
    }

    #[test]
    fn graph_and_inference_agree() {
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 3);
        let x = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32 * 0.7 - 1.0);
        let mut g = Graph::new();
        let xs = g.leaf(x.clone());
        let y = ln.forward(&mut g, &store, xs);
        assert!(g.value(y).approx_eq(&ln.forward_inference(&store, &x), 1e-5));
    }
}
