//! Optimizers: plain SGD and Adam with row-sparse ("lazy") updates.
//!
//! The paper trains with Adam (§III-E) under per-example sampling: each
//! gradient step touches only a handful of embedding rows, so [`Adam`]
//! updates *only the dirty rows* of each parameter (the `SparseAdam`
//! strategy), keeping a step O(touched rows) instead of O(table size).
//! Bias correction uses a per-parameter step counter, as in PyTorch's
//! `SparseAdam`.
//!
//! The L2 regularisation term `λ‖Θ‖²` of paper Eq. (21)/(24) is applied
//! here as weight decay on the touched entries (adding `2λθ` to the
//! gradient before the moment updates).

use crate::param::{Dirty, ParamStore, Parameter};

/// A gradient-descent parameter updater.
pub trait Optimizer {
    /// Applies one update from the accumulated gradients, then zeroes
    /// them (including dirtiness tracking).
    fn step(&mut self, store: &mut ParamStore);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (e.g. for decay schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain stochastic gradient descent with optional weight decay.
#[derive(Clone, Debug)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// L2 weight-decay coefficient λ (0 disables).
    pub weight_decay: f32,
}

impl Sgd {
    /// SGD with the given learning rate and no weight decay.
    pub fn new(lr: f32) -> Self {
        Self { lr, weight_decay: 0.0 }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore) {
        for p in store.iter_mut() {
            match std::mem::replace(&mut p.dirty, Dirty::Clean) {
                Dirty::Clean => {}
                Dirty::Full => {
                    sgd_rows(p, 0..p.value.rows(), self.lr, self.weight_decay);
                    p.grad.fill(0.0);
                }
                Dirty::Rows(rows) => {
                    for r in rows {
                        sgd_rows(p, r..r + 1, self.lr, self.weight_decay);
                        p.grad.row_mut(r).fill(0.0);
                    }
                }
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

fn sgd_rows(p: &mut Parameter, rows: std::ops::Range<usize>, lr: f32, wd: f32) {
    let cols = p.value.cols();
    for r in rows {
        let start = r * cols;
        let value = &mut p.value.as_mut_slice()[start..start + cols];
        let grad = &p.grad.as_slice()[start..start + cols];
        for (v, &g) in value.iter_mut().zip(grad) {
            *v -= lr * (g + 2.0 * wd * *v);
        }
    }
}

/// Adam (Kingma & Ba) with row-sparse updates for embedding tables.
#[derive(Clone, Debug)]
pub struct Adam {
    /// Learning rate α.
    pub lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical-stability constant.
    pub eps: f32,
    /// L2 weight-decay coefficient λ (paper Eq. 21/24; 0 disables).
    pub weight_decay: f32,
}

impl Adam {
    /// Adam with the given learning rate and standard β/ε.
    pub fn new(lr: f32) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 0.0 }
    }

    /// The configuration used throughout the reproduction
    /// (lr = 0.01, tiny weight decay) — a good default for the
    /// per-example BPR training the paper describes.
    pub fn default_paper() -> Self {
        Self { weight_decay: 1e-6, ..Self::new(0.01) }
    }

    fn update_row(&self, p: &mut Parameter, r: usize, bc1: f32, bc2: f32) {
        let cols = p.value.cols();
        let start = r * cols;
        let range = start..start + cols;
        let value = &mut p.value.as_mut_slice()[range.clone()];
        let grad = &p.grad.as_slice()[range.clone()];
        let ms = &mut p.m.as_mut_slice()[range.clone()];
        let vs = &mut p.v.as_mut_slice()[range];
        for (((val, &g0), m), v) in value.iter_mut().zip(grad).zip(ms).zip(vs) {
            let g = g0 + 2.0 * self.weight_decay * *val;
            *m = self.beta1 * *m + (1.0 - self.beta1) * g;
            *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
            let mhat = *m / bc1;
            let vhat = *v / bc2;
            *val -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore) {
        for p in store.iter_mut() {
            let dirty = std::mem::replace(&mut p.dirty, Dirty::Clean);
            if dirty == Dirty::Clean {
                continue;
            }
            p.step += 1;
            let bc1 = 1.0 - self.beta1.powi(p.step as i32);
            let bc2 = 1.0 - self.beta2.powi(p.step as i32);
            match dirty {
                Dirty::Clean => unreachable!(), // lint: allow(panic-reach) — Clean hit `continue` above
                Dirty::Full => {
                    for r in 0..p.value.rows() {
                        self.update_row(p, r, bc1, bc2);
                    }
                    p.grad.fill(0.0);
                }
                Dirty::Rows(rows) => {
                    for r in rows {
                        self.update_row(p, r, bc1, bc2);
                        p.grad.row_mut(r).fill(0.0);
                    }
                }
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use groupsa_tensor::{Graph, Matrix};

    /// One optimizer step on loss = Σ (θ − target)².
    fn quadratic_step(store: &mut ParamStore, slot: usize, target: &Matrix, opt: &mut dyn Optimizer) -> f32 {
        let mut g = Graph::new();
        let th = g.param_full(slot, store.value(slot));
        let t = g.leaf(target.clone());
        let d = g.sub(th, t);
        let sq = g.mul_elem(d, d);
        let loss = g.sum_all(sq);
        let l = g.value(loss).scalar();
        let grads = g.backward(loss);
        store.accumulate(&g, &grads);
        opt.step(store);
        l
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut store = ParamStore::new();
        let slot = store.add("theta", Matrix::from_vec(1, 3, vec![5.0, -4.0, 2.0]));
        let target = Matrix::from_vec(1, 3, vec![1.0, 1.0, 1.0]);
        let mut opt = Sgd::new(0.1);
        let first = quadratic_step(&mut store, slot, &target, &mut opt);
        let mut last = first;
        for _ in 0..100 {
            last = quadratic_step(&mut store, slot, &target, &mut opt);
        }
        assert!(last < 1e-6, "loss did not converge: {last}");
        assert!(store.value(slot).approx_eq(&target, 1e-3));
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut store = ParamStore::new();
        let slot = store.add("theta", Matrix::from_vec(1, 3, vec![5.0, -4.0, 2.0]));
        let target = Matrix::from_vec(1, 3, vec![1.0, 1.0, 1.0]);
        let mut opt = Adam::new(0.2);
        let mut last = f32::INFINITY;
        for _ in 0..300 {
            last = quadratic_step(&mut store, slot, &target, &mut opt);
        }
        assert!(last < 1e-3, "loss did not converge: {last}");
    }

    #[test]
    fn sparse_adam_only_touches_dirty_rows() {
        let mut store = ParamStore::new();
        let table = store.add("emb", Matrix::ones(4, 2));
        let before = store.value(table).clone();

        // Gradient flows only into row 1.
        let mut g = Graph::new();
        let e = g.param_rows(table, store.value(table), &[1]);
        let loss = g.sum_all(e);
        let grads = g.backward(loss);
        store.accumulate(&g, &grads);

        let mut opt = Adam::new(0.1);
        opt.step(&mut store);

        let after = store.value(table);
        assert_ne!(after.row(1), before.row(1), "dirty row must move");
        for r in [0usize, 2, 3] {
            assert_eq!(after.row(r), before.row(r), "clean row {r} must not move");
        }
        // Gradient was cleared for next step.
        assert!(!store.get(table).has_grad());
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut store = ParamStore::new();
        let slot = store.add("w", Matrix::full(1, 1, 10.0));
        let mut opt = Sgd { lr: 0.1, weight_decay: 0.5 };
        // Zero data gradient; decay alone should shrink the weight:
        // θ ← θ − lr·2λθ = 10 − 0.1·2·0.5·10 = 9.
        store.get_mut(slot).mark_full();
        opt.step(&mut store);
        assert!((store.value(slot).scalar() - 9.0).abs() < 1e-5);
    }

    #[test]
    fn adam_step_counter_advances_only_when_dirty() {
        let mut store = ParamStore::new();
        let a = store.add("a", Matrix::ones(1, 1));
        let b = store.add("b", Matrix::ones(1, 1));
        store.get_mut(a).mark_full();
        let mut opt = Adam::new(0.01);
        opt.step(&mut store);
        assert_eq!(store.get(a).step, 1);
        assert_eq!(store.get(b).step, 0);
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Adam::new(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
        opt.set_learning_rate(0.005);
        assert_eq!(opt.learning_rate(), 0.005);
    }
}
