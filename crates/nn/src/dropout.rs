//! Inverted dropout.

use groupsa_tensor::{Graph, Matrix, NodeId};
use rand::{Rng, RngExt};

/// Inverted dropout: during training each element is zeroed with
/// probability `p` and survivors are scaled by `1/(1−p)`, so inference
/// needs no rescaling. The paper uses `p = 0.1` on both datasets
/// (§III-E).
#[derive(Clone, Copy, Debug)]
pub struct Dropout {
    p: f32,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    /// If `p` is not in `[0, 1)`.
    pub fn new(p: f32) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout probability must be in [0,1), got {p}");
        Self { p }
    }

    /// Drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }

    /// Applies dropout to node `x` when `training`; identity otherwise.
    pub fn forward(
        &self,
        g: &mut Graph,
        rng: &mut impl Rng,
        x: NodeId,
        training: bool,
    ) -> NodeId {
        // Exact-zero gate on the configured drop rate: p = 0.0 means
        // "dropout disabled", set literally, never computed.
        if !training || self.p == 0.0 { // lint: allow(float-eq)
            return x;
        }
        let (r, c) = g.value(x).shape();
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask = Matrix::from_fn(r, c, |_, _| if rng.random::<f32>() < keep { scale } else { 0.0 });
        g.mul_const(x, &mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use groupsa_tensor::rng::seeded;

    #[test]
    fn identity_when_not_training() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::ones(2, 2));
        let y = Dropout::new(0.5).forward(&mut g, &mut seeded(1), x, false);
        assert_eq!(x, y);
    }

    #[test]
    fn zero_probability_is_identity() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::ones(2, 2));
        let y = Dropout::new(0.0).forward(&mut g, &mut seeded(1), x, true);
        assert_eq!(x, y);
    }

    #[test]
    fn expected_value_is_preserved() {
        let mut rng = seeded(2);
        let d = Dropout::new(0.3);
        let mut total = 0.0;
        let trials = 200;
        for _ in 0..trials {
            let mut g = Graph::new();
            let x = g.leaf(Matrix::ones(10, 10));
            let y = d.forward(&mut g, &mut rng, x, true);
            total += g.value(y).mean();
        }
        let avg = total / trials as f32;
        assert!((avg - 1.0).abs() < 0.02, "inverted dropout should be unbiased, got {avg}");
    }

    #[test]
    fn surviving_elements_are_scaled() {
        let mut rng = seeded(3);
        let mut g = Graph::new();
        let x = g.leaf(Matrix::ones(5, 5));
        let y = Dropout::new(0.5).forward(&mut g, &mut rng, x, true);
        for &v in g.value(y).as_slice() {
            assert!(v == 0.0 || (v - 2.0).abs() < 1e-6, "unexpected value {v}");
        }
    }

    #[test]
    #[should_panic(expected = "must be in [0,1)")]
    fn invalid_probability_panics() {
        let _ = Dropout::new(1.0);
    }
}
