//! Dataset statistics — the columns of paper Table I.

use crate::dataset::Dataset;
use groupsa_json::impl_json_struct;
use std::fmt;

/// The summary statistics reported in paper Table I.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// `# Users`.
    pub num_users: usize,
    /// `# Items/Events`.
    pub num_items: usize,
    /// `# Groups`.
    pub num_groups: usize,
    /// `Avg. group size`.
    pub avg_group_size: f64,
    /// `Avg. # interactions per user`.
    pub avg_interactions_per_user: f64,
    /// `Avg. # friends per user`.
    pub avg_friends_per_user: f64,
    /// `Avg. # interactions per group`.
    pub avg_interactions_per_group: f64,
}

impl_json_struct!(DatasetStats {
    name,
    num_users,
    num_items,
    num_groups,
    avg_group_size,
    avg_interactions_per_user,
    avg_friends_per_user,
    avg_interactions_per_group,
});

impl DatasetStats {
    /// Computes the Table-I statistics of a dataset.
    pub fn compute(d: &Dataset) -> Self {
        let groups = d.num_groups().max(1) as f64;
        let users = d.num_users.max(1) as f64;
        Self {
            name: d.name.clone(),
            num_users: d.num_users,
            num_items: d.num_items,
            num_groups: d.num_groups(),
            avg_group_size: d.groups.iter().map(Vec::len).sum::<usize>() as f64 / groups,
            avg_interactions_per_user: d.user_item.len() as f64 / users,
            avg_friends_per_user: 2.0 * d.social.len() as f64 / users,
            avg_interactions_per_group: d.group_item.len() as f64 / groups,
        }
    }
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Statistics ({}):", self.name)?;
        writeln!(f, "  # Users                        {:>8}", self.num_users)?;
        writeln!(f, "  # Items/Events                 {:>8}", self.num_items)?;
        writeln!(f, "  # Groups                       {:>8}", self.num_groups)?;
        writeln!(f, "  Avg. group size                {:>8.2}", self.avg_group_size)?;
        writeln!(f, "  Avg. # interactions per user   {:>8.2}", self.avg_interactions_per_user)?;
        writeln!(f, "  Avg. # friends per user        {:>8.2}", self.avg_friends_per_user)?;
        write!(f, "  Avg. # interactions per group  {:>8.2}", self.avg_interactions_per_group)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_table1_columns() {
        let d = Dataset {
            name: "t".into(),
            num_users: 4,
            num_items: 5,
            groups: vec![vec![0, 1], vec![1, 2, 3], vec![0]],
            user_item: vec![(0, 0), (0, 1), (1, 2), (2, 3)],
            group_item: vec![(0, 1), (1, 2), (1, 3)],
            social: vec![(0, 1), (1, 2)],
        };
        let s = DatasetStats::compute(&d);
        assert_eq!(s.num_users, 4);
        assert_eq!(s.num_items, 5);
        assert_eq!(s.num_groups, 3);
        assert!((s.avg_group_size - 2.0).abs() < 1e-12);
        assert!((s.avg_interactions_per_user - 1.0).abs() < 1e-12);
        assert!((s.avg_friends_per_user - 1.0).abs() < 1e-12);
        assert!((s.avg_interactions_per_group - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_contains_all_rows() {
        let d = Dataset {
            name: "disp".into(),
            num_users: 1,
            num_items: 1,
            groups: vec![vec![0]],
            user_item: vec![],
            group_item: vec![],
            social: vec![],
        };
        let text = DatasetStats::compute(&d).to_string();
        for needle in ["# Users", "# Items/Events", "# Groups", "group size", "per user", "friends", "per group"] {
            assert!(text.contains(needle), "missing row {needle}: {text}");
        }
    }

    #[test]
    fn empty_dataset_does_not_divide_by_zero() {
        let d = Dataset {
            name: "empty".into(),
            num_users: 0,
            num_items: 0,
            groups: vec![],
            user_item: vec![],
            group_item: vec![],
            social: vec![],
        };
        let s = DatasetStats::compute(&d);
        assert_eq!(s.avg_group_size, 0.0);
        assert_eq!(s.avg_interactions_per_user, 0.0);
    }
}
