//! The three-way interaction dataset of the paper's task definition.

use groupsa_graph::{Bipartite, CsrGraph};
use groupsa_json::impl_json_struct;
use std::io;
use std::path::Path;

/// User index (into `0..num_users`).
pub type UserId = usize;
/// Item index (into `0..num_items`).
pub type ItemId = usize;
/// Group index (into `0..groups.len()`).
pub type GroupId = usize;

/// A group-recommendation dataset: the observed interactions
/// `R^U` (user–item), `R^G` (group–item) and `R^S` (user–user) of the
/// paper's §II-A, plus the membership list of every group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dataset {
    /// Dataset name (diagnostics / table headers).
    pub name: String,
    /// Number of users `m`.
    pub num_users: usize,
    /// Number of items `n`.
    pub num_items: usize,
    /// Member lists `G(t)` of every group.
    pub groups: Vec<Vec<UserId>>,
    /// Observed user–item interactions (deduplicated pairs).
    pub user_item: Vec<(UserId, ItemId)>,
    /// Observed group–item interactions (deduplicated pairs).
    pub group_item: Vec<(GroupId, ItemId)>,
    /// Undirected social edges.
    pub social: Vec<(UserId, UserId)>,
}

impl_json_struct!(Dataset { name, num_users, num_items, groups, user_item, group_item, social });

impl Dataset {
    /// Number of groups `k`.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Members of group `t`.
    ///
    /// # Panics
    /// If `t` is out of bounds.
    pub fn members(&self, t: GroupId) -> &[UserId] {
        &self.groups[t]
    }

    /// Builds the user–item bipartite view `R^U`.
    pub fn user_item_graph(&self) -> Bipartite {
        Bipartite::from_pairs(self.num_users, self.num_items, &self.user_item)
    }

    /// Builds the group–item bipartite view `R^G` (groups on the left).
    pub fn group_item_graph(&self) -> Bipartite {
        Bipartite::from_pairs(self.num_groups(), self.num_items, &self.group_item)
    }

    /// Builds the social graph view `R^S`.
    pub fn social_graph(&self) -> CsrGraph {
        CsrGraph::from_edges(self.num_users, &self.social)
    }

    /// Validates internal consistency (all ids in range, groups
    /// non-empty), returning a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        for (t, g) in self.groups.iter().enumerate() {
            if g.is_empty() {
                return Err(format!("group {t} is empty"));
            }
            if let Some(&u) = g.iter().find(|&&u| u >= self.num_users) {
                return Err(format!("group {t} contains out-of-range user {u}"));
            }
        }
        if let Some(&(u, i)) = self
            .user_item
            .iter()
            .find(|&&(u, i)| u >= self.num_users || i >= self.num_items)
        {
            return Err(format!("user-item pair ({u},{i}) out of range"));
        }
        if let Some(&(t, i)) = self
            .group_item
            .iter()
            .find(|&&(t, i)| t >= self.num_groups() || i >= self.num_items)
        {
            return Err(format!("group-item pair ({t},{i}) out of range"));
        }
        if let Some(&(a, b)) = self
            .social
            .iter()
            .find(|&&(a, b)| a >= self.num_users || b >= self.num_users)
        {
            return Err(format!("social edge ({a},{b}) out of range"));
        }
        Ok(())
    }

    /// Serialises to pretty JSON at `path`.
    pub fn save_json(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let json = groupsa_json::to_string(self);
        std::fs::write(path, json)
    }

    /// Loads a dataset previously written by [`Dataset::save_json`].
    pub fn load_json(path: impl AsRef<Path>) -> io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        groupsa_json::from_str(&json).map_err(io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn tiny() -> Dataset {
        Dataset {
            name: "tiny".into(),
            num_users: 4,
            num_items: 3,
            groups: vec![vec![0, 1], vec![1, 2, 3]],
            user_item: vec![(0, 0), (1, 1), (2, 2), (3, 0)],
            group_item: vec![(0, 1), (1, 2)],
            social: vec![(0, 1), (1, 2)],
        }
    }

    #[test]
    fn graph_views_are_consistent() {
        let d = tiny();
        assert!(d.validate().is_ok());
        let ui = d.user_item_graph();
        assert_eq!(ui.num_interactions(), 4);
        assert!(ui.has_interaction(3, 0));
        let gi = d.group_item_graph();
        assert_eq!(gi.num_users(), 2); // groups on the left
        assert!(gi.has_interaction(1, 2));
        let s = d.social_graph();
        assert!(s.has_edge(0, 1));
        assert!(!s.has_edge(0, 2));
    }

    #[test]
    fn validate_catches_violations() {
        let mut d = tiny();
        d.groups.push(vec![]);
        assert!(d.validate().unwrap_err().contains("empty"));

        let mut d = tiny();
        d.groups[0].push(99);
        assert!(d.validate().unwrap_err().contains("out-of-range user"));

        let mut d = tiny();
        d.user_item.push((0, 99));
        assert!(d.validate().unwrap_err().contains("user-item"));

        let mut d = tiny();
        d.group_item.push((99, 0));
        assert!(d.validate().unwrap_err().contains("group-item"));

        let mut d = tiny();
        d.social.push((99, 0));
        assert!(d.validate().unwrap_err().contains("social"));
    }

    #[test]
    fn json_roundtrip() {
        let d = tiny();
        let dir = std::env::temp_dir().join("groupsa-data-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.json");
        d.save_json(&path).unwrap();
        let back = Dataset::load_json(&path).unwrap();
        assert_eq!(d, back);
    }
}
