//! Seeded synthetic dataset generators standing in for Yelp and
//! Douban-Event (paper Table I).
//!
//! The generators plant a *latent voting ground truth*:
//!
//! 1. **Topics.** Users and items belong to latent topic clusters with
//!    Gaussian latent vectors around each topic centre.
//! 2. **Homophilous social network.** Most friendships form inside a
//!    topic cluster; a user's effective taste is pulled towards their
//!    friends' ([`SyntheticConfig::social_influence`]) — the social
//!    correlation the paper's social aggregation (Eq. 15–18) exploits.
//! 3. **Zipf popularity.** Item exposure follows a Zipf law, so
//!    popularity is a meaningful (but beatable) baseline signal.
//! 4. **User–item interactions.** Each user samples items from a
//!    popularity-biased candidate pool by softmax affinity to their
//!    taste vector.
//! 5. **Groups.** Grown by random walks on the social graph — mirroring
//!    how SIGR extracted groups ("users connected on the social network
//!    attending the same event", §III-B).
//! 6. **Group–item interactions (the latent vote).** For each decision,
//!    every member gets a weight proportional to
//!    `exp(sharpness · expertise(member, topic(candidate)))` — the
//!    domain expert dominates restaurant picks but not movie picks —
//!    and the group chooses by the weighted-average taste. Recovering
//!    these *item-conditioned member weights* is precisely GroupSA's
//!    claim, so methods that learn per-item member weighting should win
//!    here, static aggregation should trail, and member-blind methods
//!    (NCF/Pop on the group task) should trail badly — the shape of
//!    paper Tables II/III.
//!
//! Scale is reduced ~20× from Table I so the full benchmark suite runs
//! on one CPU in minutes; all comparisons are relative (DESIGN.md §1).

use crate::dataset::Dataset;
use groupsa_tensor::rng::{seeded, standard_normal};
use rand::{Rng, RngExt};
use groupsa_json::impl_json_struct;
// Every HashSet below is either membership-only or sorted before
// iteration (see the per-site notes), so iteration order never reaches
// an output.
use std::collections::HashSet; // lint: allow(hash-container)

/// Everything that controls a synthetic dataset. See the module docs
/// for the role of each knob.
#[derive(Clone, Debug)]
pub struct SyntheticConfig {
    /// Dataset name (appears in reports).
    pub name: String,
    /// Master seed; every derived quantity is deterministic in it.
    pub seed: u64,
    /// Number of users `m`.
    pub num_users: usize,
    /// Number of items `n`.
    pub num_items: usize,
    /// Number of groups `k`.
    pub num_groups: usize,
    /// Number of latent topic clusters.
    pub num_topics: usize,
    /// Ground-truth latent dimensionality (independent of model width).
    pub latent_dim: usize,
    /// Target mean of interactions per user (Table I: 13.98 / 25.22).
    pub avg_items_per_user: f64,
    /// Target mean of friends per user (Table I: 20.77 / 40.86, scaled).
    pub avg_friends_per_user: f64,
    /// Target mean of interactions per group (Table I: 1.12 / 1.47).
    pub avg_items_per_group: f64,
    /// Target mean group size (Table I: 4.45 / 4.84).
    pub mean_group_size: f64,
    /// Zipf exponent of item exposure.
    pub zipf_exponent: f64,
    /// Probability that a friendship forms within a topic cluster.
    pub homophily: f64,
    /// Blend factor pulling a user's taste towards the mean of their
    /// friends' (0 = independent tastes).
    pub social_influence: f64,
    /// Vote sharpness β: how strongly a member's topic expertise
    /// dominates the group decision for items of that topic.
    pub expertise_sharpness: f64,
    /// Softmax temperature of item choices (lower = more deterministic
    /// taste, easier signal).
    pub taste_temperature: f64,
    /// Discussion/consensus strength ρ: before a group votes, each
    /// member's effective taste is blended with the mean taste of their
    /// *in-group friends* (paper Fig. 2: members "exchange opinions with
    /// friends to reach a consensus"). Only models that see the
    /// intra-group social structure (GroupSA's social self-attention)
    /// can capture this.
    pub consensus_blend: f64,
    /// Connectedness boost δ: a member's vote weight is multiplied by
    /// `(1 + in-group degree)^δ` — socially connected members are heard
    /// more (§I: "users usually appreciate and value the suggestions
    /// from their friends").
    pub connectedness_boost: f64,
}

impl_json_struct!(SyntheticConfig {
    name,
    seed,
    num_users,
    num_items,
    num_groups,
    num_topics,
    latent_dim,
    avg_items_per_user,
    avg_friends_per_user,
    avg_items_per_group,
    mean_group_size,
    zipf_exponent,
    homophily,
    social_influence,
    expertise_sharpness,
    taste_temperature,
    consensus_blend,
    connectedness_boost,
});

/// Scaled-down analogue of the paper's Yelp dataset (Table I column 1).
pub fn yelp_sim() -> SyntheticConfig {
    SyntheticConfig {
        name: "yelp-sim".into(),
        seed: 0x59454c50, // "YELP"
        num_users: 1200,
        num_items: 900,
        num_groups: 4800,
        num_topics: 12,
        latent_dim: 8,
        avg_items_per_user: 14.0,
        avg_friends_per_user: 8.0,
        avg_items_per_group: 1.12,
        mean_group_size: 4.45,
        zipf_exponent: 0.8,
        homophily: 0.45,
        social_influence: 0.15,
        expertise_sharpness: 3.5,
        taste_temperature: 0.25,
        consensus_blend: 0.5,
        connectedness_boost: 1.0,
    }
}

/// Scaled-down analogue of the paper's Douban-Event dataset
/// (Table I column 2): denser user histories and social ties, more
/// items than users, slightly larger groups.
pub fn douban_sim() -> SyntheticConfig {
    SyntheticConfig {
        name: "douban-sim".into(),
        seed: 0x444f5542, // "DOUB"
        num_users: 1000,
        num_items: 1400,
        num_groups: 4000,
        num_topics: 12,
        latent_dim: 8,
        avg_items_per_user: 25.0,
        avg_friends_per_user: 13.0,
        avg_items_per_group: 1.47,
        mean_group_size: 4.84,
        zipf_exponent: 0.75,
        homophily: 0.45,
        social_influence: 0.2,
        expertise_sharpness: 3.5,
        taste_temperature: 0.25,
        consensus_blend: 0.5,
        connectedness_boost: 1.0,
    }
}

/// The planted ground truth behind a generated dataset — exposed for
/// tests and diagnostics, never for training.
#[derive(Clone, Debug)]
pub struct GroundTruth {
    /// Per-user effective taste vector (after social blending).
    pub user_latent: Vec<Vec<f32>>,
    /// Per-item latent vector.
    pub item_latent: Vec<Vec<f32>>,
    /// Topic cluster of every user.
    pub user_cluster: Vec<usize>,
    /// Topic cluster of every item.
    pub item_topic: Vec<usize>,
    /// Per-user per-topic expertise (drives the latent vote).
    pub expertise: Vec<Vec<f32>>,
}

/// Generates a dataset from `cfg` (ground truth discarded).
pub fn generate(cfg: &SyntheticConfig) -> Dataset {
    generate_with_truth(cfg).0
}

/// Generates a dataset and its planted ground truth.
pub fn generate_with_truth(cfg: &SyntheticConfig) -> (Dataset, GroundTruth) {
    assert!(cfg.num_topics > 0 && cfg.latent_dim > 0, "topics and latent_dim must be positive");
    assert!(cfg.num_users > 1 && cfg.num_items > 1, "need at least two users and items");
    let mut rng = seeded(cfg.seed);
    let d = cfg.latent_dim;

    // 1. Topic centres.
    let centers: Vec<Vec<f32>> = (0..cfg.num_topics)
        .map(|_| (0..d).map(|_| standard_normal(&mut rng)).collect())
        .collect();

    // 2. Users: cluster, base taste, expertise.
    let user_cluster: Vec<usize> = (0..cfg.num_users).map(|_| rng.random_range(0..cfg.num_topics)).collect();
    let base_taste: Vec<Vec<f32>> = user_cluster
        .iter()
        .map(|&c| {
            centers[c]
                .iter()
                .map(|&x| x + 0.6 * standard_normal(&mut rng))
                .collect()
        })
        .collect();
    // Expertise is *observable*: a user is an expert on a topic to the
    // degree their taste aligns with the topic centre (plus mild
    // noise). This makes the planted vote weights recoverable from
    // behaviour — the structure GroupSA's item-conditioned member
    // attention is designed to learn.
    let center_norms: Vec<f32> = centers
        .iter()
        .map(|c| c.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6))
        .collect();
    let expertise: Vec<Vec<f32>> = base_taste
        .iter()
        .map(|taste| {
            (0..cfg.num_topics)
                .map(|k| {
                    let align: f32 =
                        taste.iter().zip(&centers[k]).map(|(&t, &c)| t * c).sum::<f32>() / center_norms[k];
                    align + 0.15 * standard_normal(&mut rng)
                })
                .collect()
        })
        .collect();

    // 3. Items: topic, latent, Zipf exposure.
    let item_topic: Vec<usize> = (0..cfg.num_items).map(|_| rng.random_range(0..cfg.num_topics)).collect();
    let item_latent: Vec<Vec<f32>> = item_topic
        .iter()
        .map(|&c| {
            centers[c]
                .iter()
                .map(|&x| x + 0.5 * standard_normal(&mut rng))
                .collect()
        })
        .collect();
    // Random rank assignment → Zipf weights → sampling CDF.
    let mut ranks: Vec<usize> = (1..=cfg.num_items).collect();
    shuffle(&mut ranks, &mut rng);
    let pop_weights: Vec<f64> = ranks.iter().map(|&r| 1.0 / (r as f64).powf(cfg.zipf_exponent)).collect();
    let pop_cdf = cumulative(&pop_weights);

    // 4. Social network (homophilous).
    let mut cluster_members: Vec<Vec<usize>> = vec![Vec::new(); cfg.num_topics];
    for (u, &c) in user_cluster.iter().enumerate() {
        cluster_members[c].push(u);
    }
    let target_edges = (cfg.num_users as f64 * cfg.avg_friends_per_user / 2.0) as usize;
    // Dedup only; the edges are sorted into a Vec before any iteration
    // that could reach the dataset.
    let mut edge_set: HashSet<(usize, usize)> = HashSet::with_capacity(target_edges * 2); // lint: allow(hash-container)
    let mut attempts = 0usize;
    let max_attempts = target_edges * 50;
    while edge_set.len() < target_edges && attempts < max_attempts {
        attempts += 1;
        let a = rng.random_range(0..cfg.num_users);
        let b = if rng.random::<f64>() < cfg.homophily {
            let peers = &cluster_members[user_cluster[a]];
            peers[rng.random_range(0..peers.len())]
        } else {
            rng.random_range(0..cfg.num_users)
        };
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        edge_set.insert(key);
    }
    let social: Vec<(usize, usize)> = {
        let mut v: Vec<_> = edge_set.iter().copied().collect();
        v.sort_unstable();
        v
    };

    // 5. Social influence: blend each taste towards the friend mean.
    let mut friends: Vec<Vec<usize>> = vec![Vec::new(); cfg.num_users];
    for &(a, b) in &social {
        friends[a].push(b);
        friends[b].push(a);
    }
    let user_latent: Vec<Vec<f32>> = (0..cfg.num_users)
        .map(|u| {
            // Exact-zero config gate: social_influence = 0.0 means
            // "feature off", set literally.
            if friends[u].is_empty() || cfg.social_influence == 0.0 { // lint: allow(float-eq)
                return base_taste[u].clone();
            }
            let mut mean = vec![0.0f32; d];
            for &f in &friends[u] {
                for (m, &x) in mean.iter_mut().zip(&base_taste[f]) {
                    *m += x;
                }
            }
            let inv = 1.0 / friends[u].len() as f32;
            let w = cfg.social_influence as f32;
            base_taste[u]
                .iter()
                .zip(&mean)
                .map(|(&own, &fm)| (1.0 - w) * own + w * fm * inv)
                .collect()
        })
        .collect();

    // 6. User–item interactions.
    const CANDIDATES: usize = 24;
    let mut user_item: Vec<(usize, usize)> = Vec::new();
    for u in 0..cfg.num_users {
        // Log-normal-ish activity spread around the target mean.
        let mult = (0.4 * standard_normal(&mut rng) as f64).exp();
        let count = ((cfg.avg_items_per_user * mult).round() as usize).clamp(3, cfg.num_items / 2);
        // Dedup only; drained into a sorted Vec before use.
        let mut chosen: HashSet<usize> = HashSet::with_capacity(count); // lint: allow(hash-container)
        let mut guard = 0;
        while chosen.len() < count && guard < count * 20 {
            guard += 1;
            let pick = pick_by_taste(
                &mut rng,
                &pop_cdf,
                CANDIDATES,
                cfg.taste_temperature,
                |v| dot(&user_latent[u], &item_latent[v]),
            );
            chosen.insert(pick);
        }
        let mut items: Vec<usize> = chosen.into_iter().collect();
        items.sort_unstable();
        user_item.extend(items.into_iter().map(|i| (u, i)));
    }

    // 7. Groups: random walks on the social graph.
    let groups: Vec<Vec<usize>> = (0..cfg.num_groups)
        .map(|_| {
            let size = sample_group_size(&mut rng, cfg.mean_group_size);
            grow_group(&mut rng, &friends, &cluster_members, &user_cluster, size, cfg.num_users)
        })
        .collect();

    // 8. Group–item interactions: the latent vote with in-group
    // discussion. Group choices are drawn from a flatter popularity pool
    // than individual choices (a group event is less exposure-driven
    // than an individual visit).
    let group_pop_weights: Vec<f64> = pop_weights.iter().map(|w| w.sqrt()).collect();
    let group_pop_cdf = cumulative(&group_pop_weights);
    let mut group_item: Vec<(usize, usize)> = Vec::new();
    for (t, members) in groups.iter().enumerate() {
        let vote = GroupVote::new(members, &friends, &user_latent, &expertise, cfg);
        let count = sample_shifted_geometric(&mut rng, cfg.avg_items_per_group);
        // Dedup only; drained into a sorted Vec before use.
        let mut chosen: HashSet<usize> = HashSet::with_capacity(count); // lint: allow(hash-container)
        let mut guard = 0;
        while chosen.len() < count && guard < count * 20 {
            guard += 1;
            let pick = pick_by_taste(&mut rng, &group_pop_cdf, CANDIDATES, cfg.taste_temperature, |v| {
                vote.score(v, &item_latent, &item_topic)
            });
            chosen.insert(pick);
        }
        let mut items: Vec<usize> = chosen.into_iter().collect();
        items.sort_unstable();
        group_item.extend(items.into_iter().map(|i| (t, i)));
    }

    let dataset = Dataset {
        name: cfg.name.clone(),
        num_users: cfg.num_users,
        num_items: cfg.num_items,
        groups,
        user_item,
        group_item,
        social,
    };
    debug_assert_eq!(dataset.validate(), Ok(()));
    let truth = GroundTruth { user_latent, item_latent, user_cluster, item_topic, expertise };
    (dataset, truth)
}

/// The planted decision rule of one group — the "latent voting
/// mechanism" the paper's model is built to recover:
///
/// 1. **Discussion** (Fig. 2): each member's effective taste is blended
///    with the mean taste of their in-group friends
///    (`consensus_blend`), so opinions shift along social edges before
///    the vote.
/// 2. **Vote**: member `i` gets weight
///    `softmax(sharpness · expertise_i[topic(v)] + connectedness_boost
///    · ln(1 + in-group degree))` — topic experts and socially
///    well-connected members are heard more.
/// 3. The group's score for item `v` is the weight-averaged affinity of
///    the post-discussion tastes.
pub(crate) struct GroupVote {
    members: Vec<usize>,
    /// Post-discussion effective tastes, parallel to `members`.
    effective: Vec<Vec<f32>>,
    /// `ln(1 + in-group degree) · δ` bias per member.
    conn_bias: Vec<f64>,
    sharpness: f64,
    expertise: Vec<Vec<f32>>,
}

impl GroupVote {
    pub(crate) fn new(
        members: &[usize],
        friends: &[Vec<usize>],
        user_latent: &[Vec<f32>],
        expertise: &[Vec<f32>],
        cfg: &SyntheticConfig,
    ) -> Self {
        // Membership queries only (`contains`), never iterated.
        let in_group: HashSet<usize> = members.iter().copied().collect(); // lint: allow(hash-container)
        let rho = cfg.consensus_blend as f32;
        let mut effective = Vec::with_capacity(members.len());
        let mut conn_bias = Vec::with_capacity(members.len());
        for &u in members {
            let peers: Vec<usize> = friends[u].iter().copied().filter(|f| in_group.contains(f)).collect();
            // Exact-zero config gate: consensus_blend = 0.0 disables
            // the blend, set literally.
            let taste = if peers.is_empty() || rho == 0.0 { // lint: allow(float-eq)
                user_latent[u].clone()
            } else {
                let inv = 1.0 / peers.len() as f32;
                user_latent[u]
                    .iter()
                    .enumerate()
                    .map(|(k, &own)| {
                        let peer_mean: f32 = peers.iter().map(|&p| user_latent[p][k]).sum::<f32>() * inv;
                        (1.0 - rho) * own + rho * peer_mean
                    })
                    .collect()
            };
            effective.push(taste);
            conn_bias.push(cfg.connectedness_boost * (1.0 + peers.len() as f64).ln());
        }
        Self {
            members: members.to_vec(),
            effective,
            conn_bias,
            sharpness: cfg.expertise_sharpness,
            expertise: members.iter().map(|&u| expertise[u].clone()).collect(),
        }
    }

    /// The group's latent score for `item`.
    pub(crate) fn score(&self, item: usize, item_latent: &[Vec<f32>], item_topic: &[usize]) -> f32 {
        let topic = item_topic[item];
        let raw: Vec<f64> = (0..self.members.len())
            .map(|i| (self.sharpness * self.expertise[i][topic] as f64 + self.conn_bias[i]).exp())
            .collect();
        let total: f64 = raw.iter().sum();
        let mut score = 0.0f32;
        for (i, w) in raw.iter().enumerate() {
            score += (w / total) as f32 * dot(&self.effective[i], &item_latent[item]);
        }
        score
    }
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

fn cumulative(weights: &[f64]) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for &w in weights {
        acc += w;
        cdf.push(acc);
    }
    cdf
}

/// Samples an index from a cumulative weight vector by binary search.
fn sample_cdf(rng: &mut impl Rng, cdf: &[f64]) -> usize {
    let total = *cdf.last().expect("non-empty cdf");
    let x = rng.random::<f64>() * total;
    cdf.partition_point(|&c| c < x).min(cdf.len() - 1)
}

/// Draws `candidates` popularity-weighted items and picks one by
/// softmax of `affinity / temperature`.
fn pick_by_taste(
    rng: &mut impl Rng,
    pop_cdf: &[f64],
    candidates: usize,
    temperature: f64,
    affinity: impl Fn(usize) -> f32,
) -> usize {
    let pool: Vec<usize> = (0..candidates).map(|_| sample_cdf(rng, pop_cdf)).collect();
    let scores: Vec<f64> = pool.iter().map(|&v| affinity(v) as f64 / temperature).collect();
    let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let weights: Vec<f64> = scores.iter().map(|&s| (s - max).exp()).collect();
    let cdf = cumulative(&weights);
    pool[sample_cdf(rng, &cdf)]
}

/// Group sizes: `2 + Exp(mean − 2)` discretised, clamped to `[2, 15]` —
/// right-skewed with mean ≈ `mean`, producing the small/medium/large
/// bins of paper Table IX.
fn sample_group_size(rng: &mut impl Rng, mean: f64) -> usize {
    let lambda = (mean - 2.0).max(0.1);
    let u: f64 = 1.0 - rng.random::<f64>();
    let size = 2.0 + (-u.ln()) * lambda;
    (size.round() as usize).clamp(2, 15)
}

/// Shifted geometric with mean `avg ≥ 1`: always at least one
/// interaction, occasionally more.
fn sample_shifted_geometric(rng: &mut impl Rng, avg: f64) -> usize {
    let p_extra = ((avg - 1.0) / avg).clamp(0.0, 0.95);
    let mut count = 1;
    while count < 10 && rng.random::<f64>() < p_extra {
        count += 1;
    }
    count
}

/// Grows a group of `size` members by a random walk over friendships,
/// topping up from the seed's cluster (then anywhere) if the walk
/// stalls — groups are socially connected by construction, as in the
/// SIGR extraction procedure.
fn grow_group(
    rng: &mut impl Rng,
    friends: &[Vec<usize>],
    cluster_members: &[Vec<usize>],
    user_cluster: &[usize],
    size: usize,
    num_users: usize,
) -> Vec<usize> {
    let seed = rng.random_range(0..num_users);
    let mut members = vec![seed];
    // Membership queries only (`contains`), never iterated.
    let mut in_group: HashSet<usize> = HashSet::from([seed]); // lint: allow(hash-container)
    let mut stall = 0;
    while members.len() < size {
        let anchor = members[rng.random_range(0..members.len())];
        let candidates: Vec<usize> = friends[anchor].iter().copied().filter(|u| !in_group.contains(u)).collect();
        let next = if let Some(&pick) = pick_random(rng, &candidates) {
            pick
        } else {
            stall += 1;
            if stall > 4 * size {
                break; // pathological isolation; accept a smaller group
            }
            let peers = &cluster_members[user_cluster[seed]];
            let cand = peers[rng.random_range(0..peers.len())];
            if in_group.contains(&cand) {
                continue;
            }
            cand
        };
        in_group.insert(next);
        members.push(next);
    }
    members.sort_unstable();
    members
}

fn pick_random<'a, T>(rng: &mut impl Rng, xs: &'a [T]) -> Option<&'a T> {
    if xs.is_empty() {
        None
    } else {
        Some(&xs[rng.random_range(0..xs.len())])
    }
}

fn shuffle<T>(xs: &mut [T], rng: &mut impl Rng) {
    for i in (1..xs.len()).rev() {
        xs.swap(i, rng.random_range(0..=i));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> SyntheticConfig {
        SyntheticConfig {
            name: "tiny-sim".into(),
            seed: 7,
            num_users: 120,
            num_items: 80,
            num_groups: 60,
            num_topics: 4,
            latent_dim: 6,
            avg_items_per_user: 8.0,
            avg_friends_per_user: 6.0,
            avg_items_per_group: 1.3,
            mean_group_size: 4.0,
            zipf_exponent: 0.8,
            homophily: 0.8,
            social_influence: 0.3,
            expertise_sharpness: 2.0,
            taste_temperature: 0.35,
            consensus_blend: 0.5,
            connectedness_boost: 1.0,
        }
    }

    #[test]
    fn generated_dataset_is_valid_and_deterministic() {
        let cfg = tiny_cfg();
        let a = generate(&cfg);
        assert_eq!(a.validate(), Ok(()));
        let b = generate(&cfg);
        assert_eq!(a, b, "same seed must reproduce the dataset exactly");
        let c = generate(&SyntheticConfig { seed: 8, ..cfg });
        assert_ne!(a, c, "different seed must change the dataset");
    }

    #[test]
    fn statistics_near_targets() {
        let cfg = tiny_cfg();
        let d = generate(&cfg);
        let ui = d.user_item_graph();
        let per_user = ui.avg_user_activity();
        assert!((per_user - cfg.avg_items_per_user).abs() < 4.0, "items/user {per_user}");
        let s = d.social_graph();
        let friends = s.avg_degree();
        assert!((friends - cfg.avg_friends_per_user).abs() < 2.5, "friends/user {friends}");
        let avg_size = d.groups.iter().map(Vec::len).sum::<usize>() as f64 / d.num_groups() as f64;
        assert!((avg_size - cfg.mean_group_size).abs() < 1.2, "group size {avg_size}");
        let per_group = d.group_item.len() as f64 / d.num_groups() as f64;
        assert!((per_group - cfg.avg_items_per_group).abs() < 0.5, "items/group {per_group}");
    }

    #[test]
    fn group_sizes_cover_paper_bins() {
        let cfg = SyntheticConfig { num_groups: 300, ..tiny_cfg() };
        let d = generate(&cfg);
        let small = d.groups.iter().filter(|g| g.len() < 3).count();
        let medium = d.groups.iter().filter(|g| (3..=7).contains(&g.len())).count();
        let large = d.groups.iter().filter(|g| g.len() > 7).count();
        assert!(small > 0, "need small groups for Table IX");
        assert!(medium > 0, "need medium groups for Table IX");
        assert!(large > 0, "need large groups for Table IX");
    }

    #[test]
    fn social_network_is_homophilous() {
        let (d, truth) = generate_with_truth(&tiny_cfg());
        let same = d
            .social
            .iter()
            .filter(|&&(a, b)| truth.user_cluster[a] == truth.user_cluster[b])
            .count();
        let frac = same as f64 / d.social.len() as f64;
        // With homophily 0.8 over 4 clusters, within-cluster fraction
        // must far exceed the 1/4 random baseline.
        assert!(frac > 0.5, "within-cluster edge fraction {frac}");
    }

    #[test]
    fn interactions_align_with_taste() {
        let (d, truth) = generate_with_truth(&tiny_cfg());
        // The mean affinity of observed pairs must exceed the global mean.
        let observed: f32 = d
            .user_item
            .iter()
            .map(|&(u, i)| dot(&truth.user_latent[u], &truth.item_latent[i]))
            .sum::<f32>()
            / d.user_item.len() as f32;
        let mut rng = seeded(1);
        let random: f32 = (0..2000)
            .map(|_| {
                let u = rng.random_range(0..d.num_users);
                let i = rng.random_range(0..d.num_items);
                dot(&truth.user_latent[u], &truth.item_latent[i])
            })
            .sum::<f32>()
            / 2000.0;
        assert!(
            observed > random + 0.5,
            "observed affinity {observed} vs random {random}"
        );
    }

    #[test]
    fn expert_weighting_matters_in_vote() {
        // The vote score with sharp expertise must differ from the
        // flat-average score for a group with mixed expertise.
        let user_latent = vec![vec![1.0f32, 0.0], vec![0.0, 1.0]];
        let item_latent = vec![vec![1.0f32, 0.0]];
        let expertise = vec![vec![3.0f32], vec![0.0]];
        let item_topic = vec![0usize];
        let friends: Vec<Vec<usize>> = vec![vec![], vec![]];
        let mut cfg = tiny_cfg();
        cfg.consensus_blend = 0.0;
        cfg.connectedness_boost = 0.0;
        cfg.expertise_sharpness = 3.0;
        let sharp = GroupVote::new(&[0, 1], &friends, &user_latent, &expertise, &cfg)
            .score(0, &item_latent, &item_topic);
        cfg.expertise_sharpness = 0.0;
        let flat = GroupVote::new(&[0, 1], &friends, &user_latent, &expertise, &cfg)
            .score(0, &item_latent, &item_topic);
        assert!((flat - 0.5).abs() < 1e-6, "flat vote is the average");
        assert!(sharp > 0.9, "expert (taste-aligned) member dominates: {sharp}");
    }

    #[test]
    fn discussion_shifts_isolated_vs_connected_members() {
        // Two connected members discuss: their effective tastes move
        // towards each other; an isolated third member is unmoved, and
        // connected members outweigh the isolate.
        let user_latent = vec![vec![1.0f32, 0.0], vec![0.0, 1.0], vec![-1.0, -1.0]];
        let expertise = vec![vec![0.0f32], vec![0.0], vec![0.0]];
        let item_latent = vec![vec![1.0f32, 1.0]];
        let item_topic = vec![0usize];
        let friends: Vec<Vec<usize>> = vec![vec![1], vec![0], vec![]];
        let mut cfg = tiny_cfg();
        cfg.consensus_blend = 0.5;
        cfg.connectedness_boost = 2.0;
        cfg.expertise_sharpness = 0.0;
        let vote = GroupVote::new(&[0, 1, 2], &friends, &user_latent, &expertise, &cfg);
        // Post-discussion tastes of 0 and 1 are both (0.5, 0.5).
        assert!((vote.effective[0][0] - 0.5).abs() < 1e-6);
        assert!((vote.effective[1][1] - 0.5).abs() < 1e-6);
        assert_eq!(vote.effective[2], vec![-1.0, -1.0], "isolate unmoved");
        // Connected members dominate the vote, so the score is pulled
        // towards their (positive) affinity despite the isolate's −2.
        let s = vote.score(0, &item_latent, &item_topic);
        assert!(s > 0.0, "connected consensus should dominate: {s}");
    }

    #[test]
    fn paper_scale_configs_are_consistent() {
        for cfg in [yelp_sim(), douban_sim()] {
            assert!(cfg.avg_items_per_group < 2.0, "group-item data must be sparse");
            assert!(cfg.avg_items_per_user > 5.0, "user-item data must be plentiful");
        }
        // Douban is the denser dataset, as in Table I.
        assert!(douban_sim().avg_items_per_user > yelp_sim().avg_items_per_user);
        assert!(douban_sim().avg_friends_per_user > yelp_sim().avg_friends_per_user);
        assert!(douban_sim().avg_items_per_group > yelp_sim().avg_items_per_group);
    }

    #[test]
    fn distribution_helpers_hit_their_means() {
        let mut rng = seeded(3);
        let n = 20_000;
        let mean_size: f64 = (0..n).map(|_| sample_group_size(&mut rng, 4.5) as f64).sum::<f64>() / n as f64;
        assert!((mean_size - 4.5).abs() < 0.3, "group size mean {mean_size}");
        let mean_cnt: f64 = (0..n).map(|_| sample_shifted_geometric(&mut rng, 1.4) as f64).sum::<f64>() / n as f64;
        assert!((mean_cnt - 1.4).abs() < 0.1, "interaction count mean {mean_cnt}");
    }

    #[test]
    fn groups_are_socially_cohesive() {
        let d = generate(&tiny_cfg());
        let s = d.social_graph();
        // In most groups, most members have at least one in-group friend.
        let mut connected = 0usize;
        let mut total = 0usize;
        for g in &d.groups {
            for &u in g {
                total += 1;
                if g.iter().any(|&v| v != u && s.has_edge(u, v)) {
                    connected += 1;
                }
            }
        }
        let frac = connected as f64 / total as f64;
        assert!(frac > 0.6, "in-group friendship fraction {frac}");
    }
}
