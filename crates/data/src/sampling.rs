//! Negative sampling for BPR training and for the evaluation protocol.
//!
//! Training (paper §II-E): "At each gradient step, we randomly sample a
//! positive user-item example and N negative examples."
//!
//! Evaluation (paper §III-C): "we randomly select 100 items that have
//! never been interacted by the tested user or group as the candidate
//! set."

use groupsa_graph::Bipartite;
use rand::{Rng, RngExt};

/// Samples `n` items the entity has never interacted with (according
/// to `interactions`, with the entity on the left side). Sampling is
/// with replacement across calls but without replacement within one
/// call when `distinct` is set.
///
/// # Panics
/// If the entity has interacted with every item (no negatives exist),
/// or if `distinct` negatives are requested but fewer exist.
pub fn sample_negatives(
    rng: &mut impl Rng,
    interactions: &Bipartite,
    entity: usize,
    n: usize,
    distinct: bool,
) -> Vec<usize> {
    let num_items = interactions.num_items();
    let known = interactions.user_activity(entity);
    assert!(
        num_items > known,
        "entity {entity} interacted with all {num_items} items; no negatives exist"
    );
    if distinct {
        assert!(
            num_items - known >= n,
            "entity {entity}: requested {n} distinct negatives but only {} exist",
            num_items - known
        );
    }
    let mut out = Vec::with_capacity(n);
    // Membership queries only (dedup of drawn negatives); the output
    // order comes from the RNG draws, never from set iteration.
    let mut taken = std::collections::HashSet::new(); // lint: allow(hash-container)
    while out.len() < n {
        let cand = rng.random_range(0..num_items);
        if interactions.has_interaction(entity, cand) {
            continue;
        }
        if distinct && !taken.insert(cand) {
            continue;
        }
        out.push(cand);
    }
    out
}

/// One BPR training example: an observed positive pair plus `n`
/// sampled negatives for the same left-hand entity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BprExample {
    /// The user (or group) id.
    pub entity: usize,
    /// The observed positive item.
    pub positive: usize,
    /// `n` unobserved items.
    pub negatives: Vec<usize>,
}

/// Draws one uniformly random positive pair from `pairs` and attaches
/// `n` negatives sampled against `interactions`.
///
/// # Panics
/// If `pairs` is empty (there is nothing to train on).
pub fn sample_bpr_example(
    rng: &mut impl Rng,
    pairs: &[(usize, usize)],
    interactions: &Bipartite,
    n: usize,
) -> BprExample {
    assert!(!pairs.is_empty(), "sample_bpr_example: no positive pairs");
    let (entity, positive) = pairs[rng.random_range(0..pairs.len())];
    let negatives = sample_negatives(rng, interactions, entity, n, false);
    BprExample { entity, positive, negatives }
}

/// An epoch-style iterator: visits every positive pair once, in a
/// shuffled order, attaching fresh negatives to each. Collecting it
/// gives one full BPR epoch.
pub fn bpr_epoch<'a, R: Rng>(
    rng: &'a mut R,
    pairs: &'a [(usize, usize)],
    interactions: &'a Bipartite,
    n: usize,
) -> impl Iterator<Item = BprExample> + 'a {
    let mut order: Vec<usize> = (0..pairs.len()).collect();
    for i in (1..order.len()).rev() {
        order.swap(i, rng.random_range(0..=i));
    }
    order.into_iter().map(move |idx| {
        let (entity, positive) = pairs[idx];
        let negatives = sample_negatives(rng, interactions, entity, n, false);
        BprExample { entity, positive, negatives }
    })
}

/// Stream index reserved for the epoch's shuffle; example indices are
/// `0..pairs.len()`, so `u64::MAX` can never collide with one.
const SHUFFLE_INDEX: u64 = u64::MAX;

/// One full BPR epoch with *per-example RNG streams*: the visit order
/// comes from the `(seed, epoch, SHUFFLE_INDEX)` stream, and the
/// negatives of the example at epoch position `i` come from the
/// `(seed, epoch, i)` stream.
///
/// Unlike [`bpr_epoch`], whose single sequential RNG makes example `i`
/// depend on how many draws examples `0..i` made, every example here is
/// an independent function of its key — so examples can be generated or
/// trained on in any order (or in parallel) with identical results.
/// This is the epoch used by the data-parallel trainer.
///
/// # Panics
/// If `pairs` is empty.
pub fn bpr_epoch_streams(
    seed: u64,
    epoch: u64,
    pairs: &[(usize, usize)],
    interactions: &Bipartite,
    n: usize,
) -> Vec<BprExample> {
    assert!(!pairs.is_empty(), "bpr_epoch_streams: no positive pairs");
    let mut shuffle_rng = groupsa_tensor::rng::stream_rng(seed, epoch, SHUFFLE_INDEX);
    let mut order: Vec<usize> = (0..pairs.len()).collect();
    for i in (1..order.len()).rev() {
        order.swap(i, shuffle_rng.random_range(0..=i));
    }
    order
        .into_iter()
        .enumerate()
        .map(|(i, idx)| {
            let (entity, positive) = pairs[idx];
            let mut rng = groupsa_tensor::rng::stream_rng(seed, epoch, i as u64);
            let negatives = sample_negatives(&mut rng, interactions, entity, n, false);
            BprExample { entity, positive, negatives }
        })
        .collect()
}

/// The paper's evaluation candidate set: the held-out positive plus
/// `num_candidates` distinct items never interacted by the entity in
/// *either* split (`full_interactions` should therefore be built from
/// train ∪ test). The positive is placed at index 0.
///
/// On small item universes the request is capped at the number of
/// negatives that actually exist for the entity, so the protocol stays
/// total (an entity that interacted with almost everything is simply
/// ranked against fewer candidates).
pub fn eval_candidates(
    rng: &mut impl Rng,
    full_interactions: &Bipartite,
    entity: usize,
    positive: usize,
    num_candidates: usize,
) -> Vec<usize> {
    let available = full_interactions.num_items() - full_interactions.user_activity(entity);
    let n = num_candidates.min(available);
    let mut c = Vec::with_capacity(n + 1);
    c.push(positive);
    c.extend(sample_negatives(rng, full_interactions, entity, n, true));
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use groupsa_tensor::rng::seeded;

    fn graph() -> Bipartite {
        // user 0: items {0,1}; user 1: item {2} out of 6 items.
        Bipartite::from_pairs(2, 6, &[(0, 0), (0, 1), (1, 2)])
    }

    #[test]
    fn negatives_never_collide_with_positives() {
        let b = graph();
        let mut rng = seeded(1);
        for _ in 0..200 {
            for neg in sample_negatives(&mut rng, &b, 0, 3, false) {
                assert!(!b.has_interaction(0, neg));
            }
        }
    }

    #[test]
    fn distinct_negatives_are_distinct() {
        let b = graph();
        let mut rng = seeded(2);
        let negs = sample_negatives(&mut rng, &b, 0, 4, true);
        let set: std::collections::HashSet<_> = negs.iter().collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    #[should_panic(expected = "distinct negatives")]
    fn too_many_distinct_negatives_panics() {
        let b = graph();
        let mut rng = seeded(3);
        let _ = sample_negatives(&mut rng, &b, 0, 5, true); // only 4 exist
    }

    #[test]
    fn bpr_example_is_well_formed() {
        let b = graph();
        let pairs = vec![(0, 0), (0, 1), (1, 2)];
        let mut rng = seeded(4);
        for _ in 0..50 {
            let ex = sample_bpr_example(&mut rng, &pairs, &b, 2);
            assert!(b.has_interaction(ex.entity, ex.positive));
            assert_eq!(ex.negatives.len(), 2);
            for &n in &ex.negatives {
                assert!(!b.has_interaction(ex.entity, n));
            }
        }
    }

    #[test]
    fn epoch_visits_every_positive_once() {
        let b = graph();
        let pairs = vec![(0, 0), (0, 1), (1, 2)];
        let mut rng = seeded(5);
        let examples: Vec<_> = bpr_epoch(&mut rng, &pairs, &b, 1).collect();
        assert_eq!(examples.len(), pairs.len());
        let mut seen: Vec<_> = examples.iter().map(|e| (e.entity, e.positive)).collect();
        seen.sort_unstable();
        let mut expected = pairs.clone();
        expected.sort_unstable();
        assert_eq!(seen, expected);
    }

    #[test]
    fn stream_epoch_visits_every_positive_once() {
        let b = graph();
        let pairs = vec![(0, 0), (0, 1), (1, 2)];
        let examples = bpr_epoch_streams(7, 0, &pairs, &b, 2);
        assert_eq!(examples.len(), pairs.len());
        let mut seen: Vec<_> = examples.iter().map(|e| (e.entity, e.positive)).collect();
        seen.sort_unstable();
        let mut expected = pairs.clone();
        expected.sort_unstable();
        assert_eq!(seen, expected);
        for ex in &examples {
            assert_eq!(ex.negatives.len(), 2);
            for &n in &ex.negatives {
                assert!(!b.has_interaction(ex.entity, n));
            }
        }
    }

    #[test]
    fn stream_epoch_examples_are_independent_of_each_other() {
        // Example i must be a pure function of (seed, epoch, i): the
        // full epoch and a re-derivation of one example must agree.
        let b = graph();
        let pairs = vec![(0, 0), (0, 1), (1, 2)];
        let epoch = bpr_epoch_streams(9, 3, &pairs, &b, 4);
        for (i, ex) in epoch.iter().enumerate() {
            let mut rng = groupsa_tensor::rng::stream_rng(9, 3, i as u64);
            let negs = sample_negatives(&mut rng, &b, ex.entity, 4, false);
            assert_eq!(negs, ex.negatives, "example {i} must not depend on its neighbours");
        }
    }

    #[test]
    fn stream_epoch_varies_across_epochs_and_seeds() {
        let b = graph();
        let pairs = vec![(0, 0), (0, 1), (1, 2)];
        let a = bpr_epoch_streams(9, 0, &pairs, &b, 3);
        assert_eq!(a, bpr_epoch_streams(9, 0, &pairs, &b, 3));
        assert_ne!(a, bpr_epoch_streams(9, 1, &pairs, &b, 3));
        assert_ne!(a, bpr_epoch_streams(10, 0, &pairs, &b, 3));
    }

    #[test]
    fn eval_candidates_have_positive_first_and_clean_negatives() {
        let b = graph();
        let mut rng = seeded(6);
        let cands = eval_candidates(&mut rng, &b, 0, 1, 3);
        assert_eq!(cands.len(), 4);
        assert_eq!(cands[0], 1);
        for &c in &cands[1..] {
            assert!(!b.has_interaction(0, c));
        }
    }

    #[test]
    fn eval_candidates_cap_at_available_negatives() {
        // Entity 0 has interacted with 2 of 6 items → only 4 negatives
        // exist; a request for 100 candidates must not panic.
        let b = graph();
        let mut rng = seeded(7);
        let cands = eval_candidates(&mut rng, &b, 0, 1, 100);
        assert_eq!(cands.len(), 5); // positive + the 4 existing negatives
        assert_eq!(cands[0], 1);
    }

    #[test]
    fn sampling_is_deterministic_in_seed() {
        let b = graph();
        let a: Vec<_> = sample_negatives(&mut seeded(9), &b, 0, 5, false);
        let c: Vec<_> = sample_negatives(&mut seeded(9), &b, 0, 5, false);
        assert_eq!(a, c);
    }
}
