//! Streaming synthetic universes for million-scale serving benchmarks.
//!
//! The full generator in [`crate::synthetic`] materialises every
//! interaction in memory — fine at paper scale (~1k users), hopeless at
//! the million-user scale the snapshot serving path targets. This
//! module generates *only* what frozen serving needs — per-user Top-H
//! item/friend lists and per-group member lists — and generates it
//! **statelessly**: every user profile is a pure function of
//! `(seed, user id)` through an independent
//! [`groupsa_tensor::rng::stream_rng`] stream.
//!
//! That keying is the load-bearing property: profiles can be produced
//! in chunks of any size, in any order, on any number of threads, and
//! the bytes are identical. A snapshot written from 1 000-user chunks
//! is byte-for-byte the snapshot written from 65 536-user chunks, so
//! the million-scale bench can stream users straight into the snapshot
//! writer without ever holding the universe in memory.

use groupsa_tensor::rng::stream_rng;
use rand::{Rng, RngExt};

/// Stream key for per-user profiles ("USER").
const USER_STREAM: u64 = 0x5553_4552;
/// Stream key for per-group member lists ("GRP").
const GROUP_STREAM: u64 = 0x47_5250;

/// Parameters of a streamed serving universe.
#[derive(Clone, Debug)]
pub struct StreamConfig {
    /// Master seed; every profile is deterministic in it.
    pub seed: u64,
    /// Number of users `m` (millions are fine — nothing scales with it
    /// except the stream itself).
    pub num_users: usize,
    /// Number of items `n`.
    pub num_items: usize,
    /// Number of groups `k` (materialised eagerly by
    /// [`StreamConfig::all_group_members`]; keep it modest).
    pub num_groups: usize,
    /// Top-H list length per user (paper §II-D).
    pub top_h: usize,
    /// Mean group size (clamped to `[2, max_group_size]`).
    pub mean_group_size: f64,
    /// Hard cap on group size.
    pub max_group_size: usize,
    /// Fraction of cold users with empty Top-H lists (frozen latents
    /// absent — exercises the snapshot presence bitmap at scale).
    pub cold_fraction: f64,
}

impl StreamConfig {
    /// A serving-shaped universe with paper-like defaults: Top-H of 8,
    /// mean group size 4, ~3% cold users.
    pub fn serving(seed: u64, num_users: usize, num_items: usize, num_groups: usize) -> Self {
        Self {
            seed,
            num_users,
            num_items,
            num_groups,
            top_h: 8,
            mean_group_size: 4.0,
            max_group_size: 8,
            cold_fraction: 0.03,
        }
    }

    /// The profile of one user — a pure function of `(seed, user)`,
    /// independent of every other user and of any iteration order.
    pub fn user_profile(&self, user: usize) -> UserProfile {
        let mut rng = stream_rng(self.seed, USER_STREAM, user as u64);
        if rng.random::<f64>() < self.cold_fraction {
            return UserProfile { user, top_items: Vec::new(), top_friends: Vec::new() };
        }
        // Item exposure is head-heavy (square-law skew towards low ids)
        // so the streamed universe keeps a popularity spine, like the
        // Zipf exposure of the full generator.
        let num_items = self.num_items;
        let top_items = sample_distinct(&mut rng, self.top_h, |rng| {
            let x: f64 = rng.random();
            (((x * x) * num_items as f64) as usize).min(num_items.saturating_sub(1))
        });
        let num_users = self.num_users;
        let top_friends = sample_distinct(&mut rng, self.top_h.min(num_users.saturating_sub(1)), |rng| {
            let f = rng.random_range(0..num_users);
            if f == user { (f + 1) % num_users } else { f }
        });
        UserProfile { user, top_items, top_friends }
    }

    /// The member list of one group — a pure function of
    /// `(seed, group)`. Members are sorted, as in the full generator.
    pub fn group_members(&self, group: usize) -> Vec<usize> {
        let mut rng = stream_rng(self.seed, GROUP_STREAM, group as u64);
        let lambda = (self.mean_group_size - 2.0).max(0.1);
        let u: f64 = 1.0 - rng.random::<f64>();
        let size = ((2.0 + (-u.ln()) * lambda).round() as usize)
            .clamp(2, self.max_group_size)
            .min(self.num_users);
        let num_users = self.num_users;
        let mut members = sample_distinct(&mut rng, size, |rng| rng.random_range(0..num_users));
        members.sort_unstable();
        members
    }

    /// All group member lists, materialised (groups are the small axis
    /// of the universe).
    pub fn all_group_members(&self) -> Vec<Vec<usize>> {
        (0..self.num_groups).map(|g| self.group_members(g)).collect()
    }

    /// Streams every user profile in id order.
    pub fn users(&self) -> impl Iterator<Item = UserProfile> + '_ {
        (0..self.num_users).map(move |u| self.user_profile(u))
    }

    /// Streams user profiles in id-ordered chunks of at most
    /// `chunk_size` users. The concatenation of any chunking equals
    /// [`StreamConfig::users`] exactly.
    pub fn user_chunks(&self, chunk_size: usize) -> impl Iterator<Item = Vec<UserProfile>> + '_ {
        let chunk = chunk_size.max(1);
        (0..self.num_users).step_by(chunk).map(move |start| {
            (start..(start + chunk).min(self.num_users)).map(|u| self.user_profile(u)).collect()
        })
    }
}

/// One user's serving-relevant neighbourhood: the Top-H lists that
/// [`groupsa_core::GroupSa::user_latent_from_lists`] consumes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UserProfile {
    /// The user id.
    pub user: usize,
    /// Top-H interacted items (empty for cold users).
    pub top_items: Vec<usize>,
    /// Top-H friends (empty for cold users).
    pub top_friends: Vec<usize>,
}

/// Draws up to `want` distinct values from `draw`, preserving draw
/// order. Gives up (returning fewer) after a bounded number of
/// rejections so degenerate configs (e.g. more draws than the value
/// space holds) cannot hang the stream.
fn sample_distinct<R: Rng>(rng: &mut R, want: usize, mut draw: impl FnMut(&mut R) -> usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(want);
    let mut guard = 0usize;
    while out.len() < want && guard < want * 20 + 20 {
        guard += 1;
        let v = draw(rng);
        if !out.contains(&v) {
            out.push(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> StreamConfig {
        StreamConfig::serving(11, 500, 300, 40)
    }

    #[test]
    fn profiles_are_chunk_size_invariant() {
        let c = cfg();
        let whole: Vec<UserProfile> = c.users().collect();
        for chunk in [1, 7, 64, 500, 1000] {
            let chunked: Vec<UserProfile> = c.user_chunks(chunk).flatten().collect();
            assert_eq!(whole, chunked, "chunk size {chunk} changed the stream");
        }
    }

    #[test]
    fn profiles_are_order_independent_and_deterministic() {
        let c = cfg();
        // Reverse-order generation reproduces the same profiles: each
        // is a pure function of (seed, user).
        let forward: Vec<UserProfile> = c.users().collect();
        let mut backward: Vec<UserProfile> = (0..c.num_users).rev().map(|u| c.user_profile(u)).collect();
        backward.reverse();
        assert_eq!(forward, backward);
        let other = StreamConfig { seed: 12, ..cfg() };
        assert_ne!(forward, other.users().collect::<Vec<_>>(), "seed must matter");
    }

    #[test]
    fn profiles_respect_the_universe() {
        let c = cfg();
        let mut cold = 0usize;
        for p in c.users() {
            assert!(p.top_items.iter().all(|&i| i < c.num_items), "item out of range");
            assert!(p.top_friends.iter().all(|&f| f < c.num_users), "friend out of range");
            assert!(!p.top_friends.contains(&p.user), "self-friendship");
            assert!(p.top_items.len() <= c.top_h && p.top_friends.len() <= c.top_h);
            for list in [&p.top_items, &p.top_friends] {
                let mut sorted = list.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), list.len(), "duplicate entries in Top-H list");
            }
            if p.top_items.is_empty() && p.top_friends.is_empty() {
                cold += 1;
            }
        }
        assert!(cold > 0, "cold users must occur at 3% over 500 users");
        assert!(cold < c.num_users / 5, "cold users must stay rare: {cold}");
    }

    #[test]
    fn groups_are_sorted_distinct_and_sized() {
        let c = cfg();
        let groups = c.all_group_members();
        assert_eq!(groups.len(), c.num_groups);
        for (g, members) in groups.iter().enumerate() {
            assert!(members.len() >= 2 && members.len() <= c.max_group_size, "group {g} size");
            assert!(members.windows(2).all(|w| w[0] < w[1]), "group {g} not sorted-distinct");
            assert!(members.iter().all(|&u| u < c.num_users), "group {g} member out of range");
            assert_eq!(members, &c.group_members(g), "group {g} must be reproducible");
        }
        let mean = groups.iter().map(Vec::len).sum::<usize>() as f64 / groups.len() as f64;
        assert!((mean - c.mean_group_size).abs() < 1.5, "mean group size {mean}");
    }

    #[test]
    fn item_exposure_is_head_heavy() {
        let c = StreamConfig { num_users: 4000, ..cfg() };
        let mut head = 0usize;
        let mut total = 0usize;
        for p in c.users() {
            total += p.top_items.len();
            head += p.top_items.iter().filter(|&&i| i < c.num_items / 4).count();
        }
        let frac = head as f64 / total as f64;
        // Square-law skew puts half the exposure on the first quarter.
        assert!(frac > 0.4, "head fraction {frac}");
    }
}
