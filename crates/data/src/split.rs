//! Train / validation / test splitting (paper §III-C).
//!
//! "We randomly select 80% of the group-item and user-item interactions
//! for training, and the remaining are used for testing. In the training
//! dataset, we randomly choose 10% records as the validation set."

use crate::dataset::{Dataset, GroupId, ItemId, UserId};
use groupsa_tensor::rng::seeded;
use rand::{Rng, RngExt};
use groupsa_json::impl_json_struct;

/// An 80/10/10-style split of both interaction relations. Group
/// membership and the social network are side information, not
/// interactions, and are left intact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Split {
    /// Training user–item interactions.
    pub train_user_item: Vec<(UserId, ItemId)>,
    /// Validation user–item interactions (carved out of train).
    pub valid_user_item: Vec<(UserId, ItemId)>,
    /// Held-out user–item interactions.
    pub test_user_item: Vec<(UserId, ItemId)>,
    /// Training group–item interactions.
    pub train_group_item: Vec<(GroupId, ItemId)>,
    /// Validation group–item interactions (carved out of train).
    pub valid_group_item: Vec<(GroupId, ItemId)>,
    /// Held-out group–item interactions.
    pub test_group_item: Vec<(GroupId, ItemId)>,
}

impl_json_struct!(Split {
    train_user_item,
    valid_user_item,
    test_user_item,
    train_group_item,
    valid_group_item,
    test_group_item,
});

impl Split {
    /// A training-view [`Dataset`]: identical side information, but only
    /// the training interactions (validation excluded). This is what
    /// models are allowed to see.
    pub fn train_view(&self, base: &Dataset) -> Dataset {
        Dataset {
            name: format!("{}-train", base.name),
            user_item: self.train_user_item.clone(),
            group_item: self.train_group_item.clone(),
            ..base.clone()
        }
    }
}

/// Splits `dataset` with the paper's ratios: `test_frac` held out
/// (paper: 0.2), then `valid_frac` of the remaining training records
/// (paper: 0.1) carved out for validation. Deterministic in `seed`.
///
/// # Panics
/// If the fractions are outside `[0, 1)` or sum to ≥ 1 of the data.
pub fn split_dataset(dataset: &Dataset, test_frac: f64, valid_frac: f64, seed: u64) -> Split {
    assert!((0.0..1.0).contains(&test_frac), "test_frac must be in [0,1), got {test_frac}");
    assert!((0.0..1.0).contains(&valid_frac), "valid_frac must be in [0,1), got {valid_frac}");
    let mut rng = seeded(seed);
    let (train_user_item, valid_user_item, test_user_item) =
        three_way(&dataset.user_item, test_frac, valid_frac, &mut rng);
    let (train_group_item, valid_group_item, test_group_item) =
        three_way(&dataset.group_item, test_frac, valid_frac, &mut rng);
    Split {
        train_user_item,
        valid_user_item,
        test_user_item,
        train_group_item,
        valid_group_item,
        test_group_item,
    }
}

type Pairs = Vec<(usize, usize)>;

fn three_way(pairs: &[(usize, usize)], test_frac: f64, valid_frac: f64, rng: &mut impl Rng) -> (Pairs, Pairs, Pairs) {
    let mut shuffled = pairs.to_vec();
    for i in (1..shuffled.len()).rev() {
        shuffled.swap(i, rng.random_range(0..=i));
    }
    let n = shuffled.len();
    let n_test = (n as f64 * test_frac).round() as usize;
    let test = shuffled.split_off(n - n_test);
    let n_valid = (shuffled.len() as f64 * valid_frac).round() as usize;
    let valid = shuffled.split_off(shuffled.len() - n_valid);
    (shuffled, valid, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate, SyntheticConfig};

    fn cfg() -> SyntheticConfig {
        SyntheticConfig {
            name: "split-test".into(),
            seed: 11,
            num_users: 100,
            num_items: 60,
            num_groups: 50,
            num_topics: 4,
            latent_dim: 4,
            avg_items_per_user: 10.0,
            avg_friends_per_user: 5.0,
            avg_items_per_group: 1.5,
            mean_group_size: 4.0,
            zipf_exponent: 0.8,
            homophily: 0.8,
            social_influence: 0.3,
            expertise_sharpness: 2.0,
            taste_temperature: 0.35,
            consensus_blend: 0.5,
            connectedness_boost: 1.0,
        }
    }

    #[test]
    fn partitions_are_disjoint_and_complete() {
        let d = generate(&cfg());
        let s = split_dataset(&d, 0.2, 0.1, 42);
        let mut all: Vec<_> = s
            .train_user_item
            .iter()
            .chain(&s.valid_user_item)
            .chain(&s.test_user_item)
            .copied()
            .collect();
        all.sort_unstable();
        let mut orig = d.user_item.clone();
        orig.sort_unstable();
        assert_eq!(all, orig, "partitions must reassemble the original data");
        // Pairwise disjoint by construction (they partition a shuffle);
        // verify counts instead of set ops.
        assert_eq!(
            s.train_user_item.len() + s.valid_user_item.len() + s.test_user_item.len(),
            d.user_item.len()
        );
    }

    #[test]
    fn ratios_respected() {
        let d = generate(&cfg());
        let s = split_dataset(&d, 0.2, 0.1, 42);
        let n = d.user_item.len() as f64;
        let test_frac = s.test_user_item.len() as f64 / n;
        assert!((test_frac - 0.2).abs() < 0.02, "test fraction {test_frac}");
        let valid_frac = s.valid_user_item.len() as f64 / (n - s.test_user_item.len() as f64);
        assert!((valid_frac - 0.1).abs() < 0.02, "valid fraction {valid_frac}");
        // Group-item relation split too.
        assert!(!s.test_group_item.is_empty());
        assert!(!s.train_group_item.is_empty());
    }

    #[test]
    fn deterministic_in_seed() {
        let d = generate(&cfg());
        assert_eq!(split_dataset(&d, 0.2, 0.1, 7), split_dataset(&d, 0.2, 0.1, 7));
        assert_ne!(split_dataset(&d, 0.2, 0.1, 7), split_dataset(&d, 0.2, 0.1, 8));
    }

    #[test]
    fn train_view_masks_held_out_data() {
        let d = generate(&cfg());
        let s = split_dataset(&d, 0.2, 0.1, 42);
        let view = s.train_view(&d);
        assert_eq!(view.user_item, s.train_user_item);
        assert_eq!(view.group_item, s.train_group_item);
        // Side information preserved.
        assert_eq!(view.groups, d.groups);
        assert_eq!(view.social, d.social);
        assert_eq!(view.validate(), Ok(()));
    }

    #[test]
    fn zero_fractions_keep_everything_in_train() {
        let d = generate(&cfg());
        let s = split_dataset(&d, 0.0, 0.0, 1);
        assert_eq!(s.train_user_item.len(), d.user_item.len());
        assert!(s.test_user_item.is_empty());
        assert!(s.valid_user_item.is_empty());
    }
}
