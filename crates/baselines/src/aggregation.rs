//! The static score-aggregation baselines of §III-D (Group+avg,
//! Group+lm, Group+ms).
//!
//! Exactly as the paper evaluates them: "we first run GroupSA to
//! predict each member's personal preferences, and then apply the
//! following static aggregation strategies" — so these baselines wrap
//! a *trained* [`GroupSa`] and re-combine its per-member user-task
//! scores with a predefined rule instead of the learned voting scheme.

use groupsa_core::{DataContext, GroupSa, ScoreAggregation};
use groupsa_eval::Scorer;

/// All three strategies, in the paper's table order.
pub const ALL_STRATEGIES: [ScoreAggregation; 3] = [
    ScoreAggregation::Average,
    ScoreAggregation::LeastMisery,
    ScoreAggregation::MaxSatisfaction,
];

/// A group scorer applying `strategy` over the wrapped model's
/// per-member predictions.
pub struct StaticAggregation<'a> {
    model: &'a GroupSa,
    ctx: &'a DataContext,
    strategy: ScoreAggregation,
}

impl<'a> StaticAggregation<'a> {
    /// Wraps a trained GroupSA model.
    pub fn new(model: &'a GroupSa, ctx: &'a DataContext, strategy: ScoreAggregation) -> Self {
        Self { model, ctx, strategy }
    }

    /// The paper's label for this baseline (`Group+avg` etc.).
    pub fn label(&self) -> &'static str {
        self.strategy.label()
    }
}

impl Scorer for StaticAggregation<'_> {
    fn score(&self, group: usize, items: &[usize]) -> Vec<f32> {
        self.model.fast_group_scores(self.ctx, group, items, self.strategy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use groupsa_core::GroupSaConfig;
    use groupsa_data::synthetic::{generate, SyntheticConfig};

    fn world() -> (groupsa_data::Dataset, DataContext) {
        let d = generate(&SyntheticConfig {
            name: "agg-test".into(),
            seed: 2,
            num_users: 50,
            num_items: 30,
            num_groups: 15,
            num_topics: 3,
            latent_dim: 4,
            avg_items_per_user: 6.0,
            avg_friends_per_user: 4.0,
            avg_items_per_group: 1.3,
            mean_group_size: 3.0,
            zipf_exponent: 0.8,
            homophily: 0.8,
            social_influence: 0.3,
            expertise_sharpness: 2.0,
            taste_temperature: 0.3,
            consensus_blend: 0.5,
            connectedness_boost: 1.0,
        });
        let ctx = DataContext::from_train_view(&d, &GroupSaConfig::tiny());
        (d, ctx)
    }

    #[test]
    fn wrapper_matches_fast_mode() {
        let (d, ctx) = world();
        let model = GroupSa::new(GroupSaConfig::tiny(), d.num_users, d.num_items);
        for strategy in ALL_STRATEGIES {
            let agg = StaticAggregation::new(&model, &ctx, strategy);
            let items = [0usize, 1, 2];
            assert_eq!(agg.score(0, &items), model.fast_group_scores(&ctx, 0, &items, strategy));
        }
    }

    #[test]
    fn labels_are_the_papers() {
        let (d, ctx) = world();
        let model = GroupSa::new(GroupSaConfig::tiny(), d.num_users, d.num_items);
        let labels: Vec<_> = ALL_STRATEGIES
            .iter()
            .map(|&s| StaticAggregation::new(&model, &ctx, s).label())
            .collect();
        assert_eq!(labels, vec!["Group+avg", "Group+lm", "Group+ms"]);
    }
}
