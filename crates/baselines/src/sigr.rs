//! SIGR-like — an approximation of "Social Influence-based Group
//! Representation learning" (Yin et al., ICDE 2019).
//!
//! SIGR's two ingredients are (1) an item-conditioned attention over
//! group members, and (2) a learned *global social influence* per user
//! that biases the member weights, estimated in the original via a
//! bipartite-graph embedding over the social network.
//!
//! **Substitution** (DESIGN.md §4): the graph-embedding influence
//! learner is replaced by a learned bias per *PageRank-quantile bucket*
//! of the social network. This preserves the mechanism — members with
//! high global social standing get a learnable boost in the group
//! vote — without reproducing SIGR's full pipeline. Like the original,
//! the model also trains on user-item data with shared embeddings to
//! fight group-item sparsity.

use crate::config::BaselineConfig;
use groupsa_data::sampling::bpr_epoch;
use groupsa_eval::Scorer;
use groupsa_graph::centrality::{pagerank, quantile_buckets};
use groupsa_graph::{Bipartite, CsrGraph};
use groupsa_nn::loss::bpr_one_vs_rest;
use groupsa_nn::optim::{Adam, Optimizer};
use groupsa_nn::{Embedding, Init, Mlp, ParamStore, VanillaAttention};
use groupsa_tensor::rng::{seeded, StdRng};
use groupsa_tensor::{Graph, NodeId};

/// Number of PageRank quantile buckets for the influence bias.
const INFLUENCE_BUCKETS: usize = 8;

/// The SIGR-like model: member attention weights are
/// `softmax(att([emb(uᵢ) ⊕ emb(v)]) + influence_bias[bucket(uᵢ)])`.
pub struct SigrLike {
    cfg: BaselineConfig,
    store: ParamStore,
    emb_user: Embedding,
    emb_item: Embedding,
    /// Learned scalar bias per influence bucket (`INFLUENCE_BUCKETS×1`).
    influence: Embedding,
    att: VanillaAttention,
    pred: Mlp,
    members: Vec<Vec<usize>>,
    /// Per-user PageRank bucket.
    buckets: Vec<usize>,
    rng: StdRng,
}

impl SigrLike {
    /// A fresh model; `social` provides the global influence signal.
    pub fn new(
        cfg: BaselineConfig,
        num_users: usize,
        num_items: usize,
        members: Vec<Vec<usize>>,
        social: &CsrGraph,
    ) -> Self {
        assert_eq!(social.num_nodes(), num_users, "social graph must cover all users");
        let pr = pagerank(social, 0.85, 1e-9, 100);
        let buckets = quantile_buckets(&pr, INFLUENCE_BUCKETS);
        let mut rng = seeded(cfg.seed);
        let mut store = ParamStore::new();
        let d = cfg.embed_dim;
        let emb_user = Embedding::new(&mut store, &mut rng, "sigr_user", num_users, d, Init::Glorot);
        let emb_item = Embedding::new(&mut store, &mut rng, "sigr_item", num_items, d, Init::Glorot);
        let influence = Embedding::new(&mut store, &mut rng, "sigr_infl", INFLUENCE_BUCKETS, 1, Init::Gaussian(0.01));
        let att = VanillaAttention::new(&mut store, &mut rng, "sigr_att", 2 * d, d);
        let pred = Mlp::new(&mut store, &mut rng, "sigr_pred", &[2 * d, d, 1], false);
        let rng = seeded(cfg.seed.wrapping_add(29));
        Self { cfg, store, emb_user, emb_item, influence, att, pred, members, buckets, rng }
    }

    fn user_scores_graph(&self, g: &mut Graph, user: usize, items: &[usize]) -> NodeId {
        let n = items.len();
        let eu = self.emb_user.lookup(g, &self.store, &[user]);
        let eu = g.repeat_rows(eu, n);
        let ev = self.emb_item.lookup(g, &self.store, items);
        let cat = g.concat_cols(eu, ev);
        self.pred.forward(g, &self.store, cat)
    }

    fn group_scores_graph(&self, g: &mut Graph, group: usize, items: &[usize]) -> NodeId {
        let members = &self.members[group];
        assert!(!members.is_empty(), "group {group} has no members");
        let eu = self.emb_user.lookup(g, &self.store, members); // l×d
        let member_buckets: Vec<usize> = members.iter().map(|&u| self.buckets[u]).collect();
        let infl = self.influence.lookup(g, &self.store, &member_buckets); // l×1
        let infl = g.transpose(infl); // 1×l
        let ev_all = self.emb_item.lookup(g, &self.store, items);
        let mut scores: Option<NodeId> = None;
        for idx in 0..items.len() {
            let ev = g.slice_rows(ev_all, idx, 1);
            let ev_rep = g.repeat_rows(ev, members.len());
            let rows = g.concat_cols(eu, ev_rep);
            let raw = self.att.raw_scores(g, &self.store, rows); // 1×l
            let biased = g.add(raw, infl);
            let w = g.softmax_rows(biased); // 1×l
            let rep = g.matmul(w, eu); // 1×d
            let cat = g.concat_cols(rep, ev);
            let s = self.pred.forward(g, &self.store, cat);
            scores = Some(match scores {
                None => s,
                Some(acc) => g.concat_rows(acc, s),
            });
        }
        scores.expect("non-empty items")
    }

    /// Two-stage joint training like the other attention baselines.
    /// Returns `(user_losses, group_losses)`.
    pub fn fit(
        &mut self,
        user_pairs: &[(usize, usize)],
        ui_graph: &Bipartite,
        group_pairs: &[(usize, usize)],
        gi_graph: &Bipartite,
    ) -> (Vec<f32>, Vec<f32>) {
        let mut opt = Adam { weight_decay: self.cfg.weight_decay, ..Adam::new(self.cfg.learning_rate) };
        let mut user_losses = Vec::new();
        for _ in 0..self.cfg.user_epochs {
            let examples: Vec<_> = bpr_epoch(&mut self.rng, user_pairs, ui_graph, self.cfg.num_negatives).collect();
            let mut total = 0.0;
            for (i, ex) in examples.iter().enumerate() {
                let mut items = vec![ex.positive];
                items.extend_from_slice(&ex.negatives);
                let mut g = Graph::new();
                let s = self.user_scores_graph(&mut g, ex.entity, &items);
                let loss = bpr_one_vs_rest(&mut g, s);
                total += g.value(loss).scalar();
                let grads = g.backward(loss);
                self.store.accumulate(&g, &grads);
                if (i + 1) % self.cfg.batch_size == 0 || i + 1 == examples.len() {
                    opt.step(&mut self.store);
                }
            }
            user_losses.push(total / examples.len().max(1) as f32);
        }
        let mut group_losses = Vec::new();
        for _ in 0..self.cfg.group_epochs {
            let examples: Vec<_> = bpr_epoch(&mut self.rng, group_pairs, gi_graph, self.cfg.num_negatives).collect();
            let mut total = 0.0;
            for (i, ex) in examples.iter().enumerate() {
                let mut items = vec![ex.positive];
                items.extend_from_slice(&ex.negatives);
                let mut g = Graph::new();
                let s = self.group_scores_graph(&mut g, ex.entity, &items);
                let loss = bpr_one_vs_rest(&mut g, s);
                total += g.value(loss).scalar();
                let grads = g.backward(loss);
                self.store.accumulate(&g, &grads);
                if (i + 1) % self.cfg.batch_size == 0 || i + 1 == examples.len() {
                    opt.step(&mut self.store);
                }
            }
            group_losses.push(total / examples.len().max(1) as f32);
        }
        (user_losses, group_losses)
    }

    /// Gradient-free user-task scores.
    pub fn score_user_items(&self, user: usize, items: &[usize]) -> Vec<f32> {
        let mut g = Graph::new();
        let s = self.user_scores_graph(&mut g, user, items);
        g.value(s).as_slice().to_vec()
    }

    /// Gradient-free group-task scores.
    pub fn score_group_items(&self, group: usize, items: &[usize]) -> Vec<f32> {
        let mut g = Graph::new();
        let s = self.group_scores_graph(&mut g, group, items);
        g.value(s).as_slice().to_vec()
    }

    /// User-task evaluation scorer.
    pub fn user_scorer(&self) -> impl Scorer + '_ {
        move |u: usize, items: &[usize]| self.score_user_items(u, items)
    }

    /// Group-task evaluation scorer.
    pub fn group_scorer(&self) -> impl Scorer + '_ {
        move |t: usize, items: &[usize]| self.score_group_items(t, items)
    }

    /// The PageRank influence bucket assigned to a user (diagnostics).
    pub fn influence_bucket(&self, user: usize) -> usize {
        self.buckets[user]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use groupsa_eval::{evaluate, EvalTask};

    fn toy() -> (Vec<(usize, usize)>, Bipartite, Vec<(usize, usize)>, Bipartite, Vec<Vec<usize>>, CsrGraph) {
        let mut up = Vec::new();
        for u in 0..12 {
            up.push((u, u % 4));
            up.push((u, 4 + u % 4));
        }
        let ui = Bipartite::from_pairs(12, 20, &up);
        let members: Vec<Vec<usize>> = (0..6).map(|t| vec![2 * t, 2 * t + 1]).collect();
        let gp: Vec<(usize, usize)> = (0..6).map(|t| (t, (2 * t) % 4)).collect();
        let gi = Bipartite::from_pairs(6, 20, &gp);
        // A hub-heavy social graph so PageRank buckets are non-trivial.
        let mut edges = vec![];
        for u in 1..12 {
            edges.push((0, u));
        }
        edges.push((3, 4));
        let social = CsrGraph::from_edges(12, &edges);
        (up, ui, gp, gi, members, social)
    }

    #[test]
    fn influence_buckets_rank_the_hub_highest() {
        let (_, ui, _, _, members, social) = toy();
        let m = SigrLike::new(BaselineConfig::tiny(), ui.num_users(), ui.num_items(), members, &social);
        let hub = m.influence_bucket(0);
        // The hub's PageRank dominates, so it lands in the top bucket.
        assert!(hub >= m.influence_bucket(5), "hub bucket {hub}");
        assert_eq!(hub, INFLUENCE_BUCKETS - 1);
    }

    #[test]
    fn group_scores_finite_and_member_dependent() {
        let (_, ui, _, _, members, social) = toy();
        let m = SigrLike::new(BaselineConfig::tiny(), ui.num_users(), ui.num_items(), members, &social);
        let a = m.score_group_items(0, &[0, 1, 2]);
        let b = m.score_group_items(2, &[0, 1, 2]);
        assert!(a.iter().all(|x| x.is_finite()));
        assert_ne!(a, b);
    }

    #[test]
    fn training_fits_group_data() {
        let (up, ui, gp, gi, members, social) = toy();
        let mut cfg = BaselineConfig::tiny();
        cfg.user_epochs = 6;
        cfg.group_epochs = 12;
        let mut m = SigrLike::new(cfg, ui.num_users(), ui.num_items(), members, &social);
        let (ul, gl) = m.fit(&up, &ui, &gp, &gi);
        assert!(ul.last().unwrap() < &ul[0]);
        assert!(gl.last().unwrap() < &gl[0]);
        let task = EvalTask { test_pairs: &gp, full_interactions: &gi, num_candidates: 12, ks: vec![5], seed: 8 };
        let hr = evaluate(&m.group_scorer(), &task).hr(5);
        assert!(hr > 0.5, "SIGR-like must fit group training data: HR@5 = {hr}");
    }

    #[test]
    #[should_panic(expected = "social graph must cover")]
    fn mismatched_social_graph_panics() {
        let (_, ui, _, _, members, _) = toy();
        let small = CsrGraph::empty(3);
        let _ = SigrLike::new(BaselineConfig::tiny(), ui.num_users(), ui.num_items(), members, &small);
    }
}
