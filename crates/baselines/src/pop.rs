//! Non-personalised popularity ranking (paper §III-D "Pop",
//! Cremonesi et al. 2010).

use groupsa_eval::Scorer;
use groupsa_graph::Bipartite;
use groupsa_json::impl_json_struct;

/// Ranks every candidate by its *training* interaction count,
/// identically for every user or group.
#[derive(Clone, Debug, PartialEq)]
pub struct Pop {
    scores: Vec<f32>,
}

impl_json_struct!(Pop { scores });

impl Pop {
    /// Builds the popularity table from a training interaction graph
    /// (items on the right).
    pub fn fit(train: &Bipartite) -> Self {
        let scores = (0..train.num_items()).map(|i| train.item_popularity(i) as f32).collect();
        Self { scores }
    }

    /// Builds from several interaction relations (e.g. user-item and
    /// group-item training data combined), summing the counts.
    ///
    /// # Panics
    /// If the graphs disagree on the item count or none are given.
    pub fn fit_many(graphs: &[&Bipartite]) -> Self {
        let num_items = graphs.first().expect("at least one graph").num_items();
        let mut scores = vec![0.0f32; num_items];
        for g in graphs {
            assert_eq!(g.num_items(), num_items, "item universes differ");
            for (i, s) in scores.iter_mut().enumerate() {
                *s += g.item_popularity(i) as f32;
            }
        }
        Self { scores }
    }

    /// The popularity score of one item.
    pub fn popularity(&self, item: usize) -> f32 {
        self.scores[item]
    }
}

impl Scorer for Pop {
    fn score(&self, _entity: usize, items: &[usize]) -> Vec<f32> {
        items.iter().map(|&i| self.scores[i]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use groupsa_eval::{evaluate, EvalTask};

    #[test]
    fn scores_are_training_counts() {
        let g = Bipartite::from_pairs(3, 4, &[(0, 1), (1, 1), (2, 1), (0, 2)]);
        let pop = Pop::fit(&g);
        assert_eq!(pop.popularity(1), 3.0);
        assert_eq!(pop.popularity(2), 1.0);
        assert_eq!(pop.popularity(0), 0.0);
        assert_eq!(pop.score(99, &[1, 2, 0]), vec![3.0, 1.0, 0.0]);
    }

    #[test]
    fn fit_many_sums_relations() {
        let a = Bipartite::from_pairs(2, 3, &[(0, 0), (1, 0)]);
        let b = Bipartite::from_pairs(1, 3, &[(0, 0), (0, 2)]);
        let pop = Pop::fit_many(&[&a, &b]);
        assert_eq!(pop.popularity(0), 3.0);
        assert_eq!(pop.popularity(2), 1.0);
    }

    #[test]
    fn ranking_is_entity_independent() {
        let g = Bipartite::from_pairs(2, 5, &[(0, 3), (1, 3), (0, 4)]);
        let pop = Pop::fit(&g);
        assert_eq!(pop.score(0, &[3, 4]), pop.score(1, &[3, 4]));
    }

    #[test]
    fn pop_beats_nothing_when_test_items_are_popular() {
        // Entities whose held-out positive IS the popular item rank it first.
        let pairs: Vec<(usize, usize)> = (0..20).map(|e| (e, 0)).collect();
        let mut train: Vec<(usize, usize)> = pairs.clone();
        train.extend((0..20).map(|e| (e, 1 + e % 3))); // scatter some noise
        let g = Bipartite::from_pairs(20, 50, &train);
        let pop = Pop::fit(&g);
        let task = EvalTask { test_pairs: &pairs, full_interactions: &g, num_candidates: 10, ks: vec![5], seed: 2 };
        let res = evaluate(&pop, &task);
        assert!(res.hr(5) > 0.9, "popular positives must rank highly: {}", res.hr(5));
    }

    #[test]
    #[should_panic(expected = "item universes differ")]
    fn fit_many_rejects_mismatched_universes() {
        let a = Bipartite::from_pairs(1, 3, &[]);
        let b = Bipartite::from_pairs(1, 4, &[]);
        let _ = Pop::fit_many(&[&a, &b]);
    }
}
