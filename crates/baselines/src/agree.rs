//! AGREE — Attentive Group Recommendation (Cao et al., SIGIR 2018).
//!
//! AGREE represents a group as an item-conditioned attention-weighted
//! sum of its member embeddings plus a learned *group preference*
//! embedding, scored by an NCF-style tower; user-item and group-item
//! data are trained jointly with shared embeddings.
//!
//! Faithfulness notes (recorded in DESIGN.md §4): the original pools
//! with an element-wise-product NCF layer; here both tasks share one
//! concatenation-MLP tower (the same simplification the GroupSA paper
//! applies to its own predictor, Eq. 20/22). Training is two-stage
//! (user first, then group) instead of alternating mini-batches.

use crate::config::BaselineConfig;
use groupsa_data::sampling::bpr_epoch;
use groupsa_eval::Scorer;
use groupsa_graph::Bipartite;
use groupsa_nn::loss::bpr_one_vs_rest;
use groupsa_nn::optim::{Adam, Optimizer};
use groupsa_nn::{Embedding, Init, Mlp, ParamStore, VanillaAttention};
use groupsa_tensor::rng::{seeded, StdRng};
use groupsa_tensor::{Graph, NodeId};

/// The AGREE model. Group `t`'s representation for item `v` is
/// `Σᵢ α(v, uᵢ)·emb(uᵢ) + q_t` with `α` a two-layer attention over
/// `[emb(uᵢ) ⊕ emb(v)]`.
pub struct Agree {
    cfg: BaselineConfig,
    store: ParamStore,
    emb_user: Embedding,
    emb_item: Embedding,
    /// Learned per-group preference embedding `q_t`.
    emb_group_pref: Embedding,
    att: VanillaAttention,
    pred: Mlp,
    members: Vec<Vec<usize>>,
    rng: StdRng,
}

impl Agree {
    /// A fresh AGREE over the given universe; `members` lists each
    /// group's users.
    pub fn new(cfg: BaselineConfig, num_users: usize, num_items: usize, members: Vec<Vec<usize>>) -> Self {
        let mut rng = seeded(cfg.seed);
        let mut store = ParamStore::new();
        let d = cfg.embed_dim;
        let emb_user = Embedding::new(&mut store, &mut rng, "agree_user", num_users, d, Init::Glorot);
        let emb_item = Embedding::new(&mut store, &mut rng, "agree_item", num_items, d, Init::Glorot);
        let emb_group_pref = Embedding::new(&mut store, &mut rng, "agree_gpref", members.len().max(1), d, Init::Glorot);
        let att = VanillaAttention::new(&mut store, &mut rng, "agree_att", 2 * d, d);
        let pred = Mlp::new(&mut store, &mut rng, "agree_pred", &[2 * d, d, 1], false);
        let rng = seeded(cfg.seed.wrapping_add(17));
        Self { cfg, store, emb_user, emb_item, emb_group_pref, att, pred, members, rng }
    }

    fn user_scores_graph(&self, g: &mut Graph, user: usize, items: &[usize]) -> NodeId {
        let n = items.len();
        let eu = self.emb_user.lookup(g, &self.store, &[user]);
        let eu = g.repeat_rows(eu, n);
        let ev = self.emb_item.lookup(g, &self.store, items);
        let cat = g.concat_cols(eu, ev);
        self.pred.forward(g, &self.store, cat)
    }

    fn group_scores_graph(&self, g: &mut Graph, group: usize, items: &[usize]) -> NodeId {
        let members = &self.members[group];
        assert!(!members.is_empty(), "group {group} has no members");
        let eu = self.emb_user.lookup(g, &self.store, members); // l×d
        let pref = self.emb_group_pref.lookup(g, &self.store, &[group]); // 1×d
        let ev_all = self.emb_item.lookup(g, &self.store, items); // n×d
        let mut scores: Option<NodeId> = None;
        for idx in 0..items.len() {
            let ev = g.slice_rows(ev_all, idx, 1);
            let ev_rep = g.repeat_rows(ev, members.len());
            let rows = g.concat_cols(eu, ev_rep); // [emb(uᵢ) ⊕ emb(v)]
            let agg = self.att.aggregate(g, &self.store, rows, eu); // 1×d
            let rep = g.add(agg, pref);
            let cat = g.concat_cols(rep, ev);
            let s = self.pred.forward(g, &self.store, cat);
            scores = Some(match scores {
                None => s,
                Some(acc) => g.concat_rows(acc, s),
            });
        }
        scores.expect("non-empty items")
    }

    /// Joint training: `user_epochs` over the user-item pairs, then
    /// `group_epochs` over the group-item pairs (shared embeddings).
    /// Returns `(user_losses, group_losses)`.
    pub fn fit(
        &mut self,
        user_pairs: &[(usize, usize)],
        ui_graph: &Bipartite,
        group_pairs: &[(usize, usize)],
        gi_graph: &Bipartite,
    ) -> (Vec<f32>, Vec<f32>) {
        let mut opt = Adam { weight_decay: self.cfg.weight_decay, ..Adam::new(self.cfg.learning_rate) };
        let mut user_losses = Vec::new();
        for _ in 0..self.cfg.user_epochs {
            let examples: Vec<_> = bpr_epoch(&mut self.rng, user_pairs, ui_graph, self.cfg.num_negatives).collect();
            let mut total = 0.0;
            for (i, ex) in examples.iter().enumerate() {
                let mut items = vec![ex.positive];
                items.extend_from_slice(&ex.negatives);
                let mut g = Graph::new();
                let s = self.user_scores_graph(&mut g, ex.entity, &items);
                let loss = bpr_one_vs_rest(&mut g, s);
                total += g.value(loss).scalar();
                let grads = g.backward(loss);
                self.store.accumulate(&g, &grads);
                if (i + 1) % self.cfg.batch_size == 0 || i + 1 == examples.len() {
                    opt.step(&mut self.store);
                }
            }
            user_losses.push(total / examples.len().max(1) as f32);
        }
        let mut group_losses = Vec::new();
        for _ in 0..self.cfg.group_epochs {
            let examples: Vec<_> = bpr_epoch(&mut self.rng, group_pairs, gi_graph, self.cfg.num_negatives).collect();
            let mut total = 0.0;
            for (i, ex) in examples.iter().enumerate() {
                let mut items = vec![ex.positive];
                items.extend_from_slice(&ex.negatives);
                let mut g = Graph::new();
                let s = self.group_scores_graph(&mut g, ex.entity, &items);
                let loss = bpr_one_vs_rest(&mut g, s);
                total += g.value(loss).scalar();
                let grads = g.backward(loss);
                self.store.accumulate(&g, &grads);
                if (i + 1) % self.cfg.batch_size == 0 || i + 1 == examples.len() {
                    opt.step(&mut self.store);
                }
            }
            group_losses.push(total / examples.len().max(1) as f32);
        }
        (user_losses, group_losses)
    }

    /// Gradient-free user-task scores.
    pub fn score_user_items(&self, user: usize, items: &[usize]) -> Vec<f32> {
        let mut g = Graph::new();
        let s = self.user_scores_graph(&mut g, user, items);
        g.value(s).as_slice().to_vec()
    }

    /// Gradient-free group-task scores.
    pub fn score_group_items(&self, group: usize, items: &[usize]) -> Vec<f32> {
        let mut g = Graph::new();
        let s = self.group_scores_graph(&mut g, group, items);
        g.value(s).as_slice().to_vec()
    }

    /// User-task evaluation scorer.
    pub fn user_scorer(&self) -> impl Scorer + '_ {
        move |u: usize, items: &[usize]| self.score_user_items(u, items)
    }

    /// Group-task evaluation scorer.
    pub fn group_scorer(&self) -> impl Scorer + '_ {
        move |t: usize, items: &[usize]| self.score_group_items(t, items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use groupsa_eval::{evaluate, EvalTask};

    fn toy() -> (Vec<(usize, usize)>, Bipartite, Vec<(usize, usize)>, Bipartite, Vec<Vec<usize>>) {
        // 12 users in 4 taste blocks; 6 groups of 2 from the same block.
        let mut up = Vec::new();
        for u in 0..12 {
            up.push((u, u % 4));
            up.push((u, 4 + u % 4));
        }
        let ui = Bipartite::from_pairs(12, 20, &up);
        let members: Vec<Vec<usize>> = (0..6).map(|t| vec![2 * t, 2 * t + 1]).collect();
        // Group t of users {2t, 2t+1} (same block iff 2t % 4 == (2t+1) % 4 — not
        // generally, but the signal is shared via item 2t%4).
        let gp: Vec<(usize, usize)> = (0..6).map(|t| (t, (2 * t) % 4)).collect();
        let gi = Bipartite::from_pairs(6, 20, &gp);
        (up, ui, gp, gi, members)
    }

    #[test]
    fn group_scores_use_membership() {
        let (_, ui, _, _, members) = toy();
        let agree = Agree::new(BaselineConfig::tiny(), ui.num_users(), ui.num_items(), members);
        let a = agree.score_group_items(0, &[0, 1, 2]);
        let b = agree.score_group_items(1, &[0, 1, 2]);
        assert!(a.iter().all(|x| x.is_finite()));
        assert_ne!(a, b, "different members must give different scores");
    }

    #[test]
    fn joint_training_fits_both_tasks() {
        let (up, ui, gp, gi, members) = toy();
        let mut cfg = BaselineConfig::tiny();
        cfg.user_epochs = 6;
        cfg.group_epochs = 12;
        let mut agree = Agree::new(cfg, ui.num_users(), ui.num_items(), members);
        let (ul, gl) = agree.fit(&up, &ui, &gp, &gi);
        assert!(ul.last().unwrap() < &ul[0], "user loss: {ul:?}");
        assert!(gl.last().unwrap() < &gl[0], "group loss: {gl:?}");

        let task = EvalTask { test_pairs: &gp, full_interactions: &gi, num_candidates: 12, ks: vec![5], seed: 6 };
        let hr = evaluate(&agree.group_scorer(), &task).hr(5);
        assert!(hr > 0.5, "AGREE must fit group training data: HR@5 = {hr}");
    }

    #[test]
    fn attention_weights_are_item_conditioned() {
        // Indirect check: scoring the same group on different items must
        // not be a constant shift of member contributions — covered by
        // score variation across items.
        let (_, ui, _, _, members) = toy();
        let agree = Agree::new(BaselineConfig::tiny(), ui.num_users(), ui.num_items(), members);
        let s = agree.score_group_items(0, &[0, 1, 2, 3, 4]);
        let distinct: std::collections::HashSet<u32> = s.iter().map(|x| x.to_bits()).collect();
        assert!(distinct.len() > 1);
    }
}
