//! Neural Collaborative Filtering (He et al., WWW 2017) — the NeuMF
//! fusion of GMF and an MLP tower, trained with BPR.
//!
//! On the group task the paper instantiates NCF with each *group as a
//! virtual user*, discarding membership information entirely; [`Ncf`]
//! is generic over the left-hand entity set, so the same code serves
//! both tasks.

use crate::config::BaselineConfig;
use groupsa_data::sampling::bpr_epoch;
use groupsa_eval::Scorer;
use groupsa_graph::Bipartite;
use groupsa_nn::loss::bpr_one_vs_rest;
use groupsa_nn::optim::{Adam, Optimizer};
use groupsa_nn::{Embedding, Init, Linear, Mlp, ParamStore};
use groupsa_tensor::rng::{seeded, StdRng};
use groupsa_tensor::{Graph, NodeId};

/// NeuMF: `score = head([ (p ⊙ q) ⊕ MLP([p' ⊕ q']) ])` with separate
/// GMF and MLP embedding tables, as in the original paper.
pub struct Ncf {
    cfg: BaselineConfig,
    store: ParamStore,
    gmf_entity: Embedding,
    gmf_item: Embedding,
    mlp_entity: Embedding,
    mlp_item: Embedding,
    tower: Mlp,
    head: Linear,
    rng: StdRng,
}

impl Ncf {
    /// A fresh NeuMF over `num_entities` left-hand entities (users, or
    /// groups-as-virtual-users) and `num_items` items.
    pub fn new(cfg: BaselineConfig, num_entities: usize, num_items: usize) -> Self {
        let mut rng = seeded(cfg.seed);
        let mut store = ParamStore::new();
        let d = cfg.embed_dim;
        let half = (d / 2).max(1);
        let gmf_entity = Embedding::new(&mut store, &mut rng, "gmf_entity", num_entities, d, Init::Glorot);
        let gmf_item = Embedding::new(&mut store, &mut rng, "gmf_item", num_items, d, Init::Glorot);
        let mlp_entity = Embedding::new(&mut store, &mut rng, "mlp_entity", num_entities, d, Init::Glorot);
        let mlp_item = Embedding::new(&mut store, &mut rng, "mlp_item", num_items, d, Init::Glorot);
        let tower = Mlp::new(&mut store, &mut rng, "tower", &[2 * d, d, half], true);
        let head = Linear::new(&mut store, &mut rng, "head", d + half, 1, Init::PAPER_HIDDEN);
        let rng = seeded(cfg.seed.wrapping_add(1));
        Self { cfg, store, gmf_entity, gmf_item, mlp_entity, mlp_item, tower, head, rng }
    }

    fn scores_graph(&self, g: &mut Graph, entity: usize, items: &[usize]) -> NodeId {
        let n = items.len();
        let pu = self.gmf_entity.lookup(g, &self.store, &[entity]);
        let pu = g.repeat_rows(pu, n);
        let qi = self.gmf_item.lookup(g, &self.store, items);
        let gmf = g.mul_elem(pu, qi); // n×d

        let pu2 = self.mlp_entity.lookup(g, &self.store, &[entity]);
        let pu2 = g.repeat_rows(pu2, n);
        let qi2 = self.mlp_item.lookup(g, &self.store, items);
        let cat = g.concat_cols(pu2, qi2);
        let mlp = self.tower.forward(g, &self.store, cat); // n×half

        let fused = g.concat_cols(gmf, mlp);
        self.head.forward(g, &self.store, fused) // n×1
    }

    /// One BPR epoch over `pairs` (negatives sampled against `graph`).
    /// Returns the mean loss.
    pub fn epoch(&mut self, pairs: &[(usize, usize)], graph: &Bipartite) -> f32 {
        let examples: Vec<_> = bpr_epoch(&mut self.rng, pairs, graph, self.cfg.num_negatives).collect();
        let mut opt = Adam { weight_decay: self.cfg.weight_decay, ..Adam::new(self.cfg.learning_rate) };
        let mut total = 0.0;
        for (i, ex) in examples.iter().enumerate() {
            let mut items = vec![ex.positive];
            items.extend_from_slice(&ex.negatives);
            let mut g = Graph::new();
            let scores = self.scores_graph(&mut g, ex.entity, &items);
            let loss = bpr_one_vs_rest(&mut g, scores);
            total += g.value(loss).scalar();
            let grads = g.backward(loss);
            self.store.accumulate(&g, &grads);
            if (i + 1) % self.cfg.batch_size == 0 || i + 1 == examples.len() {
                opt.step(&mut self.store);
            }
        }
        total / examples.len().max(1) as f32
    }

    /// Trains for `cfg.group_epochs` epochs (the entity relation is
    /// whatever `pairs` describes). Returns per-epoch mean losses.
    pub fn fit(&mut self, pairs: &[(usize, usize)], graph: &Bipartite) -> Vec<f32> {
        let epochs = self.cfg.group_epochs;
        (0..epochs).map(|_| self.epoch(pairs, graph)).collect()
    }

    /// Gradient-free candidate scores.
    pub fn score_items(&self, entity: usize, items: &[usize]) -> Vec<f32> {
        let mut g = Graph::new();
        let s = self.scores_graph(&mut g, entity, items);
        g.value(s).as_slice().to_vec()
    }

    /// An evaluation-protocol scorer.
    pub fn scorer(&self) -> impl Scorer + '_ {
        move |entity: usize, items: &[usize]| self.score_items(entity, items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use groupsa_eval::{evaluate, EvalTask};

    /// Entities prefer item = entity % 4 strongly, plus shared noise.
    fn toy() -> (Vec<(usize, usize)>, Bipartite) {
        let mut pairs = Vec::new();
        for e in 0..24 {
            pairs.push((e, e % 4));
            pairs.push((e, 4 + e % 3));
        }
        let g = Bipartite::from_pairs(24, 30, &pairs);
        (pairs, g)
    }

    #[test]
    fn scores_are_finite_and_entity_specific() {
        let (_, g) = toy();
        let ncf = Ncf::new(BaselineConfig::tiny(), g.num_users(), g.num_items());
        let a = ncf.score_items(0, &[0, 1, 2]);
        let b = ncf.score_items(1, &[0, 1, 2]);
        assert!(a.iter().all(|x| x.is_finite()));
        assert_ne!(a, b);
    }

    #[test]
    fn training_reduces_loss_and_fits_data() {
        let (pairs, g) = toy();
        let mut cfg = BaselineConfig::tiny();
        cfg.group_epochs = 8;
        let mut ncf = Ncf::new(cfg, g.num_users(), g.num_items());
        let losses = ncf.fit(&pairs, &g);
        assert!(losses.last().unwrap() < &losses[0], "{losses:?}");

        let task = EvalTask { test_pairs: &pairs, full_interactions: &g, num_candidates: 15, ks: vec![5], seed: 4 };
        let hr = evaluate(&ncf.scorer(), &task).hr(5);
        assert!(hr > 0.6, "NCF must fit its training data: HR@5 = {hr}");
    }

    #[test]
    fn deterministic_under_seed() {
        let (pairs, g) = toy();
        let run = || {
            let mut ncf = Ncf::new(BaselineConfig::tiny(), g.num_users(), g.num_items());
            ncf.epoch(&pairs, &g);
            ncf.score_items(0, &[0, 1, 2, 3])
        };
        assert_eq!(run(), run());
    }
}
