//! Shared hyper-parameters for the learned baselines.

use groupsa_json::impl_json_struct;

/// Training configuration shared by NCF, AGREE and SIGR-like. Matches
/// the main model's setup (§III-E) so comparisons are apples-to-apples.
#[derive(Clone, Debug)]
pub struct BaselineConfig {
    /// Embedding width (paper: 32 everywhere).
    pub embed_dim: usize,
    /// Negatives per positive in BPR training.
    pub num_negatives: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Gradient-accumulation mini-batch (examples per optimizer step).
    pub batch_size: usize,
    /// Epochs over the user-item pairs (methods that use them).
    pub user_epochs: usize,
    /// Epochs over the group-item pairs.
    pub group_epochs: usize,
    /// Parameter-init / sampling seed.
    pub seed: u64,
}

impl_json_struct!(BaselineConfig {
    embed_dim,
    num_negatives,
    learning_rate,
    weight_decay,
    batch_size,
    user_epochs,
    group_epochs,
    seed,
});

impl BaselineConfig {
    /// The defaults used by the experiment harness.
    pub fn paper() -> Self {
        Self {
            embed_dim: 32,
            num_negatives: 3,
            learning_rate: 0.01,
            weight_decay: 1e-6,
            batch_size: 16,
            user_epochs: 24,
            group_epochs: 30,
            seed: 0xBA5E,
        }
    }

    /// A small fast configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            embed_dim: 8,
            num_negatives: 1,
            learning_rate: 0.02,
            weight_decay: 0.0,
            batch_size: 4,
            user_epochs: 3,
            group_epochs: 5,
            seed: 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = BaselineConfig::paper();
        assert_eq!(c.embed_dim, 32);
        assert!(c.learning_rate > 0.0);
        assert!(c.num_negatives >= 1);
        let t = BaselineConfig::tiny();
        assert!(t.embed_dim < c.embed_dim);
    }
}
