//! # groupsa-baselines
//!
//! The comparison methods of the paper's §III-D, re-implemented from
//! their source papers on the same substrate and evaluated with the
//! same protocol as GroupSA:
//!
//! * [`pop::Pop`] — non-personalised popularity ranking.
//! * [`ncf::Ncf`] — Neural Collaborative Filtering (NeuMF: GMF ⊕ MLP,
//!   He et al. 2017). On the group task every group is a *virtual
//!   user*, ignoring membership — the paper's probe of whether plain CF
//!   transfers to occasional groups.
//! * [`agree::Agree`] — Attentive Group Recommendation (Cao et al.,
//!   SIGIR 2018): member embeddings weighted by an item-conditioned
//!   vanilla attention plus a learned group-preference embedding,
//!   jointly trained on user-item and group-item data.
//! * [`sigr::SigrLike`] — an approximation of SIGR (Yin et al., ICDE
//!   2019): item-conditioned member attention *biased by each user's
//!   global social influence*. The original learns influence with a
//!   bipartite-graph embedding; here influence enters as a learned
//!   per-PageRank-bucket bias (see the module docs for the exact
//!   substitution, which DESIGN.md §4 records).
//! * [`aggregation`] — the static score-aggregation strategies
//!   (Group+avg / Group+lm / Group+ms) applied on top of a trained
//!   GroupSA's per-member predictions, exactly as the paper evaluates
//!   them.
//!
//! All learned baselines share [`BaselineConfig`] and the same BPR
//! per-example training scheme as the main model.

#![warn(missing_docs)]

pub mod aggregation;
pub mod agree;
pub mod config;
pub mod ncf;
pub mod pop;
pub mod sigr;

pub use agree::Agree;
pub use config::BaselineConfig;
pub use ncf::Ncf;
pub use pop::Pop;
pub use sigr::SigrLike;
