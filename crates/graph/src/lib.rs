//! # groupsa-graph
//!
//! Graph substrate for the GroupSA reproduction. The paper treats the
//! user–item and user–user interaction data as two graphs (§II-D) and
//! derives three things from them, all provided here:
//!
//! * [`CsrGraph`] — a compact undirected adjacency (the social network
//!   `R^S`), with O(log deg) edge queries, BFS and connected components;
//! * [`Bipartite`] — the user–item interaction graph `R^U` (both
//!   orientations), with item-popularity counts;
//! * [`centrality`] — degree and PageRank scores (used by the SIGR-like
//!   baseline's global-influence term, and available as the closeness
//!   function `f(i,j)` of paper Eq. (5));
//! * [`tfidf`] — the TF-IDF ranking the paper uses to pick the Top-H
//!   items (Eq. 11) and Top-H friends (Eq. 15) aggregated per user;
//! * [`social::group_mask`] — the per-group boolean adjacency feeding
//!   the social bias matrix `S` of Eq. (4)–(5).

#![warn(missing_docs)]

pub mod bipartite;
pub mod centrality;
pub mod csr;
pub mod social;
pub mod tfidf;

pub use bipartite::Bipartite;
pub use csr::CsrGraph;
