//! Compressed-sparse-row undirected graph.

use groupsa_json::impl_json_struct;
use std::collections::VecDeque;

/// An undirected graph in CSR form: `offsets[u]..offsets[u+1]` indexes
/// the sorted, de-duplicated neighbour list of node `u`.
///
/// Used for the social network `R^S` of the paper. Self-loops are
/// dropped at construction (a user is trivially "connected" to themself;
/// the attention diagonal is handled separately).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    neighbors: Vec<u32>,
}

impl_json_struct!(CsrGraph { offsets, neighbors });

impl CsrGraph {
    /// Builds from an edge list over `n` nodes. Edges are treated as
    /// undirected; duplicates and self-loops are removed.
    ///
    /// # Panics
    /// If any endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(a, b) in edges {
            assert!(a < n && b < n, "edge ({a},{b}) out of bounds for {n} nodes");
            if a == b {
                continue;
            }
            adj[a].push(b as u32);
            adj[b].push(a as u32);
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::new();
        offsets.push(0);
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
            neighbors.extend_from_slice(list);
            offsets.push(neighbors.len());
        }
        Self { offsets, neighbors }
    }

    /// An edgeless graph over `n` nodes.
    pub fn empty(n: usize) -> Self {
        Self::from_edges(n, &[])
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Sorted neighbour list of `u`.
    ///
    /// # Panics
    /// If `u` is out of bounds.
    pub fn neighbors(&self, u: usize) -> &[u32] {
        &self.neighbors[self.offsets[u]..self.offsets[u + 1]]
    }

    /// Degree of `u`.
    pub fn degree(&self, u: usize) -> usize {
        self.offsets[u + 1] - self.offsets[u]
    }

    /// Average degree over all nodes (0 for an empty graph).
    pub fn avg_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            self.neighbors.len() as f64 / self.num_nodes() as f64
        }
    }

    /// `true` when `(u, v)` is an edge (binary search, O(log deg)).
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        u < self.num_nodes() && v < self.num_nodes() && self.neighbors(u).binary_search(&(v as u32)).is_ok()
    }

    /// Number of common neighbours of `u` and `v` (sorted-list merge).
    pub fn common_neighbors(&self, u: usize, v: usize) -> usize {
        let (mut a, mut b) = (self.neighbors(u).iter().peekable(), self.neighbors(v).iter().peekable());
        let mut count = 0;
        while let (Some(&&x), Some(&&y)) = (a.peek(), b.peek()) {
            match x.cmp(&y) {
                std::cmp::Ordering::Less => {
                    a.next();
                }
                std::cmp::Ordering::Greater => {
                    b.next();
                }
                std::cmp::Ordering::Equal => {
                    count += 1;
                    a.next();
                    b.next();
                }
            }
        }
        count
    }

    /// BFS distances from `src` (`None` = unreachable).
    pub fn bfs_distances(&self, src: usize) -> Vec<Option<u32>> {
        let mut dist = vec![None; self.num_nodes()];
        let mut q = VecDeque::new();
        dist[src] = Some(0);
        q.push_back(src);
        while let Some(u) = q.pop_front() {
            let du = dist[u].expect("queued nodes have distances");
            for &v in self.neighbors(u) {
                let v = v as usize;
                if dist[v].is_none() {
                    dist[v] = Some(du + 1);
                    q.push_back(v);
                }
            }
        }
        dist
    }

    /// Connected-component label for every node (labels are the
    /// smallest node id in each component).
    pub fn connected_components(&self) -> Vec<usize> {
        let n = self.num_nodes();
        let mut label = vec![usize::MAX; n];
        for start in 0..n {
            if label[start] != usize::MAX {
                continue;
            }
            let mut q = VecDeque::from([start]);
            label[start] = start;
            while let Some(u) = q.pop_front() {
                for &v in self.neighbors(u) {
                    let v = v as usize;
                    if label[v] == usize::MAX {
                        label[v] = start;
                        q.push_back(v);
                    }
                }
            }
        }
        label
    }

    /// Iterates over each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.num_nodes()).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .map(move |&v| (u, v as usize))
                .filter(|&(u, v)| u < v)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_isolate() -> CsrGraph {
        // 0-1, 1-2, 0-2 triangle; node 3 isolated.
        CsrGraph::from_edges(4, &[(0, 1), (1, 2), (0, 2)])
    }

    #[test]
    fn basic_counts() {
        let g = triangle_plus_isolate();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 0);
        assert!((g.avg_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn duplicate_and_self_edges_removed() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 0), (0, 1), (2, 2)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(2), 0);
        assert!(!g.has_edge(2, 2));
    }

    #[test]
    fn neighbors_sorted_and_symmetric() {
        let g = CsrGraph::from_edges(5, &[(3, 1), (3, 0), (3, 4)]);
        assert_eq!(g.neighbors(3), &[0, 1, 4]);
        for &v in g.neighbors(3) {
            assert!(g.has_edge(v as usize, 3));
            assert!(g.has_edge(3, v as usize));
        }
    }

    #[test]
    fn has_edge_negative_cases() {
        let g = triangle_plus_isolate();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(0, 0));
        assert!(!g.has_edge(0, 99));
    }

    #[test]
    fn common_neighbors_counts() {
        // 0 and 1 share {2, 3}.
        let g = CsrGraph::from_edges(4, &[(0, 2), (0, 3), (1, 2), (1, 3), (0, 1)]);
        assert_eq!(g.common_neighbors(0, 1), 2);
        assert_eq!(g.common_neighbors(2, 3), 2); // both adjacent to 0 and 1
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3)]);
        let d = g.bfs_distances(0);
        assert_eq!(d[0], Some(0));
        assert_eq!(d[3], Some(3));
        assert_eq!(d[4], None);
    }

    #[test]
    fn components_label_reachability() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (4, 5)]);
        let cc = g.connected_components();
        assert_eq!(cc[0], cc[1]);
        assert_eq!(cc[1], cc[2]);
        assert_eq!(cc[4], cc[5]);
        assert_ne!(cc[0], cc[4]);
        assert_ne!(cc[3], cc[0]);
    }

    #[test]
    fn edges_iterates_each_once() {
        let g = triangle_plus_isolate();
        let mut es: Vec<_> = g.edges().collect();
        es.sort_unstable();
        assert_eq!(es, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn json_roundtrip() {
        let g = triangle_plus_isolate();
        let json = groupsa_json::to_string(&g);
        let back: CsrGraph = groupsa_json::from_str(&json).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_edge_panics() {
        let _ = CsrGraph::from_edges(2, &[(0, 2)]);
    }
}
