//! TF-IDF ranking of a user's interacted items and friends.
//!
//! Paper §II-D: "we rank the items according to TF-IDF, and select Top-H
//! of them to represent the specific user" (Eq. 11), and "similar to
//! item aggregation, the TF-IDF based ranking score is applied" to
//! friends (Eq. 15).
//!
//! With implicit 0/1 feedback every term frequency is 1, so the ranking
//! reduces to inverse document frequency: an item visited by few users
//! (or a friend with few connections) characterises the user more
//! sharply than a blockbuster item or a hyper-connected friend.

use crate::{Bipartite, CsrGraph};

/// IDF of an item: `ln(num_users / (1 + popularity))`.
pub fn item_idf(b: &Bipartite, item: usize) -> f64 {
    (b.num_users() as f64 / (1.0 + b.item_popularity(item) as f64)).ln()
}

/// IDF of a user viewed as a friend: `ln(num_users / (1 + degree))`.
pub fn friend_idf(g: &CsrGraph, user: usize) -> f64 {
    (g.num_nodes() as f64 / (1.0 + g.degree(user) as f64)).ln()
}

/// The user's interacted items, sorted by descending TF-IDF
/// (ties broken by ascending item id for determinism).
pub fn rank_items(b: &Bipartite, user: usize) -> Vec<usize> {
    let mut items: Vec<usize> = b.items_of(user).iter().map(|&i| i as usize).collect();
    items.sort_by(|&x, &y| {
        item_idf(b, y)
            .partial_cmp(&item_idf(b, x))
            // lint: allow(panic-reach) — IDF is ln(N/df) over positive counts, always finite.
            .expect("IDF is finite")
            .then(x.cmp(&y))
    });
    items
}

/// The Top-H TF-IDF items of a user — the aggregation set of Eq. (11).
/// Returns fewer than `h` when the user has fewer interactions.
pub fn top_items(b: &Bipartite, user: usize, h: usize) -> Vec<usize> {
    let mut ranked = rank_items(b, user);
    ranked.truncate(h);
    ranked
}

/// The user's friends, sorted by descending TF-IDF.
pub fn rank_friends(g: &CsrGraph, user: usize) -> Vec<usize> {
    let mut friends: Vec<usize> = g.neighbors(user).iter().map(|&u| u as usize).collect();
    friends.sort_by(|&x, &y| {
        friend_idf(g, y)
            .partial_cmp(&friend_idf(g, x))
            // lint: allow(panic-reach) — IDF is ln(N/df) over positive counts, always finite.
            .expect("IDF is finite")
            .then(x.cmp(&y))
    });
    friends
}

/// The Top-H TF-IDF friends of a user — the aggregation set of Eq. (15).
pub fn top_friends(g: &CsrGraph, user: usize, h: usize) -> Vec<usize> {
    let mut ranked = rank_friends(g, user);
    ranked.truncate(h);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rare_items_rank_first() {
        // Item 0: popular (3 users); item 1: rare (1 user). User 0 has both.
        let b = Bipartite::from_pairs(3, 2, &[(0, 0), (1, 0), (2, 0), (0, 1)]);
        assert!(item_idf(&b, 1) > item_idf(&b, 0));
        assert_eq!(rank_items(&b, 0), vec![1, 0]);
    }

    #[test]
    fn top_items_truncates_and_handles_short_history() {
        let b = Bipartite::from_pairs(2, 3, &[(0, 0), (0, 1), (0, 2)]);
        assert_eq!(top_items(&b, 0, 2).len(), 2);
        assert_eq!(top_items(&b, 0, 10).len(), 3);
        assert!(top_items(&b, 1, 5).is_empty());
    }

    #[test]
    fn low_degree_friends_rank_first() {
        // 0 is friends with 1 (hub, degree 3) and 2 (degree 1).
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (1, 2)]);
        assert!(friend_idf(&g, 2) > friend_idf(&g, 1));
        // friend 2 has degree 2 (0 and 1) vs friend 1 degree 3 → 2 first.
        assert_eq!(rank_friends(&g, 0), vec![2, 1]);
    }

    #[test]
    fn ties_break_by_ascending_id() {
        // Items 0 and 1 both popularity 1 for user 0.
        let b = Bipartite::from_pairs(1, 2, &[(0, 0), (0, 1)]);
        assert_eq!(rank_items(&b, 0), vec![0, 1]);
        let g = CsrGraph::from_edges(3, &[(0, 1), (0, 2)]);
        assert_eq!(rank_friends(&g, 0), vec![1, 2]);
    }

    #[test]
    fn isolated_user_has_no_friends() {
        let g = CsrGraph::from_edges(2, &[]);
        assert!(top_friends(&g, 0, 3).is_empty());
    }
}
