//! Node-centrality scores over the social graph.
//!
//! Paper Eq. (5) allows any real-valued closeness function `f(i,j)` —
//! the experiments use direct connection, but PageRank and degree are
//! the natural alternatives the paper names, and the SIGR-like baseline
//! uses them as its *global social influence* signal.

use crate::CsrGraph;

/// Degree centrality, normalised by `n − 1` (1.0 = connected to all).
pub fn degree_centrality(g: &CsrGraph) -> Vec<f64> {
    let n = g.num_nodes();
    let denom = (n.saturating_sub(1)).max(1) as f64;
    (0..n).map(|u| g.degree(u) as f64 / denom).collect()
}

/// Power-iteration PageRank with damping `d`, run until the L1 change
/// drops below `tol` or `max_iter` sweeps.
///
/// Dangling nodes (degree 0) redistribute their mass uniformly, so the
/// result always sums to 1.
pub fn pagerank(g: &CsrGraph, d: f64, tol: f64, max_iter: usize) -> Vec<f64> {
    let n = g.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let mut next = vec![0.0; n];
    for _ in 0..max_iter {
        let mut dangling = 0.0;
        next.iter_mut().for_each(|x| *x = 0.0);
        for u in 0..n {
            let deg = g.degree(u);
            if deg == 0 {
                dangling += rank[u];
                continue;
            }
            let share = rank[u] / deg as f64;
            for &v in g.neighbors(u) {
                next[v as usize] += share;
            }
        }
        let base = (1.0 - d) * uniform + d * dangling * uniform;
        let mut delta = 0.0;
        for u in 0..n {
            let r = base + d * next[u];
            delta += (r - rank[u]).abs();
            rank[u] = r;
        }
        if delta < tol {
            break;
        }
    }
    rank
}

/// Buckets a centrality score vector into `num_buckets` quantile bins,
/// returning a bucket id per node. Used by the SIGR-like baseline to
/// turn continuous influence into a learnable embedding index.
///
/// # Panics
/// If `num_buckets == 0`.
pub fn quantile_buckets(scores: &[f64], num_buckets: usize) -> Vec<usize> {
    assert!(num_buckets > 0, "quantile_buckets: need at least one bucket");
    let n = scores.len();
    if n == 0 {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("scores must not be NaN"));
    let mut bucket = vec![0; n];
    for (pos, &node) in order.iter().enumerate() {
        bucket[node] = (pos * num_buckets / n).min(num_buckets - 1);
    }
    bucket
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star() -> CsrGraph {
        // Node 0 is the hub of a 5-node star.
        CsrGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)])
    }

    #[test]
    fn degree_centrality_of_star() {
        let c = degree_centrality(&star());
        assert!((c[0] - 1.0).abs() < 1e-12);
        for u in 1..5 {
            assert!((c[u] - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn pagerank_sums_to_one_and_favours_hub() {
        let r = pagerank(&star(), 0.85, 1e-10, 200);
        let total: f64 = r.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "total={total}");
        assert!(r[0] > r[1], "hub must out-rank leaves");
        for u in 2..5 {
            assert!((r[u] - r[1]).abs() < 1e-9, "leaves symmetric");
        }
    }

    #[test]
    fn pagerank_uniform_on_cycle() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let r = pagerank(&g, 0.85, 1e-12, 500);
        for &x in &r {
            assert!((x - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn pagerank_handles_dangling_nodes() {
        let g = CsrGraph::from_edges(3, &[(0, 1)]); // node 2 isolated
        let r = pagerank(&g, 0.85, 1e-12, 500);
        assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        assert!(r[2] > 0.0);
        assert!(r[0] > r[2]);
    }

    #[test]
    fn quantile_buckets_are_balanced_and_monotone() {
        let scores: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let b = quantile_buckets(&scores, 5);
        assert_eq!(b, vec![0, 0, 1, 1, 2, 2, 3, 3, 4, 4]);
    }

    #[test]
    fn quantile_buckets_handle_fewer_nodes_than_buckets() {
        let b = quantile_buckets(&[0.5, 0.1], 8);
        assert_eq!(b.len(), 2);
        assert!(b.iter().all(|&x| x < 8));
        assert!(b[1] <= b[0]);
    }

    #[test]
    fn empty_graph_centralities() {
        let g = CsrGraph::empty(0);
        assert!(pagerank(&g, 0.85, 1e-9, 10).is_empty());
        assert!(degree_centrality(&g).is_empty());
        assert!(quantile_buckets(&[], 4).is_empty());
    }
}
