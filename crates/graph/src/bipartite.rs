//! The user–item interaction graph `R^U` in CSR form, both orientations.

use groupsa_json::impl_json_struct;

/// A bipartite interaction graph between `num_left` users and
/// `num_right` items, stored CSR in both directions so that both "items
/// of a user" (item aggregation, Eq. 11) and "users of an item"
/// (popularity, TF-IDF document frequency) are O(1) slices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bipartite {
    left_offsets: Vec<usize>,
    left_items: Vec<u32>,
    right_offsets: Vec<usize>,
    right_users: Vec<u32>,
}

impl_json_struct!(Bipartite { left_offsets, left_items, right_offsets, right_users });

impl Bipartite {
    /// Builds from `(user, item)` pairs. Duplicates are removed.
    ///
    /// # Panics
    /// If any user `>= num_left` or item `>= num_right`.
    pub fn from_pairs(num_left: usize, num_right: usize, pairs: &[(usize, usize)]) -> Self {
        let mut by_left: Vec<Vec<u32>> = vec![Vec::new(); num_left];
        let mut by_right: Vec<Vec<u32>> = vec![Vec::new(); num_right];
        for &(u, i) in pairs {
            assert!(u < num_left, "user {u} out of bounds ({num_left} users)");
            assert!(i < num_right, "item {i} out of bounds ({num_right} items)");
            by_left[u].push(i as u32);
            by_right[i].push(u as u32);
        }
        let flatten = |lists: &mut [Vec<u32>]| {
            let mut offsets = Vec::with_capacity(lists.len() + 1);
            let mut flat = Vec::new();
            offsets.push(0);
            for list in lists {
                list.sort_unstable();
                list.dedup();
                flat.extend_from_slice(list);
                offsets.push(flat.len());
            }
            (offsets, flat)
        };
        let (left_offsets, left_items) = flatten(&mut by_left);
        let (right_offsets, right_users) = flatten(&mut by_right);
        Self { left_offsets, left_items, right_offsets, right_users }
    }

    /// Number of users (left nodes).
    pub fn num_users(&self) -> usize {
        self.left_offsets.len() - 1
    }

    /// Number of items (right nodes).
    pub fn num_items(&self) -> usize {
        self.right_offsets.len() - 1
    }

    /// Number of distinct interactions.
    pub fn num_interactions(&self) -> usize {
        self.left_items.len()
    }

    /// Sorted items interacted by `user` — the set `C(j)` of Eq. (11).
    pub fn items_of(&self, user: usize) -> &[u32] {
        &self.left_items[self.left_offsets[user]..self.left_offsets[user + 1]]
    }

    /// Sorted users who interacted with `item`.
    pub fn users_of(&self, item: usize) -> &[u32] {
        &self.right_users[self.right_offsets[item]..self.right_offsets[item + 1]]
    }

    /// Interaction count of `item` (its training popularity).
    pub fn item_popularity(&self, item: usize) -> usize {
        self.right_offsets[item + 1] - self.right_offsets[item]
    }

    /// Interaction count of `user`.
    pub fn user_activity(&self, user: usize) -> usize {
        self.left_offsets[user + 1] - self.left_offsets[user]
    }

    /// `true` when `user` has interacted with `item`.
    pub fn has_interaction(&self, user: usize, item: usize) -> bool {
        user < self.num_users()
            && item < self.num_items()
            && self.items_of(user).binary_search(&(item as u32)).is_ok()
    }

    /// Average interactions per user.
    pub fn avg_user_activity(&self) -> f64 {
        if self.num_users() == 0 {
            0.0
        } else {
            self.num_interactions() as f64 / self.num_users() as f64
        }
    }

    /// Items sorted by descending popularity (ties by ascending id) —
    /// the `Pop` baseline's ranking.
    pub fn items_by_popularity(&self) -> Vec<usize> {
        let mut items: Vec<usize> = (0..self.num_items()).collect();
        items.sort_by_key(|&i| (std::cmp::Reverse(self.item_popularity(i)), i));
        items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Bipartite {
        Bipartite::from_pairs(3, 4, &[(0, 0), (0, 2), (1, 2), (2, 2), (2, 3), (0, 0)])
    }

    #[test]
    fn counts_dedup() {
        let b = sample();
        assert_eq!(b.num_users(), 3);
        assert_eq!(b.num_items(), 4);
        assert_eq!(b.num_interactions(), 5); // (0,0) deduped
    }

    #[test]
    fn items_and_users_sorted() {
        let b = sample();
        assert_eq!(b.items_of(0), &[0, 2]);
        assert_eq!(b.items_of(1), &[2]);
        assert_eq!(b.users_of(2), &[0, 1, 2]);
        assert_eq!(b.users_of(1), &[] as &[u32]);
    }

    #[test]
    fn popularity_and_activity() {
        let b = sample();
        assert_eq!(b.item_popularity(2), 3);
        assert_eq!(b.item_popularity(1), 0);
        assert_eq!(b.user_activity(0), 2);
        assert!((b.avg_user_activity() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn has_interaction_queries() {
        let b = sample();
        assert!(b.has_interaction(0, 2));
        assert!(!b.has_interaction(1, 0));
        assert!(!b.has_interaction(9, 0));
        assert!(!b.has_interaction(0, 9));
    }

    #[test]
    fn popularity_ranking_is_descending_with_id_tiebreak() {
        let b = sample();
        let ranked = b.items_by_popularity();
        assert_eq!(ranked[0], 2); // popularity 3
        // Items 0 (pop 1) and 3 (pop 1) tie → ascending id; item 1 (pop 0) last.
        assert_eq!(ranked, vec![2, 0, 3, 1]);
    }

    #[test]
    fn empty_graph() {
        let b = Bipartite::from_pairs(0, 0, &[]);
        assert_eq!(b.num_interactions(), 0);
        assert_eq!(b.avg_user_activity(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_pair_panics() {
        let _ = Bipartite::from_pairs(1, 1, &[(0, 1)]);
    }
}
