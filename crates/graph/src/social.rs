//! Per-group social adjacency — the input to the social bias matrix.
//!
//! Paper Eq. (4)–(5): self-attention between members `u_i` and `u_j` of
//! a group is enabled only when the closeness `f(i,j)` is non-zero. The
//! experiments use *direct connection*; [`Closeness`] also offers the
//! common-neighbour relaxation for ablations.

use crate::CsrGraph;
use groupsa_json::impl_json_enum;

/// The closeness function `f(i,j)` of paper Eq. (5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Closeness {
    /// `f(i,j) = 1` iff `(i,j)` is a social edge (the paper's choice).
    Direct,
    /// `f(i,j) = 1` iff `(i,j)` is an edge *or* the pair shares at least
    /// `min_common` neighbours (a softer notion of closeness).
    CommonNeighbors {
        /// Minimum number of shared neighbours that counts as "close".
        min_common: usize,
    },
    /// `f(i,j) = 1` for every pair — disables the social mask, reducing
    /// the social self-attention to plain self-attention (used by
    /// ablation studies).
    All,
}

impl_json_enum!(Closeness { Direct, CommonNeighbors { min_common }, All });

impl Closeness {
    /// Whether attention between `u` and `v` is enabled.
    pub fn allows(self, g: &CsrGraph, u: usize, v: usize) -> bool {
        match self {
            Closeness::Direct => g.has_edge(u, v),
            Closeness::CommonNeighbors { min_common } => {
                g.has_edge(u, v) || g.common_neighbors(u, v) >= min_common
            }
            Closeness::All => true,
        }
    }
}

/// Builds the `l×l` boolean adjacency among a group's members under the
/// given closeness function. `mask[i][j] == true` enables attention
/// `i → j`. The diagonal is left `false` here — the attention layer
/// always opens it (a member always attends to themself).
pub fn group_mask(g: &CsrGraph, members: &[usize], closeness: Closeness) -> Vec<Vec<bool>> {
    let l = members.len();
    let mut mask = vec![vec![false; l]; l];
    for i in 0..l {
        for j in 0..l {
            if i != j && closeness.allows(g, members[i], members[j]) {
                mask[i][j] = true;
            }
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn social() -> CsrGraph {
        // 10-11-12 path, 13 isolated; 10 and 12 share neighbour 11.
        CsrGraph::from_edges(14, &[(10, 11), (11, 12)])
    }

    #[test]
    fn direct_mask_follows_edges() {
        let g = social();
        let m = group_mask(&g, &[10, 11, 12, 13], Closeness::Direct);
        assert!(m[0][1] && m[1][0]); // 10-11
        assert!(m[1][2] && m[2][1]); // 11-12
        assert!(!m[0][2]); // 10-12 not direct
        assert!(!m[0][3] && !m[3][0]); // 13 isolated
        for (i, row) in m.iter().enumerate() {
            assert!(!row[i], "diagonal is handled by the attention layer");
        }
    }

    #[test]
    fn common_neighbors_opens_triads() {
        let g = social();
        let m = group_mask(&g, &[10, 12], Closeness::CommonNeighbors { min_common: 1 });
        assert!(m[0][1] && m[1][0], "10 and 12 share neighbour 11");
        let strict = group_mask(&g, &[10, 12], Closeness::CommonNeighbors { min_common: 2 });
        assert!(!strict[0][1]);
    }

    #[test]
    fn all_closeness_opens_everything_offdiagonal() {
        let g = social();
        let m = group_mask(&g, &[10, 12, 13], Closeness::All);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m[i][j], i != j);
            }
        }
    }

    #[test]
    fn mask_is_symmetric_for_symmetric_closeness() {
        let g = social();
        for c in [Closeness::Direct, Closeness::CommonNeighbors { min_common: 1 }, Closeness::All] {
            let m = group_mask(&g, &[10, 11, 12, 13], c);
            for i in 0..4 {
                for j in 0..4 {
                    assert_eq!(m[i][j], m[j][i], "closeness {c:?} must be symmetric");
                }
            }
        }
    }
}
