//! Property-based tests: structural invariants of the graph substrate.

use groupsa_graph::{centrality, tfidf, Bipartite, CsrGraph};
use proptest::prelude::*;

/// Strategy: a random undirected edge list over `n` nodes.
fn edges(n: usize, max_edges: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    prop::collection::vec((0..n, 0..n), 0..max_edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn handshake_lemma(es in edges(12, 40)) {
        let g = CsrGraph::from_edges(12, &es);
        let degree_sum: usize = (0..12).map(|u| g.degree(u)).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
    }

    #[test]
    fn neighbor_lists_sorted_deduped_and_symmetric(es in edges(10, 30)) {
        let g = CsrGraph::from_edges(10, &es);
        for u in 0..10 {
            let ns = g.neighbors(u);
            prop_assert!(ns.windows(2).all(|w| w[0] < w[1]), "sorted & deduped");
            for &v in ns {
                prop_assert!(g.has_edge(v as usize, u), "symmetry");
                prop_assert!(v as usize != u, "no self loops");
            }
        }
    }

    #[test]
    fn bfs_satisfies_triangle_inequality_over_edges(es in edges(10, 30)) {
        let g = CsrGraph::from_edges(10, &es);
        let dist = g.bfs_distances(0);
        for (u, v) in g.edges() {
            if let (Some(du), Some(dv)) = (dist[u], dist[v]) {
                prop_assert!(du.abs_diff(dv) <= 1, "adjacent distances differ by ≤ 1");
            } else {
                // One endpoint unreachable ⇒ both must be (they're adjacent).
                prop_assert!(dist[u].is_none() && dist[v].is_none());
            }
        }
    }

    #[test]
    fn components_agree_with_bfs(es in edges(10, 25)) {
        let g = CsrGraph::from_edges(10, &es);
        let cc = g.connected_components();
        let dist = g.bfs_distances(0);
        for u in 0..10 {
            prop_assert_eq!(cc[u] == cc[0], dist[u].is_some(), "node {}", u);
        }
    }

    #[test]
    fn pagerank_is_a_distribution(es in edges(15, 50), d in 0.5f64..0.95) {
        let g = CsrGraph::from_edges(15, &es);
        let pr = centrality::pagerank(&g, d, 1e-10, 300);
        let total: f64 = pr.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "sums to 1, got {total}");
        prop_assert!(pr.iter().all(|&x| x > 0.0), "teleportation keeps all positive");
    }

    #[test]
    fn tfidf_top_items_subset_of_history(pairs in prop::collection::vec((0usize..8, 0usize..12), 1..40), h in 1usize..6) {
        let b = Bipartite::from_pairs(8, 12, &pairs);
        for u in 0..8 {
            let top = tfidf::top_items(&b, u, h);
            prop_assert!(top.len() <= h.min(b.items_of(u).len()));
            for &i in &top {
                prop_assert!(b.has_interaction(u, i), "top items come from the history");
            }
            // Ranking is by non-increasing IDF.
            for w in top.windows(2) {
                prop_assert!(tfidf::item_idf(&b, w[0]) >= tfidf::item_idf(&b, w[1]) - 1e-12);
            }
        }
    }

    #[test]
    fn bipartite_orientations_agree(pairs in prop::collection::vec((0usize..6, 0usize..9), 0..30)) {
        let b = Bipartite::from_pairs(6, 9, &pairs);
        let from_users: usize = (0..6).map(|u| b.user_activity(u)).sum();
        let from_items: usize = (0..9).map(|i| b.item_popularity(i)).sum();
        prop_assert_eq!(from_users, from_items);
        prop_assert_eq!(from_users, b.num_interactions());
        for u in 0..6 {
            for &i in b.items_of(u) {
                prop_assert!(b.users_of(i as usize).contains(&(u as u32)));
            }
        }
    }

    #[test]
    fn quantile_buckets_are_monotone_in_score(scores in prop::collection::vec(0.0f64..1.0, 1..30), k in 1usize..6) {
        let buckets = centrality::quantile_buckets(&scores, k);
        for i in 0..scores.len() {
            for j in 0..scores.len() {
                if scores[i] < scores[j] {
                    prop_assert!(buckets[i] <= buckets[j], "higher score ⇒ bucket at least as high");
                }
            }
        }
        prop_assert!(buckets.iter().all(|&b| b < k));
    }
}
