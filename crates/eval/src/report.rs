//! Paper-style leaderboard formatting (Tables II, III, V).

use crate::protocol::EvalResult;
use groupsa_json::impl_json_struct;
use std::fmt;

/// One method's row in a leaderboard: `(K, HR, NDCG)` triples.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// Method name as printed.
    pub method: String,
    /// `(K, HR@K, NDCG@K)` per cutoff.
    pub per_k: Vec<(usize, f64, f64)>,
}

impl_json_struct!(Row { method, per_k });

/// A paper-style results table: methods × cutoffs, with the Δ%
/// improvement of the reference method (the last row, as in the paper
/// where GroupSA is listed last) over every other row.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Leaderboard {
    /// Table caption.
    pub title: String,
    rows: Vec<Row>,
}

impl_json_struct!(Leaderboard { title, rows });

impl Leaderboard {
    /// An empty leaderboard with a caption.
    pub fn new(title: impl Into<String>) -> Self {
        Self { title: title.into(), rows: Vec::new() }
    }

    /// Appends a method's results.
    pub fn push(&mut self, method: impl Into<String>, result: &EvalResult) {
        self.rows.push(Row { method: method.into(), per_k: result.per_k.clone() });
    }

    /// Appends a raw row (for methods evaluated elsewhere).
    pub fn push_row(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// The recorded rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// HR@K of a method, if recorded.
    pub fn hr_of(&self, method: &str, k: usize) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.method == method)?
            .per_k
            .iter()
            .find(|&&(kk, _, _)| kk == k)
            .map(|&(_, hr, _)| hr)
    }

    /// Δ% improvement of the last row (the proposed method) over
    /// `method` in HR@K — the Δ columns of Tables II/III/V.
    pub fn delta_percent(&self, method: &str, k: usize) -> Option<f64> {
        let ours = self.rows.last()?.per_k.iter().find(|&&(kk, _, _)| kk == k)?.1;
        let theirs = self.hr_of(method, k)?;
        if theirs == 0.0 {
            return None;
        }
        Some(100.0 * (ours - theirs) / theirs)
    }
}

impl fmt::Display for Leaderboard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        let ks: Vec<usize> = self.rows.first().map(|r| r.per_k.iter().map(|&(k, _, _)| k).collect()).unwrap_or_default();
        write!(f, "{:<12}", "Method")?;
        for &k in &ks {
            write!(f, "  HR@{k:<4} NDCG@{k:<3} {:>8}", format!("Δ%@{k}"))?;
        }
        writeln!(f)?;
        let last = self.rows.len().saturating_sub(1);
        for (i, row) in self.rows.iter().enumerate() {
            write!(f, "{:<12}", row.method)?;
            for &(k, hr, ndcg) in &row.per_k {
                let delta = if i == last {
                    "-".to_string()
                } else {
                    self.delta_percent(&row.method, k)
                        .map(|d| format!("{d:.2}"))
                        .unwrap_or_else(|| "-".into())
                };
                write!(f, "  {hr:.4}  {ndcg:.4}  {delta:>8}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::EvalOutcome;

    fn result(hr5: f64) -> EvalResult {
        EvalResult {
            per_k: vec![(5, hr5, hr5 * 0.8), (10, hr5 + 0.1, hr5 * 0.9)],
            outcomes: vec![EvalOutcome { entity: 0, positive: 0, rank: 0 }],
        }
    }

    #[test]
    fn push_and_lookup() {
        let mut lb = Leaderboard::new("test");
        lb.push("NCF", &result(0.4));
        lb.push("GroupSA", &result(0.8));
        assert_eq!(lb.rows().len(), 2);
        assert_eq!(lb.hr_of("NCF", 5), Some(0.4));
        assert_eq!(lb.hr_of("Missing", 5), None);
        assert_eq!(lb.hr_of("NCF", 99), None);
    }

    #[test]
    fn delta_is_relative_improvement_of_last_row() {
        let mut lb = Leaderboard::new("test");
        lb.push("NCF", &result(0.4));
        lb.push("GroupSA", &result(0.8));
        let d = lb.delta_percent("NCF", 5).unwrap();
        assert!((d - 100.0).abs() < 1e-9, "0.8 over 0.4 = +100%");
    }

    #[test]
    fn delta_handles_zero_baseline() {
        let mut lb = Leaderboard::new("test");
        lb.push("Zero", &result(0.0));
        lb.push("GroupSA", &result(0.8));
        assert_eq!(lb.delta_percent("Zero", 5), None);
    }

    #[test]
    fn display_renders_all_methods() {
        let mut lb = Leaderboard::new("Table II (yelp-sim, group task)");
        lb.push("NCF", &result(0.4));
        lb.push("AGREE", &result(0.5));
        lb.push("GroupSA", &result(0.8));
        let text = lb.to_string();
        for needle in ["Table II", "NCF", "AGREE", "GroupSA", "HR@5", "NDCG@10"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }
}
