//! The 100-negative ranking protocol (paper §III-C).

use crate::metrics::{hr_at_k, ndcg_at_k, rank_of_first};
use groupsa_data::sampling::eval_candidates;
use groupsa_graph::Bipartite;
use groupsa_json::impl_json_struct;
use groupsa_tensor::rng::seeded;

/// Anything that can score a set of candidate items for one entity
/// (a user on the user task, a group on the group task).
pub trait Scorer {
    /// Predicted relevance of each item in `items` for `entity`
    /// (higher = better; only the ordering matters).
    fn score(&self, entity: usize, items: &[usize]) -> Vec<f32>;
}

impl<F: Fn(usize, &[usize]) -> Vec<f32>> Scorer for F {
    fn score(&self, entity: usize, items: &[usize]) -> Vec<f32> {
        self(entity, items)
    }
}

/// One evaluation task: a test set plus everything needed to draw
/// clean candidate negatives.
pub struct EvalTask<'a> {
    /// Held-out positive pairs `(entity, item)`.
    pub test_pairs: &'a [(usize, usize)],
    /// *All* known interactions of each entity (train ∪ valid ∪ test),
    /// so sampled negatives were truly never interacted with.
    pub full_interactions: &'a Bipartite,
    /// Number of sampled negatives per positive (paper: 100).
    pub num_candidates: usize,
    /// Cutoffs to report (paper: 5 and 10).
    pub ks: Vec<usize>,
    /// Seed for candidate sampling — fix it to compare methods on the
    /// *same* candidate sets.
    pub seed: u64,
}

impl<'a> EvalTask<'a> {
    /// The paper's configuration: 100 negatives, K ∈ {5, 10}.
    pub fn paper(test_pairs: &'a [(usize, usize)], full_interactions: &'a Bipartite, seed: u64) -> Self {
        Self { test_pairs, full_interactions, num_candidates: 100, ks: vec![5, 10], seed }
    }
}

/// The outcome of ranking one held-out positive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvalOutcome {
    /// The evaluated entity (user or group id).
    pub entity: usize,
    /// The held-out positive item.
    pub positive: usize,
    /// 0-based rank achieved among the candidates.
    pub rank: usize,
}

impl_json_struct!(EvalOutcome { entity, positive, rank });

/// Aggregated metrics plus per-example outcomes (kept for significance
/// tests and group-size binning).
#[derive(Clone, Debug, PartialEq)]
pub struct EvalResult {
    /// `(K, HR@K, NDCG@K)` for each requested cutoff.
    pub per_k: Vec<(usize, f64, f64)>,
    /// One outcome per test pair, in `test_pairs` order.
    pub outcomes: Vec<EvalOutcome>,
}

impl_json_struct!(EvalResult { per_k, outcomes });

impl EvalResult {
    /// HR@K, or panics if `k` was not evaluated.
    pub fn hr(&self, k: usize) -> f64 {
        self.per_k
            .iter()
            .find(|&&(kk, _, _)| kk == k)
            .unwrap_or_else(|| panic!("HR@{k} was not evaluated"))
            .1
    }

    /// NDCG@K, or panics if `k` was not evaluated.
    pub fn ndcg(&self, k: usize) -> f64 {
        self.per_k
            .iter()
            .find(|&&(kk, _, _)| kk == k)
            .unwrap_or_else(|| panic!("NDCG@{k} was not evaluated"))
            .2
    }

    /// Per-example HR@K vector (for paired significance tests).
    pub fn hr_vector(&self, k: usize) -> Vec<f64> {
        self.outcomes.iter().map(|o| hr_at_k(o.rank, k)).collect()
    }

    /// Per-example NDCG@K vector.
    pub fn ndcg_vector(&self, k: usize) -> Vec<f64> {
        self.outcomes.iter().map(|o| ndcg_at_k(o.rank, k)).collect()
    }

    /// Mean reciprocal rank over all outcomes.
    pub fn mrr(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().map(|o| crate::metrics::reciprocal_rank(o.rank)).sum::<f64>()
            / self.outcomes.len() as f64
    }

    /// Re-aggregates over the subset of outcomes whose *index* passes
    /// the filter — e.g. the group-size bins of paper Table IX.
    ///
    /// Returns `None` when no outcome passes.
    pub fn filtered(&self, ks: &[usize], mut keep: impl FnMut(&EvalOutcome) -> bool) -> Option<EvalResult> {
        let outcomes: Vec<EvalOutcome> = self.outcomes.iter().filter(|o| keep(o)).cloned().collect();
        if outcomes.is_empty() {
            return None;
        }
        Some(aggregate(outcomes, ks))
    }
}

fn aggregate(outcomes: Vec<EvalOutcome>, ks: &[usize]) -> EvalResult {
    let n = outcomes.len() as f64;
    let per_k = ks
        .iter()
        .map(|&k| {
            let hr = outcomes.iter().map(|o| hr_at_k(o.rank, k)).sum::<f64>() / n;
            let ndcg = outcomes.iter().map(|o| ndcg_at_k(o.rank, k)).sum::<f64>() / n;
            (k, hr, ndcg)
        })
        .collect();
    EvalResult { per_k, outcomes }
}

/// Runs the protocol: for each held-out positive, draw
/// `task.num_candidates` clean negatives (deterministically from
/// `task.seed`), score `[positive, negatives…]` with `scorer`, and
/// aggregate HR/NDCG at each cutoff.
///
/// # Panics
/// If the test set is empty or a scorer returns the wrong number of
/// scores.
pub fn evaluate(scorer: &dyn Scorer, task: &EvalTask) -> EvalResult {
    assert!(!task.test_pairs.is_empty(), "evaluate: empty test set");
    let mut rng = seeded(task.seed);
    let mut outcomes = Vec::with_capacity(task.test_pairs.len());
    for &(entity, positive) in task.test_pairs {
        let candidates = eval_candidates(&mut rng, task.full_interactions, entity, positive, task.num_candidates);
        let scores = scorer.score(entity, &candidates);
        assert_eq!(
            scores.len(),
            candidates.len(),
            "scorer returned {} scores for {} candidates",
            scores.len(),
            candidates.len()
        );
        outcomes.push(EvalOutcome { entity, positive, rank: rank_of_first(&scores) });
    }
    aggregate(outcomes, &task.ks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> Bipartite {
        // 3 entities × 30 items; each entity has interacted with item = id.
        Bipartite::from_pairs(3, 30, &[(0, 0), (1, 1), (2, 2)])
    }

    #[test]
    fn oracle_scorer_is_perfect() {
        let g = graph();
        let pairs = vec![(0, 0), (1, 1), (2, 2)];
        let task = EvalTask { test_pairs: &pairs, full_interactions: &g, num_candidates: 10, ks: vec![1, 5], seed: 3 };
        // Oracle: the positive (candidate 0 by construction is the pair's
        // item) gets the top score because entity==item in this fixture.
        let oracle = |entity: usize, items: &[usize]| -> Vec<f32> {
            items.iter().map(|&i| if i == entity { 1.0 } else { 0.0 }).collect()
        };
        let res = evaluate(&oracle, &task);
        assert_eq!(res.hr(1), 1.0);
        assert_eq!(res.ndcg(5), 1.0);
        assert_eq!(res.mrr(), 1.0);
        assert!(res.outcomes.iter().all(|o| o.rank == 0));
    }

    #[test]
    fn adversarial_scorer_is_zero() {
        let g = graph();
        let pairs = vec![(0, 0), (1, 1)];
        let task = EvalTask { test_pairs: &pairs, full_interactions: &g, num_candidates: 10, ks: vec![5], seed: 3 };
        let worst = |entity: usize, items: &[usize]| -> Vec<f32> {
            items.iter().map(|&i| if i == entity { -1.0 } else { 1.0 }).collect()
        };
        let res = evaluate(&worst, &task);
        assert_eq!(res.hr(5), 0.0);
        assert_eq!(res.ndcg(5), 0.0);
    }

    #[test]
    fn random_scorer_hr_matches_expectation() {
        // With C candidates and K cutoff, a random scorer hits w.p. K/(C+1).
        // 400 entities, each with its own positive, so positives' hash
        // scores are themselves spread uniformly.
        let pos_pairs: Vec<(usize, usize)> = (0..400).map(|e| (e, e)).collect();
        let g = Bipartite::from_pairs(400, 2000, &pos_pairs);
        let task = EvalTask { test_pairs: &pos_pairs, full_interactions: &g, num_candidates: 20, ks: vec![7], seed: 5 };
        // Hash-based pseudo-random but deterministic scorer.
        let scorer = |_: usize, items: &[usize]| -> Vec<f32> {
            items
                .iter()
                .map(|&i| {
                    let h = (i as u64 ^ 0xD1B54A32D192ED03).wrapping_mul(0x9E3779B97F4A7C15);
                    (h >> 40) as f32
                })
                .collect()
        };
        let res = evaluate(&scorer, &task);
        let expect = 7.0 / 21.0;
        assert!((res.hr(7) - expect).abs() < 0.1, "hr {} vs expected {expect}", res.hr(7));
    }

    #[test]
    fn same_seed_gives_identical_candidates() {
        let g = graph();
        let pairs = vec![(0, 0), (1, 1)];
        let task = EvalTask { test_pairs: &pairs, full_interactions: &g, num_candidates: 10, ks: vec![5], seed: 7 };
        let s = |_: usize, items: &[usize]| -> Vec<f32> { items.iter().map(|&i| -(i as f32)).collect() };
        assert_eq!(evaluate(&s, &task), evaluate(&s, &task));
    }

    #[test]
    fn filtered_reaggregates_subset() {
        let g = graph();
        let pairs = vec![(0, 0), (1, 1), (2, 2)];
        let task = EvalTask { test_pairs: &pairs, full_interactions: &g, num_candidates: 5, ks: vec![5], seed: 1 };
        let oracle = |entity: usize, items: &[usize]| -> Vec<f32> {
            items.iter().map(|&i| if i == entity { 1.0 } else { 0.0 }).collect()
        };
        let res = evaluate(&oracle, &task);
        let sub = res.filtered(&[5], |o| o.entity == 0).expect("entity 0 present");
        assert_eq!(sub.outcomes.len(), 1);
        assert_eq!(sub.hr(5), 1.0);
        assert!(res.filtered(&[5], |_| false).is_none());
    }

    #[test]
    fn per_example_vectors_align() {
        let g = graph();
        let pairs = vec![(0, 0), (1, 1)];
        let task = EvalTask { test_pairs: &pairs, full_interactions: &g, num_candidates: 5, ks: vec![5], seed: 1 };
        let oracle = |entity: usize, items: &[usize]| -> Vec<f32> {
            items.iter().map(|&i| if i == entity { 1.0 } else { 0.0 }).collect()
        };
        let res = evaluate(&oracle, &task);
        assert_eq!(res.hr_vector(5), vec![1.0, 1.0]);
        assert_eq!(res.ndcg_vector(5), vec![1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "empty test set")]
    fn empty_test_set_panics() {
        let g = graph();
        let task = EvalTask { test_pairs: &[], full_interactions: &g, num_candidates: 5, ks: vec![5], seed: 1 };
        let s = |_: usize, items: &[usize]| -> Vec<f32> { vec![0.0; items.len()] };
        let _ = evaluate(&s, &task);
    }
}
