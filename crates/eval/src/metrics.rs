//! Ranking metrics: Hit Ratio and NDCG (paper §III-C).

/// The 0-based rank of candidate 0 (the positive) among `scores`:
/// the number of other candidates scored strictly higher, with ties
/// broken *against* the positive (a tied negative outranks it). The
/// pessimistic tie-break means a constant scorer cannot score hits for
/// free.
///
/// # Panics
/// If `scores` is empty.
pub fn rank_of_first(scores: &[f32]) -> usize {
    assert!(!scores.is_empty(), "rank_of_first: empty score vector");
    let pos = scores[0];
    scores[1..].iter().filter(|&&s| s >= pos).count()
}

/// `HR@K` for a single example: 1.0 if the positive's rank is within
/// the Top-K, else 0.0.
pub fn hr_at_k(rank: usize, k: usize) -> f64 {
    if rank < k {
        1.0
    } else {
        0.0
    }
}

/// `NDCG@K` for a single example with one relevant item:
/// `1/log₂(rank+2)` when the positive lands in the Top-K, else 0.
pub fn ndcg_at_k(rank: usize, k: usize) -> f64 {
    if rank < k {
        1.0 / ((rank + 2) as f64).log2()
    } else {
        0.0
    }
}

/// Reciprocal rank of the single positive: `1/(rank+1)`. Averaged over
/// a test set this is MRR — not reported in the paper's tables but a
/// standard companion metric exposed by this library.
pub fn reciprocal_rank(rank: usize) -> f64 {
    1.0 / (rank + 1) as f64
}

/// `Precision@K` with a single relevant item: `HR@K / K`.
pub fn precision_at_k(rank: usize, k: usize) -> f64 {
    hr_at_k(rank, k) / k as f64
}

/// `Recall@K` with a single relevant item — identical to `HR@K`
/// (provided under its conventional name for API completeness).
pub fn recall_at_k(rank: usize, k: usize) -> f64 {
    hr_at_k(rank, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_counts_strictly_better_candidates() {
        // Positive scores 0.5; two candidates above, one below, one tie.
        let scores = [0.5, 0.9, 0.7, 0.1, 0.5];
        assert_eq!(rank_of_first(&scores), 3); // 0.9, 0.7 and the tied 0.5
    }

    #[test]
    fn best_score_is_rank_zero() {
        assert_eq!(rank_of_first(&[1.0, 0.2, 0.3]), 0);
    }

    #[test]
    fn constant_scorer_gets_worst_rank() {
        let scores = [0.5; 101];
        assert_eq!(rank_of_first(&scores), 100);
        assert_eq!(hr_at_k(100, 10), 0.0);
    }

    #[test]
    fn hr_thresholds() {
        assert_eq!(hr_at_k(4, 5), 1.0);
        assert_eq!(hr_at_k(5, 5), 0.0);
        assert_eq!(hr_at_k(0, 1), 1.0);
    }

    #[test]
    fn ndcg_values() {
        assert!((ndcg_at_k(0, 5) - 1.0).abs() < 1e-12); // 1/log2(2)
        assert!((ndcg_at_k(1, 5) - 1.0 / 3f64.log2()).abs() < 1e-12);
        assert_eq!(ndcg_at_k(5, 5), 0.0);
    }

    #[test]
    fn ndcg_monotone_decreasing_in_rank() {
        let mut prev = f64::INFINITY;
        for rank in 0..10 {
            let v = ndcg_at_k(rank, 10);
            assert!(v < prev);
            prev = v;
        }
    }

    #[test]
    fn reciprocal_rank_values() {
        assert_eq!(reciprocal_rank(0), 1.0);
        assert_eq!(reciprocal_rank(1), 0.5);
        assert!((reciprocal_rank(9) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn precision_recall_identities() {
        assert_eq!(precision_at_k(0, 5), 0.2);
        assert_eq!(precision_at_k(5, 5), 0.0);
        for rank in 0..12 {
            for k in [1usize, 5, 10] {
                assert_eq!(recall_at_k(rank, k), hr_at_k(rank, k));
                assert!((precision_at_k(rank, k) * k as f64 - hr_at_k(rank, k)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rr_dominated_by_ndcg_dominated_by_hr_at_large_k() {
        // For rank ≥ 1 and K beyond the rank: RR ≤ NDCG ≤ HR.
        for rank in 1..10 {
            let k = 10;
            assert!(reciprocal_rank(rank) <= ndcg_at_k(rank, k) + 1e-12);
            assert!(ndcg_at_k(rank, k) <= hr_at_k(rank, k) + 1e-12);
        }
    }

    #[test]
    fn ndcg_bounded_by_hr() {
        for rank in 0..20 {
            for k in [1usize, 5, 10] {
                assert!(ndcg_at_k(rank, k) <= hr_at_k(rank, k) + 1e-12);
                assert!(ndcg_at_k(rank, k) >= 0.0);
            }
        }
    }
}
