//! # groupsa-eval
//!
//! The paper's evaluation protocol and metrics (§III-C):
//!
//! * **Protocol** ([`protocol`]): for every held-out positive, rank it
//!   against 100 items the user/group never interacted with; report
//!   Top-K quality averaged over the test set.
//! * **Metrics** ([`metrics`]): `HR@K` (is the positive in the Top-K?)
//!   and `NDCG@K` (position-discounted gain `1/log₂(rank+2)`).
//! * **Significance** ([`stats`]): the paired t-test backing the
//!   paper's `p < 0.01` claims.
//! * **Reports** ([`report`]): paper-style leaderboards with the Δ%
//!   improvement columns of Tables II/III/V.

#![warn(missing_docs)]

pub mod metrics;
pub mod protocol;
pub mod report;
pub mod stats;

pub use metrics::{hr_at_k, ndcg_at_k, rank_of_first};
pub use protocol::{evaluate, EvalOutcome, EvalResult, EvalTask, Scorer};
pub use report::Leaderboard;
