//! Significance testing — the paired t-test behind the paper's
//! "improvements are statistically significant with p < 0.01".

use groupsa_json::impl_json_struct;

/// Result of a paired t-test on two per-example metric vectors.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TTest {
    /// The t statistic of the mean paired difference.
    pub t: f64,
    /// Degrees of freedom (`n − 1`).
    pub df: usize,
    /// Two-sided p-value. Computed from the standard-normal
    /// approximation to the t distribution — accurate for the large
    /// test sets of the protocol (hundreds of examples), documented in
    /// DESIGN.md as a substitution.
    pub p_two_sided: f64,
    /// Mean of the paired differences `a − b`.
    pub mean_diff: f64,
}

impl_json_struct!(TTest { t, df, p_two_sided, mean_diff });

impl TTest {
    /// `true` when the difference is significant at level `alpha` *and*
    /// in favour of the first argument of [`paired_t_test`].
    pub fn significantly_better(&self, alpha: f64) -> bool {
        self.mean_diff > 0.0 && self.p_two_sided < alpha
    }
}

/// Paired t-test of `a` vs `b` (per-example metrics of two systems on
/// the same test examples).
///
/// # Panics
/// If the vectors differ in length or have fewer than 2 entries.
pub fn paired_t_test(a: &[f64], b: &[f64]) -> TTest {
    assert_eq!(a.len(), b.len(), "paired t-test needs equal-length vectors");
    let n = a.len();
    assert!(n >= 2, "paired t-test needs at least 2 pairs, got {n}");
    let diffs: Vec<f64> = a.iter().zip(b).map(|(&x, &y)| x - y).collect();
    let mean = diffs.iter().sum::<f64>() / n as f64;
    let var = diffs.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / (n as f64 - 1.0);
    let se = (var / n as f64).sqrt();
    let t = if se == 0.0 {
        if mean == 0.0 {
            0.0
        } else {
            f64::INFINITY * mean.signum()
        }
    } else {
        mean / se
    };
    let p = 2.0 * (1.0 - standard_normal_cdf(t.abs()));
    TTest { t, df: n - 1, p_two_sided: p, mean_diff: mean }
}

/// Standard-normal CDF via the complementary error function
/// (Abramowitz–Stegun 7.1.26 polynomial, |error| < 1.5e-7).
pub fn standard_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = x.signum();
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592 + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    sign * (1.0 - poly * (-x * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        assert!(erf(0.0).abs() < 1e-6);
        assert!((erf(1.0) - 0.8427).abs() < 1e-3);
        assert!((erf(-1.0) + 0.8427).abs() < 1e-3);
        assert!((erf(3.0) - 0.99998).abs() < 1e-4);
    }

    #[test]
    fn normal_cdf_symmetry() {
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-9);
        for x in [0.5, 1.0, 2.0] {
            let s = standard_normal_cdf(x) + standard_normal_cdf(-x);
            assert!((s - 1.0).abs() < 1e-6);
        }
        assert!((standard_normal_cdf(1.96) - 0.975).abs() < 1e-3);
    }

    #[test]
    fn clearly_better_system_is_significant() {
        // System a hits 90% of 200 examples, b hits 40% (disjoint-ish).
        let a: Vec<f64> = (0..200).map(|i| if i % 10 != 0 { 1.0 } else { 0.0 }).collect();
        let b: Vec<f64> = (0..200).map(|i| if i % 10 < 4 { 1.0 } else { 0.0 }).collect();
        let t = paired_t_test(&a, &b);
        assert!(t.mean_diff > 0.0);
        assert!(t.p_two_sided < 0.01, "p = {}", t.p_two_sided);
        assert!(t.significantly_better(0.01));
    }

    #[test]
    fn identical_systems_are_not_significant() {
        let a = vec![1.0, 0.0, 1.0, 0.5, 0.25];
        let t = paired_t_test(&a, &a);
        assert_eq!(t.t, 0.0);
        assert!(t.p_two_sided > 0.9);
        assert!(!t.significantly_better(0.01));
    }

    #[test]
    fn noise_level_difference_is_not_significant() {
        // Two systems differing by symmetric noise.
        let a: Vec<f64> = (0..100).map(|i| if i % 2 == 0 { 1.0 } else { 0.0 }).collect();
        let b: Vec<f64> = (0..100).map(|i| if i % 2 == 1 { 1.0 } else { 0.0 }).collect();
        let t = paired_t_test(&a, &b);
        assert!((t.mean_diff).abs() < 1e-12);
        assert!(!t.significantly_better(0.01));
    }

    #[test]
    fn worse_system_is_never_significantly_better() {
        let a = vec![0.0; 50];
        let b = vec![1.0; 50];
        let t = paired_t_test(&a, &b);
        assert!(t.mean_diff < 0.0);
        assert!(!t.significantly_better(0.05));
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn mismatched_lengths_panic() {
        let _ = paired_t_test(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn constant_positive_difference_is_infinitely_significant() {
        let a = vec![1.0; 10];
        let b = vec![0.5; 10];
        let t = paired_t_test(&a, &b);
        assert!(t.t.is_infinite() && t.t > 0.0);
        assert!(t.significantly_better(0.01));
    }
}
