//! Concurrency determinism: N worker threads serving M interleaved
//! requests must produce **byte-identical** responses to a
//! single-threaded engine. Responses carry no timing or server-state
//! fields, and `groupsa-json` output is deterministic, so this holds
//! at the serialized-bytes level, not just semantically.

use groupsa_core::{DataContext, GroupSa, GroupSaConfig};
use groupsa_data::synthetic::{generate, SyntheticConfig};
use groupsa_serve::engine::{Engine, EngineConfig};
use groupsa_serve::protocol::{RecommendRequest, Response, ServeMode, Target};
use groupsa_serve::FrozenModel;
use std::collections::BTreeMap;
use std::sync::Arc;

fn frozen_world(seed: u64) -> Arc<FrozenModel> {
    let dataset = generate(&SyntheticConfig {
        name: format!("serve-conc-{seed}"),
        seed,
        num_users: 60,
        num_items: 40,
        num_groups: 25,
        num_topics: 4,
        latent_dim: 4,
        avg_items_per_user: 8.0,
        avg_friends_per_user: 5.0,
        avg_items_per_group: 1.5,
        mean_group_size: 3.5,
        zipf_exponent: 0.8,
        homophily: 0.8,
        social_influence: 0.3,
        expertise_sharpness: 2.0,
        taste_temperature: 0.3,
        consensus_blend: 0.5,
        connectedness_boost: 1.0,
    });
    let ctx = DataContext::from_train_view(&dataset, &GroupSaConfig::tiny());
    let model = GroupSa::new(GroupSaConfig::tiny(), dataset.num_users, dataset.num_items);
    Arc::new(FrozenModel::freeze(model, ctx))
}

/// A deterministic, mode-diverse workload: users and groups, all four
/// modes, a few deliberately invalid ids (errors must be byte-stable
/// too).
fn workload(n: u64) -> Vec<RecommendRequest> {
    let modes = [
        ServeMode::Voting,
        ServeMode::FastAverage,
        ServeMode::FastLeastMisery,
        ServeMode::FastMaxSatisfaction,
    ];
    (0..n)
        .map(|i| {
            let target = if i % 12 == 0 {
                Target::Group { id: 25 } // 25 groups → out of range on purpose
            } else if i % 3 == 0 {
                Target::Group { id: (i as usize * 7) % 25 }
            } else {
                Target::User { id: (i as usize * 11) % 60 }
            };
            RecommendRequest {
                id: i + 1,
                target,
                k: 1 + (i as usize % 10),
                exclude_seen: i % 2 == 0,
                mode: modes[i as usize % modes.len()],
                deadline_ms: 0,
            }
        })
        .collect()
}

fn serialize(resp: &Response) -> String {
    groupsa_json::to_string(resp)
}

#[test]
fn parallel_responses_are_byte_identical_to_single_threaded() {
    let frozen = frozen_world(81);
    let requests = workload(48);

    // Reference: one worker, submitted strictly sequentially.
    let single = Engine::start(Arc::clone(&frozen), EngineConfig { workers: 1, ..EngineConfig::default() });
    let mut reference: BTreeMap<u64, String> = BTreeMap::new();
    for req in &requests {
        reference.insert(req.id, serialize(&single.submit(req.clone())));
    }
    single.shutdown();

    // 4 workers × 4 client threads, interleaved arbitrarily.
    let parallel = Engine::start(Arc::clone(&frozen), EngineConfig { workers: 4, ..EngineConfig::default() });
    let mut handles = Vec::new();
    for chunk in requests.chunks(12) {
        let engine = Arc::clone(&parallel);
        let chunk: Vec<RecommendRequest> = chunk.to_vec();
        handles.push(std::thread::spawn(move || {
            chunk.into_iter().map(|req| (req.id, serialize(&engine.submit(req)))).collect::<Vec<_>>()
        }));
    }
    let mut parallel_out: BTreeMap<u64, String> = BTreeMap::new();
    for handle in handles {
        for (id, bytes) in handle.join().unwrap() {
            parallel_out.insert(id, bytes);
        }
    }
    let stats = parallel.shutdown();

    assert_eq!(parallel_out.len(), reference.len());
    for (id, want) in &reference {
        assert_eq!(parallel_out.get(id), Some(want), "response bytes for request {id}");
    }
    assert_eq!(stats.submitted, requests.len() as u64);
    assert_eq!(stats.completed + stats.errors, requests.len() as u64);
    // The workload contains invalid group ids on purpose.
    assert!(stats.errors > 0, "workload includes out-of-range targets");
}

#[test]
fn coalesced_catalog_user_requests_match_direct_scoring() {
    // A single worker with a wide batch window and many concurrent
    // catalog-user submitters (user target, exclude_seen = false):
    // drained batches routinely contain ≥2 coalescible jobs, steering
    // them through the shared stacked-scoring pass. Whether or not a
    // given request was coalesced is timing-dependent — its response
    // must be byte-identical to direct frozen scoring either way.
    let frozen = frozen_world(84);
    let engine = Engine::start(
        Arc::clone(&frozen),
        EngineConfig {
            workers: 1,
            queue_capacity: 256,
            max_batch: 16,
            default_deadline_ms: 0,
            shed: true,
            telemetry: None,
        },
    );
    let mut handles = Vec::new();
    for t in 0..6u64 {
        let engine = Arc::clone(&engine);
        handles.push(std::thread::spawn(move || {
            (0..8u64)
                .map(|i| {
                    let id = t * 100 + i;
                    let req = RecommendRequest {
                        id,
                        target: Target::User { id: ((t * 8 + i) as usize * 7) % 60 },
                        k: 1 + (i as usize % 9),
                        exclude_seen: false,
                        mode: ServeMode::Voting,
                        deadline_ms: 0,
                    };
                    (req.clone(), serialize(&engine.submit(req)))
                })
                .collect::<Vec<_>>()
        }));
    }
    let mut answered = 0;
    for handle in handles {
        for (req, bytes) in handle.join().unwrap() {
            let Target::User { id: user } = req.target else { unreachable!() };
            let items = frozen
                .recommend(Target::User { id: user }, req.k, false, groupsa_core::GroupMode::Voting)
                .unwrap();
            let want = serialize(&Response::Recommend { id: req.id, items });
            assert_eq!(bytes, want, "request {}", req.id);
            answered += 1;
        }
    }
    let stats = engine.shutdown();
    assert_eq!(answered, 48);
    assert_eq!(stats.submitted, 48);
    assert_eq!(stats.completed, 48, "no errors or expiries in this workload");
    assert_eq!(stats.completed + stats.errors + stats.expired, stats.submitted);
}

#[test]
fn shutdown_rejects_new_work_but_stays_queryable() {
    let frozen = frozen_world(82);
    let engine = Engine::start(frozen, EngineConfig::default());
    let ok = engine.submit(workload(2).pop().unwrap());
    assert!(matches!(ok, Response::Recommend { .. }));

    let stats = engine.shutdown();
    assert_eq!(stats.completed, 1);

    let rejected = engine.submit(workload(2).pop().unwrap());
    assert!(
        matches!(rejected, Response::Error { ref error, .. } if error.contains("shutting down")),
        "{rejected:?}"
    );
    assert_eq!(engine.stats().rejected, 1);
    assert!(engine.is_stopping());
}

#[test]
fn deadlines_and_queue_bounds_are_enforced() {
    let frozen = frozen_world(83);
    // A generous default deadline never fires.
    let engine = Engine::start(
        Arc::clone(&frozen),
        EngineConfig { workers: 1, default_deadline_ms: 60_000, ..EngineConfig::default() },
    );
    assert!(matches!(engine.submit(workload(2).pop().unwrap()), Response::Recommend { .. }));
    engine.shutdown();

    // Many clients racing a 1 ms deadline through a single worker:
    // whether each request completes or expires is timing-dependent,
    // but the accounting must balance exactly and nothing may hang.
    let engine = Engine::start(
        frozen,
        EngineConfig {
            workers: 1,
            queue_capacity: 4,
            max_batch: 2,
            default_deadline_ms: 0,
            shed: true,
            telemetry: None,
        },
    );
    let requests = workload(32);
    let mut handles = Vec::new();
    for chunk in requests.chunks(4) {
        let engine = Arc::clone(&engine);
        let chunk: Vec<_> = chunk.to_vec();
        handles.push(std::thread::spawn(move || {
            for mut req in chunk {
                req.deadline_ms = 1;
                let resp = engine.submit(req);
                assert!(matches!(resp, Response::Recommend { .. } | Response::Error { .. }));
            }
        }));
    }
    for handle in handles {
        handle.join().unwrap();
    }
    let stats = engine.shutdown();
    assert_eq!(stats.submitted + stats.rejected, requests.len() as u64);
    // Disjoint accounting: a submitted request lands in exactly one of
    // completed/errors/expired/shed (an expired or shed request still
    // *answers* with an error response, but is counted exactly once).
    assert_eq!(stats.completed + stats.errors + stats.expired + stats.shed, stats.submitted);
    assert!(stats.max_queue_depth <= 4, "admission bound respected");
}
