//! Atomic snapshot hot-swap, pinned as a golden test: publishing a
//! retrained `groupsa-snapshot` directory while the engine is under
//! concurrent load drops **zero** requests and misroutes **zero**
//! responses — every reply matches its request id and is byte-identical
//! to direct frozen scoring, whichever side of the swap its batch
//! landed on (an f32 snapshot reproduces the in-memory model
//! bit-for-bit, so both sides agree on the bytes).

use groupsa_core::{DataContext, GroupSa, GroupSaConfig};
use groupsa_data::synthetic::{generate, SyntheticConfig};
use groupsa_serve::engine::{Engine, EngineConfig};
use groupsa_serve::protocol::{RecommendRequest, Request, Response, ServeMode, Target};
use groupsa_serve::server::{self, ServerConfig};
use groupsa_serve::FrozenModel;
use groupsa_snapshot::Quant;
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::sync::Arc;

const NUM_USERS: usize = 60;

fn world(seed: u64, num_groups: usize) -> (DataContext, GroupSa) {
    let dataset = generate(&SyntheticConfig {
        name: format!("serve-hotswap-{seed}-{num_groups}"),
        seed,
        num_users: NUM_USERS,
        num_items: 40,
        num_groups,
        num_topics: 4,
        latent_dim: 4,
        avg_items_per_user: 8.0,
        avg_friends_per_user: 5.0,
        avg_items_per_group: 1.5,
        mean_group_size: 3.5,
        zipf_exponent: 0.8,
        homophily: 0.8,
        social_influence: 0.3,
        expertise_sharpness: 2.0,
        taste_temperature: 0.3,
        consensus_blend: 0.5,
        connectedness_boost: 1.0,
    });
    let ctx = DataContext::from_train_view(&dataset, &GroupSaConfig::tiny());
    let model = GroupSa::new(GroupSaConfig::tiny(), dataset.num_users, dataset.num_items);
    (ctx, model)
}

fn frozen(seed: u64, num_groups: usize) -> Arc<FrozenModel> {
    let (ctx, model) = world(seed, num_groups);
    Arc::new(FrozenModel::freeze(model, ctx))
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("groupsa-hotswap-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn user_request(id: u64) -> RecommendRequest {
    RecommendRequest {
        id,
        target: Target::User { id: (id as usize * 7) % NUM_USERS },
        k: 5,
        exclude_seen: false,
        mode: ServeMode::Voting,
        deadline_ms: 0,
    }
}

/// The golden swap-under-load claim, at the engine level: concurrent
/// submitters hammer the engine while the main thread hot-swaps in an
/// f32 snapshot of the same model. Every single submission is answered
/// with a recommendation whose bytes equal direct scoring — no
/// request dropped, none misrouted, none errored by the swap.
#[test]
fn hot_swap_under_load_drops_and_misroutes_nothing() {
    let serving = frozen(71, 25);
    let dir = fresh_dir("load");
    serving.write_snapshot(&dir, 2, Quant::F32).expect("write snapshot");

    let engine = Engine::start(
        Arc::clone(&serving),
        EngineConfig {
            workers: 2,
            queue_capacity: 256,
            max_batch: 4,
            default_deadline_ms: 0,
            shed: false,
            telemetry: None,
        },
    );

    let mut clients = Vec::new();
    for t in 0..4u64 {
        let engine = Arc::clone(&engine);
        clients.push(std::thread::spawn(move || {
            (0..25u64)
                .map(|i| {
                    let id = t * 1_000 + i;
                    (id, engine.submit(user_request(id)))
                })
                .collect::<Vec<_>>()
        }));
    }

    // Swap mid-flight. Some batches score on the memory-backed model,
    // later ones on the lazy snapshot — the responses must not care.
    engine.reload_from_snapshot(&dir).expect("hot swap");

    let mut answered = 0u64;
    for client in clients {
        for (id, resp) in client.join().expect("client thread") {
            let items = serving
                .recommend(
                    Target::User { id: (id as usize * 7) % NUM_USERS },
                    5,
                    false,
                    groupsa_core::GroupMode::Voting,
                )
                .expect("direct scoring");
            assert_eq!(
                groupsa_json::to_string(&resp),
                groupsa_json::to_string(&Response::Recommend { id, items }),
                "id {id} must be answered identically across the swap"
            );
            answered += 1;
        }
    }
    assert_eq!(answered, 100);

    let stats = engine.shutdown();
    assert_eq!(stats.reloads, 1, "{stats:?}");
    assert_eq!(stats.completed, 100, "zero dropped requests across the swap: {stats:?}");
    assert_eq!(stats.submitted, stats.completed + stats.errors + stats.expired + stats.shed);
}

/// A snapshot from a different universe is refused and leaves the
/// serving model untouched — a bad reload must never take down or
/// degrade a live server.
#[test]
fn mismatched_snapshot_is_rejected_and_serving_continues() {
    let engine = Engine::start(frozen(72, 25), EngineConfig::default());
    let alien = frozen(73, 10); // different group universe
    let dir = fresh_dir("alien");
    alien.write_snapshot(&dir, 1, Quant::F32).expect("write alien snapshot");

    let err = engine.reload_from_snapshot(&dir).expect_err("universe mismatch must refuse");
    assert!(err.contains("does not match"), "{err}");

    let resp = engine.submit(user_request(5));
    assert!(matches!(resp, Response::Recommend { .. }), "{resp:?}");
    let stats = engine.shutdown();
    assert_eq!(stats.reloads, 0, "a refused reload is not a reload: {stats:?}");
}

/// The wire-level `Reload` protocol request: a pipelined TCP client
/// swaps the model between two recommendations and both answer
/// byte-identically; the `Reloaded` ack and a failed-reload error both
/// echo the request id.
#[test]
fn reload_protocol_request_swaps_live_over_tcp() {
    let serving = frozen(74, 25);
    let dir = fresh_dir("tcp");
    serving.write_snapshot(&dir, 1, Quant::F32).expect("write snapshot");

    let engine = Engine::start(Arc::clone(&serving), EngineConfig::default());
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    let server = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || server::run_with(listener, engine, ServerConfig::default()))
    };

    let stream = std::net::TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(std::time::Duration::from_secs(30))).expect("timeout");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut send = |req: &Request| {
        let mut text = groupsa_json::to_string(req);
        text.push('\n');
        writer.write_all(text.as_bytes()).expect("write");
    };
    let read = |reader: &mut BufReader<std::net::TcpStream>| {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).expect("read") > 0, "server hung up early");
        groupsa_json::from_str::<Response>(&line).expect("parse")
    };

    let before = user_request(1);
    send(&Request::Recommend {
        id: 1,
        target: before.target,
        k: before.k,
        exclude_seen: before.exclude_seen,
        mode: before.mode,
        deadline_ms: 0,
    });
    let first = read(&mut reader);

    send(&Request::Reload { id: 2, dir: dir.to_string_lossy().into_owned() });
    let ack = read(&mut reader);
    assert!(matches!(ack, Response::Reloaded { id: 2 }), "{ack:?}");

    send(&Request::Recommend {
        id: 3,
        target: before.target,
        k: before.k,
        exclude_seen: before.exclude_seen,
        mode: before.mode,
        deadline_ms: 0,
    });
    let second = read(&mut reader);
    let (Response::Recommend { items: a, .. }, Response::Recommend { items: b, .. }) =
        (&first, &second)
    else {
        panic!("expected recommendations, got {first:?} / {second:?}");
    };
    assert_eq!(
        groupsa_json::to_string(a),
        groupsa_json::to_string(b),
        "f32 snapshot swap must not change response bytes"
    );

    // A bogus reload answers a typed error echoing the id, and the
    // previously-published snapshot keeps serving.
    send(&Request::Reload { id: 4, dir: "/nonexistent/groupsa-snap".into() });
    let refusal = read(&mut reader);
    assert!(
        matches!(refusal, Response::Error { id: 4, ref error } if error.starts_with("reload failed")),
        "{refusal:?}"
    );
    send(&Request::Stats { id: 5 });
    let resp = read(&mut reader);
    let Response::Stats { stats, .. } = resp else { panic!("unexpected {resp:?}") };
    assert_eq!(stats.reloads, 1, "{stats:?}");

    send(&Request::Shutdown { id: 6 });
    assert!(matches!(read(&mut reader), Response::Bye { id: 6 }));
    server.join().expect("server thread").expect("server run");
}
