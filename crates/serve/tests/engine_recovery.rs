//! Worker-pool failure recovery: a poisoned admission queue (a worker
//! panicking while holding the lock) must never strand a submitter.
//!
//! Pre-fix, a worker observing queue-lock poison retired silently: any
//! job already queued was never popped, so its submitter blocked in
//! `rx.recv()` forever — and `shutdown` joined the dead pool without
//! draining, leaking the same stuck submitters. Post-fix, retirement
//! (and shutdown) drain the queue and answer every job `worker dropped
//! the request`, keeping the conservation law intact.

use groupsa_core::{DataContext, GroupSa, GroupSaConfig};
use groupsa_data::synthetic::{generate, SyntheticConfig};
use groupsa_serve::engine::{Engine, EngineConfig};
use groupsa_serve::protocol::{RecommendRequest, Response, ServeMode, Target};
use groupsa_serve::FrozenModel;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

const NUM_GROUPS: usize = 25;

/// A wide item universe so group-voting requests are slow enough to
/// keep the single worker busy while we poison the queue behind it.
fn frozen_world(seed: u64) -> Arc<FrozenModel> {
    let dataset = generate(&SyntheticConfig {
        name: format!("serve-recovery-{seed}"),
        seed,
        num_users: 60,
        num_items: 400,
        num_groups: NUM_GROUPS,
        num_topics: 4,
        latent_dim: 4,
        avg_items_per_user: 8.0,
        avg_friends_per_user: 5.0,
        avg_items_per_group: 1.5,
        mean_group_size: 3.5,
        zipf_exponent: 0.8,
        homophily: 0.8,
        social_influence: 0.3,
        expertise_sharpness: 2.0,
        taste_temperature: 0.3,
        consensus_blend: 0.5,
        connectedness_boost: 1.0,
    });
    let ctx = DataContext::from_train_view(&dataset, &GroupSaConfig::tiny());
    let model = GroupSa::new(GroupSaConfig::tiny(), dataset.num_users, dataset.num_items);
    Arc::new(FrozenModel::freeze(model, ctx))
}

fn heavy_request(id: u64) -> RecommendRequest {
    RecommendRequest {
        id,
        target: Target::Group { id: id as usize % NUM_GROUPS },
        k: 10,
        exclude_seen: false,
        mode: ServeMode::Voting,
        deadline_ms: 0,
    }
}

/// Every submitter racing a queue poisoning gets *an answer* — a
/// recommendation if its job ran before the pool died, a typed error
/// (`worker dropped the request` from the retirement drain, or
/// `queue lock poisoned` at admission) if not. Nobody hangs, and the
/// accounting still balances. Pre-fix this test deadlocks: queued
/// submitters wait on replies that never come.
#[test]
fn poisoned_queue_answers_every_submitter_instead_of_stranding_them() {
    let engine = Engine::start(
        frozen_world(31),
        EngineConfig {
            workers: 1,
            queue_capacity: 64,
            max_batch: 1,
            default_deadline_ms: 0,
            shed: false,
            telemetry: None,
        },
    );

    let (done_tx, done_rx) = mpsc::channel::<Response>();
    let mut submitted = 0u64;
    // First wave saturates the single worker and stacks the queue.
    for id in 0..6u64 {
        let engine = Arc::clone(&engine);
        let done = done_tx.clone();
        std::thread::spawn(move || {
            let _ = done.send(engine.submit(heavy_request(id)));
        });
        submitted += 1;
    }
    // Give the wave a moment to enqueue behind the busy worker, then
    // kill the pool out from under it.
    std::thread::sleep(Duration::from_millis(5));
    engine.poison_queue_for_test();

    // A submitter arriving *after* the poisoning is refused with a
    // typed error at admission, immediately.
    let late = engine.submit(heavy_request(99));
    match late {
        Response::Error { id, ref error } => {
            assert_eq!(id, 99);
            assert!(error.contains("queue lock poisoned"), "{error}");
        }
        other => panic!("expected a typed admission error, got {other:?}"),
    }

    // The liveness claim: every racing submitter is answered within a
    // bounded wait (pre-fix, the queued ones block forever).
    for _ in 0..submitted {
        let resp = done_rx
            .recv_timeout(Duration::from_secs(30))
            .expect("a submitter was stranded by the poisoned pool");
        match resp {
            Response::Recommend { .. } => {}
            Response::Error { ref error, .. } => {
                assert!(
                    error.contains("worker dropped") || error.contains("lock poisoned"),
                    "unexpected error kind: {error}"
                );
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    // Shutdown must also return (not hang on a dead pool), and the
    // books must balance: the late request was rejected (never
    // submitted), everything else landed in exactly one category.
    let stats = engine.shutdown();
    assert_eq!(stats.submitted, stats.completed + stats.errors + stats.expired + stats.shed);
    assert!(stats.rejected >= 1, "the post-poison submit was refused at admission");
}

/// `shutdown` on a healthy engine still drains cleanly — the recovery
/// paths must not change the ordinary lifecycle.
#[test]
fn shutdown_after_poison_free_run_is_clean() {
    let engine = Engine::start(frozen_world(32), EngineConfig::default());
    for id in 0..4 {
        let resp = engine.submit(heavy_request(id));
        assert!(matches!(resp, Response::Recommend { .. }), "{resp:?}");
    }
    let stats = engine.shutdown();
    assert_eq!(stats.completed, 4);
    assert_eq!(stats.submitted, stats.completed + stats.errors + stats.expired + stats.shed);
}
