//! Metrics accounting: every request admitted to the engine is counted
//! under **exactly one** of `completed` / `errors` / `expired`, and
//! rejected requests are never counted as submitted. Pre-fix, a
//! deadline-expired request was double-counted (`expired` *and*
//! `errors`), so the conservation law below failed whenever anything
//! expired.

use groupsa_core::{DataContext, GroupSa, GroupSaConfig};
use groupsa_data::synthetic::{generate, SyntheticConfig};
use groupsa_serve::engine::{Engine, EngineConfig};
use groupsa_serve::protocol::{RecommendRequest, Response, ServeMode, Target};
use groupsa_serve::FrozenModel;
use std::sync::Arc;

const NUM_GROUPS: usize = 25;

/// A synthetic world with a wide item universe, so group-voting
/// requests take long enough that queued 1 ms deadlines actually
/// expire behind them.
fn frozen_world(seed: u64) -> Arc<FrozenModel> {
    let dataset = generate(&SyntheticConfig {
        name: format!("serve-conserve-{seed}"),
        seed,
        num_users: 60,
        num_items: 400,
        num_groups: NUM_GROUPS,
        num_topics: 4,
        latent_dim: 4,
        avg_items_per_user: 8.0,
        avg_friends_per_user: 5.0,
        avg_items_per_group: 1.5,
        mean_group_size: 3.5,
        zipf_exponent: 0.8,
        homophily: 0.8,
        social_influence: 0.3,
        expertise_sharpness: 2.0,
        taste_temperature: 0.3,
        consensus_blend: 0.5,
        connectedness_boost: 1.0,
    });
    let ctx = DataContext::from_train_view(&dataset, &GroupSaConfig::tiny());
    let model = GroupSa::new(GroupSaConfig::tiny(), dataset.num_users, dataset.num_items);
    Arc::new(FrozenModel::freeze(model, ctx))
}

fn request(id: u64, group: usize, deadline_ms: u64) -> RecommendRequest {
    RecommendRequest {
        id,
        target: Target::Group { id: group },
        k: 10,
        exclude_seen: false,
        mode: ServeMode::Voting,
        deadline_ms,
    }
}

#[test]
fn drained_categories_are_disjoint_and_conserve_submissions() {
    let frozen = frozen_world(7);
    // One worker, so concurrent submitters pile up in the queue and
    // 1 ms deadlines expire while waiting behind heavier requests.
    let engine = Engine::start(
        Arc::clone(&frozen),
        // Shedding off: this test pins the *expiry* path, so deadlines
        // must be allowed to burn down in the queue rather than being
        // pre-empted by admission control.
        EngineConfig {
            workers: 1,
            queue_capacity: 256,
            max_batch: 4,
            default_deadline_ms: 0,
            shed: false,
            telemetry: None,
        },
    );

    let mut handles = Vec::new();
    // Heavy lane: 6 threads × 8 slow group-voting requests with no
    // deadline — these keep the single worker saturated.
    for t in 0..6u64 {
        let engine = Arc::clone(&engine);
        handles.push(std::thread::spawn(move || {
            let mut submitted = 0u64;
            for i in 0..8u64 {
                let id = 1_000 + t * 100 + i;
                engine.submit(request(id, (t as usize + i as usize) % NUM_GROUPS, 0));
                submitted += 1;
            }
            submitted
        }));
    }
    // Expiring lane: 4 threads × 12 requests with a 1 ms deadline;
    // queued behind the heavy lane, (many of) these expire.
    for t in 0..4u64 {
        let engine = Arc::clone(&engine);
        handles.push(std::thread::spawn(move || {
            let mut submitted = 0u64;
            for i in 0..12u64 {
                let id = 2_000 + t * 100 + i;
                engine.submit(request(id, (t as usize * 3 + i as usize) % NUM_GROUPS, 1));
                submitted += 1;
            }
            submitted
        }));
    }
    // Error lane: out-of-range group ids answered with an error (no
    // deadline, so never expired).
    for t in 0..2u64 {
        let engine = Arc::clone(&engine);
        handles.push(std::thread::spawn(move || {
            let mut submitted = 0u64;
            for i in 0..5u64 {
                let resp = engine.submit(request(3_000 + t * 100 + i, NUM_GROUPS + 1, 0));
                assert!(matches!(resp, Response::Error { .. }));
                submitted += 1;
            }
            submitted
        }));
    }
    let accepted_calls: u64 = handles.into_iter().map(|h| h.join().expect("submitter panicked")).sum();

    // Shutdown drains the queue; afterwards submissions are rejected
    // and must NOT appear in `submitted`.
    let drained = engine.shutdown();
    assert_eq!(
        drained.submitted,
        drained.completed + drained.errors + drained.expired,
        "drained categories must partition submissions: {drained:?}"
    );
    assert_eq!(drained.submitted, accepted_calls);
    assert!(drained.completed > 0, "heavy lane must complete: {drained:?}");
    assert!(drained.errors >= 10, "all error-lane requests must count once: {drained:?}");
    assert!(drained.expired > 0, "1 ms deadlines behind a saturated worker must expire: {drained:?}");

    let rejected_probes = 3u64;
    for i in 0..rejected_probes {
        let resp = engine.submit(request(4_000 + i, 0, 0));
        assert!(matches!(resp, Response::Error { .. }), "post-shutdown submits are refused");
    }
    let after = engine.stats();
    assert_eq!(after.rejected, drained.rejected + rejected_probes);
    assert_eq!(after.submitted, drained.submitted, "rejected requests are never submitted");
    assert_eq!(after.submitted, after.completed + after.errors + after.expired);
}

/// Past saturation with shedding on, the four-way conservation law
/// holds — `submitted == completed + errors + expired + shed` — and
/// the shed path actually fires.
///
/// Built deterministically: one completed request warms the engine's
/// service-time EWMA, a pile of streamed no-deadline requests stacks
/// the queue behind the single busy worker, and then a tight-deadline
/// request arrives whose predicted wait (queue depth × observed
/// service time) is far past its 1 ms budget — so admission control
/// must answer it `shed` instead of letting it expire in the queue.
#[test]
fn overload_sheds_at_admission_and_conserves_submissions() {
    let frozen = frozen_world(9);
    let engine = Engine::start(
        Arc::clone(&frozen),
        EngineConfig {
            workers: 1,
            queue_capacity: 256,
            max_batch: 1,
            default_deadline_ms: 0,
            shed: true,
            telemetry: None,
        },
    );

    // Warm the service-time estimate: a heavy group-voting request on
    // this 400-item world takes well over a microsecond, so after one
    // completion the EWMA is non-zero.
    assert!(matches!(engine.submit(request(1, 0, 0)), Response::Recommend { .. }));

    // Stack the queue without blocking: streamed submissions return
    // immediately, so the queue depth really grows while the single
    // worker grinds through them one at a time.
    let (tx, rx) = std::sync::mpsc::channel();
    let backlog = 32u64;
    for i in 0..backlog {
        engine.submit_streamed(request(100 + i, (i as usize) % NUM_GROUPS, 0), tx.clone());
    }

    // With ~32 queued and a warmed per-request estimate, the predicted
    // wait dwarfs a 1 ms deadline: this must be shed at admission.
    let shed_resp = engine.submit(request(999, 0, 1));
    match shed_resp {
        Response::Error { id, ref error } => {
            assert_eq!(id, 999);
            assert!(error.starts_with("shed: "), "expected a shed answer, got: {error}");
        }
        other => panic!("expected shed, got {other:?}"),
    }

    // Every streamed response still arrives (shedding never drops
    // admitted work), then the books balance with shed counted.
    drop(tx);
    let mut streamed = 0u64;
    while let Ok(resp) = rx.recv_timeout(std::time::Duration::from_secs(60)) {
        assert!(matches!(resp.response, Response::Recommend { .. }), "{:?}", resp.response);
        streamed += 1;
    }
    assert_eq!(streamed, backlog);

    let stats = engine.shutdown();
    assert!(stats.shed >= 1, "{stats:?}");
    assert_eq!(stats.submitted, stats.completed + stats.errors + stats.expired + stats.shed);
    assert_eq!(stats.submitted, 1 + backlog + stats.shed);
}

/// With `1/1` sampling, every request — completed, errored, shed at
/// admission, or rejected outright — files exactly one lifecycle
/// record, and the ring's per-outcome tallies reconcile with the
/// conservation counters. This pins the record plumbing to the same
/// law the counters obey: an outcome that double-filed or dropped a
/// record would break one of the equalities below.
#[test]
fn sampled_records_reconcile_with_conservation_counters() {
    use groupsa_obs::{RecordOutcome, TelemetryConfig};
    let frozen = frozen_world(11);
    let engine = Engine::start(
        Arc::clone(&frozen),
        EngineConfig {
            workers: 1,
            queue_capacity: 64,
            max_batch: 2,
            default_deadline_ms: 0,
            shed: true,
            // Sample everything, capture nothing as "slow" (so the
            // slow path can't double-count), ring big enough that no
            // record is overwritten.
            telemetry: Some(TelemetryConfig {
                sample_every: 1,
                slow_us: u64::MAX,
                ring_capacity: 4096,
            }),
        },
    );

    // Completed lane (also warms the shedding EWMA).
    assert!(matches!(engine.submit(request(1, 0, 0)), Response::Recommend { .. }));
    // Error lane: out-of-range group ids.
    for i in 0..5u64 {
        assert!(matches!(engine.submit(request(10 + i, NUM_GROUPS + 1, 0)), Response::Error { .. }));
    }
    // Streamed backlog, still under the hard queue bound: stacks the
    // queue so the shed probe below sees a deep queue (a full one
    // would answer `QueueFull` before the shed check runs). On this
    // in-process path the test thread plays the connection writer's
    // role and files each pending record itself.
    let (tx, rx) = std::sync::mpsc::channel();
    for i in 0..32u64 {
        engine.submit_streamed(request(100 + i, (i as usize) % NUM_GROUPS, 0), tx.clone());
    }
    // Shed lane: with the queue stacked and the EWMA warm, a 1 ms
    // deadline is predicted unmeetable.
    assert!(matches!(engine.submit(request(999, 0, 1)), Response::Error { .. }));
    // Rejection lane: a second burst past the remaining queue space
    // must overflow the 64-slot bound while the single worker grinds
    // through the first one.
    for i in 0..64u64 {
        engine.submit_streamed(request(200 + i, (i as usize) % NUM_GROUPS, 0), tx.clone());
    }
    drop(tx);
    while let Ok(out) = rx.recv_timeout(std::time::Duration::from_secs(60)) {
        if let Some(pending) = out.record {
            let (record, sampled) = pending.finish(std::time::Duration::ZERO);
            engine.telemetry().observe(record, sampled);
        }
    }

    let stats = engine.shutdown();
    let records = engine.telemetry().records();
    let tally = |outcome: RecordOutcome| -> u64 {
        records.iter().filter(|r| r.outcome == outcome).count() as u64
    };
    assert_eq!(tally(RecordOutcome::Completed), stats.completed, "{stats:?}");
    assert_eq!(tally(RecordOutcome::Error), stats.errors, "{stats:?}");
    assert_eq!(tally(RecordOutcome::Expired), stats.expired, "{stats:?}");
    assert_eq!(tally(RecordOutcome::Shed), stats.shed, "{stats:?}");
    assert_eq!(tally(RecordOutcome::Rejected), stats.rejected, "{stats:?}");
    assert!(stats.rejected > 0, "the second burst must overflow the 64-slot queue: {stats:?}");
    assert!(stats.shed > 0, "{stats:?}");
    // The records obey the same conservation law as the counters:
    // submitted = ok + error + expired + shed (rejected rides apart).
    assert_eq!(
        stats.submitted,
        tally(RecordOutcome::Completed)
            + tally(RecordOutcome::Error)
            + tally(RecordOutcome::Expired)
            + tally(RecordOutcome::Shed),
    );
}
