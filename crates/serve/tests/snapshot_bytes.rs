//! Metrics snapshots must serialise deterministically.
//!
//! The metrics audit (ISSUE 5, satellite b) verified that
//! `StatsSnapshot` holds no hash containers — every field is a scalar
//! or a `Vec` — and `groupsa-json` emits object keys in declaration
//! order. These tests pin both properties: identically-driven
//! `Metrics` instances must serialise to identical bytes, and the key
//! order in those bytes must be the declared one (so bench artifacts
//! and `stats` replies diff cleanly between runs).

use groupsa_serve::metrics::{CacheStats, Metrics, StatsSnapshot};
use std::time::Duration;

fn drive(m: &Metrics) {
    for i in 0..50u64 {
        m.note_submitted();
        m.note_queue_depth((i % 7) as usize);
        m.note_queue_wait(Duration::from_micros(10 + i));
        m.note_score(Duration::from_micros(100 + 3 * i));
        m.note_completed(Duration::from_micros(120 + 3 * i));
    }
    m.note_batch(8);
    m.note_batch(3);
    m.note_rejected();
    m.note_error();
    m.note_expired();
}

fn cache() -> CacheStats {
    CacheStats {
        latent_hits: 40,
        group_rep_hits: 9,
        rebuilds: 1,
        num_users: 60,
        num_items: 40,
        num_groups: 25,
    }
}

#[test]
fn identically_driven_metrics_serialize_to_identical_bytes() {
    let (a, b) = (Metrics::new(), Metrics::new());
    drive(&a);
    drive(&b);
    let ja = groupsa_json::to_string(&a.snapshot(cache()));
    let jb = groupsa_json::to_string(&b.snapshot(cache()));
    assert_eq!(ja, jb, "same history, different bytes");
    // And serialising the same snapshot twice is byte-stable too.
    let snap = a.snapshot(cache());
    assert_eq!(groupsa_json::to_string(&snap), groupsa_json::to_string(&snap));
}

#[test]
fn snapshot_keys_appear_in_declaration_order() {
    let m = Metrics::new();
    drive(&m);
    let json = groupsa_json::to_string(&m.snapshot(cache()));
    let keys = [
        "\"submitted\"",
        "\"completed\"",
        "\"errors\"",
        "\"rejected\"",
        "\"expired\"",
        "\"batches\"",
        "\"mean_batch\"",
        "\"latency_buckets\"",
        "\"num_groups\"",
    ];
    let mut last = 0;
    for key in keys {
        let pos = json.find(key).unwrap_or_else(|| panic!("{key} missing from {json}"));
        assert!(pos > last || last == 0, "{key} out of declared order");
        last = pos;
    }
}

#[test]
fn snapshot_roundtrips_through_its_own_bytes() {
    let m = Metrics::new();
    drive(&m);
    let snap = m.snapshot(cache());
    let text = groupsa_json::to_string(&snap);
    let back: StatsSnapshot = groupsa_json::from_str(&text).expect("parse back");
    assert_eq!(back, snap);
}
