//! TCP server lifecycle: per-connection pipelining, connection-thread
//! reaping, rate limiting, and the shutdown race.
//!
//! Three regressions pinned here:
//!
//! * the accept loop used to push one `JoinHandle` per connection into
//!   a vec it never drained — connection churn grew server memory
//!   forever (now reaped each poll tick, visible as the
//!   `open_connections` gauge);
//! * shutdown used to wake its own blocking `accept` with a
//!   self-connect, silently *discarding* a legitimate client that won
//!   the accept race (and hanging forever if the self-connect failed)
//!   — now a non-blocking accept loop refuses late connections with an
//!   explicit `engine is shutting down` line;
//! * responses used to be written inline by the reader thread, one
//!   round-trip at a time — now a client may pipeline many requests
//!   and match replies by id.

use groupsa_core::{DataContext, GroupSa, GroupSaConfig};
use groupsa_data::synthetic::{generate, SyntheticConfig};
use groupsa_serve::engine::{Engine, EngineConfig};
use groupsa_serve::protocol::{Request, Response, ServeMode, Target};
use groupsa_serve::server::{self, ServerConfig};
use groupsa_serve::FrozenModel;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn frozen_world(seed: u64) -> Arc<FrozenModel> {
    let dataset = generate(&SyntheticConfig {
        name: format!("serve-lifecycle-{seed}"),
        seed,
        num_users: 60,
        num_items: 40,
        num_groups: 25,
        num_topics: 4,
        latent_dim: 4,
        avg_items_per_user: 8.0,
        avg_friends_per_user: 5.0,
        avg_items_per_group: 1.5,
        mean_group_size: 3.5,
        zipf_exponent: 0.8,
        homophily: 0.8,
        social_influence: 0.3,
        expertise_sharpness: 2.0,
        taste_temperature: 0.3,
        consensus_blend: 0.5,
        connectedness_boost: 1.0,
    });
    let ctx = DataContext::from_train_view(&dataset, &GroupSaConfig::tiny());
    let model = GroupSa::new(GroupSaConfig::tiny(), dataset.num_users, dataset.num_items);
    Arc::new(FrozenModel::freeze(model, ctx))
}

/// Boots a server thread; returns its address, the engine, and the
/// join handle (joining it proves `run` returned).
fn boot(
    frozen: Arc<FrozenModel>,
    cfg: ServerConfig,
) -> (SocketAddr, Arc<Engine>, std::thread::JoinHandle<std::io::Result<()>>) {
    let engine = Engine::start(frozen, EngineConfig::default());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    let handle = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || server::run_with(listener, engine, cfg))
    };
    (addr, engine, handle)
}

fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("read timeout");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

fn send_line(stream: &mut TcpStream, request: &Request) {
    let mut text = groupsa_json::to_string(request);
    text.push('\n');
    stream.write_all(text.as_bytes()).expect("write request");
}

fn read_response(reader: &mut BufReader<TcpStream>) -> Response {
    let mut line = String::new();
    let n = reader.read_line(&mut line).expect("read response line");
    assert!(n > 0, "connection closed before a response arrived");
    groupsa_json::from_str::<Response>(&line).expect("parse response")
}

fn recommend(id: u64, user: usize) -> Request {
    Request::Recommend {
        id,
        target: Target::User { id: user },
        k: 5,
        exclude_seen: false,
        mode: ServeMode::Voting,
        deadline_ms: 0,
    }
}

fn shutdown_server(addr: SocketAddr) {
    let (mut stream, mut reader) = connect(addr);
    send_line(&mut stream, &Request::Shutdown { id: 0 });
    assert!(matches!(read_response(&mut reader), Response::Bye { id: 0 }));
}

/// One connection, many requests in flight: write every request line
/// before reading anything, then match responses to requests by id.
/// Responses arrive in completion order (not necessarily submission
/// order) and each is byte-identical to direct frozen-model scoring.
#[test]
fn pipelined_requests_are_all_answered_and_matched_by_id() {
    let frozen = frozen_world(51);
    let (addr, _engine, server) = boot(Arc::clone(&frozen), ServerConfig::default());
    let (mut stream, mut reader) = connect(addr);

    let n = 24u64;
    for id in 0..n {
        send_line(&mut stream, &recommend(id, (id as usize * 7) % 60));
    }
    let mut answered: HashMap<u64, Response> = HashMap::new();
    for _ in 0..n {
        let resp = read_response(&mut reader);
        let Response::Recommend { id, .. } = resp else { panic!("unexpected {resp:?}") };
        assert!(answered.insert(id, resp).is_none(), "duplicate response for id {id}");
    }
    for id in 0..n {
        let resp = answered.get(&id).expect("every id answered exactly once");
        let items = frozen
            .recommend(
                Target::User { id: (id as usize * 7) % 60 },
                5,
                false,
                groupsa_core::GroupMode::Voting,
            )
            .expect("direct scoring");
        assert_eq!(
            groupsa_json::to_string(resp),
            groupsa_json::to_string(&Response::Recommend { id, items }),
            "response bytes must match direct scoring for id {id}"
        );
    }

    // Control traffic rides the same pipe: a Stats query on the same
    // connection still gets answered.
    send_line(&mut stream, &Request::Stats { id: 9_999 });
    assert!(matches!(read_response(&mut reader), Response::Stats { id: 9_999, .. }));

    shutdown_server(addr);
    server.join().expect("server thread").expect("server run");
}

/// Connection churn must not grow the server: after many short-lived
/// connections have closed, the reaped `open_connections` gauge drops
/// back to (at most) the one live stats connection, while the
/// historical max proves the gauge was actually tracking them.
#[test]
fn connection_churn_is_reaped_not_accumulated() {
    let (addr, _engine, server) = boot(frozen_world(52), ServerConfig::default());

    let churn = 20u64;
    for id in 0..churn {
        let (mut stream, mut reader) = connect(addr);
        send_line(&mut stream, &recommend(id, (id as usize) % 60));
        assert!(matches!(read_response(&mut reader), Response::Recommend { .. }));
    }

    // Give the accept loop a few poll ticks to reap the closed
    // connections, then observe the gauge over a fresh connection.
    std::thread::sleep(Duration::from_millis(100));
    let (mut stream, mut reader) = connect(addr);
    std::thread::sleep(Duration::from_millis(50));
    send_line(&mut stream, &Request::Stats { id: 1 });
    let resp = read_response(&mut reader);
    let Response::Stats { stats, .. } = resp else { panic!("unexpected {resp:?}") };
    assert!(
        stats.open_connections <= 2,
        "closed connections must be reaped, gauge says {} open",
        stats.open_connections
    );
    assert!(stats.max_open_connections >= 1, "{stats:?}");

    shutdown_server(addr);
    server.join().expect("server thread").expect("server run");
}

/// The shutdown race: a client that connects around the moment another
/// client requests shutdown must be *answered* — with real responses
/// or an explicit `engine is shutting down` line — never silently
/// dropped, and `run` must return promptly regardless.
#[test]
fn clients_racing_shutdown_are_answered_not_discarded() {
    let (addr, _engine, server) = boot(frozen_world(53), ServerConfig::default());

    // A connected-but-idle client: shutdown must not wait forever for
    // it to hang up (the grace period severs it).
    let (idle_stream, mut idle_reader) = connect(addr);

    shutdown_server(addr);

    // Post-shutdown connection attempts: either refused outright (the
    // listener is gone) or answered with the typed refusal line.
    match TcpStream::connect(addr) {
        Err(_) => {} // server already exited; acceptable
        Ok(stream) => {
            stream.set_read_timeout(Some(Duration::from_secs(30))).expect("read timeout");
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            match reader.read_line(&mut line) {
                Ok(0) => {} // severed without a line: connection was never accepted
                Ok(_) => {
                    let resp = groupsa_json::from_str::<Response>(&line).expect("parse refusal");
                    assert!(
                        matches!(resp, Response::Error { ref error, .. } if error.contains("shutting down")),
                        "late client must get the typed refusal, got {resp:?}"
                    );
                }
                Err(_) => {} // reset mid-handshake: also a refusal, not a hang
            }
        }
    }

    // The idle client is severed by the grace period rather than
    // keeping the server alive: its next read sees EOF or an error
    // within the read timeout, not a hang.
    drop(idle_stream);
    let mut line = String::new();
    let _ = idle_reader.read_line(&mut line);

    // The regression's real victim: `run` used to block forever when
    // the self-connect wake-up failed. Joining proves it returned.
    server.join().expect("server thread").expect("server run");
}

/// Per-connection token-bucket rate limiting: a client bursting past
/// its budget gets `rate limited` answers (echoing the request id)
/// while admitted requests still complete; limited requests are
/// counted on their own gauge and never as submitted work.
#[test]
fn rate_limited_requests_get_typed_refusals() {
    let (addr, engine, server) =
        boot(frozen_world(54), ServerConfig { rate_limit: 1, rate_burst: 3 });
    let (mut stream, mut reader) = connect(addr);

    let n = 10u64;
    for id in 0..n {
        send_line(&mut stream, &recommend(id, (id as usize) % 60));
    }
    let mut ok = 0u64;
    let mut limited = 0u64;
    for _ in 0..n {
        match read_response(&mut reader) {
            Response::Recommend { .. } => ok += 1,
            Response::Error { id, ref error } if error == "rate limited" => {
                assert!(id < n, "limited reply echoes the request id");
                limited += 1;
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    assert!(ok >= 1, "burst capacity admits something");
    assert!(limited >= 1, "a 10-request burst at burst=3 must trip the limiter");

    let stats = engine.stats();
    assert_eq!(stats.limited, limited);
    assert_eq!(stats.submitted, ok, "limited requests are never submitted to the engine");

    shutdown_server(addr);
    server.join().expect("server thread").expect("server run");
}
