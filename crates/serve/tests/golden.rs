//! Golden equivalence: `FrozenModel` must reproduce the graph eval
//! path **bit-for-bit** — same items, same score bits — for every
//! serving mode. A frozen snapshot is a speedup, never an
//! approximation.

use groupsa_core::{DataContext, GroupMode, GroupSa, GroupSaConfig, Recommendation, ScoreAggregation};
use groupsa_data::synthetic::{generate, SyntheticConfig};
use groupsa_data::Dataset;
use groupsa_serve::protocol::Target;
use groupsa_serve::FrozenModel;

fn tiny_world(seed: u64) -> (Dataset, DataContext) {
    let dataset = generate(&SyntheticConfig {
        name: format!("serve-golden-{seed}"),
        seed,
        num_users: 60,
        num_items: 40,
        num_groups: 25,
        num_topics: 4,
        latent_dim: 4,
        avg_items_per_user: 8.0,
        avg_friends_per_user: 5.0,
        avg_items_per_group: 1.5,
        mean_group_size: 3.5,
        zipf_exponent: 0.8,
        homophily: 0.8,
        social_influence: 0.3,
        expertise_sharpness: 2.0,
        taste_temperature: 0.3,
        consensus_blend: 0.5,
        connectedness_boost: 1.0,
    });
    let ctx = DataContext::from_train_view(&dataset, &GroupSaConfig::tiny());
    (dataset, ctx)
}

fn assert_identical(frozen: &[Recommendation], graph: &[Recommendation], what: &str) {
    assert_eq!(frozen.len(), graph.len(), "{what}: length");
    for (f, g) in frozen.iter().zip(graph) {
        assert_eq!(f.item, g.item, "{what}: item order");
        assert_eq!(f.score.to_bits(), g.score.to_bits(), "{what}: score bits for item {}", f.item);
    }
}

#[test]
fn frozen_user_recommendations_match_graph_path_bit_for_bit() {
    let (d, ctx) = tiny_world(71);
    let model = GroupSa::new(GroupSaConfig::tiny(), d.num_users, d.num_items);
    let frozen = FrozenModel::freeze(model, ctx);
    for user in 0..d.num_users {
        let got = frozen.recommend(Target::User { id: user }, 10, true, GroupMode::Voting).unwrap();
        let want = frozen.model().recommend_for_user(frozen.context(), user, 10);
        assert_identical(&got, &want, &format!("user {user}"));
    }
}

#[test]
fn frozen_group_recommendations_match_graph_path_in_every_mode() {
    let (d, ctx) = tiny_world(72);
    let model = GroupSa::new(GroupSaConfig::tiny(), d.num_users, d.num_items);
    let num_groups = ctx.num_groups();
    let frozen = FrozenModel::freeze(model, ctx);
    let modes = [
        GroupMode::Voting,
        GroupMode::Fast(ScoreAggregation::Average),
        GroupMode::Fast(ScoreAggregation::LeastMisery),
        GroupMode::Fast(ScoreAggregation::MaxSatisfaction),
    ];
    for group in 0..num_groups {
        for mode in modes {
            let got = frozen.recommend(Target::Group { id: group }, 5, true, mode).unwrap();
            let want = frozen.model().recommend_for_group(frozen.context(), group, 5, mode);
            assert_identical(&got, &want, &format!("group {group} mode {mode:?}"));
        }
    }
}

#[test]
fn include_seen_scores_every_item() {
    let (d, ctx) = tiny_world(73);
    let model = GroupSa::new(GroupSaConfig::tiny(), d.num_users, d.num_items);
    let frozen = FrozenModel::freeze(model, ctx);
    let got = frozen.recommend(Target::User { id: 0 }, d.num_items + 5, false, GroupMode::Voting).unwrap();
    assert_eq!(got.len(), d.num_items, "exclude_seen=false ranks the full catalogue");
}

#[test]
fn batched_shared_catalog_path_matches_per_request_recommendations() {
    let (d, ctx) = tiny_world(77);
    let model = GroupSa::new(GroupSaConfig::tiny(), d.num_users, d.num_items);
    let frozen = FrozenModel::freeze(model, ctx);
    // Mixed ks, duplicate users, and one out-of-range id: the batch
    // must reproduce each per-request result (and error) individually.
    let requests: Vec<(usize, usize)> =
        vec![(0, 5), (1, 10), (2, 3), (0, 7), (d.num_users, 5), (d.num_users - 1, 4)];
    let batched = frozen.recommend_users_shared(&requests);
    assert_eq!(batched.len(), requests.len());
    for (j, &(user, k)) in requests.iter().enumerate() {
        let solo = frozen.recommend(Target::User { id: user }, k, false, GroupMode::Voting);
        match (&batched[j], &solo) {
            (Ok(got), Ok(want)) => assert_identical(got, want, &format!("batch slot {j} (user {user})")),
            (Err(got), Err(want)) => assert_eq!(got, want, "batch slot {j}"),
            (got, want) => panic!("batch slot {j}: {got:?} vs {want:?}"),
        }
    }
}

#[test]
fn batched_shared_catalog_cache_accounting_matches_per_request_path() {
    let (d, ctx) = tiny_world(78);
    let model = GroupSa::new(GroupSaConfig::tiny(), d.num_users, d.num_items);
    let frozen = FrozenModel::freeze(model, ctx);
    let requests: Vec<(usize, usize)> = vec![(0, 5), (1, 5), (2, 5)];
    let base = frozen.cache_stats().latent_hits;
    let _ = frozen.recommend_users_shared(&requests);
    let after_batch = frozen.cache_stats().latent_hits;
    for &(user, k) in &requests {
        frozen.recommend(Target::User { id: user }, k, false, GroupMode::Voting).unwrap();
    }
    let after_solo = frozen.cache_stats().latent_hits;
    assert_eq!(
        after_batch - base,
        after_solo - after_batch,
        "one latent hit per latent-bearing request, batched or not"
    );
}

#[test]
fn out_of_range_targets_error_instead_of_panicking() {
    let (d, ctx) = tiny_world(74);
    let num_groups = ctx.num_groups();
    let model = GroupSa::new(GroupSaConfig::tiny(), d.num_users, d.num_items);
    let frozen = FrozenModel::freeze(model, ctx);
    assert!(frozen.recommend(Target::User { id: d.num_users }, 5, true, GroupMode::Voting).is_err());
    assert!(frozen.recommend(Target::Group { id: num_groups }, 5, true, GroupMode::Voting).is_err());
}

#[test]
fn rebuild_swaps_models_and_validates_the_universe() {
    let (d, ctx) = tiny_world(75);
    let model = GroupSa::new(GroupSaConfig::tiny(), d.num_users, d.num_items);
    let mut frozen = FrozenModel::freeze(model, ctx);
    let before = frozen.recommend(Target::Group { id: 0 }, 5, true, GroupMode::Voting).unwrap();

    // A model with a different seed produces different parameters, so
    // the rebuilt snapshot must produce different recommendations —
    // proving the caches were actually recomputed.
    let mut other_cfg = GroupSaConfig::tiny();
    other_cfg.seed = 999;
    let other = GroupSa::new(other_cfg, d.num_users, d.num_items);
    frozen.rebuild(other).unwrap();
    assert_eq!(frozen.cache_stats().rebuilds, 1);
    let after = frozen.recommend(Target::Group { id: 0 }, 5, true, GroupMode::Voting).unwrap();
    let same = before.len() == after.len()
        && before.iter().zip(&after).all(|(a, b)| a.item == b.item && a.score.to_bits() == b.score.to_bits());
    assert!(!same, "rebuild must refresh the precomputed caches");

    // Wrong universe → rejected, snapshot untouched.
    let wrong = GroupSa::new(GroupSaConfig::tiny(), d.num_users + 1, d.num_items);
    assert!(frozen.rebuild(wrong).is_err());
    assert_eq!(frozen.cache_stats().rebuilds, 1);
}

#[test]
fn cache_hit_counters_advance() {
    let (d, ctx) = tiny_world(76);
    let model = GroupSa::new(GroupSaConfig::tiny(), d.num_users, d.num_items);
    let frozen = FrozenModel::freeze(model, ctx);
    frozen.recommend(Target::User { id: 0 }, 5, true, GroupMode::Voting).unwrap();
    frozen.recommend(Target::Group { id: 0 }, 5, true, GroupMode::Voting).unwrap();
    let stats = frozen.cache_stats();
    assert!(stats.latent_hits >= 1, "user scoring should consume the latent cache");
    assert_eq!(stats.group_rep_hits, 1);
    assert_eq!(stats.num_users, d.num_users);
    assert_eq!(stats.num_items, d.num_items);
}
