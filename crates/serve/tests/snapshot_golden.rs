//! Snapshot-backed serving golden tests: an f32 binary snapshot must
//! reproduce the in-memory `FrozenModel` **bit-for-bit** — same items,
//! same score bits — through every request mode, with a fraction of
//! the resident memory. Quantized snapshots must be deterministic.

use groupsa_core::{DataContext, GroupMode, GroupSa, GroupSaConfig, Recommendation, ScoreAggregation};
use groupsa_data::synthetic::{generate, SyntheticConfig};
use groupsa_data::Dataset;
use groupsa_serve::protocol::Target;
use groupsa_serve::FrozenModel;
use groupsa_snapshot::Quant;
use std::path::PathBuf;

fn tiny_world(seed: u64) -> (Dataset, DataContext) {
    let dataset = generate(&SyntheticConfig {
        name: format!("serve-snapshot-{seed}"),
        seed,
        num_users: 60,
        num_items: 40,
        num_groups: 25,
        num_topics: 4,
        latent_dim: 4,
        avg_items_per_user: 8.0,
        avg_friends_per_user: 5.0,
        avg_items_per_group: 1.5,
        mean_group_size: 3.5,
        zipf_exponent: 0.8,
        homophily: 0.8,
        social_influence: 0.3,
        expertise_sharpness: 2.0,
        taste_temperature: 0.3,
        consensus_blend: 0.5,
        connectedness_boost: 1.0,
    });
    let ctx = DataContext::from_train_view(&dataset, &GroupSaConfig::tiny());
    (dataset, ctx)
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("groupsa-serve-snap-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Two independent builds of the same seeded world: one frozen in
/// memory, one round-tripped through an f32 snapshot.
fn memory_and_snapshot(seed: u64, tag: &str, quant: Quant) -> (FrozenModel, FrozenModel) {
    let (d, ctx) = tiny_world(seed);
    let memory = FrozenModel::freeze(GroupSa::new(GroupSaConfig::tiny(), d.num_users, d.num_items), ctx);
    let dir = fresh_dir(tag);
    memory.write_snapshot(&dir, 3, quant).expect("write snapshot");
    let (d2, ctx2) = tiny_world(seed);
    let lazy = FrozenModel::from_snapshot(
        GroupSa::new(GroupSaConfig::tiny(), d2.num_users, d2.num_items),
        ctx2,
        &dir,
    )
    .expect("open snapshot");
    (memory, lazy)
}

fn assert_identical(a: &[Recommendation], b: &[Recommendation], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.item, y.item, "{what}: item order");
        assert_eq!(x.score.to_bits(), y.score.to_bits(), "{what}: score bits for item {}", x.item);
    }
}

#[test]
fn f32_snapshot_responses_are_bit_identical_to_memory() {
    let (memory, lazy) = memory_and_snapshot(81, "golden-f32", Quant::F32);
    assert_eq!(memory.table_backing(), "memory");
    assert_eq!(lazy.table_backing(), "snapshot");
    let num_users = memory.context().num_users;
    let num_groups = memory.context().num_groups();
    for user in 0..num_users {
        for exclude in [true, false] {
            let want = memory.recommend(Target::User { id: user }, 10, exclude, GroupMode::Voting).unwrap();
            let got = lazy.recommend(Target::User { id: user }, 10, exclude, GroupMode::Voting).unwrap();
            assert_identical(&got, &want, &format!("user {user} exclude={exclude}"));
        }
    }
    let modes = [
        GroupMode::Voting,
        GroupMode::Fast(ScoreAggregation::Average),
        GroupMode::Fast(ScoreAggregation::LeastMisery),
        GroupMode::Fast(ScoreAggregation::MaxSatisfaction),
    ];
    for group in 0..num_groups {
        for mode in modes {
            let want = memory.recommend(Target::Group { id: group }, 5, true, mode).unwrap();
            let got = lazy.recommend(Target::Group { id: group }, 5, true, mode).unwrap();
            assert_identical(&got, &want, &format!("group {group} mode {mode:?}"));
        }
    }
}

#[test]
fn batched_shared_path_matches_through_a_snapshot() {
    let (memory, lazy) = memory_and_snapshot(82, "golden-batch", Quant::F32);
    let n = memory.context().num_users;
    let requests: Vec<(usize, usize)> = vec![(0, 5), (1, 10), (2, 3), (0, 7), (n, 5), (n - 1, 4)];
    let want = memory.recommend_users_shared(&requests);
    let got = lazy.recommend_users_shared(&requests);
    assert_eq!(want.len(), got.len());
    for (j, (w, g)) in want.iter().zip(&got).enumerate() {
        match (w, g) {
            (Ok(w), Ok(g)) => assert_identical(g, w, &format!("batch slot {j}")),
            (Err(w), Err(g)) => assert_eq!(w, g, "batch slot {j}"),
            other => panic!("batch slot {j}: {other:?}"),
        }
    }
}

#[test]
fn serving_stub_context_serves_the_full_catalog_identically() {
    let (d, ctx) = tiny_world(83);
    let memory = FrozenModel::freeze(GroupSa::new(GroupSaConfig::tiny(), d.num_users, d.num_items), ctx);
    let dir = fresh_dir("golden-stub");
    memory.write_snapshot(&dir, 2, Quant::F32).expect("write snapshot");

    // A serving stub drops the interaction graphs and Top-H lists —
    // exactly what a million-scale process would load. With
    // exclude_seen = false the graphs are never consulted, so
    // responses must still match bit-for-bit.
    let stub = DataContext::serving_stub(d.num_users, d.num_items, memory.context().members.clone());
    let lazy = FrozenModel::from_snapshot(GroupSa::new(GroupSaConfig::tiny(), d.num_users, d.num_items), stub, &dir)
        .expect("open with stub context");
    for user in (0..d.num_users).step_by(7) {
        let want = memory.recommend(Target::User { id: user }, 10, false, GroupMode::Voting).unwrap();
        let got = lazy.recommend(Target::User { id: user }, 10, false, GroupMode::Voting).unwrap();
        assert_identical(&got, &want, &format!("stub user {user}"));
    }
    for group in (0..memory.context().num_groups()).step_by(5) {
        let want = memory.recommend(Target::Group { id: group }, 5, false, GroupMode::Voting).unwrap();
        let got = lazy.recommend(Target::Group { id: group }, 5, false, GroupMode::Voting).unwrap();
        assert_identical(&got, &want, &format!("stub group {group}"));
    }
}

#[test]
fn snapshot_backed_models_refuse_to_rebuild() {
    let (_, mut lazy) = memory_and_snapshot(84, "golden-rebuild", Quant::F32);
    let n_users = lazy.context().num_users;
    let n_items = lazy.context().num_items;
    let replacement = GroupSa::new(GroupSaConfig::tiny(), n_users, n_items);
    let err = lazy.rebuild(replacement).expect_err("stub context cannot recompute caches");
    assert!(err.contains("snapshot-backed"), "unexpected error: {err}");
    assert_eq!(lazy.cache_stats().rebuilds, 0);
}

#[test]
fn quantized_snapshots_serve_deterministically() {
    for quant in [Quant::F16, Quant::I8] {
        let (_, lazy) = memory_and_snapshot(85, &format!("golden-{}", quant.name()), quant);
        let a = lazy.recommend(Target::User { id: 3 }, 10, true, GroupMode::Voting).unwrap();
        let b = lazy.recommend(Target::User { id: 3 }, 10, true, GroupMode::Voting).unwrap();
        assert_identical(&a, &b, &format!("{} repeat read", quant.name()));
        let g1 = lazy.recommend(Target::Group { id: 1 }, 5, true, GroupMode::Voting).unwrap();
        let g2 = lazy.recommend(Target::Group { id: 1 }, 5, true, GroupMode::Voting).unwrap();
        assert_identical(&g1, &g2, &format!("{} group repeat", quant.name()));
    }
}

#[test]
fn lazy_backing_cuts_resident_bytes() {
    let (memory, lazy) = memory_and_snapshot(86, "golden-resident", Quant::F32);
    assert!(
        lazy.resident_table_bytes() < memory.resident_table_bytes(),
        "snapshot backing should hold less than the full tables ({} vs {})",
        lazy.resident_table_bytes(),
        memory.resident_table_bytes()
    );
}

#[test]
fn universe_mismatches_are_rejected_at_open() {
    let (d, ctx) = tiny_world(87);
    let memory = FrozenModel::freeze(GroupSa::new(GroupSaConfig::tiny(), d.num_users, d.num_items), ctx);
    let dir = fresh_dir("golden-mismatch");
    memory.write_snapshot(&dir, 2, Quant::F32).expect("write snapshot");
    // Wrong-size context.
    let stub = DataContext::serving_stub(d.num_users + 1, d.num_items, memory.context().members.clone());
    let err = match FrozenModel::from_snapshot(
        GroupSa::new(GroupSaConfig::tiny(), d.num_users + 1, d.num_items),
        stub,
        &dir,
    ) {
        Err(e) => e,
        Ok(_) => panic!("universe mismatch must fail"),
    };
    assert!(err.contains("does not match"), "unexpected error: {err}");
}
