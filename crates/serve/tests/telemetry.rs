//! Request-lifecycle telemetry end to end: the zero-overhead contract
//! (responses bit-identical with telemetry on vs off), the
//! `MetricsDump` exposition page over real TCP, and the sliding
//! windows / write-stage metering that only exist under sampling.

use groupsa_core::{DataContext, GroupSa, GroupSaConfig};
use groupsa_data::synthetic::{generate, SyntheticConfig};
use groupsa_obs::TelemetryConfig;
use groupsa_serve::engine::{Engine, EngineConfig};
use groupsa_serve::metrics::EXPOSITION_METRICS;
use groupsa_serve::protocol::{RecommendRequest, Request, Response, ServeMode, Target};
use groupsa_serve::server::{self, ServerConfig};
use groupsa_serve::FrozenModel;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

const NUM_USERS: usize = 60;

fn frozen_world(seed: u64) -> Arc<FrozenModel> {
    let dataset = generate(&SyntheticConfig {
        name: format!("serve-telemetry-{seed}"),
        seed,
        num_users: NUM_USERS,
        num_items: 40,
        num_groups: 25,
        num_topics: 4,
        latent_dim: 4,
        avg_items_per_user: 8.0,
        avg_friends_per_user: 5.0,
        avg_items_per_group: 1.5,
        mean_group_size: 3.5,
        zipf_exponent: 0.8,
        homophily: 0.8,
        social_influence: 0.3,
        expertise_sharpness: 2.0,
        taste_temperature: 0.3,
        consensus_blend: 0.5,
        connectedness_boost: 1.0,
    });
    let ctx = DataContext::from_train_view(&dataset, &GroupSaConfig::tiny());
    let model = GroupSa::new(GroupSaConfig::tiny(), dataset.num_users, dataset.num_items);
    Arc::new(FrozenModel::freeze(model, ctx))
}

fn request(id: u64) -> RecommendRequest {
    RecommendRequest {
        id,
        target: if id % 3 == 0 {
            Target::Group { id: (id as usize) % 25 }
        } else {
            Target::User { id: (id as usize * 7) % NUM_USERS }
        },
        k: 5,
        exclude_seen: id % 2 == 0,
        mode: ServeMode::Voting,
        deadline_ms: 0,
    }
}

/// The zero-overhead contract, as bytes: the same workload against the
/// same frozen model produces byte-identical serialized responses
/// whether telemetry samples everything (`1/1`) or is off. Telemetry
/// must observe, never perturb.
#[test]
fn responses_are_bit_identical_with_telemetry_on_and_off() {
    let frozen = frozen_world(31);
    let mut digests: Vec<BTreeMap<u64, String>> = Vec::new();
    for telemetry in [
        Some(TelemetryConfig::disabled()),
        Some(TelemetryConfig { sample_every: 1, slow_us: 0, ring_capacity: 512 }),
    ] {
        let engine = Engine::start(
            Arc::clone(&frozen),
            EngineConfig { workers: 2, telemetry, ..EngineConfig::default() },
        );
        let mut out = BTreeMap::new();
        for id in 0..48u64 {
            out.insert(id, groupsa_json::to_string(&engine.submit(request(id))));
        }
        engine.shutdown();
        digests.push(out);
    }
    assert_eq!(digests[0], digests[1], "telemetry must not change a single response byte");
}

fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("read timeout");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

fn send_line(stream: &mut TcpStream, request: &Request) {
    let mut text = groupsa_json::to_string(request);
    text.push('\n');
    stream.write_all(text.as_bytes()).expect("write request");
}

fn read_response(reader: &mut BufReader<TcpStream>) -> Response {
    let mut line = String::new();
    let n = reader.read_line(&mut line).expect("read response line");
    assert!(n > 0, "connection closed before a response arrived");
    groupsa_json::from_str::<Response>(&line).expect("parse response")
}

/// The full exposition path over real sockets: recommend traffic, then
/// a `MetricsDump` whose page parses, declares every contract metric,
/// agrees with the counters, and carries windowed rates, write-stage
/// samples, and the slow-request capture (threshold 0 ⇒ everything is
/// slow).
#[test]
fn metrics_dump_over_tcp_parses_and_names_every_contract_metric() {
    let frozen = frozen_world(33);
    let engine = Engine::start(
        frozen,
        EngineConfig {
            telemetry: Some(TelemetryConfig { sample_every: 1, slow_us: 0, ring_capacity: 512 }),
            ..EngineConfig::default()
        },
    );
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    let server = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || server::run_with(listener, engine, ServerConfig::default()))
    };

    let (mut stream, mut reader) = connect(addr);
    let n = 16u64;
    for id in 0..n {
        let r = request(id);
        send_line(
            &mut stream,
            &Request::Recommend {
                id: r.id,
                target: r.target,
                k: r.k,
                exclude_seen: r.exclude_seen,
                mode: r.mode,
                deadline_ms: r.deadline_ms,
            },
        );
    }
    for _ in 0..n {
        assert!(matches!(read_response(&mut reader), Response::Recommend { .. }));
    }

    send_line(&mut stream, &Request::MetricsDump { id: 900 });
    let Response::Metrics { id: 900, page } = read_response(&mut reader) else {
        panic!("expected a Metrics response");
    };
    let parsed = groupsa_obs::expo::parse(&page).expect("the page must parse");
    for name in EXPOSITION_METRICS {
        assert!(parsed.declares(name), "page is missing # TYPE for {name}");
    }
    assert_eq!(parsed.value("groupsa_serve_submitted_total"), Some(n as f64));
    assert_eq!(parsed.value("groupsa_serve_completed_total"), Some(n as f64));
    assert_eq!(parsed.value("groupsa_obs_sample_every"), Some(1.0));
    // The writer files a record only *after* its bytes hit the socket,
    // so when the client has read response n the nth record may still
    // be a few instructions away — the page sees at least n − 1 (the
    // post-shutdown reconciliation below is exact).
    assert!(parsed.value("groupsa_obs_ring_pushed_total").unwrap() >= (n - 1) as f64, "{page}");
    assert!(parsed.value("groupsa_serve_write_us_count").unwrap() >= (n - 1) as f64, "{page}");
    assert!(
        parsed.value_with("groupsa_serve_window_submitted_per_s", ("window", "10s")).unwrap()
            > 0.0,
        "the 10 s window must see this burst"
    );
    // slow_us = 0: every record is a slow capture, so labelled samples
    // beyond the `id="none"` placeholder must be present.
    assert!(
        parsed
            .all("groupsa_serve_slow_request_us")
            .iter()
            .any(|s| s.labels.iter().any(|(k, v)| k == "id" && v != "none")),
        "slow-request capture must surface in the page"
    );

    // The engine-side windows agree with the page: stats over the same
    // socket report non-zero windowed rates and write-stage timing.
    send_line(&mut stream, &Request::Stats { id: 901 });
    let Response::Stats { id: 901, stats } = read_response(&mut reader) else {
        panic!("expected a Stats response");
    };
    assert!(stats.window_10s.submitted_per_s > 0.0, "{:?}", stats.window_10s);
    assert!(stats.window_60s.completed_per_s > 0.0, "{:?}", stats.window_60s);
    assert!(stats.mean_write_us > 0.0 || stats.p95_write_us > 0, "write stage was metered");

    send_line(&mut stream, &Request::Shutdown { id: 902 });
    assert!(matches!(read_response(&mut reader), Response::Bye { id: 902 }));
    server.join().expect("server thread").expect("server run");

    // Post-shutdown, the sampled records reconcile with the counters.
    let records = engine.telemetry().records();
    assert_eq!(records.len(), n as usize, "1/1 sampling filed one record per request");
    assert!(records.iter().all(|r| r.slow), "threshold 0 marks everything slow");
    assert!(records.iter().any(|r| r.write_us > 0), "write stage reached the records");
    assert!(records.iter().all(|r| r.batch >= 1), "every drained record points at a batch");
    assert!(
        records.iter().all(|r| r.total_us >= r.queue_us.saturating_add(r.score_us)),
        "the end-to-end total covers its stages"
    );
}

/// A `MetricsDump` against a telemetry-off server still answers with a
/// full, parseable page (lifetime counters live; windows and sampling
/// meta zero) — observability of the default path costs nothing but
/// must not vanish.
#[test]
fn metrics_dump_works_with_telemetry_off() {
    let frozen = frozen_world(35);
    let engine = Engine::start(
        frozen,
        EngineConfig {
            telemetry: Some(TelemetryConfig::disabled()),
            ..EngineConfig::default()
        },
    );
    assert!(matches!(engine.submit(request(1)), Response::Recommend { .. }));
    let page = engine.exposition();
    let parsed = groupsa_obs::expo::parse(&page).expect("parse");
    for name in EXPOSITION_METRICS {
        assert!(parsed.declares(name), "page is missing # TYPE for {name}");
    }
    assert_eq!(parsed.value("groupsa_serve_submitted_total"), Some(1.0));
    assert_eq!(parsed.value("groupsa_obs_sample_every"), Some(0.0));
    assert_eq!(parsed.value("groupsa_obs_ring_pushed_total"), Some(0.0));
    assert_eq!(
        parsed.value_with("groupsa_serve_window_submitted_per_s", ("window", "10s")),
        Some(0.0),
        "windows stay zero when telemetry is off"
    );
    engine.shutdown();
}
