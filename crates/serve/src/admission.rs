//! Admission policy primitives: the observed-service-time estimator
//! behind deadline-aware load shedding, and the per-client token
//! bucket behind rate limiting.
//!
//! Both are deliberately simple and allocation-free — they run at
//! enqueue time under the queue lock ([`ServiceEstimate`]) or on the
//! connection thread ([`TokenBucket`]), so a request pays a handful of
//! arithmetic ops for the whole policy layer.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// EWMA smoothing as a power-of-two divisor: each observation moves
/// the estimate 1/8 of the way to the sample. Small enough to ride out
/// one odd request, large enough to track a workload shift within a
/// couple dozen completions.
const EWMA_SHIFT: u32 = 3;

/// A lossy exponentially-weighted moving average of per-request
/// service time (µs), fed by the workers and read by the admission
/// path to predict how long a new arrival would wait in queue.
///
/// Updates race benignly (relaxed load + store, occasionally dropping
/// an observation) — the estimate steers a *shedding heuristic*, not
/// an accounting invariant, and a lock here would put every completed
/// request on a shared contended path.
#[derive(Debug, Default)]
pub(crate) struct ServiceEstimate {
    ewma_us: AtomicU64,
}

impl ServiceEstimate {
    /// A fresh estimator. Until the first observation it predicts zero
    /// wait, so a cold engine never sheds — optimism is the right
    /// failure mode when nothing has been measured yet.
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Folds one measured per-request service time into the average.
    pub(crate) fn observe(&self, sample_us: u64) {
        let old = self.ewma_us.load(Ordering::Relaxed);
        let new = if old == 0 {
            sample_us
        } else {
            old - (old >> EWMA_SHIFT) + (sample_us >> EWMA_SHIFT)
        };
        self.ewma_us.store(new, Ordering::Relaxed);
    }

    /// The current smoothed per-request service time (µs).
    pub(crate) fn service_us(&self) -> u64 {
        self.ewma_us.load(Ordering::Relaxed)
    }

    /// Predicted queue wait (µs) for a request arriving behind
    /// `queued` others with `workers` threads draining: the shed
    /// policy formula `queued × ewma_service / workers`. Deliberately
    /// optimistic — it ignores the batch each worker is mid-way
    /// through — so shedding only fires on real queue buildup, never
    /// on an idle engine.
    pub(crate) fn predicted_wait_us(&self, queued: usize, workers: usize) -> u64 {
        (queued as u64).saturating_mul(self.service_us()) / workers.max(1) as u64
    }
}

/// A classic token bucket: `rate` tokens/second refill up to a burst
/// capacity; each admitted request spends one token. Owned by a single
/// connection thread, so it needs no interior mutability.
#[derive(Debug)]
pub(crate) struct TokenBucket {
    rate_per_s: f64,
    capacity: f64,
    tokens: f64,
    refilled: Instant,
}

impl TokenBucket {
    /// A bucket refilling at `rate` tokens/second with `burst`
    /// capacity (both floored at 1 so a configured limiter always
    /// admits *something*). Starts full, so a client gets its burst
    /// up front.
    pub(crate) fn new(rate: u64, burst: u64) -> Self {
        let capacity = burst.max(1) as f64;
        Self { rate_per_s: rate.max(1) as f64, capacity, tokens: capacity, refilled: Instant::now() }
    }

    /// Spends one token if available at `now`; `false` means the
    /// caller should answer `RateLimited`.
    pub(crate) fn admit(&mut self, now: Instant) -> bool {
        let dt = now.saturating_duration_since(self.refilled).as_secs_f64();
        self.refilled = now;
        self.tokens = (self.tokens + dt * self.rate_per_s).min(self.capacity);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn estimate_starts_optimistic_and_converges() {
        let est = ServiceEstimate::new();
        assert_eq!(est.predicted_wait_us(100, 1), 0, "cold estimator never sheds");
        est.observe(800);
        assert_eq!(est.service_us(), 800, "first sample adopted directly");
        for _ in 0..64 {
            est.observe(1600);
        }
        let s = est.service_us();
        assert!(s > 1400 && s <= 1600, "EWMA converges towards the new level, got {s}");
    }

    #[test]
    fn predicted_wait_scales_with_queue_and_workers() {
        let est = ServiceEstimate::new();
        est.observe(1000);
        assert_eq!(est.predicted_wait_us(10, 1), 10_000);
        assert_eq!(est.predicted_wait_us(10, 2), 5_000);
        assert_eq!(est.predicted_wait_us(0, 2), 0, "empty queue predicts no wait");
        assert_eq!(est.predicted_wait_us(10, 0), 10_000, "worker floor of 1");
    }

    #[test]
    fn token_bucket_spends_burst_then_refills() {
        let t0 = Instant::now();
        let mut bucket = TokenBucket::new(1000, 3);
        assert!(bucket.admit(t0));
        assert!(bucket.admit(t0));
        assert!(bucket.admit(t0));
        assert!(!bucket.admit(t0), "burst exhausted at the same instant");
        // 2 ms at 1000 tokens/s refills ~2 tokens.
        let later = t0 + Duration::from_millis(2);
        assert!(bucket.admit(later));
        assert!(bucket.admit(later));
        assert!(!bucket.admit(later));
    }

    #[test]
    fn token_bucket_never_exceeds_capacity() {
        let t0 = Instant::now();
        let mut bucket = TokenBucket::new(1_000_000, 2);
        let much_later = t0 + Duration::from_secs(60);
        assert!(bucket.admit(much_later));
        assert!(bucket.admit(much_later));
        assert!(!bucket.admit(much_later), "refill caps at burst capacity");
    }
}
