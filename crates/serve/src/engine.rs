//! The inference engine: a bounded admission queue drained by a pool
//! of worker threads with batch coalescing, per-request deadlines,
//! deadline-aware load shedding, atomic model hot-swap, and graceful
//! drain-then-stop shutdown. Built entirely on `std` —
//! `Mutex<VecDeque>` + `Condvar`, no external runtime.
//!
//! Two submission paths share one admission policy:
//!
//! * [`Engine::submit`] blocks until the reply arrives (a rendezvous
//!   `sync_channel(1)` per request) — in-process callers.
//! * [`Engine::submit_streamed`] returns immediately and delivers the
//!   reply into a caller-supplied channel — the NDJSON pipelining
//!   path, where one connection keeps many requests in flight.
//!
//! Backpressure is structural either way: at most `queue_capacity`
//! requests wait, and anything beyond that is rejected immediately
//! rather than buffered unboundedly. On top of the hard bound,
//! admission control *sheds* a deadline-carrying request at enqueue
//! time when `queue_len × observed_service_time / workers` already
//! exceeds its deadline — answering in microseconds instead of letting
//! it expire in the queue after the deadline has burned.
//!
//! The model itself lives in a [`crate::swap::ModelSlot`]: workers pin
//! the published snapshot once per drained batch, so
//! [`Engine::publish`]/[`Engine::reload_from_snapshot`] swap a
//! retrained model atomically with zero dropped or re-queued requests.

use crate::admission::ServiceEstimate;
use crate::error::ServeError;
use crate::frozen::FrozenModel;
use crate::metrics::{Metrics, StatsSnapshot};
use crate::protocol::{RecommendRequest, Response, Target};
use crate::swap::ModelSlot;
use groupsa_obs::{RecordOutcome, RequestRecord, Telemetry, TelemetryConfig};
use std::collections::VecDeque;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Sender, SyncSender};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Worker-pool tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Admission-queue bound; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Most requests one worker pops per queue lock (batch coalescing).
    pub max_batch: usize,
    /// Default per-request deadline in milliseconds, applied when the
    /// request's own `deadline_ms` is `0`; `0` here means "no
    /// deadline".
    pub default_deadline_ms: u64,
    /// Deadline-aware load shedding: when `true`, a deadline-carrying
    /// request whose predicted queue wait (observed EWMA service time
    /// × queue depth ÷ workers) exceeds its deadline is answered
    /// `Shed` at enqueue time instead of expiring late in the queue.
    /// Requests without a deadline are never shed.
    pub shed: bool,
    /// Request-lifecycle telemetry config. `None` reads the
    /// `GROUPSA_OBS_*` environment (the production default); tests and
    /// benches inject `Some(..)` so engines in one process never race
    /// on env vars.
    pub telemetry: Option<TelemetryConfig>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 256,
            max_batch: 8,
            default_deadline_ms: 0,
            shed: true,
            telemetry: None,
        }
    }
}

/// Where a job's reply goes: a blocking submitter's rendezvous channel
/// or a pipelined connection's response stream. Send failures are
/// ignored in both cases — a receiver that went away just means nobody
/// is left to read the answer.
enum Reply {
    /// [`Engine::submit`]: the submitter blocks in `recv`.
    Blocking(SyncSender<Response>),
    /// [`Engine::submit_streamed`]: the connection's writer drains it.
    Stream(Sender<Outbound>),
}

/// What the engine delivers into a streamed reply channel: the
/// response plus, when telemetry is enabled, the request's lifecycle
/// record awaiting its final stage (the connection writer measures
/// serialize-and-write time and files the finished record).
pub struct Outbound {
    /// The wire response.
    pub response: Response,
    /// The pending lifecycle record; `None` when telemetry is off or
    /// the response never rode the engine (protocol-level replies).
    pub record: Option<PendingRecord>,
}

impl Outbound {
    /// A response with no lifecycle record attached.
    pub fn plain(response: Response) -> Self {
        Outbound { response, record: None }
    }
}

/// A [`RequestRecord`] missing only its write stage: everything up to
/// the reply leaving the engine is filled in; the connection's writer
/// thread calls [`PendingRecord::finish`] after the bytes hit the
/// socket.
pub struct PendingRecord {
    record: RequestRecord,
    /// The admission-time sampling decision (hashing happens once).
    sampled: bool,
    /// Admission instant, for the final end-to-end `total_us`.
    enqueued: Instant,
}

impl PendingRecord {
    /// Completes the record with the measured serialize-and-write time
    /// and the end-to-end total; returns it with the sampling decision
    /// for [`Telemetry::observe`].
    pub fn finish(mut self, write_elapsed: Duration) -> (RequestRecord, bool) {
        self.record.write_us = write_elapsed.as_micros() as u64;
        self.record.total_us = self.enqueued.elapsed().as_micros() as u64;
        (self.record, self.sampled)
    }
}

struct Job {
    req: RecommendRequest,
    deadline: Option<Instant>,
    enqueued: Instant,
    /// Admission-time sampling decision (false when telemetry is off),
    /// carried so the id is hashed once per request.
    sampled: bool,
    reply: Reply,
}

struct Shared {
    model: ModelSlot,
    cfg: EngineConfig,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    stopping: AtomicBool,
    metrics: Metrics,
    service: ServiceEstimate,
}

/// A running worker pool over a hot-swappable [`FrozenModel`].
pub struct Engine {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Engine {
    /// Spawns `cfg.workers` threads over the frozen snapshot.
    pub fn start(frozen: Arc<FrozenModel>, cfg: EngineConfig) -> Arc<Self> {
        let telemetry = match cfg.telemetry {
            Some(telemetry_cfg) => Telemetry::new(telemetry_cfg),
            None => Telemetry::from_env(),
        };
        let shared = Arc::new(Shared {
            model: ModelSlot::new(frozen),
            cfg,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            stopping: AtomicBool::new(false),
            metrics: Metrics::with_telemetry(telemetry),
            service: ServiceEstimate::new(),
        });
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    // Startup path, not a request path: if the OS can't
                    // spawn threads the process has no useful degraded
                    // mode, so aborting here is the right behaviour.
                    .expect("spawn worker thread") // lint: allow(panic-path)
            })
            .collect();
        Arc::new(Self { shared, workers: Mutex::new(workers) })
    }

    /// Files a lifecycle record for a request refused at admission
    /// (never queued, so every stage after arrival is zero). One ring
    /// push when telemetry is on; nothing at all when it is off.
    fn record_refusal(&self, id: u64, outcome: RecordOutcome) {
        let telemetry = self.shared.metrics.telemetry();
        if !telemetry.enabled() {
            return;
        }
        let record = RequestRecord {
            id,
            arrival_us: telemetry.now_us(),
            outcome,
            ..RequestRecord::default()
        };
        telemetry.observe(record, telemetry.sampled(id));
    }

    /// Runs the shared admission policy and, on success, enqueues the
    /// job and wakes a worker. `Err` carries the ready-to-send refusal
    /// response (rejection, shed, or poison).
    fn enqueue(&self, req: RecommendRequest, reply: Reply) -> Result<(), Response> {
        let id = req.id;
        let deadline_ms = match req.deadline_ms {
            0 => self.shared.cfg.default_deadline_ms,
            ms => ms,
        };
        {
            // A poisoned queue means a worker panicked mid-drain; the
            // submitter gets a typed error instead of a second panic.
            let mut queue = match self.shared.queue.lock() {
                Ok(queue) => queue,
                Err(_) => {
                    self.shared.metrics.note_rejected();
                    self.record_refusal(id, RecordOutcome::Rejected);
                    return Err(ServeError::LockPoisoned { what: "queue" }.into_response(id));
                }
            };
            if self.shared.stopping.load(Ordering::SeqCst) {
                self.shared.metrics.note_rejected();
                self.record_refusal(id, RecordOutcome::Rejected);
                return Err(ServeError::ShuttingDown.into_response(id));
            }
            if queue.len() >= self.shared.cfg.queue_capacity {
                self.shared.metrics.note_rejected();
                self.record_refusal(id, RecordOutcome::Rejected);
                return Err(ServeError::QueueFull { pending: queue.len() }.into_response(id));
            }
            // Deadline-aware shedding: if the observed queue wait says
            // this deadline is already unmeetable, answer now (in µs)
            // rather than expiring it late (after deadline_ms). Shed
            // requests count as submitted — they passed the hard
            // admission bound — so under overload
            // `submitted == completed + errors + expired + shed`.
            if self.shared.cfg.shed && deadline_ms > 0 {
                let predicted_wait_us = self
                    .shared
                    .service
                    .predicted_wait_us(queue.len(), self.shared.cfg.workers);
                if predicted_wait_us > deadline_ms.saturating_mul(1000) {
                    self.shared.metrics.note_submitted();
                    self.shared.metrics.note_shed();
                    self.record_refusal(id, RecordOutcome::Shed);
                    return Err(
                        ServeError::Shed { predicted_wait_us, deadline_ms }.into_response(id)
                    );
                }
            }
            let telemetry = self.shared.metrics.telemetry();
            let now = Instant::now();
            queue.push_back(Job {
                req,
                deadline: (deadline_ms > 0)
                    .then(|| now + std::time::Duration::from_millis(deadline_ms)),
                enqueued: now,
                sampled: telemetry.enabled() && telemetry.sampled(id),
                reply,
            });
            self.shared.metrics.note_submitted();
            self.shared.metrics.note_queue_depth(queue.len());
        }
        self.shared.available.notify_one();
        Ok(())
    }

    /// Submits one request and blocks until its response is ready.
    /// Admission fails fast (an `Error` response) when the engine is
    /// stopping, the queue is full, or the deadline is predicted
    /// unmeetable.
    pub fn submit(&self, req: RecommendRequest) -> Response {
        let id = req.id;
        let (tx, rx) = mpsc::sync_channel(1);
        match self.enqueue(req, Reply::Blocking(tx)) {
            Err(refusal) => refusal,
            Ok(()) => rx.recv().unwrap_or_else(|_| ServeError::WorkerLost.into_response(id)),
        }
    }

    /// Submits one request without blocking; the response (including
    /// any admission refusal) is delivered into `reply`. This is the
    /// pipelining path: a connection thread calls it once per parsed
    /// line and keeps reading, so many requests ride the engine at
    /// once while a single writer drains `reply` in completion order.
    pub fn submit_streamed(&self, req: RecommendRequest, reply: Sender<Outbound>) {
        if let Err(refusal) = self.enqueue(req, Reply::Stream(reply.clone())) {
            let _ = reply.send(Outbound::plain(refusal));
        }
    }

    /// A live metrics snapshot (engine counters + frozen-cache stats).
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.metrics.snapshot(self.shared.model.load().cache_stats())
    }

    /// The engine's telemetry facade: sampling config, record ring,
    /// and sliding windows. Disabled telemetry returns a facade whose
    /// `enabled()` is `false` and whose observers are no-ops.
    pub fn telemetry(&self) -> &Telemetry {
        self.shared.metrics.telemetry()
    }

    /// Renders the live Prometheus-style metrics page — the body of a
    /// `MetricsDump` protocol response.
    pub fn exposition(&self) -> String {
        self.shared.metrics.exposition(self.shared.model.load().cache_stats())
    }

    /// The engine metrics, for collaborators in this crate (the server
    /// notes connection-layer events — rate limits, reaped handles —
    /// against the same snapshot clients query).
    pub(crate) fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Whether [`Engine::shutdown`] has begun.
    pub fn is_stopping(&self) -> bool {
        self.shared.stopping.load(Ordering::SeqCst)
    }

    /// Atomically publishes a replacement frozen model. In-flight
    /// batches finish against the snapshot they pinned; every later
    /// batch scores against `frozen`. Rejects a universe mismatch so
    /// queued requests' id spaces can never dangle across a swap.
    pub fn publish(&self, frozen: Arc<FrozenModel>) -> Result<(), String> {
        let current = self.shared.model.load();
        let (cur, new) = (current.context(), frozen.context());
        if new.num_users != cur.num_users
            || new.num_items != cur.num_items
            || new.num_groups() != cur.num_groups()
        {
            return Err(format!(
                "published universe {}u/{}i/{}g does not match serving universe {}u/{}i/{}g",
                new.num_users,
                new.num_items,
                new.num_groups(),
                cur.num_users,
                cur.num_items,
                cur.num_groups()
            ));
        }
        self.shared.model.store(frozen);
        self.shared.metrics.note_reload();
        Ok(())
    }

    /// Hot-swaps to a `groupsa-snapshot` directory written by
    /// [`FrozenModel::write_snapshot`]: opens it lazily against the
    /// *current* model's weights and context (shared, not cloned) and
    /// publishes it. On error the previous model keeps serving.
    pub fn reload_from_snapshot(&self, dir: impl AsRef<Path>) -> Result<(), String> {
        let current = self.shared.model.load();
        let fresh =
            FrozenModel::from_snapshot_shared(current.model_arc(), current.context_arc(), dir)?;
        self.publish(Arc::new(fresh))
    }

    /// Graceful shutdown: stop admitting, let workers drain every
    /// queued request, join them, and return the final metrics. Any
    /// job still queued after the pool is gone (workers retired on a
    /// poisoned lock) is answered `WorkerLost` rather than leaving its
    /// submitter blocked forever. Idempotent — later calls just
    /// re-snapshot.
    pub fn shutdown(&self) -> StatsSnapshot {
        self.shared.stopping.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        // Join the pool even if a panicking thread poisoned the handle
        // list — shutdown must still drain and report.
        let handles =
            std::mem::take(&mut *self.workers.lock().unwrap_or_else(PoisonError::into_inner));
        let drained_any = !handles.is_empty();
        for handle in handles {
            let _ = handle.join();
        }
        // The workers are gone; anything still queued would hold its
        // submitter's reply channel open forever. Recover the guard
        // even from poison — this is exactly the poisoned-pool case.
        let leftovers: Vec<Job> = {
            let mut queue = self.shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            queue.drain(..).collect()
        };
        answer_worker_lost(&self.shared, leftovers);
        let stats = self.stats();
        // Dump the final snapshot into the trace once, when the pool
        // actually drained (idempotent re-snapshots stay silent).
        if drained_any && groupsa_obs::enabled() {
            groupsa_obs::emit("stats", &[("stats", groupsa_obs::to_json(&stats))]);
            if self.shared.metrics.telemetry().enabled() {
                for window in [&stats.window_10s, &stats.window_60s] {
                    groupsa_obs::emit(
                        "window_snapshot",
                        &[
                            ("window_s", groupsa_obs::to_json(&window.window_s)),
                            ("submitted_per_s", groupsa_obs::to_json(&window.submitted_per_s)),
                            ("completed_per_s", groupsa_obs::to_json(&window.completed_per_s)),
                            ("errors_per_s", groupsa_obs::to_json(&window.errors_per_s)),
                            ("shed_per_s", groupsa_obs::to_json(&window.shed_per_s)),
                            ("limited_per_s", groupsa_obs::to_json(&window.limited_per_s)),
                            ("p50_latency_us", groupsa_obs::to_json(&window.p50_latency_us)),
                            ("p95_latency_us", groupsa_obs::to_json(&window.p95_latency_us)),
                        ],
                    );
                }
            }
        }
        stats
    }

    /// The frozen snapshot currently published to the workers.
    pub fn frozen(&self) -> Arc<FrozenModel> {
        self.shared.model.load()
    }

    /// Test-only hook: poisons the admission queue by panicking a
    /// throwaway thread while it holds the lock, simulating a worker
    /// dying mid-drain. Exists so the worker-retirement drain has a
    /// deterministic regression test; never called on a request path.
    #[doc(hidden)]
    pub fn poison_queue_for_test(&self) {
        let shared = Arc::clone(&self.shared);
        let _ = std::thread::spawn(move || {
            let _guard = shared.queue.lock();
            panic!("poison_queue_for_test"); // lint: allow(panic-path)
        })
        .join();
    }
}

/// Answers every drained job `WorkerLost` with per-job accounting:
/// queue wait is recorded, and the reply is an error, so conservation
/// (`submitted == completed + errors + expired + shed`) still holds
/// when a pool dies with work in the queue.
fn answer_worker_lost(shared: &Shared, jobs: Vec<Job>) {
    let popped = Instant::now();
    let telemetry = shared.metrics.telemetry();
    for job in jobs {
        let queue_wait = popped.saturating_duration_since(job.enqueued);
        shared.metrics.note_queue_wait(queue_wait);
        shared.metrics.note_error();
        if telemetry.enabled() {
            telemetry.observe(
                RequestRecord {
                    id: job.req.id,
                    arrival_us: telemetry.us_since_start(job.enqueued),
                    outcome: RecordOutcome::Error,
                    queue_us: queue_wait.as_micros() as u64,
                    total_us: job.enqueued.elapsed().as_micros() as u64,
                    ..RequestRecord::default()
                },
                job.sampled,
            );
        }
        let response = ServeError::WorkerLost.into_response(job.req.id);
        match job.reply {
            Reply::Blocking(tx) => {
                let _ = tx.send(response);
            }
            Reply::Stream(tx) => {
                let _ = tx.send(Outbound::plain(response));
            }
        }
    }
}

/// A worker observed queue-lock poison: another worker panicked while
/// holding the lock. Retire — but first drain every queued job and
/// answer it `WorkerLost`, because a retired pool will never pop them
/// and their submitters would otherwise block in `recv` forever.
fn retire_draining(shared: &Shared, mut queue: MutexGuard<'_, VecDeque<Job>>) {
    let jobs: Vec<Job> = queue.drain(..).collect();
    drop(queue);
    answer_worker_lost(shared, jobs);
}

fn worker_loop(shared: &Shared) {
    loop {
        // The `GROUPSA_TRACE` gate, re-read per iteration: one atomic
        // load, so untraced serving pays nothing for the lifecycle
        // events below.
        let traced = groupsa_obs::enabled();
        let (batch, form_us) = {
            let mut queue = match shared.queue.lock() {
                Ok(queue) => queue,
                Err(poisoned) => return retire_draining(shared, poisoned.into_inner()),
            };
            loop {
                if !queue.is_empty() {
                    // Batch-form time: the drain itself, not the idle
                    // condvar wait before work arrived.
                    let t0 = traced.then(Instant::now);
                    let n = queue.len().min(shared.cfg.max_batch.max(1));
                    let batch = queue.drain(..n).collect::<Vec<Job>>();
                    break (batch, t0.map_or(0, |t| t.elapsed().as_micros() as u64));
                }
                if shared.stopping.load(Ordering::SeqCst) {
                    return; // queue drained and no more admissions
                }
                queue = match shared.available.wait(queue) {
                    Ok(queue) => queue,
                    Err(poisoned) => return retire_draining(shared, poisoned.into_inner()),
                };
            }
        };
        let popped = Instant::now();
        // Pin the published model once per batch: a hot-swap lands
        // between batches, never inside one.
        let frozen = shared.model.load();
        let batch_id = shared.metrics.note_batch(batch.len());
        if traced {
            groupsa_obs::emit(
                "batch",
                &[
                    ("n", groupsa_obs::to_json(&batch.len())),
                    ("form_us", groupsa_obs::to_json(&form_us)),
                ],
            );
        }
        // Coalescible jobs — user targets scanning the full catalog
        // (`exclude_seen = false`), whose candidate sets are therefore
        // identical — share one stacked scoring pass when two or more
        // land in the same drained batch. Everything else runs the
        // per-job path in drain order.
        let coalesce =
            batch.iter().filter(|job| catalog_user_id(&job.req).is_some()).count() >= 2;
        let mut coalesced: Vec<(usize, Job)> = Vec::new();
        for job in batch {
            if coalesce {
                if let Some(user) = catalog_user_id(&job.req) {
                    coalesced.push((user, job));
                    continue;
                }
            }
            let score_started = Instant::now();
            let (response, expired) = execute(&frozen, &job);
            finish_job(
                shared,
                traced,
                popped,
                batch_id,
                job,
                response,
                expired,
                score_started.elapsed(),
            );
        }
        if !coalesced.is_empty() {
            run_coalesced(shared, &frozen, traced, popped, batch_id, coalesced);
        }
    }
}

/// The user id of a request that can join a shared-candidate batched
/// scoring pass — a user target whose candidate set is the full
/// catalog — or `None` for everything else. Capturing the id here
/// means the coalesced path never re-matches on the target (and so
/// never needs an unreachable arm).
fn catalog_user_id(req: &RecommendRequest) -> Option<usize> {
    match req.target {
        Target::User { id } if !req.exclude_seen => Some(id),
        _ => None,
    }
}

/// Scores a set of coalescible jobs through one
/// [`FrozenModel::recommend_users_shared`] pass. Deadlines are checked
/// at scoring time exactly like [`execute`]; per-job score time is the
/// shared pass divided evenly across its members.
fn run_coalesced(
    shared: &Shared,
    frozen: &FrozenModel,
    traced: bool,
    popped: Instant,
    batch_id: u64,
    jobs: Vec<(usize, Job)>,
) {
    let mut live: Vec<(usize, Job)> = Vec::with_capacity(jobs.len());
    let now = Instant::now();
    for (user, job) in jobs {
        match job.deadline {
            Some(deadline) if now > deadline => {
                let response = ServeError::DeadlineExceeded.into_response(job.req.id);
                finish_job(shared, traced, popped, batch_id, job, response, true, Duration::ZERO);
            }
            _ => live.push((user, job)),
        }
    }
    if live.is_empty() {
        return;
    }
    let requests: Vec<(usize, usize)> =
        live.iter().map(|(user, job)| (*user, job.req.k)).collect();
    let score_started = Instant::now();
    let results = frozen.recommend_users_shared(&requests);
    let per_job_elapsed = score_started.elapsed() / live.len() as u32;
    for ((_, job), result) in live.into_iter().zip(results) {
        let id = job.req.id;
        let response = match result {
            Ok(items) => Response::Recommend { id, items },
            Err(message) => ServeError::Model { message }.into_response(id),
        };
        finish_job(shared, traced, popped, batch_id, job, response, false, per_job_elapsed);
    }
}

/// Request lifecycle accounting + reply, shared by the per-job and
/// coalesced paths. Queue-wait (enqueue → popped) is recorded for
/// every drained job; scoring time only for jobs that ran the model
/// (and those observations feed the shedding policy's service-time
/// EWMA). Exactly one outcome counter per drained job, so the
/// categories stay disjoint and `submitted = completed + errors +
/// expired + shed` holds after a drain. (An expired request also
/// *answers* with an `Error` response, but it must not be
/// double-counted under `errors`.)
fn finish_job(
    shared: &Shared,
    traced: bool,
    popped: Instant,
    batch_id: u64,
    job: Job,
    response: Response,
    expired: bool,
    score_elapsed: Duration,
) {
    let queue_wait = popped.saturating_duration_since(job.enqueued);
    shared.metrics.note_queue_wait(queue_wait);
    let outcome = if expired {
        shared.metrics.note_expired();
        RecordOutcome::Expired
    } else {
        shared.metrics.note_score(score_elapsed);
        shared.service.observe(score_elapsed.as_micros() as u64);
        if matches!(response, Response::Error { .. }) {
            shared.metrics.note_error();
            RecordOutcome::Error
        } else {
            shared.metrics.note_completed(job.enqueued.elapsed());
            RecordOutcome::Completed
        }
    };
    if traced {
        groupsa_obs::emit(
            "request",
            &[
                ("id", groupsa_obs::to_json(&job.req.id)),
                ("outcome", groupsa_obs::to_json(&outcome.name())),
                ("queue_us", groupsa_obs::to_json(&(queue_wait.as_micros() as u64))),
                ("score_us", groupsa_obs::to_json(&(score_elapsed.as_micros() as u64))),
            ],
        );
    }
    let telemetry = shared.metrics.telemetry();
    let record = telemetry.enabled().then(|| RequestRecord {
        id: job.req.id,
        arrival_us: telemetry.us_since_start(job.enqueued),
        outcome,
        queue_us: queue_wait.as_micros() as u64,
        batch: batch_id,
        score_us: score_elapsed.as_micros() as u64,
        write_us: 0,
        total_us: 0,
        slow: false,
    });
    // A submitter that gave up (the pipelined writer died with its
    // connection) surfaces as a send error; drop silently.
    match job.reply {
        Reply::Blocking(tx) => {
            // No write stage on the in-process path: the record closes
            // here, with the rendezvous hand-off as the total.
            if let Some(mut record) = record {
                record.total_us = job.enqueued.elapsed().as_micros() as u64;
                telemetry.observe(record, job.sampled);
            }
            let _ = tx.send(response);
        }
        Reply::Stream(tx) => {
            // The connection's writer thread measures the write stage
            // and files the finished record via [`PendingRecord`].
            let _ = tx.send(Outbound {
                response,
                record: record.map(|record| PendingRecord {
                    record,
                    sampled: job.sampled,
                    enqueued: job.enqueued,
                }),
            });
        }
    }
}

/// Runs one job, returning its response and whether it was dropped on
/// deadline expiry (metrics accounting happens in the caller).
fn execute(frozen: &FrozenModel, job: &Job) -> (Response, bool) {
    let id = job.req.id;
    if let Some(deadline) = job.deadline {
        if Instant::now() > deadline {
            return (ServeError::DeadlineExceeded.into_response(id), true);
        }
    }
    let response = match frozen.recommend(
        job.req.target,
        job.req.k,
        job.req.exclude_seen,
        job.req.mode.group_mode(),
    ) {
        Ok(items) => Response::Recommend { id, items },
        Err(message) => ServeError::Model { message }.into_response(id),
    };
    (response, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use groupsa_core::{DataContext, GroupSa, GroupSaConfig};
    use groupsa_data::synthetic::{generate, SyntheticConfig};

    fn tiny_frozen() -> FrozenModel {
        let dataset = generate(&SyntheticConfig {
            name: "engine-unit".into(),
            seed: 11,
            num_users: 12,
            num_items: 20,
            num_groups: 4,
            num_topics: 2,
            latent_dim: 4,
            avg_items_per_user: 4.0,
            avg_friends_per_user: 3.0,
            avg_items_per_group: 1.5,
            mean_group_size: 3.0,
            zipf_exponent: 0.8,
            homophily: 0.8,
            social_influence: 0.3,
            expertise_sharpness: 2.0,
            taste_temperature: 0.3,
            consensus_blend: 0.5,
            connectedness_boost: 1.0,
        });
        let ctx = DataContext::from_train_view(&dataset, &GroupSaConfig::tiny());
        let model = GroupSa::new(GroupSaConfig::tiny(), dataset.num_users, dataset.num_items);
        FrozenModel::freeze(model, ctx)
    }

    /// The shutdown-drain path, unit-tested against a pool-less
    /// `Shared` directly: jobs left in the queue when no worker will
    /// ever pop them must be answered `WorkerLost` and counted as
    /// errors, not silently dropped (which would leave blocking
    /// submitters in `recv` forever).
    #[test]
    fn answer_worker_lost_replies_and_counts_every_job() {
        let shared = Shared {
            model: ModelSlot::new(Arc::new(tiny_frozen())),
            cfg: EngineConfig::default(),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            stopping: AtomicBool::new(false),
            metrics: Metrics::new(),
            service: ServiceEstimate::new(),
        };
        let mut receivers = Vec::new();
        let mut jobs = Vec::new();
        for id in 0..3u64 {
            let (tx, rx) = mpsc::sync_channel(1);
            receivers.push(rx);
            shared.metrics.note_submitted();
            jobs.push(Job {
                req: RecommendRequest {
                    id,
                    target: Target::User { id: 0 },
                    k: 1,
                    exclude_seen: false,
                    mode: crate::protocol::ServeMode::Voting,
                    deadline_ms: 0,
                },
                deadline: None,
                enqueued: Instant::now(),
                sampled: false,
                reply: Reply::Blocking(tx),
            });
        }
        answer_worker_lost(&shared, jobs);
        for rx in receivers {
            let resp = rx.recv().expect("every abandoned job is answered");
            assert!(
                matches!(resp, Response::Error { ref error, .. } if error.contains("worker dropped")),
                "{resp:?}"
            );
        }
        let stats = shared.metrics.snapshot(crate::metrics::CacheStats::default());
        assert_eq!(stats.errors, 3);
        assert_eq!(stats.submitted, stats.completed + stats.errors + stats.expired + stats.shed);
    }
}
