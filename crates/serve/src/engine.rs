//! The inference engine: a bounded admission queue drained by a pool
//! of worker threads with batch coalescing, per-request deadlines, and
//! graceful drain-then-stop shutdown. Built entirely on `std` —
//! `Mutex<VecDeque>` + `Condvar`, no external runtime.
//!
//! Submitters block until their reply arrives (a rendezvous
//! `sync_channel(1)` per request), so backpressure is structural: at
//! most `queue_capacity` requests wait, and anything beyond that is
//! rejected immediately rather than buffered unboundedly.

use crate::error::ServeError;
use crate::frozen::FrozenModel;
use crate::metrics::{Metrics, StatsSnapshot};
use crate::protocol::{RecommendRequest, Response, Target};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

/// Worker-pool tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Admission-queue bound; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Most requests one worker pops per queue lock (batch coalescing).
    pub max_batch: usize,
    /// Default per-request deadline in milliseconds, applied when the
    /// request's own `deadline_ms` is `0`; `0` here means "no
    /// deadline".
    pub default_deadline_ms: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self { workers: 2, queue_capacity: 256, max_batch: 8, default_deadline_ms: 0 }
    }
}

struct Job {
    req: RecommendRequest,
    deadline: Option<Instant>,
    enqueued: Instant,
    reply: SyncSender<Response>,
}

struct Shared {
    frozen: Arc<FrozenModel>,
    cfg: EngineConfig,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    stopping: AtomicBool,
    metrics: Metrics,
}

/// A running worker pool over a [`FrozenModel`].
pub struct Engine {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Engine {
    /// Spawns `cfg.workers` threads over the frozen snapshot.
    pub fn start(frozen: Arc<FrozenModel>, cfg: EngineConfig) -> Arc<Self> {
        let shared = Arc::new(Shared {
            frozen,
            cfg,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            stopping: AtomicBool::new(false),
            metrics: Metrics::new(),
        });
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    // Startup path, not a request path: if the OS can't
                    // spawn threads the process has no useful degraded
                    // mode, so aborting here is the right behaviour.
                    .expect("spawn worker thread") // lint: allow(panic-path)
            })
            .collect();
        Arc::new(Self { shared, workers: Mutex::new(workers) })
    }

    /// Submits one request and blocks until its response is ready.
    /// Admission fails fast (an `Error` response) when the engine is
    /// stopping or the queue is full.
    pub fn submit(&self, req: RecommendRequest) -> Response {
        let id = req.id;
        let deadline_ms = match req.deadline_ms {
            0 => self.shared.cfg.default_deadline_ms,
            ms => ms,
        };
        let (tx, rx) = mpsc::sync_channel(1);
        {
            // A poisoned queue means a worker panicked mid-drain; the
            // submitter gets a typed error instead of a second panic.
            let mut queue = match self.shared.queue.lock() {
                Ok(queue) => queue,
                Err(_) => {
                    self.shared.metrics.note_rejected();
                    return ServeError::LockPoisoned { what: "queue" }.into_response(id);
                }
            };
            if self.shared.stopping.load(Ordering::SeqCst) {
                self.shared.metrics.note_rejected();
                return ServeError::ShuttingDown.into_response(id);
            }
            if queue.len() >= self.shared.cfg.queue_capacity {
                self.shared.metrics.note_rejected();
                return ServeError::QueueFull { pending: queue.len() }.into_response(id);
            }
            let now = Instant::now();
            queue.push_back(Job {
                req,
                deadline: (deadline_ms > 0)
                    .then(|| now + std::time::Duration::from_millis(deadline_ms)),
                enqueued: now,
                reply: tx,
            });
            self.shared.metrics.note_submitted();
            self.shared.metrics.note_queue_depth(queue.len());
        }
        self.shared.available.notify_one();
        rx.recv().unwrap_or_else(|_| ServeError::WorkerLost.into_response(id))
    }

    /// A live metrics snapshot (engine counters + frozen-cache stats).
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.metrics.snapshot(self.shared.frozen.cache_stats())
    }

    /// Whether [`Engine::shutdown`] has begun.
    pub fn is_stopping(&self) -> bool {
        self.shared.stopping.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: stop admitting, let workers drain every
    /// queued request, join them, and return the final metrics.
    /// Idempotent — later calls just re-snapshot.
    pub fn shutdown(&self) -> StatsSnapshot {
        self.shared.stopping.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        // Join the pool even if a panicking thread poisoned the handle
        // list — shutdown must still drain and report.
        let handles =
            std::mem::take(&mut *self.workers.lock().unwrap_or_else(PoisonError::into_inner));
        let drained_any = !handles.is_empty();
        for handle in handles {
            let _ = handle.join();
        }
        let stats = self.stats();
        // Dump the final snapshot into the trace once, when the pool
        // actually drained (idempotent re-snapshots stay silent).
        if drained_any && groupsa_obs::enabled() {
            groupsa_obs::emit("stats", &[("stats", groupsa_obs::to_json(&stats))]);
        }
        stats
    }

    /// The frozen snapshot the workers score against.
    pub fn frozen(&self) -> &FrozenModel {
        &self.shared.frozen
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        // The `GROUPSA_TRACE` gate, re-read per iteration: one atomic
        // load, so untraced serving pays nothing for the lifecycle
        // events below.
        let traced = groupsa_obs::enabled();
        let (batch, form_us) = {
            // Poison here means another worker panicked while holding
            // the lock; this worker retires rather than panicking too.
            let Ok(mut queue) = shared.queue.lock() else { return };
            loop {
                if !queue.is_empty() {
                    // Batch-form time: the drain itself, not the idle
                    // condvar wait before work arrived.
                    let t0 = traced.then(Instant::now);
                    let n = queue.len().min(shared.cfg.max_batch.max(1));
                    let batch = queue.drain(..n).collect::<Vec<Job>>();
                    break (batch, t0.map_or(0, |t| t.elapsed().as_micros() as u64));
                }
                if shared.stopping.load(Ordering::SeqCst) {
                    return; // queue drained and no more admissions
                }
                queue = match shared.available.wait(queue) {
                    Ok(queue) => queue,
                    Err(_) => return, // poisoned mid-wait: retire
                };
            }
        };
        let popped = Instant::now();
        shared.metrics.note_batch(batch.len());
        if traced {
            groupsa_obs::emit(
                "batch",
                &[
                    ("n", groupsa_obs::to_json(&batch.len())),
                    ("form_us", groupsa_obs::to_json(&form_us)),
                ],
            );
        }
        // Coalescible jobs — user targets scanning the full catalog
        // (`exclude_seen = false`), whose candidate sets are therefore
        // identical — share one stacked scoring pass when two or more
        // land in the same drained batch. Everything else runs the
        // per-job path in drain order.
        let coalesce =
            batch.iter().filter(|job| catalog_user_id(&job.req).is_some()).count() >= 2;
        let mut coalesced: Vec<(usize, Job)> = Vec::new();
        for job in batch {
            if coalesce {
                if let Some(user) = catalog_user_id(&job.req) {
                    coalesced.push((user, job));
                    continue;
                }
            }
            let score_started = Instant::now();
            let (response, expired) = execute(shared, &job);
            finish_job(shared, traced, popped, job, response, expired, score_started.elapsed());
        }
        if !coalesced.is_empty() {
            run_coalesced(shared, traced, popped, coalesced);
        }
    }
}

/// The user id of a request that can join a shared-candidate batched
/// scoring pass — a user target whose candidate set is the full
/// catalog — or `None` for everything else. Capturing the id here
/// means the coalesced path never re-matches on the target (and so
/// never needs an unreachable arm).
fn catalog_user_id(req: &RecommendRequest) -> Option<usize> {
    match req.target {
        Target::User { id } if !req.exclude_seen => Some(id),
        _ => None,
    }
}

/// Scores a set of coalescible jobs through one
/// [`FrozenModel::recommend_users_shared`] pass. Deadlines are checked
/// at scoring time exactly like [`execute`]; per-job score time is the
/// shared pass divided evenly across its members.
fn run_coalesced(shared: &Shared, traced: bool, popped: Instant, jobs: Vec<(usize, Job)>) {
    let mut live: Vec<(usize, Job)> = Vec::with_capacity(jobs.len());
    let now = Instant::now();
    for (user, job) in jobs {
        match job.deadline {
            Some(deadline) if now > deadline => {
                let response = ServeError::DeadlineExceeded.into_response(job.req.id);
                finish_job(shared, traced, popped, job, response, true, std::time::Duration::ZERO);
            }
            _ => live.push((user, job)),
        }
    }
    if live.is_empty() {
        return;
    }
    let requests: Vec<(usize, usize)> =
        live.iter().map(|(user, job)| (*user, job.req.k)).collect();
    let score_started = Instant::now();
    let results = shared.frozen.recommend_users_shared(&requests);
    let per_job_elapsed = score_started.elapsed() / live.len() as u32;
    for ((_, job), result) in live.into_iter().zip(results) {
        let id = job.req.id;
        let response = match result {
            Ok(items) => Response::Recommend { id, items },
            Err(message) => ServeError::Model { message }.into_response(id),
        };
        finish_job(shared, traced, popped, job, response, false, per_job_elapsed);
    }
}

/// Request lifecycle accounting + reply, shared by the per-job and
/// coalesced paths. Queue-wait (enqueue → popped) is recorded for
/// every drained job; scoring time only for jobs that ran the model.
/// Exactly one outcome counter per drained job, so the categories stay
/// disjoint and `submitted = completed + errors + expired` holds after
/// a drain. (An expired request also *answers* with an `Error`
/// response, but it must not be double-counted under `errors`.)
fn finish_job(
    shared: &Shared,
    traced: bool,
    popped: Instant,
    job: Job,
    response: Response,
    expired: bool,
    score_elapsed: std::time::Duration,
) {
    let queue_wait = popped.saturating_duration_since(job.enqueued);
    shared.metrics.note_queue_wait(queue_wait);
    if expired {
        shared.metrics.note_expired();
    } else {
        shared.metrics.note_score(score_elapsed);
        shared.metrics.note_completed_kind(&response, job.enqueued.elapsed());
    }
    if traced {
        let outcome = if expired {
            "expired"
        } else if matches!(response, Response::Error { .. }) {
            "error"
        } else {
            "ok"
        };
        groupsa_obs::emit(
            "request",
            &[
                ("id", groupsa_obs::to_json(&job.req.id)),
                ("outcome", groupsa_obs::to_json(&outcome)),
                ("queue_us", groupsa_obs::to_json(&(queue_wait.as_micros() as u64))),
                ("score_us", groupsa_obs::to_json(&(score_elapsed.as_micros() as u64))),
            ],
        );
    }
    // A submitter that gave up (impossible today — submit blocks)
    // would surface as a send error; drop silently.
    let _ = job.reply.send(response);
}

impl Metrics {
    fn note_completed_kind(&self, response: &Response, latency: std::time::Duration) {
        match response {
            Response::Error { .. } => self.note_error(),
            _ => self.note_completed(latency),
        }
    }
}

/// Runs one job, returning its response and whether it was dropped on
/// deadline expiry (metrics accounting happens in the caller).
fn execute(shared: &Shared, job: &Job) -> (Response, bool) {
    let id = job.req.id;
    if let Some(deadline) = job.deadline {
        if Instant::now() > deadline {
            return (ServeError::DeadlineExceeded.into_response(id), true);
        }
    }
    let response = match shared.frozen.recommend(
        job.req.target,
        job.req.k,
        job.req.exclude_seen,
        job.req.mode.group_mode(),
    ) {
        Ok(items) => Response::Recommend { id, items },
        Err(message) => ServeError::Model { message }.into_response(id),
    };
    (response, false)
}
