//! The typed request/response wire protocol.
//!
//! One JSON document per line (NDJSON), serialised by `groupsa-json`
//! in serde's externally-tagged enum format. Requests carry a
//! client-chosen `id` that is echoed in the response, so clients may
//! pipeline. Responses deliberately contain **no** timing or
//! server-state fields (besides the explicit `Stats` reply), so the
//! bytes of a `Recommend` response depend only on the request and the
//! frozen model — the property the concurrency test pins down.
//!
//! Examples (one line each):
//!
//! ```text
//! {"Recommend":{"id":1,"target":{"Group":{"id":3}},"k":5,"exclude_seen":true,"mode":"Voting","deadline_ms":0}}
//! {"Stats":{"id":2}}
//! {"Shutdown":{"id":3}}
//! ```

use crate::metrics::StatsSnapshot;
use groupsa_core::{GroupMode, Recommendation, ScoreAggregation};
use groupsa_json::{impl_json_enum, impl_json_struct};

/// Who the recommendations are for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Target {
    /// A single user (scored by the user tower, Eq. 23).
    User {
        /// User id.
        id: usize,
    },
    /// A group (scored by the selected group mode).
    Group {
        /// Group id.
        id: usize,
    },
}

impl_json_enum!(Target { User { id }, Group { id } });

/// Which inference path scores a group — the wire-level (flat) form of
/// [`GroupMode`], whose `Fast(..)` payload does not fit the
/// externally-tagged enum encoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeMode {
    /// The full voting-scheme path (Eq. 1–10, 20).
    Voting,
    /// §II-F fast path, member scores averaged.
    FastAverage,
    /// §II-F fast path, least-misery aggregation.
    FastLeastMisery,
    /// §II-F fast path, maximum-satisfaction aggregation.
    FastMaxSatisfaction,
}

impl_json_enum!(ServeMode { Voting, FastAverage, FastLeastMisery, FastMaxSatisfaction });

impl ServeMode {
    /// The corresponding core [`GroupMode`].
    pub fn group_mode(self) -> GroupMode {
        match self {
            ServeMode::Voting => GroupMode::Voting,
            ServeMode::FastAverage => GroupMode::Fast(ScoreAggregation::Average),
            ServeMode::FastLeastMisery => GroupMode::Fast(ScoreAggregation::LeastMisery),
            ServeMode::FastMaxSatisfaction => GroupMode::Fast(ScoreAggregation::MaxSatisfaction),
        }
    }
}

/// One scoring request, as submitted to the engine.
#[derive(Clone, Debug, PartialEq)]
pub struct RecommendRequest {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Who to recommend for.
    pub target: Target,
    /// How many items to return (the engine caps nothing; fewer come
    /// back when fewer candidates exist).
    pub k: usize,
    /// Exclude items the target already interacted with in training.
    pub exclude_seen: bool,
    /// Group scoring path; ignored for user targets.
    pub mode: ServeMode,
    /// Per-request deadline in milliseconds from admission; `0` uses
    /// the engine default (which may itself be "none").
    pub deadline_ms: u64,
}

impl_json_struct!(RecommendRequest { id, target, k, exclude_seen, mode, deadline_ms });

/// Any request a connection may send.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Score and rank candidates for a target.
    Recommend {
        /// Correlation id.
        id: u64,
        /// Who to recommend for.
        target: Target,
        /// How many items to return.
        k: usize,
        /// Exclude training interactions.
        exclude_seen: bool,
        /// Group scoring path.
        mode: ServeMode,
        /// Deadline in ms (`0` = engine default).
        deadline_ms: u64,
    },
    /// Snapshot the engine metrics.
    Stats {
        /// Correlation id.
        id: u64,
    },
    /// Dump the full metrics registry as a Prometheus-style text page
    /// (counters, stat-labeled gauges, cumulative histograms, windowed
    /// rates, and recent slow requests) — what `obs_top` polls.
    MetricsDump {
        /// Correlation id.
        id: u64,
    },
    /// Hot-swap the serving model to a `groupsa-snapshot` directory.
    /// On success the swap is atomic and no in-flight request is
    /// dropped; on failure the previous model keeps serving.
    Reload {
        /// Correlation id.
        id: u64,
        /// Path of the snapshot directory, resolved on the server.
        dir: String,
    },
    /// Stop accepting connections and shut the server down cleanly.
    Shutdown {
        /// Correlation id.
        id: u64,
    },
}

impl_json_enum!(Request {
    Recommend { id, target, k, exclude_seen, mode, deadline_ms },
    Stats { id },
    MetricsDump { id },
    Reload { id, dir },
    Shutdown { id },
});

impl Request {
    /// The client-chosen correlation id, whatever the variant — used to
    /// address error replies when a request can't be dispatched.
    pub fn id(&self) -> u64 {
        match self {
            Request::Recommend { id, .. }
            | Request::Stats { id }
            | Request::MetricsDump { id }
            | Request::Reload { id, .. }
            | Request::Shutdown { id } => *id,
        }
    }

    /// The engine-level request, when this is a `Recommend`.
    pub fn into_recommend(self) -> Option<RecommendRequest> {
        match self {
            Request::Recommend { id, target, k, exclude_seen, mode, deadline_ms } => {
                Some(RecommendRequest { id, target, k, exclude_seen, mode, deadline_ms })
            }
            _ => None,
        }
    }
}

/// Any reply the server may send.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Ranked recommendations, best first.
    Recommend {
        /// Echoed correlation id.
        id: u64,
        /// Top-k items with raw ranking scores.
        items: Vec<Recommendation>,
    },
    /// Metrics snapshot.
    Stats {
        /// Echoed correlation id.
        id: u64,
        /// The snapshot.
        stats: StatsSnapshot,
    },
    /// The metrics page a `MetricsDump` asked for.
    Metrics {
        /// Echoed correlation id.
        id: u64,
        /// Prometheus-style text page; parse with
        /// [`groupsa_obs::expo::parse`].
        page: String,
    },
    /// The request failed; the engine stays up.
    Error {
        /// Echoed correlation id (`0` when the request didn't parse).
        id: u64,
        /// Human-readable cause.
        error: String,
    },
    /// Acknowledges a `Reload`: the named snapshot is now live.
    Reloaded {
        /// Echoed correlation id.
        id: u64,
    },
    /// Acknowledges a `Shutdown`; the server exits after sending it.
    Bye {
        /// Echoed correlation id.
        id: u64,
    },
}

impl_json_enum!(Response {
    Recommend { id, items },
    Stats { id, stats },
    Metrics { id, page },
    Error { id, error },
    Reloaded { id },
    Bye { id },
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips() {
        let reqs = [
            Request::Recommend {
                id: 7,
                target: Target::Group { id: 3 },
                k: 5,
                exclude_seen: true,
                mode: ServeMode::Voting,
                deadline_ms: 250,
            },
            Request::Recommend {
                id: 8,
                target: Target::User { id: 11 },
                k: 10,
                exclude_seen: false,
                mode: ServeMode::FastLeastMisery,
                deadline_ms: 0,
            },
            Request::Stats { id: 1 },
            Request::MetricsDump { id: 4 },
            Request::Reload { id: 3, dir: "/tmp/snap".into() },
            Request::Shutdown { id: 2 },
        ];
        for r in reqs {
            let text = groupsa_json::to_string(&r);
            assert_eq!(groupsa_json::from_str::<Request>(&text).unwrap(), r);
        }
    }

    #[test]
    fn response_roundtrips_with_bit_exact_scores() {
        let resp = Response::Recommend {
            id: 9,
            items: vec![
                Recommendation { item: 4, score: 0.123_456_79 },
                Recommendation { item: 1, score: -1.0e-20 },
            ],
        };
        let text = groupsa_json::to_string(&resp);
        let back = groupsa_json::from_str::<Response>(&text).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn serve_mode_maps_to_group_mode() {
        assert_eq!(ServeMode::Voting.group_mode(), GroupMode::Voting);
        assert_eq!(ServeMode::FastAverage.group_mode(), GroupMode::Fast(ScoreAggregation::Average));
        assert_eq!(ServeMode::FastLeastMisery.group_mode(), GroupMode::Fast(ScoreAggregation::LeastMisery));
        assert_eq!(
            ServeMode::FastMaxSatisfaction.group_mode(),
            GroupMode::Fast(ScoreAggregation::MaxSatisfaction)
        );
    }

    #[test]
    fn metrics_page_roundtrips_with_newlines_and_quotes() {
        let resp = Response::Metrics {
            id: 12,
            page: "# TYPE a counter\na 1\nb{k=\"v\"} 2\n".into(),
        };
        let text = groupsa_json::to_string(&resp);
        assert!(!text.contains('\n'), "stays one NDJSON line: {text}");
        assert_eq!(groupsa_json::from_str::<Response>(&text).unwrap(), resp);
    }

    #[test]
    fn malformed_request_is_an_error_not_a_panic() {
        assert!(groupsa_json::from_str::<Request>("{\"Recommend\":{}}").is_err());
        assert!(groupsa_json::from_str::<Request>("nonsense").is_err());
    }
}
