//! # groupsa-serve
//!
//! Frozen-model inference serving for GroupSA.
//!
//! Training wants gradients; serving wants throughput. This crate
//! takes a trained [`groupsa_core::GroupSa`] and turns it into a
//! request-serving process in four layers:
//!
//! * [`frozen`] — [`frozen::FrozenModel`] snapshots the model once at
//!   load: every user's enhanced latent factor (Eq. 19) and every
//!   group's post-voting member representations (Eq. 1–6) are
//!   precomputed through the tape-free eval twins in
//!   `groupsa_core::freeze`, so per-request work is embedding lookups
//!   plus the prediction towers. Scores are bit-identical to the
//!   training-graph eval path — the snapshot is a speedup, not an
//!   approximation (generalising the paper's §II-F fast-inference
//!   idea, which *is* also available as a request mode).
//! * [`engine`] — a hermetic worker pool (`std::thread` + channels):
//!   bounded admission queue, deadline-aware load shedding fed by an
//!   observed service-time EWMA, batch-coalescing dequeue, per-request
//!   deadlines, atomic model hot-swap, graceful drain-then-stop
//!   shutdown.
//! * [`protocol`] — the typed NDJSON request/response wire format,
//!   serialised by `groupsa-json`. Responses carry no timing fields,
//!   so response bytes depend only on the request and the snapshot.
//! * [`server`] — NDJSON over TCP with per-connection pipelining:
//!   reads and writes are decoupled so many requests ride the engine
//!   at once, replies matched by echoed id in completion order.
//!   Optional per-connection token-bucket rate limiting; `Stats`
//!   queries answered inline; `Reload` hot-swaps the model with zero
//!   dropped requests; `Shutdown` drains and exits.
//!
//! [`metrics`] threads through all of it: atomic counters and a
//! log₂-bucketed latency histogram, queryable live (`Stats`) and
//! dumped at shutdown.
//!
//! The `groupsa-serve` binary wires these to a dataset/checkpoint and
//! a TCP port; `serve_bench` (in `groupsa-bench`) load-tests either
//! in-process or over TCP.

#![warn(missing_docs)]

pub(crate) mod admission;
pub mod engine;
pub mod error;
pub mod frozen;
pub mod metrics;
pub mod protocol;
pub mod server;
pub(crate) mod swap;

pub use engine::{Engine, EngineConfig};
pub use error::ServeError;
pub use frozen::FrozenModel;
pub use metrics::{CacheStats, Metrics, StatsSnapshot};
pub use protocol::{RecommendRequest, Request, Response, ServeMode, Target};
pub use server::ServerConfig;
