//! An immutable serving snapshot of a trained [`GroupSa`] model.
//!
//! Freezing walks every user and group **once**, precomputing the two
//! expensive intermediates of the scoring paths through the tape-free
//! twins in `groupsa_core::freeze`:
//!
//! * the enhanced user latent factor `h_j` (Eq. 19) per user, and
//! * the post-voting member representations (Eq. 1–6) per group.
//!
//! Per-request work then reduces to embedding lookups, one
//! item-conditioned attention, and the prediction towers — the paper's
//! §II-F observation that the voting network dominates inference
//! latency, applied to the full path instead of approximating it.
//! Frozen scores are bit-identical to the graph eval path (the golden
//! tests in `tests/golden.rs` assert exact equality), so the snapshot
//! is a pure speedup, not an approximation.
//!
//! The snapshot is immutable after construction — worker threads share
//! it through an `Arc` with no locking. Model reload goes through
//! [`FrozenModel::rebuild`], which validates the replacement against
//! the frozen universe and recomputes every cache.

use crate::metrics::CacheStats;
use crate::protocol::Target;
use groupsa_core::{DataContext, GroupMode, GroupSa, Recommendation, TopK};
use groupsa_snapshot::{
    MemoryTables, Quant, Snapshot, SnapshotError, SnapshotMeta, SnapshotTables, SnapshotWriter,
    TableRef, TableStore,
};
use groupsa_tensor::Matrix;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Candidates scored per fused scan step: large enough that the
/// prediction-tower matmuls amortise their setup, small enough that a
/// full-catalog scan never materialises catalog-sized score vectors.
/// Chunking is invisible in the results — every tower op is
/// row-independent, so chunk rows carry the exact bits of a one-shot
/// pass, and pushing them into the bounded [`TopK`] heap in the same
/// candidate order reproduces the one-shot ranking.
const SCAN_CHUNK: usize = 256;

/// A trained model plus its precomputed per-user / per-group caches.
///
/// The caches are read through the [`TableStore`] trait: freezing
/// materializes them in memory ([`MemoryTables`], zero-copy reads),
/// while [`FrozenModel::from_snapshot`] pages them in lazily from a
/// sharded binary snapshot ([`SnapshotTables`]) — the scoring code is
/// identical either way, and for an f32 snapshot so are the bits.
pub struct FrozenModel {
    /// Shared with any hot-swapped successor built by
    /// [`FrozenModel::from_snapshot_shared`]: a reload that only
    /// re-points the tables must not duplicate the weights.
    model: Arc<GroupSa>,
    ctx: Arc<DataContext>,
    /// `h_j` per user and post-voting `l×d` member reps per group.
    tables: Box<dyn TableStore>,
    /// Memory-backed models can recompute their caches from `ctx`;
    /// snapshot-backed ones cannot (the serving context may be a
    /// stub without Top-H lists), so [`FrozenModel::rebuild`] is
    /// gated on this.
    rebuildable: bool,
    latent_hits: AtomicU64,
    rep_hits: AtomicU64,
    rebuilds: AtomicU64,
}

impl FrozenModel {
    /// Snapshots `model` against `ctx`, precomputing every user latent
    /// and every group's member representations.
    ///
    /// # Panics
    /// If the model's embedding tables don't cover the context's
    /// universe.
    pub fn freeze(model: GroupSa, ctx: DataContext) -> Self {
        assert_eq!(model.num_users(), ctx.num_users, "model/context user universe mismatch");
        assert_eq!(model.num_items(), ctx.num_items, "model/context item universe mismatch");
        let (user_latents, group_reps) = Self::precompute(&model, &ctx);
        let dim = model.user_embedding_table().cols();
        Self {
            model: Arc::new(model),
            ctx: Arc::new(ctx),
            tables: Box::new(MemoryTables::new(user_latents, group_reps, dim)),
            rebuildable: true,
            latent_hits: AtomicU64::new(0),
            rep_hits: AtomicU64::new(0),
            rebuilds: AtomicU64::new(0),
        }
    }

    /// Opens a frozen model whose caches page in lazily from a binary
    /// snapshot written by [`FrozenModel::write_snapshot`]. The
    /// snapshot's declared universe must match `model` and `ctx`
    /// (which may be a [`DataContext::serving_stub`] at scale).
    ///
    /// With an f32 snapshot, responses are bit-identical to the
    /// freeze-built model the snapshot was written from; f16/i8
    /// snapshots trade bounded score error for 2–4× less storage.
    pub fn from_snapshot(model: GroupSa, ctx: DataContext, dir: impl AsRef<Path>) -> Result<Self, String> {
        Self::from_snapshot_shared(Arc::new(model), Arc::new(ctx), dir)
    }

    /// [`FrozenModel::from_snapshot`] for callers that already hold the
    /// model and context in `Arc`s — the hot-swap path: publishing a
    /// retrained snapshot re-uses the serving process's weights and
    /// context by reference instead of cloning either.
    pub fn from_snapshot_shared(
        model: Arc<GroupSa>,
        ctx: Arc<DataContext>,
        dir: impl AsRef<Path>,
    ) -> Result<Self, String> {
        let snap = Snapshot::open(dir).map_err(|e| e.to_string())?;
        let meta = *snap.meta();
        if model.num_users() != ctx.num_users || model.num_items() != ctx.num_items {
            return Err(format!(
                "model universe {}u/{}i does not match context {}u/{}i",
                model.num_users(),
                model.num_items(),
                ctx.num_users,
                ctx.num_items
            ));
        }
        if meta.num_users != ctx.num_users
            || meta.num_items != ctx.num_items
            || meta.num_groups != ctx.num_groups()
        {
            return Err(format!(
                "snapshot universe {}u/{}i/{}g does not match context {}u/{}i/{}g",
                meta.num_users,
                meta.num_items,
                meta.num_groups,
                ctx.num_users,
                ctx.num_items,
                ctx.num_groups()
            ));
        }
        let dim = model.user_embedding_table().cols();
        if meta.dim != dim {
            return Err(format!("snapshot dim {} does not match model dim {dim}", meta.dim));
        }
        Ok(Self {
            model,
            ctx,
            tables: Box::new(SnapshotTables::new(snap)),
            rebuildable: false,
            latent_hits: AtomicU64::new(0),
            rep_hits: AtomicU64::new(0),
            rebuilds: AtomicU64::new(0),
        })
    }

    /// Writes this model's caches as a sharded binary snapshot under
    /// `dir` (see DESIGN §13), streaming row by row — works for both
    /// memory- and snapshot-backed tables. Returns the content-derived
    /// snapshot id.
    pub fn write_snapshot(
        &self,
        dir: impl AsRef<Path>,
        shards: u32,
        quant: Quant,
    ) -> Result<u64, SnapshotError> {
        let meta = SnapshotMeta {
            num_users: self.ctx.num_users,
            num_items: self.ctx.num_items,
            num_groups: self.ctx.num_groups(),
            dim: self.model.user_embedding_table().cols(),
            shards,
            quant,
        };
        let mut writer = SnapshotWriter::create(dir, meta)?;
        for u in 0..meta.num_users {
            let held = self.tables.user_latent(u)?;
            writer.push_user(held.as_deref().map(|m| m.as_slice()))?;
        }
        for g in 0..meta.num_groups {
            let reps = self.tables.group_rep(g)?;
            writer.push_group(&reps)?;
        }
        writer.finish()
    }

    /// Bytes of cache data resident in memory: the full table payload
    /// for a freeze-built model, only index structures (presence
    /// bitmap + group index) for a snapshot-backed one.
    pub fn resident_table_bytes(&self) -> usize {
        self.tables.resident_bytes()
    }

    /// Where the caches live: `"memory"` or `"snapshot"`.
    pub fn table_backing(&self) -> &'static str {
        self.tables.backing()
    }

    fn precompute(model: &GroupSa, ctx: &DataContext) -> (Vec<Option<Matrix>>, Vec<Matrix>) {
        let user_latents: Vec<Option<Matrix>> =
            (0..ctx.num_users).map(|u| model.user_latent_frozen(ctx, u)).collect();
        let group_reps: Vec<Matrix> =
            (0..ctx.num_groups()).map(|g| model.member_reps_frozen(ctx, g, &user_latents)).collect();
        (user_latents, group_reps)
    }

    /// Replaces the model (e.g. after a checkpoint reload) and rebuilds
    /// every cache. Rejects models trained for a different universe so
    /// cached id spaces can never dangle.
    pub fn rebuild(&mut self, model: GroupSa) -> Result<(), String> {
        if !self.rebuildable {
            return Err(
                "snapshot-backed frozen model cannot rebuild: its context lacks the training-side \
                 Top-H lists; write a new snapshot from a freeze-built model instead"
                    .to_string(),
            );
        }
        if model.num_users() != self.ctx.num_users || model.num_items() != self.ctx.num_items {
            return Err(format!(
                "model universe {}u/{}i does not match frozen context {}u/{}i",
                model.num_users(),
                model.num_items(),
                self.ctx.num_users,
                self.ctx.num_items
            ));
        }
        let (user_latents, group_reps) = Self::precompute(&model, &self.ctx);
        let dim = model.user_embedding_table().cols();
        self.model = Arc::new(model);
        self.tables = Box::new(MemoryTables::new(user_latents, group_reps, dim));
        self.rebuilds.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// The frozen model (parameter access, config).
    pub fn model(&self) -> &GroupSa {
        &self.model
    }

    /// The frozen context (universe sizes, interaction graphs).
    pub fn context(&self) -> &DataContext {
        &self.ctx
    }

    /// A shared handle to the frozen model, for building a successor
    /// snapshot ([`FrozenModel::from_snapshot_shared`]) without
    /// cloning the weights.
    pub fn model_arc(&self) -> Arc<GroupSa> {
        Arc::clone(&self.model)
    }

    /// A shared handle to the frozen context (see
    /// [`FrozenModel::model_arc`]).
    pub fn context_arc(&self) -> Arc<DataContext> {
        Arc::clone(&self.ctx)
    }

    /// Top-`k` recommendations for `target`, mirroring
    /// [`GroupSa::recommend_for_user`] / `recommend_for_group`
    /// bit-for-bit (same candidate filter, same scores, same
    /// deterministic ranking) while only touching the caches.
    ///
    /// Scoring is a *fused scan*: candidates are scored in
    /// [`SCAN_CHUNK`]-sized slices and pushed straight into a bounded
    /// [`TopK`] heap, so a full-catalog request allocates O(chunk + k)
    /// instead of materialising catalog-sized candidate and score
    /// vectors before selection.
    pub fn recommend(
        &self,
        target: Target,
        k: usize,
        exclude_seen: bool,
        mode: GroupMode,
    ) -> Result<Vec<Recommendation>, String> {
        match target {
            Target::User { id } => {
                if id >= self.ctx.num_users {
                    return Err(format!("user {id} out of range (num_users = {})", self.ctx.num_users));
                }
                let held = self.tables.user_latent(id).map_err(|e| e.to_string())?;
                let latent = held.as_deref();
                let mut counted = false;
                Ok(self.scan(
                    |i| !exclude_seen || !self.ctx.user_item_graph.has_interaction(id, i),
                    k,
                    |chunk, acc| {
                        // Cache-hit accounting is per *request*, not per
                        // chunk — note it on the first scored slice only.
                        if !counted {
                            counted = true;
                            if latent.is_some() {
                                self.latent_hits.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        let scores = self.model.score_user_items_frozen(id, chunk, latent);
                        for (&item, score) in chunk.iter().zip(scores) {
                            acc.push(item, score);
                        }
                    },
                ))
            }
            Target::Group { id } => {
                if id >= self.ctx.num_groups() {
                    return Err(format!("group {id} out of range (num_groups = {})", self.ctx.num_groups()));
                }
                let keep = |i: usize| !exclude_seen || !self.ctx.group_item_graph.has_interaction(id, i);
                match mode {
                    GroupMode::Voting => {
                        let reps = self.tables.group_rep(id).map_err(|e| e.to_string())?;
                        let mut counted = false;
                        Ok(self.scan(keep, k, |chunk, acc| {
                            if !counted {
                                counted = true;
                                self.rep_hits.fetch_add(1, Ordering::Relaxed);
                            }
                            let scores = self.model.score_group_items_frozen(&reps, chunk);
                            for (&item, score) in chunk.iter().zip(scores) {
                                acc.push(item, score);
                            }
                        }))
                    }
                    GroupMode::Fast(agg) => {
                        let members = &self.ctx.members[id];
                        if members.is_empty() {
                            // Mirror the unfused path: empty candidate
                            // sets returned Ok before the member check
                            // ever ran.
                            if (0..self.ctx.num_items).any(keep) {
                                return Err(format!("group {id} has no members"));
                            }
                            return Ok(Vec::new());
                        }
                        let held: Vec<Option<TableRef<'_>>> = members
                            .iter()
                            .map(|&u| self.tables.user_latent(u))
                            .collect::<Result<_, _>>()
                            .map_err(|e| e.to_string())?;
                        let latent_refs: Vec<Option<&Matrix>> =
                            held.iter().map(|h| h.as_deref()).collect();
                        let mut counted = false;
                        Ok(self.scan(keep, k, |chunk, acc| {
                            if !counted {
                                counted = true;
                                let hits = latent_refs.iter().filter(|l| l.is_some()).count() as u64;
                                self.latent_hits.fetch_add(hits, Ordering::Relaxed);
                            }
                            let per_member = self.model.score_users_items_frozen(members, &latent_refs, chunk);
                            for (idx, &item) in chunk.iter().enumerate() {
                                let column: Vec<f32> = per_member.iter().map(|row| row[idx]).collect();
                                acc.push(item, agg.combine(&column));
                            }
                        }))
                    }
                }
            }
        }
    }

    /// Batched top-`k` for many *user* targets that share the full item
    /// catalog as their candidate set (`exclude_seen = false`). Each
    /// chunk is scored for **all** requests through one stacked
    /// prediction-tower pass ([`GroupSa::score_users_items_frozen`]),
    /// so `m` coalesced requests cost one tower traversal instead of
    /// `m`. Per-request results (and cache-hit accounting) are
    /// bit-identical to calling [`FrozenModel::recommend`] per request.
    ///
    /// Each `(user, k)` pair yields its own entry; an out-of-range user
    /// fails individually without poisoning the batch.
    pub fn recommend_users_shared(&self, requests: &[(usize, usize)]) -> Vec<Result<Vec<Recommendation>, String>> {
        let mut results: Vec<Result<Vec<Recommendation>, String>> = requests
            .iter()
            .map(|&(user, _)| {
                if user >= self.ctx.num_users {
                    Err(format!("user {user} out of range (num_users = {})", self.ctx.num_users))
                } else {
                    Ok(Vec::new())
                }
            })
            .collect();
        // Table reads can fail per user (snapshot I/O); a failed read
        // downgrades that one request to an error, like out-of-range.
        let mut valid: Vec<usize> = Vec::with_capacity(requests.len());
        let mut held: Vec<Option<TableRef<'_>>> = Vec::with_capacity(requests.len());
        for j in 0..requests.len() {
            if results[j].is_err() {
                continue;
            }
            match self.tables.user_latent(requests[j].0) {
                Ok(l) => {
                    valid.push(j);
                    held.push(l);
                }
                Err(e) => results[j] = Err(e.to_string()),
            }
        }
        if valid.is_empty() || self.ctx.num_items == 0 {
            return results;
        }
        let users: Vec<usize> = valid.iter().map(|&j| requests[j].0).collect();
        let latent_refs: Vec<Option<&Matrix>> = held.iter().map(|h| h.as_deref()).collect();
        // One hit per request whose user has a cached latent — the same
        // counts the per-request path produces.
        let hits = latent_refs.iter().filter(|l| l.is_some()).count() as u64;
        self.latent_hits.fetch_add(hits, Ordering::Relaxed);

        let mut accs: Vec<TopK> = valid.iter().map(|&j| TopK::new(requests[j].1)).collect();
        let mut start = 0;
        while start < self.ctx.num_items {
            let end = (start + SCAN_CHUNK).min(self.ctx.num_items);
            let chunk: Vec<usize> = (start..end).collect();
            let per_user = self.model.score_users_items_frozen(&users, &latent_refs, &chunk);
            for (acc, scores) in accs.iter_mut().zip(per_user) {
                for (&item, score) in chunk.iter().zip(scores) {
                    acc.push(item, score);
                }
            }
            start = end;
        }
        for (&j, acc) in valid.iter().zip(accs) {
            results[j] = Ok(acc.into_sorted());
        }
        results
    }

    /// Drives one fused filter→score→select scan over the catalog:
    /// candidates passing `keep` are collected into [`SCAN_CHUNK`]-item
    /// slices, handed to `score_chunk` (which pushes scored items into
    /// the accumulator), and ranked by the bounded heap at the end.
    fn scan(
        &self,
        keep: impl Fn(usize) -> bool,
        k: usize,
        mut score_chunk: impl FnMut(&[usize], &mut TopK),
    ) -> Vec<Recommendation> {
        let mut acc = TopK::new(k);
        let mut chunk: Vec<usize> = Vec::with_capacity(SCAN_CHUNK.min(self.ctx.num_items));
        for i in 0..self.ctx.num_items {
            if !keep(i) {
                continue;
            }
            chunk.push(i);
            if chunk.len() == SCAN_CHUNK {
                score_chunk(&chunk, &mut acc);
                chunk.clear();
            }
        }
        if !chunk.is_empty() {
            score_chunk(&chunk, &mut acc);
        }
        acc.into_sorted()
    }

    /// Point-in-time cache counters for the metrics snapshot.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            latent_hits: self.latent_hits.load(Ordering::Relaxed),
            group_rep_hits: self.rep_hits.load(Ordering::Relaxed),
            rebuilds: self.rebuilds.load(Ordering::Relaxed),
            num_users: self.ctx.num_users,
            num_items: self.ctx.num_items,
            num_groups: self.ctx.num_groups(),
        }
    }
}
