//! An immutable serving snapshot of a trained [`GroupSa`] model.
//!
//! Freezing walks every user and group **once**, precomputing the two
//! expensive intermediates of the scoring paths through the tape-free
//! twins in `groupsa_core::freeze`:
//!
//! * the enhanced user latent factor `h_j` (Eq. 19) per user, and
//! * the post-voting member representations (Eq. 1–6) per group.
//!
//! Per-request work then reduces to embedding lookups, one
//! item-conditioned attention, and the prediction towers — the paper's
//! §II-F observation that the voting network dominates inference
//! latency, applied to the full path instead of approximating it.
//! Frozen scores are bit-identical to the graph eval path (the golden
//! tests in `tests/golden.rs` assert exact equality), so the snapshot
//! is a pure speedup, not an approximation.
//!
//! The snapshot is immutable after construction — worker threads share
//! it through an `Arc` with no locking. Model reload goes through
//! [`FrozenModel::rebuild`], which validates the replacement against
//! the frozen universe and recomputes every cache.

use crate::metrics::CacheStats;
use crate::protocol::Target;
use groupsa_core::{DataContext, GroupMode, GroupSa, Recommendation, TopK};
use groupsa_tensor::Matrix;
use std::sync::atomic::{AtomicU64, Ordering};

/// Candidates scored per fused scan step: large enough that the
/// prediction-tower matmuls amortise their setup, small enough that a
/// full-catalog scan never materialises catalog-sized score vectors.
/// Chunking is invisible in the results — every tower op is
/// row-independent, so chunk rows carry the exact bits of a one-shot
/// pass, and pushing them into the bounded [`TopK`] heap in the same
/// candidate order reproduces the one-shot ranking.
const SCAN_CHUNK: usize = 256;

/// A trained model plus its precomputed per-user / per-group caches.
pub struct FrozenModel {
    model: GroupSa,
    ctx: DataContext,
    /// `h_j` per user (`None`: user modeling ablated or cold user).
    user_latents: Vec<Option<Matrix>>,
    /// Post-voting `l×d` member representations per group.
    group_reps: Vec<Matrix>,
    latent_hits: AtomicU64,
    rep_hits: AtomicU64,
    rebuilds: AtomicU64,
}

impl FrozenModel {
    /// Snapshots `model` against `ctx`, precomputing every user latent
    /// and every group's member representations.
    ///
    /// # Panics
    /// If the model's embedding tables don't cover the context's
    /// universe.
    pub fn freeze(model: GroupSa, ctx: DataContext) -> Self {
        assert_eq!(model.num_users(), ctx.num_users, "model/context user universe mismatch");
        assert_eq!(model.num_items(), ctx.num_items, "model/context item universe mismatch");
        let (user_latents, group_reps) = Self::precompute(&model, &ctx);
        Self {
            model,
            ctx,
            user_latents,
            group_reps,
            latent_hits: AtomicU64::new(0),
            rep_hits: AtomicU64::new(0),
            rebuilds: AtomicU64::new(0),
        }
    }

    fn precompute(model: &GroupSa, ctx: &DataContext) -> (Vec<Option<Matrix>>, Vec<Matrix>) {
        let user_latents: Vec<Option<Matrix>> =
            (0..ctx.num_users).map(|u| model.user_latent_frozen(ctx, u)).collect();
        let group_reps: Vec<Matrix> =
            (0..ctx.num_groups()).map(|g| model.member_reps_frozen(ctx, g, &user_latents)).collect();
        (user_latents, group_reps)
    }

    /// Replaces the model (e.g. after a checkpoint reload) and rebuilds
    /// every cache. Rejects models trained for a different universe so
    /// cached id spaces can never dangle.
    pub fn rebuild(&mut self, model: GroupSa) -> Result<(), String> {
        if model.num_users() != self.ctx.num_users || model.num_items() != self.ctx.num_items {
            return Err(format!(
                "model universe {}u/{}i does not match frozen context {}u/{}i",
                model.num_users(),
                model.num_items(),
                self.ctx.num_users,
                self.ctx.num_items
            ));
        }
        let (user_latents, group_reps) = Self::precompute(&model, &self.ctx);
        self.model = model;
        self.user_latents = user_latents;
        self.group_reps = group_reps;
        self.rebuilds.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// The frozen model (parameter access, config).
    pub fn model(&self) -> &GroupSa {
        &self.model
    }

    /// The frozen context (universe sizes, interaction graphs).
    pub fn context(&self) -> &DataContext {
        &self.ctx
    }

    /// Top-`k` recommendations for `target`, mirroring
    /// [`GroupSa::recommend_for_user`] / `recommend_for_group`
    /// bit-for-bit (same candidate filter, same scores, same
    /// deterministic ranking) while only touching the caches.
    ///
    /// Scoring is a *fused scan*: candidates are scored in
    /// [`SCAN_CHUNK`]-sized slices and pushed straight into a bounded
    /// [`TopK`] heap, so a full-catalog request allocates O(chunk + k)
    /// instead of materialising catalog-sized candidate and score
    /// vectors before selection.
    pub fn recommend(
        &self,
        target: Target,
        k: usize,
        exclude_seen: bool,
        mode: GroupMode,
    ) -> Result<Vec<Recommendation>, String> {
        match target {
            Target::User { id } => {
                if id >= self.ctx.num_users {
                    return Err(format!("user {id} out of range (num_users = {})", self.ctx.num_users));
                }
                let latent = self.user_latents[id].as_ref();
                let mut counted = false;
                Ok(self.scan(
                    |i| !exclude_seen || !self.ctx.user_item_graph.has_interaction(id, i),
                    k,
                    |chunk, acc| {
                        // Cache-hit accounting is per *request*, not per
                        // chunk — note it on the first scored slice only.
                        if !counted {
                            counted = true;
                            if latent.is_some() {
                                self.latent_hits.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        let scores = self.model.score_user_items_frozen(id, chunk, latent);
                        for (&item, score) in chunk.iter().zip(scores) {
                            acc.push(item, score);
                        }
                    },
                ))
            }
            Target::Group { id } => {
                if id >= self.ctx.num_groups() {
                    return Err(format!("group {id} out of range (num_groups = {})", self.ctx.num_groups()));
                }
                let keep = |i: usize| !exclude_seen || !self.ctx.group_item_graph.has_interaction(id, i);
                match mode {
                    GroupMode::Voting => {
                        let mut counted = false;
                        Ok(self.scan(keep, k, |chunk, acc| {
                            if !counted {
                                counted = true;
                                self.rep_hits.fetch_add(1, Ordering::Relaxed);
                            }
                            let scores = self.model.score_group_items_frozen(&self.group_reps[id], chunk);
                            for (&item, score) in chunk.iter().zip(scores) {
                                acc.push(item, score);
                            }
                        }))
                    }
                    GroupMode::Fast(agg) => {
                        let members = &self.ctx.members[id];
                        if members.is_empty() {
                            // Mirror the unfused path: empty candidate
                            // sets returned Ok before the member check
                            // ever ran.
                            if (0..self.ctx.num_items).any(keep) {
                                return Err(format!("group {id} has no members"));
                            }
                            return Ok(Vec::new());
                        }
                        let latent_refs: Vec<Option<&Matrix>> =
                            members.iter().map(|&u| self.user_latents[u].as_ref()).collect();
                        let mut counted = false;
                        Ok(self.scan(keep, k, |chunk, acc| {
                            if !counted {
                                counted = true;
                                let hits = latent_refs.iter().filter(|l| l.is_some()).count() as u64;
                                self.latent_hits.fetch_add(hits, Ordering::Relaxed);
                            }
                            let per_member = self.model.score_users_items_frozen(members, &latent_refs, chunk);
                            for (idx, &item) in chunk.iter().enumerate() {
                                let column: Vec<f32> = per_member.iter().map(|row| row[idx]).collect();
                                acc.push(item, agg.combine(&column));
                            }
                        }))
                    }
                }
            }
        }
    }

    /// Batched top-`k` for many *user* targets that share the full item
    /// catalog as their candidate set (`exclude_seen = false`). Each
    /// chunk is scored for **all** requests through one stacked
    /// prediction-tower pass ([`GroupSa::score_users_items_frozen`]),
    /// so `m` coalesced requests cost one tower traversal instead of
    /// `m`. Per-request results (and cache-hit accounting) are
    /// bit-identical to calling [`FrozenModel::recommend`] per request.
    ///
    /// Each `(user, k)` pair yields its own entry; an out-of-range user
    /// fails individually without poisoning the batch.
    pub fn recommend_users_shared(&self, requests: &[(usize, usize)]) -> Vec<Result<Vec<Recommendation>, String>> {
        let mut results: Vec<Result<Vec<Recommendation>, String>> = requests
            .iter()
            .map(|&(user, _)| {
                if user >= self.ctx.num_users {
                    Err(format!("user {user} out of range (num_users = {})", self.ctx.num_users))
                } else {
                    Ok(Vec::new())
                }
            })
            .collect();
        let valid: Vec<usize> = (0..requests.len()).filter(|&j| results[j].is_ok()).collect();
        if valid.is_empty() || self.ctx.num_items == 0 {
            return results;
        }
        let users: Vec<usize> = valid.iter().map(|&j| requests[j].0).collect();
        let latent_refs: Vec<Option<&Matrix>> = users.iter().map(|&u| self.user_latents[u].as_ref()).collect();
        // One hit per request whose user has a cached latent — the same
        // counts the per-request path produces.
        let hits = latent_refs.iter().filter(|l| l.is_some()).count() as u64;
        self.latent_hits.fetch_add(hits, Ordering::Relaxed);

        let mut accs: Vec<TopK> = valid.iter().map(|&j| TopK::new(requests[j].1)).collect();
        let mut start = 0;
        while start < self.ctx.num_items {
            let end = (start + SCAN_CHUNK).min(self.ctx.num_items);
            let chunk: Vec<usize> = (start..end).collect();
            let per_user = self.model.score_users_items_frozen(&users, &latent_refs, &chunk);
            for (acc, scores) in accs.iter_mut().zip(per_user) {
                for (&item, score) in chunk.iter().zip(scores) {
                    acc.push(item, score);
                }
            }
            start = end;
        }
        for (&j, acc) in valid.iter().zip(accs) {
            results[j] = Ok(acc.into_sorted());
        }
        results
    }

    /// Drives one fused filter→score→select scan over the catalog:
    /// candidates passing `keep` are collected into [`SCAN_CHUNK`]-item
    /// slices, handed to `score_chunk` (which pushes scored items into
    /// the accumulator), and ranked by the bounded heap at the end.
    fn scan(
        &self,
        keep: impl Fn(usize) -> bool,
        k: usize,
        mut score_chunk: impl FnMut(&[usize], &mut TopK),
    ) -> Vec<Recommendation> {
        let mut acc = TopK::new(k);
        let mut chunk: Vec<usize> = Vec::with_capacity(SCAN_CHUNK.min(self.ctx.num_items));
        for i in 0..self.ctx.num_items {
            if !keep(i) {
                continue;
            }
            chunk.push(i);
            if chunk.len() == SCAN_CHUNK {
                score_chunk(&chunk, &mut acc);
                chunk.clear();
            }
        }
        if !chunk.is_empty() {
            score_chunk(&chunk, &mut acc);
        }
        acc.into_sorted()
    }

    /// Point-in-time cache counters for the metrics snapshot.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            latent_hits: self.latent_hits.load(Ordering::Relaxed),
            group_rep_hits: self.rep_hits.load(Ordering::Relaxed),
            rebuilds: self.rebuilds.load(Ordering::Relaxed),
            num_users: self.ctx.num_users,
            num_items: self.ctx.num_items,
            num_groups: self.ctx.num_groups(),
        }
    }
}
