//! An immutable serving snapshot of a trained [`GroupSa`] model.
//!
//! Freezing walks every user and group **once**, precomputing the two
//! expensive intermediates of the scoring paths through the tape-free
//! twins in `groupsa_core::freeze`:
//!
//! * the enhanced user latent factor `h_j` (Eq. 19) per user, and
//! * the post-voting member representations (Eq. 1–6) per group.
//!
//! Per-request work then reduces to embedding lookups, one
//! item-conditioned attention, and the prediction towers — the paper's
//! §II-F observation that the voting network dominates inference
//! latency, applied to the full path instead of approximating it.
//! Frozen scores are bit-identical to the graph eval path (the golden
//! tests in `tests/golden.rs` assert exact equality), so the snapshot
//! is a pure speedup, not an approximation.
//!
//! The snapshot is immutable after construction — worker threads share
//! it through an `Arc` with no locking. Model reload goes through
//! [`FrozenModel::rebuild`], which validates the replacement against
//! the frozen universe and recomputes every cache.

use crate::metrics::CacheStats;
use crate::protocol::Target;
use groupsa_core::{top_k, DataContext, GroupMode, GroupSa, Recommendation};
use groupsa_tensor::Matrix;
use std::sync::atomic::{AtomicU64, Ordering};

/// A trained model plus its precomputed per-user / per-group caches.
pub struct FrozenModel {
    model: GroupSa,
    ctx: DataContext,
    /// `h_j` per user (`None`: user modeling ablated or cold user).
    user_latents: Vec<Option<Matrix>>,
    /// Post-voting `l×d` member representations per group.
    group_reps: Vec<Matrix>,
    latent_hits: AtomicU64,
    rep_hits: AtomicU64,
    rebuilds: AtomicU64,
}

impl FrozenModel {
    /// Snapshots `model` against `ctx`, precomputing every user latent
    /// and every group's member representations.
    ///
    /// # Panics
    /// If the model's embedding tables don't cover the context's
    /// universe.
    pub fn freeze(model: GroupSa, ctx: DataContext) -> Self {
        assert_eq!(model.num_users(), ctx.num_users, "model/context user universe mismatch");
        assert_eq!(model.num_items(), ctx.num_items, "model/context item universe mismatch");
        let (user_latents, group_reps) = Self::precompute(&model, &ctx);
        Self {
            model,
            ctx,
            user_latents,
            group_reps,
            latent_hits: AtomicU64::new(0),
            rep_hits: AtomicU64::new(0),
            rebuilds: AtomicU64::new(0),
        }
    }

    fn precompute(model: &GroupSa, ctx: &DataContext) -> (Vec<Option<Matrix>>, Vec<Matrix>) {
        let user_latents: Vec<Option<Matrix>> =
            (0..ctx.num_users).map(|u| model.user_latent_frozen(ctx, u)).collect();
        let group_reps: Vec<Matrix> =
            (0..ctx.num_groups()).map(|g| model.member_reps_frozen(ctx, g, &user_latents)).collect();
        (user_latents, group_reps)
    }

    /// Replaces the model (e.g. after a checkpoint reload) and rebuilds
    /// every cache. Rejects models trained for a different universe so
    /// cached id spaces can never dangle.
    pub fn rebuild(&mut self, model: GroupSa) -> Result<(), String> {
        if model.num_users() != self.ctx.num_users || model.num_items() != self.ctx.num_items {
            return Err(format!(
                "model universe {}u/{}i does not match frozen context {}u/{}i",
                model.num_users(),
                model.num_items(),
                self.ctx.num_users,
                self.ctx.num_items
            ));
        }
        let (user_latents, group_reps) = Self::precompute(&model, &self.ctx);
        self.model = model;
        self.user_latents = user_latents;
        self.group_reps = group_reps;
        self.rebuilds.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// The frozen model (parameter access, config).
    pub fn model(&self) -> &GroupSa {
        &self.model
    }

    /// The frozen context (universe sizes, interaction graphs).
    pub fn context(&self) -> &DataContext {
        &self.ctx
    }

    /// Top-`k` recommendations for `target`, mirroring
    /// [`GroupSa::recommend_for_user`] / `recommend_for_group`
    /// bit-for-bit (same candidate filter, same scores, same
    /// deterministic ranking) while only touching the caches.
    pub fn recommend(
        &self,
        target: Target,
        k: usize,
        exclude_seen: bool,
        mode: GroupMode,
    ) -> Result<Vec<Recommendation>, String> {
        let candidates = match target {
            Target::User { id } => {
                if id >= self.ctx.num_users {
                    return Err(format!("user {id} out of range (num_users = {})", self.ctx.num_users));
                }
                self.candidates(|i| !exclude_seen || !self.ctx.user_item_graph.has_interaction(id, i))
            }
            Target::Group { id } => {
                if id >= self.ctx.num_groups() {
                    return Err(format!("group {id} out of range (num_groups = {})", self.ctx.num_groups()));
                }
                self.candidates(|i| !exclude_seen || !self.ctx.group_item_graph.has_interaction(id, i))
            }
        };
        if candidates.is_empty() {
            return Ok(Vec::new());
        }
        let scores = match target {
            Target::User { id } => self.user_scores(id, &candidates),
            Target::Group { id } => match mode {
                GroupMode::Voting => {
                    self.rep_hits.fetch_add(1, Ordering::Relaxed);
                    self.model.score_group_items_frozen(&self.group_reps[id], &candidates)
                }
                GroupMode::Fast(agg) => {
                    let members = &self.ctx.members[id];
                    if members.is_empty() {
                        return Err(format!("group {id} has no members"));
                    }
                    let per_member: Vec<Vec<f32>> =
                        members.iter().map(|&u| self.user_scores(u, &candidates)).collect();
                    (0..candidates.len())
                        .map(|idx| {
                            let column: Vec<f32> = per_member.iter().map(|row| row[idx]).collect();
                            agg.combine(&column)
                        })
                        .collect()
                }
            },
        };
        Ok(top_k(
            candidates
                .into_iter()
                .zip(scores)
                .map(|(item, score)| Recommendation { item, score })
                .collect(),
            k,
        ))
    }

    fn candidates(&self, keep: impl Fn(usize) -> bool) -> Vec<usize> {
        (0..self.ctx.num_items).filter(|&i| keep(i)).collect()
    }

    fn user_scores(&self, user: usize, items: &[usize]) -> Vec<f32> {
        let latent = self.user_latents[user].as_ref();
        if latent.is_some() {
            self.latent_hits.fetch_add(1, Ordering::Relaxed);
        }
        self.model.score_user_items_frozen(user, items, latent)
    }

    /// Point-in-time cache counters for the metrics snapshot.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            latent_hits: self.latent_hits.load(Ordering::Relaxed),
            group_rep_hits: self.rep_hits.load(Ordering::Relaxed),
            rebuilds: self.rebuilds.load(Ordering::Relaxed),
            num_users: self.ctx.num_users,
            num_items: self.ctx.num_items,
            num_groups: self.ctx.num_groups(),
        }
    }
}
