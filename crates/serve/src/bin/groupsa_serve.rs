//! The `groupsa-serve` binary: freeze a model and serve NDJSON over
//! TCP.
//!
//! ```text
//! groupsa-serve [--port N] [--workers N] [--queue N] [--batch N]
//!               [--deadline-ms N] [--shed true|false]
//!               [--rate-limit N] [--rate-burst N]
//!               [--obs-sample 1/N]
//!               [--dataset tiny|yelp|douban]
//!               [--seed N] [--checkpoint PATH]
//!               [--snapshot-export DIR]
//! ```
//!
//! `--port 0` (the default) binds an ephemeral port; the chosen
//! address is announced on stdout as `LISTENING 127.0.0.1:<port>` so
//! scripts (e.g. the tier-1 smoke test) can discover it. Without
//! `--checkpoint`, an untrained model is frozen — scores are then
//! only useful for protocol/throughput testing, which is exactly what
//! the smoke test and load generator need.
//!
//! `--snapshot-export DIR` writes the freshly-frozen model as a
//! `groupsa-snapshot` directory before serving — the artifact a
//! client's `Reload` request can later hot-swap in (announced as
//! `SNAPSHOT <dir>` on stdout). `--rate-limit`/`--rate-burst` bound
//! each connection's request rate; `--shed false` disables
//! deadline-aware load shedding (on by default).
//!
//! `--obs-sample 1/N` turns on request-lifecycle telemetry (stage
//! records for every Nth request plus slow-request capture, sliding
//! windows, `MetricsDump` detail), overriding the `GROUPSA_OBS_SAMPLE`
//! environment. Without either, telemetry is off and the serve path
//! pays one boolean load per request.

use groupsa_core::{DataContext, GroupSa, GroupSaConfig};
use groupsa_data::synthetic::{self, SyntheticConfig};
use groupsa_obs::TelemetryConfig;
use groupsa_serve::engine::{Engine, EngineConfig};
use groupsa_serve::frozen::FrozenModel;
use std::collections::HashMap;
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;

fn parse_flags() -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut args = std::env::args().skip(1);
    while let Some(key) = args.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("unexpected argument `{key}` (flags are --key value)"));
        };
        let value = args.next().ok_or_else(|| format!("--{name} needs a value"))?;
        flags.insert(name.to_string(), value);
    }
    Ok(flags)
}

fn num<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{key}: cannot parse `{v}`")),
    }
}

fn tiny_dataset(seed: u64) -> SyntheticConfig {
    SyntheticConfig {
        name: format!("serve-tiny-{seed}"),
        seed,
        num_users: 60,
        num_items: 40,
        num_groups: 25,
        num_topics: 4,
        latent_dim: 4,
        avg_items_per_user: 8.0,
        avg_friends_per_user: 5.0,
        avg_items_per_group: 1.5,
        mean_group_size: 3.5,
        zipf_exponent: 0.8,
        homophily: 0.8,
        social_influence: 0.3,
        expertise_sharpness: 2.0,
        taste_temperature: 0.3,
        consensus_blend: 0.5,
        connectedness_boost: 1.0,
    }
}

fn run() -> Result<(), String> {
    let flags = parse_flags()?;
    let port: u16 = num(&flags, "port", 0)?;
    let cfg = EngineConfig {
        workers: num(&flags, "workers", 2)?,
        queue_capacity: num(&flags, "queue", 256)?,
        max_batch: num(&flags, "batch", 8)?,
        default_deadline_ms: num(&flags, "deadline-ms", 0)?,
        shed: num(&flags, "shed", true)?,
        // The flag beats the environment; `None` falls back to
        // `GROUPSA_OBS_SAMPLE` / `GROUPSA_OBS_SLOW_US`.
        telemetry: flags
            .get("obs-sample")
            .map(|spec| TelemetryConfig::sampling(TelemetryConfig::parse_sample(spec))),
    };
    let server_cfg = groupsa_serve::ServerConfig {
        rate_limit: num(&flags, "rate-limit", 0)?,
        rate_burst: num(&flags, "rate-burst", 0)?,
    };
    let seed: u64 = num(&flags, "seed", 1)?;
    let dataset_name = flags.get("dataset").map(String::as_str).unwrap_or("tiny");
    let (syn, model_cfg) = match dataset_name {
        "tiny" => (tiny_dataset(seed), GroupSaConfig::tiny()),
        "yelp" => (synthetic::yelp_sim(), GroupSaConfig::paper()),
        "douban" => (synthetic::douban_sim(), GroupSaConfig::paper()),
        other => return Err(format!("--dataset: unknown `{other}` (tiny|yelp|douban)")),
    };

    eprintln!("generating dataset `{}`...", syn.name);
    let dataset = synthetic::generate(&syn);
    let model = match flags.get("checkpoint") {
        Some(path) => {
            eprintln!("loading checkpoint {path}...");
            GroupSa::load(path).map_err(|e| format!("--checkpoint {path}: {e}"))?
        }
        None => GroupSa::new(model_cfg, dataset.num_users, dataset.num_items),
    };
    let ctx = DataContext::from_train_view(&dataset, model.config());

    eprintln!(
        "freezing model ({} users, {} items, {} groups)...",
        ctx.num_users,
        ctx.num_items,
        ctx.num_groups()
    );
    let frozen = Arc::new(FrozenModel::freeze(model, ctx));
    if let Some(dir) = flags.get("snapshot-export") {
        frozen
            .write_snapshot(dir, 1, groupsa_snapshot::Quant::F32)
            .map_err(|e| format!("--snapshot-export {dir}: {e}"))?;
        // Announced on stdout like the address, so a smoke test can
        // round-trip the directory straight into a `Reload` request.
        println!("SNAPSHOT {dir}");
    }
    let engine = Engine::start(frozen, cfg);
    // A run marker at the head of any `GROUPSA_TRACE` capture, so
    // serve-path traces identify themselves to `trace_check` readers.
    groupsa_obs::emit("run", &[("label", groupsa_obs::to_json(&"groupsa_serve"))]);

    let listener =
        TcpListener::bind(("127.0.0.1", port)).map_err(|e| format!("bind 127.0.0.1:{port}: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    // Announced on stdout (diagnostics go to stderr) so callers can
    // `awk` the ephemeral port out of the log.
    println!("LISTENING {addr}");

    groupsa_serve::server::run_with(listener, Arc::clone(&engine), server_cfg)
        .map_err(|e| e.to_string())?;
    let stats = engine.stats();
    println!("{}", groupsa_json::to_string_pretty(&stats));
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("groupsa-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
