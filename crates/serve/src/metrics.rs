//! Lock-free engine metrics: atomic counters plus a log₂-bucketed
//! latency histogram, snapshotted on demand (`stats` requests) and on
//! shutdown.

use groupsa_json::impl_json_struct;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log₂ latency buckets; bucket `i > 0` covers
/// `[2^(i−1), 2^i)` microseconds, bucket 0 covers `< 1 µs`. 2⁸⁹ µs is
/// far beyond any real latency, so the top bucket never saturates in
/// practice.
const LATENCY_BUCKETS: usize = 40;

/// Live counters, updated by workers and the admission path with
/// relaxed atomics (metrics never synchronise data).
#[derive(Debug)]
pub struct Metrics {
    submitted: AtomicU64,
    completed: AtomicU64,
    errors: AtomicU64,
    rejected: AtomicU64,
    expired: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    max_batch: AtomicU64,
    max_queue_depth: AtomicU64,
    latency_sum_us: AtomicU64,
    latency: [AtomicU64; LATENCY_BUCKETS],
}

fn bucket_of(micros: u64) -> usize {
    ((u64::BITS - micros.leading_zeros()) as usize).min(LATENCY_BUCKETS - 1)
}

/// Upper bound (µs) of a bucket — the value percentiles report.
fn bucket_upper(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else {
        1u64 << bucket
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
            max_queue_depth: AtomicU64::new(0),
            latency_sum_us: AtomicU64::new(0),
            latency: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Counts one admitted request.
    pub fn note_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request rejected at admission (queue full / engine
    /// stopping).
    pub fn note_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request dropped because its deadline passed while it
    /// waited in the queue. Disjoint from [`Metrics::note_error`]: a
    /// drained request is counted under exactly one of
    /// completed/errors/expired, so `submitted = completed + errors +
    /// expired` once the queue is drained.
    pub fn note_expired(&self) {
        self.expired.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request answered with a (non-deadline) error.
    pub fn note_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one successfully answered request and records its
    /// admission-to-reply latency.
    pub fn note_completed(&self, latency: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        self.latency_sum_us.fetch_add(us, Ordering::Relaxed);
        self.latency[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one coalesced batch of `n` requests popped together.
    pub fn note_batch(&self, n: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests.fetch_add(n as u64, Ordering::Relaxed);
        self.max_batch.fetch_max(n as u64, Ordering::Relaxed);
    }

    /// Records the queue depth observed right after an enqueue.
    pub fn note_queue_depth(&self, depth: usize) {
        self.max_queue_depth.fetch_max(depth as u64, Ordering::Relaxed);
    }

    /// A consistent-enough point-in-time copy (relaxed reads; exact
    /// once the engine is quiescent, e.g. at shutdown).
    pub fn snapshot(&self, cache: CacheStats) -> StatsSnapshot {
        let counts: Vec<u64> = self.latency.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        let completed = self.completed.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let batched = self.batched_requests.load(Ordering::Relaxed);
        StatsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed,
            errors: self.errors.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            batches,
            mean_batch: if batches == 0 { 0.0 } else { batched as f64 / batches as f64 },
            max_batch: self.max_batch.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            mean_latency_us: if completed == 0 {
                0.0
            } else {
                self.latency_sum_us.load(Ordering::Relaxed) as f64 / completed as f64
            },
            p50_latency_us: percentile(&counts, total, 0.50),
            p95_latency_us: percentile(&counts, total, 0.95),
            p99_latency_us: percentile(&counts, total, 0.99),
            latent_cache_hits: cache.latent_hits,
            group_rep_cache_hits: cache.group_rep_hits,
            rebuilds: cache.rebuilds,
            num_users: cache.num_users,
            num_items: cache.num_items,
            num_groups: cache.num_groups,
        }
    }
}

/// Histogram percentile: the upper bound of the first bucket whose
/// cumulative count reaches `q·total` — exact to within the bucket's
/// power-of-two resolution.
fn percentile(counts: &[u64], total: u64, q: f64) -> u64 {
    if total == 0 {
        return 0;
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut cum = 0;
    for (i, &c) in counts.iter().enumerate() {
        cum += c;
        if cum >= rank {
            return bucket_upper(i);
        }
    }
    bucket_upper(counts.len() - 1)
}

/// Cache statistics contributed by the `FrozenModel`, merged into the
/// engine snapshot.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// User-latent cache reads that found a precomputed entry.
    pub latent_hits: u64,
    /// Group-representation cache reads.
    pub group_rep_hits: u64,
    /// Times the snapshot was rebuilt from a reloaded model.
    pub rebuilds: u64,
    /// Users in the frozen universe.
    pub num_users: usize,
    /// Items in the frozen universe.
    pub num_items: usize,
    /// Groups in the frozen universe.
    pub num_groups: usize,
}

/// The queryable/serialisable metrics snapshot (`stats` responses,
/// shutdown dump, bench artifacts). Latency percentiles are
/// histogram-derived upper bounds in microseconds (power-of-two
/// resolution); the mean is exact.
#[derive(Clone, Debug, PartialEq)]
pub struct StatsSnapshot {
    /// Requests admitted to the queue.
    pub submitted: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests answered with a non-deadline error.
    pub errors: u64,
    /// Requests refused at admission (never counted as submitted).
    pub rejected: u64,
    /// Requests dropped on deadline expiry (disjoint from `errors`;
    /// after a drain, `submitted == completed + errors + expired`).
    pub expired: u64,
    /// Coalesced batches executed.
    pub batches: u64,
    /// Mean requests per batch.
    pub mean_batch: f64,
    /// Largest batch.
    pub max_batch: u64,
    /// Deepest queue observed at enqueue time.
    pub max_queue_depth: u64,
    /// Mean admission-to-reply latency (µs, exact).
    pub mean_latency_us: f64,
    /// Median latency (µs, bucket upper bound).
    pub p50_latency_us: u64,
    /// 95th-percentile latency (µs, bucket upper bound).
    pub p95_latency_us: u64,
    /// 99th-percentile latency (µs, bucket upper bound).
    pub p99_latency_us: u64,
    /// User-latent cache hits.
    pub latent_cache_hits: u64,
    /// Group-representation cache hits.
    pub group_rep_cache_hits: u64,
    /// Frozen-snapshot rebuilds since load.
    pub rebuilds: u64,
    /// Users in the frozen universe (lets clients pick valid ids).
    pub num_users: usize,
    /// Items in the frozen universe.
    pub num_items: usize,
    /// Groups in the frozen universe.
    pub num_groups: usize,
}

impl_json_struct!(StatsSnapshot {
    submitted,
    completed,
    errors,
    rejected,
    expired,
    batches,
    mean_batch,
    max_batch,
    max_queue_depth,
    mean_latency_us,
    p50_latency_us,
    p95_latency_us,
    p99_latency_us,
    latent_cache_hits,
    group_rep_cache_hits,
    rebuilds,
    num_users,
    num_items,
    num_groups,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn percentiles_report_bucket_upper_bounds() {
        let m = Metrics::new();
        // 90 fast requests (~8 µs), 10 slow (~1000 µs).
        for _ in 0..90 {
            m.note_completed(Duration::from_micros(8));
        }
        for _ in 0..10 {
            m.note_completed(Duration::from_micros(1000));
        }
        let s = m.snapshot(CacheStats::default());
        assert_eq!(s.completed, 100);
        assert_eq!(s.p50_latency_us, 16, "8 µs lands in (4,8] → upper bound 16");
        assert_eq!(s.p95_latency_us, 1024);
        assert_eq!(s.p99_latency_us, 1024);
        assert!((s.mean_latency_us - (90.0 * 8.0 + 10.0 * 1000.0) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn batch_and_queue_stats_track_extremes() {
        let m = Metrics::new();
        m.note_batch(1);
        m.note_batch(7);
        m.note_batch(4);
        m.note_queue_depth(3);
        m.note_queue_depth(11);
        m.note_queue_depth(2);
        let s = m.snapshot(CacheStats::default());
        assert_eq!(s.batches, 3);
        assert_eq!(s.max_batch, 7);
        assert!((s.mean_batch - 4.0).abs() < 1e-12);
        assert_eq!(s.max_queue_depth, 11);
    }

    #[test]
    fn empty_metrics_snapshot_is_all_zero() {
        let s = Metrics::new().snapshot(CacheStats::default());
        assert_eq!(s.p50_latency_us, 0);
        assert_eq!(s.mean_latency_us, 0.0);
        assert_eq!(s.mean_batch, 0.0);
    }

    #[test]
    fn snapshot_roundtrips_as_json() {
        let m = Metrics::new();
        m.note_submitted();
        m.note_completed(Duration::from_micros(42));
        let s = m.snapshot(CacheStats { num_users: 3, ..CacheStats::default() });
        let text = groupsa_json::to_string(&s);
        assert_eq!(groupsa_json::from_str::<StatsSnapshot>(&text).unwrap(), s);
    }
}
