//! Engine metrics, built on the `groupsa-obs` primitives: atomic
//! counters, last+high-watermark gauges, and log₂-bucketed histograms
//! with derived p50/p95/p99, snapshotted on demand (`stats` requests)
//! and on shutdown.
//!
//! The primitives are *embedded* (not registered in the process-global
//! registry) so every [`Metrics`] instance — one per engine — has its
//! own counters; tests that spin up several engines in one process
//! never share state. What this module adds on top of `groupsa-obs` is
//! only the request-accounting vocabulary (submitted / completed /
//! errors / expired / shed / rejected / limited and the conservation
//! law between them: every submitted request lands in exactly one of
//! completed/errors/expired/shed, while rejected and limited requests
//! are answered before ever counting as submitted) and the
//! serialisable [`StatsSnapshot`].

use groupsa_json::impl_json_struct;
use groupsa_obs::{Counter, Gauge, Histogram};
use std::time::Duration;

/// Live counters, updated by workers and the admission path with
/// relaxed atomics (metrics never synchronise data).
#[derive(Debug, Default)]
pub struct Metrics {
    submitted: Counter,
    completed: Counter,
    errors: Counter,
    rejected: Counter,
    expired: Counter,
    shed: Counter,
    limited: Counter,
    reloads: Counter,
    connections: Gauge,
    batches: Counter,
    batched_requests: Counter,
    max_batch: Gauge,
    queue_depth: Gauge,
    latency: Histogram,
    queue_wait: Histogram,
    score: Histogram,
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one admitted request.
    pub fn note_submitted(&self) {
        self.submitted.inc();
    }

    /// Counts one request rejected at admission (queue full / engine
    /// stopping).
    pub fn note_rejected(&self) {
        self.rejected.inc();
    }

    /// Counts one request dropped because its deadline passed while it
    /// waited in the queue. Disjoint from [`Metrics::note_error`]: a
    /// drained request is counted under exactly one of
    /// completed/errors/expired, so `submitted = completed + errors +
    /// expired` once the queue is drained.
    pub fn note_expired(&self) {
        self.expired.inc();
    }

    /// Counts one request answered with a (non-deadline) error.
    pub fn note_error(&self) {
        self.errors.inc();
    }

    /// Counts one request shed by deadline-aware admission control.
    /// Shed requests *are* counted as submitted — they reached the
    /// queue and were answered with a typed error — so under overload
    /// `submitted == completed + errors + expired + shed`.
    pub fn note_shed(&self) {
        self.shed.inc();
    }

    /// Counts one request refused by a per-client rate limit (answered
    /// at the connection layer, never submitted to the engine).
    pub fn note_limited(&self) {
        self.limited.inc();
    }

    /// Counts one successful hot-swap publish of a new frozen model.
    pub fn note_reload(&self) {
        self.reloads.inc();
    }

    /// Records the live connection-thread count observed by the accept
    /// loop after reaping finished handles — the regression signal for
    /// the handle-leak fix (a churned server must show this near zero,
    /// not the all-time connection count).
    pub fn note_open_connections(&self, n: usize) {
        self.connections.set(n as u64);
    }

    /// Counts one successfully answered request and records its
    /// admission-to-reply latency.
    pub fn note_completed(&self, latency: Duration) {
        self.completed.inc();
        self.latency.record_duration(latency);
    }

    /// Records one coalesced batch of `n` requests popped together.
    pub fn note_batch(&self, n: usize) {
        self.batches.inc();
        self.batched_requests.add(n as u64);
        self.max_batch.set(n as u64);
    }

    /// Records the queue depth observed right after an enqueue — both
    /// the last-sampled value and the high-watermark, so saturation
    /// stays visible in snapshots even after the queue drains.
    pub fn note_queue_depth(&self, depth: usize) {
        self.queue_depth.set(depth as u64);
    }

    /// Records how long one request sat queued before a worker popped
    /// it (the queue-wait lifecycle phase).
    pub fn note_queue_wait(&self, wait: Duration) {
        self.queue_wait.record_duration(wait);
    }

    /// Records the model-scoring time of one request (the score
    /// lifecycle phase; deadline-expired requests are not recorded).
    pub fn note_score(&self, elapsed: Duration) {
        self.score.record_duration(elapsed);
    }

    /// A consistent-enough point-in-time copy (relaxed reads; exact
    /// once the engine is quiescent, e.g. at shutdown).
    pub fn snapshot(&self, cache: CacheStats) -> StatsSnapshot {
        let latency = self.latency.snapshot();
        let queue_wait = self.queue_wait.snapshot();
        let score = self.score.snapshot();
        let batches = self.batches.get();
        let batched = self.batched_requests.get();
        StatsSnapshot {
            submitted: self.submitted.get(),
            completed: self.completed.get(),
            errors: self.errors.get(),
            rejected: self.rejected.get(),
            expired: self.expired.get(),
            shed: self.shed.get(),
            limited: self.limited.get(),
            reloads: self.reloads.get(),
            open_connections: self.connections.last(),
            max_open_connections: self.connections.max(),
            batches,
            mean_batch: if batches == 0 { 0.0 } else { batched as f64 / batches as f64 },
            max_batch: self.max_batch.max(),
            max_queue_depth: self.queue_depth.max(),
            last_queue_depth: self.queue_depth.last(),
            mean_latency_us: latency.mean,
            p50_latency_us: latency.p50,
            p95_latency_us: latency.p95,
            p99_latency_us: latency.p99,
            latency_buckets: latency.buckets,
            mean_queue_wait_us: queue_wait.mean,
            p95_queue_wait_us: queue_wait.p95,
            mean_score_us: score.mean,
            p95_score_us: score.p95,
            latent_cache_hits: cache.latent_hits,
            group_rep_cache_hits: cache.group_rep_hits,
            rebuilds: cache.rebuilds,
            num_users: cache.num_users,
            num_items: cache.num_items,
            num_groups: cache.num_groups,
        }
    }
}

/// Cache statistics contributed by the `FrozenModel`, merged into the
/// engine snapshot.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// User-latent cache reads that found a precomputed entry.
    pub latent_hits: u64,
    /// Group-representation cache reads.
    pub group_rep_hits: u64,
    /// Times the snapshot was rebuilt from a reloaded model.
    pub rebuilds: u64,
    /// Users in the frozen universe.
    pub num_users: usize,
    /// Items in the frozen universe.
    pub num_items: usize,
    /// Groups in the frozen universe.
    pub num_groups: usize,
}

/// The queryable/serialisable metrics snapshot (`stats` responses,
/// shutdown dump, bench artifacts). Latency/queue-wait/score
/// percentiles are histogram-derived upper bounds in microseconds
/// (power-of-two resolution); the means are exact. The raw latency
/// bucket array is exposed alongside the derived percentiles so
/// downstream tooling can recompute any quantile.
#[derive(Clone, Debug, PartialEq)]
pub struct StatsSnapshot {
    /// Requests admitted to the queue.
    pub submitted: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests answered with a non-deadline error.
    pub errors: u64,
    /// Requests refused at admission (never counted as submitted).
    pub rejected: u64,
    /// Requests dropped on deadline expiry (disjoint from `errors`;
    /// after a drain, `submitted == completed + errors + expired +
    /// shed`).
    pub expired: u64,
    /// Requests shed at enqueue time by deadline-aware admission
    /// control (counted as submitted, disjoint from the other three
    /// outcome categories).
    pub shed: u64,
    /// Requests refused by a per-client rate limit before ever
    /// reaching the engine (like `rejected`, never counted as
    /// submitted).
    pub limited: u64,
    /// Hot-swap publishes since the engine started (the engine-level
    /// counterpart of the per-model `rebuilds` below).
    pub reloads: u64,
    /// Live connection threads at the accept loop's last reap.
    pub open_connections: u64,
    /// Most connection threads ever live at once.
    pub max_open_connections: u64,
    /// Coalesced batches executed.
    pub batches: u64,
    /// Mean requests per batch.
    pub mean_batch: f64,
    /// Largest batch.
    pub max_batch: u64,
    /// Deepest queue observed at enqueue time (high-watermark).
    pub max_queue_depth: u64,
    /// Most recently sampled queue depth (pairs with the watermark:
    /// a drained queue shows `last = 0` while `max` keeps the peak).
    pub last_queue_depth: u64,
    /// Mean admission-to-reply latency (µs, exact).
    pub mean_latency_us: f64,
    /// Median latency (µs, bucket upper bound).
    pub p50_latency_us: u64,
    /// 95th-percentile latency (µs, bucket upper bound).
    pub p95_latency_us: u64,
    /// 99th-percentile latency (µs, bucket upper bound).
    pub p99_latency_us: u64,
    /// Raw log₂ latency bucket counts (bucket `i > 0` covers
    /// `[2^(i−1), 2^i)` µs; bucket 0 is `< 1 µs`).
    pub latency_buckets: Vec<u64>,
    /// Mean time a request sat queued before a worker popped it (µs).
    pub mean_queue_wait_us: f64,
    /// 95th-percentile queue wait (µs, bucket upper bound).
    pub p95_queue_wait_us: u64,
    /// Mean model-scoring time per answered request (µs).
    pub mean_score_us: f64,
    /// 95th-percentile scoring time (µs, bucket upper bound).
    pub p95_score_us: u64,
    /// User-latent cache hits.
    pub latent_cache_hits: u64,
    /// Group-representation cache hits.
    pub group_rep_cache_hits: u64,
    /// Frozen-snapshot rebuilds since load.
    pub rebuilds: u64,
    /// Users in the frozen universe (lets clients pick valid ids).
    pub num_users: usize,
    /// Items in the frozen universe.
    pub num_items: usize,
    /// Groups in the frozen universe.
    pub num_groups: usize,
}

impl_json_struct!(StatsSnapshot {
    submitted,
    completed,
    errors,
    rejected,
    expired,
    shed,
    limited,
    reloads,
    open_connections,
    max_open_connections,
    batches,
    mean_batch,
    max_batch,
    max_queue_depth,
    last_queue_depth,
    mean_latency_us,
    p50_latency_us,
    p95_latency_us,
    p99_latency_us,
    latency_buckets,
    mean_queue_wait_us,
    p95_queue_wait_us,
    mean_score_us,
    p95_score_us,
    latent_cache_hits,
    group_rep_cache_hits,
    rebuilds,
    num_users,
    num_items,
    num_groups,
});

#[cfg(test)]
mod tests {
    use super::*;
    use groupsa_obs::bucket_of;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), groupsa_obs::NUM_BUCKETS - 1);
    }

    #[test]
    fn percentiles_report_bucket_upper_bounds() {
        let m = Metrics::new();
        // 90 fast requests (~8 µs), 10 slow (~1000 µs).
        for _ in 0..90 {
            m.note_completed(Duration::from_micros(8));
        }
        for _ in 0..10 {
            m.note_completed(Duration::from_micros(1000));
        }
        let s = m.snapshot(CacheStats::default());
        assert_eq!(s.completed, 100);
        assert_eq!(s.p50_latency_us, 16, "8 µs lands in (4,8] → upper bound 16");
        assert_eq!(s.p95_latency_us, 1024);
        assert_eq!(s.p99_latency_us, 1024);
        assert!((s.mean_latency_us - (90.0 * 8.0 + 10.0 * 1000.0) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_exposes_raw_buckets_consistent_with_percentiles() {
        let m = Metrics::new();
        for _ in 0..90 {
            m.note_completed(Duration::from_micros(8));
        }
        for _ in 0..10 {
            m.note_completed(Duration::from_micros(1000));
        }
        let s = m.snapshot(CacheStats::default());
        assert_eq!(s.latency_buckets.len(), groupsa_obs::NUM_BUCKETS);
        assert_eq!(s.latency_buckets[bucket_of(8)], 90);
        assert_eq!(s.latency_buckets[bucket_of(1000)], 10);
        assert_eq!(s.latency_buckets.iter().sum::<u64>(), s.completed);
        // The exposed buckets must re-derive the reported percentiles.
        let total: u64 = s.latency_buckets.iter().sum();
        assert_eq!(groupsa_obs::percentile(&s.latency_buckets, total, 0.50), s.p50_latency_us);
        assert_eq!(groupsa_obs::percentile(&s.latency_buckets, total, 0.99), s.p99_latency_us);
    }

    #[test]
    fn batch_and_queue_stats_track_extremes() {
        let m = Metrics::new();
        m.note_batch(1);
        m.note_batch(7);
        m.note_batch(4);
        m.note_queue_depth(3);
        m.note_queue_depth(11);
        m.note_queue_depth(2);
        let s = m.snapshot(CacheStats::default());
        assert_eq!(s.batches, 3);
        assert_eq!(s.max_batch, 7);
        assert!((s.mean_batch - 4.0).abs() < 1e-12);
        assert_eq!(s.max_queue_depth, 11);
    }

    /// Regression: the snapshot must expose BOTH the last-sampled depth
    /// and the high-watermark — a queue that saturated and then drained
    /// used to be invisible behind a single number.
    #[test]
    fn queue_depth_keeps_high_watermark_after_drain() {
        let m = Metrics::new();
        m.note_queue_depth(64);
        m.note_queue_depth(0); // drained
        let s = m.snapshot(CacheStats::default());
        assert_eq!(s.last_queue_depth, 0, "last sample is the drained queue");
        assert_eq!(s.max_queue_depth, 64, "saturation must stay visible");
    }

    #[test]
    fn lifecycle_phase_timings_are_recorded() {
        let m = Metrics::new();
        m.note_queue_wait(Duration::from_micros(100));
        m.note_queue_wait(Duration::from_micros(300));
        m.note_score(Duration::from_micros(50));
        let s = m.snapshot(CacheStats::default());
        assert!((s.mean_queue_wait_us - 200.0).abs() < 1e-9);
        assert_eq!(s.p95_queue_wait_us, 512, "300 µs lands in (256,512]");
        assert!((s.mean_score_us - 50.0).abs() < 1e-9);
        assert_eq!(s.p95_score_us, 64);
    }

    #[test]
    fn empty_metrics_snapshot_is_all_zero() {
        let s = Metrics::new().snapshot(CacheStats::default());
        assert_eq!(s.p50_latency_us, 0);
        assert_eq!(s.mean_latency_us, 0.0);
        assert_eq!(s.mean_batch, 0.0);
        assert_eq!(s.last_queue_depth, 0);
        assert_eq!(s.mean_queue_wait_us, 0.0);
        assert!(s.latency_buckets.iter().all(|&c| c == 0));
    }

    #[test]
    fn overload_counters_are_disjoint_from_the_drain_categories() {
        let m = Metrics::new();
        for _ in 0..4 {
            m.note_submitted();
        }
        m.note_completed(Duration::from_micros(10));
        m.note_error();
        m.note_expired();
        m.note_shed(); // the 4th submitted request, shed at enqueue
        m.note_limited();
        m.note_rejected();
        m.note_reload();
        m.note_open_connections(3);
        m.note_open_connections(1);
        let s = m.snapshot(CacheStats::default());
        assert_eq!(s.submitted, s.completed + s.errors + s.expired + s.shed);
        assert_eq!(s.shed, 1);
        assert_eq!(s.limited, 1);
        assert_eq!(s.reloads, 1);
        assert_eq!(s.open_connections, 1, "gauge tracks the last reap");
        assert_eq!(s.max_open_connections, 3, "and the high-watermark");
    }

    #[test]
    fn snapshot_roundtrips_as_json() {
        let m = Metrics::new();
        m.note_submitted();
        m.note_completed(Duration::from_micros(42));
        let s = m.snapshot(CacheStats { num_users: 3, ..CacheStats::default() });
        let text = groupsa_json::to_string(&s);
        assert_eq!(groupsa_json::from_str::<StatsSnapshot>(&text).unwrap(), s);
    }
}
