//! Engine metrics, built on the `groupsa-obs` primitives: atomic
//! counters, last+high-watermark gauges, and log₂-bucketed histograms
//! with derived p50/p95/p99, snapshotted on demand (`stats` requests)
//! and on shutdown.
//!
//! The primitives are *embedded* (not registered in the process-global
//! registry) so every [`Metrics`] instance — one per engine — has its
//! own counters; tests that spin up several engines in one process
//! never share state. What this module adds on top of `groupsa-obs` is
//! only the request-accounting vocabulary (submitted / completed /
//! errors / expired / shed / rejected / limited and the conservation
//! law between them: every submitted request lands in exactly one of
//! completed/errors/expired/shed, while rejected and limited requests
//! are answered before ever counting as submitted) and the
//! serialisable [`StatsSnapshot`].

use groupsa_json::impl_json_struct;
use groupsa_obs::expo::Exposition;
use groupsa_obs::{Counter, Gauge, Histogram, Telemetry, WindowKind, WindowStats};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Live counters, updated by workers and the admission path with
/// relaxed atomics (metrics never synchronise data).
#[derive(Debug, Default)]
pub struct Metrics {
    submitted: Counter,
    completed: Counter,
    errors: Counter,
    rejected: Counter,
    expired: Counter,
    shed: Counter,
    limited: Counter,
    reloads: Counter,
    connections: Gauge,
    batches: Counter,
    batched_requests: Counter,
    max_batch: Gauge,
    queue_depth: Gauge,
    latency: Histogram,
    queue_wait: Histogram,
    score: Histogram,
    /// Serialize-and-write time on connection writer threads; recorded
    /// only when telemetry is enabled (the stage is otherwise unmetered
    /// so the default path stays byte-for-byte the PR 8 hot path).
    write: Histogram,
    /// Monotone coalesced-batch ids, handed out by [`Metrics::note_batch`]
    /// so sampled records can point at the batch that drained them.
    batch_seq: AtomicU64,
    /// Request-lifecycle telemetry: the sampling gate, record ring, and
    /// sliding windows. `Telemetry::disabled()` under `Default`, so
    /// plain `Metrics::default()` carries zero telemetry overhead.
    telemetry: Telemetry,
}

impl Metrics {
    /// Fresh metrics with telemetry configured from the
    /// `GROUPSA_OBS_*` environment (off when `GROUPSA_OBS_SAMPLE` is
    /// unset).
    pub fn new() -> Self {
        Self::with_telemetry(Telemetry::from_env())
    }

    /// Fresh metrics with an explicitly-configured [`Telemetry`]
    /// (tests and benches inject configs instead of racing on env
    /// vars).
    pub fn with_telemetry(telemetry: Telemetry) -> Self {
        Metrics { telemetry, ..Metrics::default() }
    }

    /// The embedded request-lifecycle telemetry.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Counts one admitted request.
    pub fn note_submitted(&self) {
        self.submitted.inc();
        self.telemetry.note(WindowKind::Submitted);
    }

    /// Counts one request rejected at admission (queue full / engine
    /// stopping).
    pub fn note_rejected(&self) {
        self.rejected.inc();
        self.telemetry.note(WindowKind::Rejected);
    }

    /// Counts one request dropped because its deadline passed while it
    /// waited in the queue. Disjoint from [`Metrics::note_error`]: a
    /// drained request is counted under exactly one of
    /// completed/errors/expired, so `submitted = completed + errors +
    /// expired` once the queue is drained.
    pub fn note_expired(&self) {
        self.expired.inc();
        self.telemetry.note(WindowKind::Expired);
    }

    /// Counts one request answered with a (non-deadline) error.
    pub fn note_error(&self) {
        self.errors.inc();
        self.telemetry.note(WindowKind::Errors);
    }

    /// Counts one request shed by deadline-aware admission control.
    /// Shed requests *are* counted as submitted — they reached the
    /// queue and were answered with a typed error — so under overload
    /// `submitted == completed + errors + expired + shed`.
    pub fn note_shed(&self) {
        self.shed.inc();
        self.telemetry.note(WindowKind::Shed);
    }

    /// Counts one request refused by a per-client rate limit (answered
    /// at the connection layer, never submitted to the engine).
    pub fn note_limited(&self) {
        self.limited.inc();
        self.telemetry.note(WindowKind::Limited);
    }

    /// Counts one successful hot-swap publish of a new frozen model.
    pub fn note_reload(&self) {
        self.reloads.inc();
    }

    /// Records the live connection-thread count observed by the accept
    /// loop after reaping finished handles — the regression signal for
    /// the handle-leak fix (a churned server must show this near zero,
    /// not the all-time connection count).
    pub fn note_open_connections(&self, n: usize) {
        self.connections.set(n as u64);
    }

    /// Counts one successfully answered request and records its
    /// admission-to-reply latency.
    pub fn note_completed(&self, latency: Duration) {
        self.completed.inc();
        self.latency.record_duration(latency);
        self.telemetry.note(WindowKind::Completed);
        self.telemetry.note_latency_us(latency.as_micros() as u64);
    }

    /// Records one coalesced batch of `n` requests popped together,
    /// returning the batch's monotone id (first batch = 1) for the
    /// sampled records of its members.
    pub fn note_batch(&self, n: usize) -> u64 {
        self.batches.inc();
        self.batched_requests.add(n as u64);
        self.max_batch.set(n as u64);
        self.batch_seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Records the serialize-and-write time of one response on a
    /// connection's writer thread. Only called when telemetry is
    /// enabled — the write stage is unmetered on the default path.
    pub fn note_write(&self, elapsed: Duration) {
        self.write.record_duration(elapsed);
    }

    /// Records the queue depth observed right after an enqueue — both
    /// the last-sampled value and the high-watermark, so saturation
    /// stays visible in snapshots even after the queue drains.
    pub fn note_queue_depth(&self, depth: usize) {
        self.queue_depth.set(depth as u64);
    }

    /// Records how long one request sat queued before a worker popped
    /// it (the queue-wait lifecycle phase).
    pub fn note_queue_wait(&self, wait: Duration) {
        self.queue_wait.record_duration(wait);
    }

    /// Records the model-scoring time of one request (the score
    /// lifecycle phase; deadline-expired requests are not recorded).
    pub fn note_score(&self, elapsed: Duration) {
        self.score.record_duration(elapsed);
    }

    /// A consistent-enough point-in-time copy (relaxed reads; exact
    /// once the engine is quiescent, e.g. at shutdown).
    pub fn snapshot(&self, cache: CacheStats) -> StatsSnapshot {
        let latency = self.latency.snapshot();
        let queue_wait = self.queue_wait.snapshot();
        let score = self.score.snapshot();
        let write = self.write.snapshot();
        let batches = self.batches.get();
        let batched = self.batched_requests.get();
        StatsSnapshot {
            submitted: self.submitted.get(),
            completed: self.completed.get(),
            errors: self.errors.get(),
            rejected: self.rejected.get(),
            expired: self.expired.get(),
            shed: self.shed.get(),
            limited: self.limited.get(),
            reloads: self.reloads.get(),
            open_connections: self.connections.last(),
            max_open_connections: self.connections.max(),
            batches,
            mean_batch: if batches == 0 { 0.0 } else { batched as f64 / batches as f64 },
            max_batch: self.max_batch.max(),
            max_queue_depth: self.queue_depth.max(),
            last_queue_depth: self.queue_depth.last(),
            mean_latency_us: latency.mean,
            p50_latency_us: latency.p50,
            p95_latency_us: latency.p95,
            p99_latency_us: latency.p99,
            latency_buckets: latency.buckets,
            mean_queue_wait_us: queue_wait.mean,
            p95_queue_wait_us: queue_wait.p95,
            mean_score_us: score.mean,
            p95_score_us: score.p95,
            mean_write_us: write.mean,
            p95_write_us: write.p95,
            window_10s: self.telemetry.window_stats(10),
            window_60s: self.telemetry.window_stats(60),
            latent_cache_hits: cache.latent_hits,
            group_rep_cache_hits: cache.group_rep_hits,
            rebuilds: cache.rebuilds,
            num_users: cache.num_users,
            num_items: cache.num_items,
            num_groups: cache.num_groups,
        }
    }

    /// Renders the `MetricsDump` exposition page: every engine metric
    /// (counters, gauges, stage histograms), the 10 s / 60 s windowed
    /// series, telemetry meta, the most recent slow-request records,
    /// and a `registry_`-prefixed dump of the process-global registry
    /// (the `nn.*` per-call timers). Every name in
    /// [`EXPOSITION_METRICS`] is always declared, so validators can
    /// assert coverage against a page from any engine state.
    pub fn exposition(&self, cache: CacheStats) -> String {
        let mut e = Exposition::new();
        for (name, value) in [
            ("groupsa_serve_submitted_total", self.submitted.get()),
            ("groupsa_serve_completed_total", self.completed.get()),
            ("groupsa_serve_errors_total", self.errors.get()),
            ("groupsa_serve_rejected_total", self.rejected.get()),
            ("groupsa_serve_expired_total", self.expired.get()),
            ("groupsa_serve_shed_total", self.shed.get()),
            ("groupsa_serve_limited_total", self.limited.get()),
            ("groupsa_serve_reloads_total", self.reloads.get()),
            ("groupsa_serve_batches_total", self.batches.get()),
            ("groupsa_serve_batched_requests_total", self.batched_requests.get()),
        ] {
            e.counter(name, value);
        }
        for (name, gauge) in [
            ("groupsa_serve_open_connections", &self.connections),
            ("groupsa_serve_batch_size", &self.max_batch),
            ("groupsa_serve_queue_depth", &self.queue_depth),
        ] {
            e.labeled_gauge(name, &[("stat", "last")], gauge.last() as f64);
            e.labeled_gauge(name, &[("stat", "max")], gauge.max() as f64);
        }
        for (name, histogram) in [
            ("groupsa_serve_latency_us", &self.latency),
            ("groupsa_serve_queue_wait_us", &self.queue_wait),
            ("groupsa_serve_score_us", &self.score),
            ("groupsa_serve_write_us", &self.write),
        ] {
            e.histogram(name, &histogram.snapshot());
        }
        for window in [self.telemetry.window_stats(10), self.telemetry.window_stats(60)] {
            let label = format!("{}s", window.window_s);
            let w = label.as_str();
            for (name, value) in [
                ("groupsa_serve_window_submitted_per_s", window.submitted_per_s),
                ("groupsa_serve_window_completed_per_s", window.completed_per_s),
                ("groupsa_serve_window_errors_per_s", window.errors_per_s),
                ("groupsa_serve_window_shed_per_s", window.shed_per_s),
                ("groupsa_serve_window_limited_per_s", window.limited_per_s),
                ("groupsa_serve_window_p50_latency_us", window.p50_latency_us as f64),
                ("groupsa_serve_window_p95_latency_us", window.p95_latency_us as f64),
            ] {
                e.labeled_gauge(name, &[("window", w)], value);
            }
        }
        e.gauge("groupsa_obs_sample_every", self.telemetry.config().sample_every as f64);
        e.counter("groupsa_obs_ring_pushed_total", self.telemetry.ring_pushed());
        e.counter("groupsa_obs_ring_dropped_total", self.telemetry.ring_dropped());
        for (name, value) in [
            ("groupsa_serve_cache_latent_hits_total", cache.latent_hits),
            ("groupsa_serve_cache_group_rep_hits_total", cache.group_rep_hits),
            ("groupsa_serve_rebuilds_total", cache.rebuilds),
        ] {
            e.counter(name, value);
        }
        // Most recent slow requests, newest last, as labelled samples
        // (value = total µs; the stage split rides in the labels).
        e.labeled_gauge("groupsa_serve_slow_request_us", &[("id", "none")], 0.0);
        let slow = self.telemetry.slow_records();
        for record in slow.iter().rev().take(16).rev() {
            let id = record.id.to_string();
            let (queue, score, write) = (
                record.queue_us.to_string(),
                record.score_us.to_string(),
                record.write_us.to_string(),
            );
            e.labeled_gauge(
                "groupsa_serve_slow_request_us",
                &[
                    ("id", id.as_str()),
                    ("outcome", record.outcome.name()),
                    ("queue_us", queue.as_str()),
                    ("score_us", score.as_str()),
                    ("write_us", write.as_str()),
                ],
                record.total_us as f64,
            );
        }
        e.registry("registry_", &groupsa_obs::global().snapshot());
        e.render()
    }
}

/// The metric names every exposition page declares regardless of
/// engine state — the coverage contract `serve_bench --metrics` and
/// the tier-1 MetricsDump smoke validate.
pub const EXPOSITION_METRICS: &[&str] = &[
    "groupsa_serve_submitted_total",
    "groupsa_serve_completed_total",
    "groupsa_serve_errors_total",
    "groupsa_serve_rejected_total",
    "groupsa_serve_expired_total",
    "groupsa_serve_shed_total",
    "groupsa_serve_limited_total",
    "groupsa_serve_reloads_total",
    "groupsa_serve_batches_total",
    "groupsa_serve_batched_requests_total",
    "groupsa_serve_open_connections",
    "groupsa_serve_batch_size",
    "groupsa_serve_queue_depth",
    "groupsa_serve_latency_us",
    "groupsa_serve_queue_wait_us",
    "groupsa_serve_score_us",
    "groupsa_serve_write_us",
    "groupsa_serve_window_submitted_per_s",
    "groupsa_serve_window_completed_per_s",
    "groupsa_serve_window_errors_per_s",
    "groupsa_serve_window_shed_per_s",
    "groupsa_serve_window_limited_per_s",
    "groupsa_serve_window_p50_latency_us",
    "groupsa_serve_window_p95_latency_us",
    "groupsa_obs_sample_every",
    "groupsa_obs_ring_pushed_total",
    "groupsa_obs_ring_dropped_total",
    "groupsa_serve_cache_latent_hits_total",
    "groupsa_serve_cache_group_rep_hits_total",
    "groupsa_serve_rebuilds_total",
    "groupsa_serve_slow_request_us",
];

/// Cache statistics contributed by the `FrozenModel`, merged into the
/// engine snapshot.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// User-latent cache reads that found a precomputed entry.
    pub latent_hits: u64,
    /// Group-representation cache reads.
    pub group_rep_hits: u64,
    /// Times the snapshot was rebuilt from a reloaded model.
    pub rebuilds: u64,
    /// Users in the frozen universe.
    pub num_users: usize,
    /// Items in the frozen universe.
    pub num_items: usize,
    /// Groups in the frozen universe.
    pub num_groups: usize,
}

/// The queryable/serialisable metrics snapshot (`stats` responses,
/// shutdown dump, bench artifacts). Latency/queue-wait/score
/// percentiles are histogram-derived upper bounds in microseconds
/// (power-of-two resolution); the means are exact. The raw latency
/// bucket array is exposed alongside the derived percentiles so
/// downstream tooling can recompute any quantile.
#[derive(Clone, Debug, PartialEq)]
pub struct StatsSnapshot {
    /// Requests admitted to the queue.
    pub submitted: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests answered with a non-deadline error.
    pub errors: u64,
    /// Requests refused at admission (never counted as submitted).
    pub rejected: u64,
    /// Requests dropped on deadline expiry (disjoint from `errors`;
    /// after a drain, `submitted == completed + errors + expired +
    /// shed`).
    pub expired: u64,
    /// Requests shed at enqueue time by deadline-aware admission
    /// control (counted as submitted, disjoint from the other three
    /// outcome categories).
    pub shed: u64,
    /// Requests refused by a per-client rate limit before ever
    /// reaching the engine (like `rejected`, never counted as
    /// submitted).
    pub limited: u64,
    /// Hot-swap publishes since the engine started (the engine-level
    /// counterpart of the per-model `rebuilds` below).
    pub reloads: u64,
    /// Live connection threads at the accept loop's last reap.
    pub open_connections: u64,
    /// Most connection threads ever live at once.
    pub max_open_connections: u64,
    /// Coalesced batches executed.
    pub batches: u64,
    /// Mean requests per batch.
    pub mean_batch: f64,
    /// Largest batch.
    pub max_batch: u64,
    /// Deepest queue observed at enqueue time (high-watermark).
    pub max_queue_depth: u64,
    /// Most recently sampled queue depth (pairs with the watermark:
    /// a drained queue shows `last = 0` while `max` keeps the peak).
    pub last_queue_depth: u64,
    /// Mean admission-to-reply latency (µs, exact).
    pub mean_latency_us: f64,
    /// Median latency (µs, bucket upper bound).
    pub p50_latency_us: u64,
    /// 95th-percentile latency (µs, bucket upper bound).
    pub p95_latency_us: u64,
    /// 99th-percentile latency (µs, bucket upper bound).
    pub p99_latency_us: u64,
    /// Raw log₂ latency bucket counts (bucket `i > 0` covers
    /// `[2^(i−1), 2^i)` µs; bucket 0 is `< 1 µs`).
    pub latency_buckets: Vec<u64>,
    /// Mean time a request sat queued before a worker popped it (µs).
    pub mean_queue_wait_us: f64,
    /// 95th-percentile queue wait (µs, bucket upper bound).
    pub p95_queue_wait_us: u64,
    /// Mean model-scoring time per answered request (µs).
    pub mean_score_us: f64,
    /// 95th-percentile scoring time (µs, bucket upper bound).
    pub p95_score_us: u64,
    /// Mean serialize-and-write time per response on connection writer
    /// threads (µs; 0 unless telemetry is enabled — the write stage is
    /// unmetered on the default path).
    pub mean_write_us: f64,
    /// 95th-percentile write time (µs, bucket upper bound).
    pub p95_write_us: u64,
    /// Windowed rates/percentiles over the last 10 s (all zero unless
    /// telemetry is enabled via `GROUPSA_OBS_SAMPLE`).
    pub window_10s: WindowStats,
    /// Windowed rates/percentiles over the last 60 s.
    pub window_60s: WindowStats,
    /// User-latent cache hits.
    pub latent_cache_hits: u64,
    /// Group-representation cache hits.
    pub group_rep_cache_hits: u64,
    /// Frozen-snapshot rebuilds since load.
    pub rebuilds: u64,
    /// Users in the frozen universe (lets clients pick valid ids).
    pub num_users: usize,
    /// Items in the frozen universe.
    pub num_items: usize,
    /// Groups in the frozen universe.
    pub num_groups: usize,
}

impl_json_struct!(StatsSnapshot {
    submitted,
    completed,
    errors,
    rejected,
    expired,
    shed,
    limited,
    reloads,
    open_connections,
    max_open_connections,
    batches,
    mean_batch,
    max_batch,
    max_queue_depth,
    last_queue_depth,
    mean_latency_us,
    p50_latency_us,
    p95_latency_us,
    p99_latency_us,
    latency_buckets,
    mean_queue_wait_us,
    p95_queue_wait_us,
    mean_score_us,
    p95_score_us,
    mean_write_us,
    p95_write_us,
    window_10s,
    window_60s,
    latent_cache_hits,
    group_rep_cache_hits,
    rebuilds,
    num_users,
    num_items,
    num_groups,
});

#[cfg(test)]
mod tests {
    use super::*;
    use groupsa_obs::bucket_of;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), groupsa_obs::NUM_BUCKETS - 1);
    }

    #[test]
    fn percentiles_report_bucket_upper_bounds() {
        let m = Metrics::new();
        // 90 fast requests (~8 µs), 10 slow (~1000 µs).
        for _ in 0..90 {
            m.note_completed(Duration::from_micros(8));
        }
        for _ in 0..10 {
            m.note_completed(Duration::from_micros(1000));
        }
        let s = m.snapshot(CacheStats::default());
        assert_eq!(s.completed, 100);
        assert_eq!(s.p50_latency_us, 16, "8 µs lands in (4,8] → upper bound 16");
        assert_eq!(s.p95_latency_us, 1024);
        assert_eq!(s.p99_latency_us, 1024);
        assert!((s.mean_latency_us - (90.0 * 8.0 + 10.0 * 1000.0) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_exposes_raw_buckets_consistent_with_percentiles() {
        let m = Metrics::new();
        for _ in 0..90 {
            m.note_completed(Duration::from_micros(8));
        }
        for _ in 0..10 {
            m.note_completed(Duration::from_micros(1000));
        }
        let s = m.snapshot(CacheStats::default());
        assert_eq!(s.latency_buckets.len(), groupsa_obs::NUM_BUCKETS);
        assert_eq!(s.latency_buckets[bucket_of(8)], 90);
        assert_eq!(s.latency_buckets[bucket_of(1000)], 10);
        assert_eq!(s.latency_buckets.iter().sum::<u64>(), s.completed);
        // The exposed buckets must re-derive the reported percentiles.
        let total: u64 = s.latency_buckets.iter().sum();
        assert_eq!(groupsa_obs::percentile(&s.latency_buckets, total, 0.50), s.p50_latency_us);
        assert_eq!(groupsa_obs::percentile(&s.latency_buckets, total, 0.99), s.p99_latency_us);
    }

    #[test]
    fn batch_and_queue_stats_track_extremes() {
        let m = Metrics::new();
        m.note_batch(1);
        m.note_batch(7);
        m.note_batch(4);
        m.note_queue_depth(3);
        m.note_queue_depth(11);
        m.note_queue_depth(2);
        let s = m.snapshot(CacheStats::default());
        assert_eq!(s.batches, 3);
        assert_eq!(s.max_batch, 7);
        assert!((s.mean_batch - 4.0).abs() < 1e-12);
        assert_eq!(s.max_queue_depth, 11);
    }

    /// Regression: the snapshot must expose BOTH the last-sampled depth
    /// and the high-watermark — a queue that saturated and then drained
    /// used to be invisible behind a single number.
    #[test]
    fn queue_depth_keeps_high_watermark_after_drain() {
        let m = Metrics::new();
        m.note_queue_depth(64);
        m.note_queue_depth(0); // drained
        let s = m.snapshot(CacheStats::default());
        assert_eq!(s.last_queue_depth, 0, "last sample is the drained queue");
        assert_eq!(s.max_queue_depth, 64, "saturation must stay visible");
    }

    #[test]
    fn lifecycle_phase_timings_are_recorded() {
        let m = Metrics::new();
        m.note_queue_wait(Duration::from_micros(100));
        m.note_queue_wait(Duration::from_micros(300));
        m.note_score(Duration::from_micros(50));
        let s = m.snapshot(CacheStats::default());
        assert!((s.mean_queue_wait_us - 200.0).abs() < 1e-9);
        assert_eq!(s.p95_queue_wait_us, 512, "300 µs lands in (256,512]");
        assert!((s.mean_score_us - 50.0).abs() < 1e-9);
        assert_eq!(s.p95_score_us, 64);
    }

    #[test]
    fn empty_metrics_snapshot_is_all_zero() {
        let s = Metrics::new().snapshot(CacheStats::default());
        assert_eq!(s.p50_latency_us, 0);
        assert_eq!(s.mean_latency_us, 0.0);
        assert_eq!(s.mean_batch, 0.0);
        assert_eq!(s.last_queue_depth, 0);
        assert_eq!(s.mean_queue_wait_us, 0.0);
        assert!(s.latency_buckets.iter().all(|&c| c == 0));
    }

    #[test]
    fn overload_counters_are_disjoint_from_the_drain_categories() {
        let m = Metrics::new();
        for _ in 0..4 {
            m.note_submitted();
        }
        m.note_completed(Duration::from_micros(10));
        m.note_error();
        m.note_expired();
        m.note_shed(); // the 4th submitted request, shed at enqueue
        m.note_limited();
        m.note_rejected();
        m.note_reload();
        m.note_open_connections(3);
        m.note_open_connections(1);
        let s = m.snapshot(CacheStats::default());
        assert_eq!(s.submitted, s.completed + s.errors + s.expired + s.shed);
        assert_eq!(s.shed, 1);
        assert_eq!(s.limited, 1);
        assert_eq!(s.reloads, 1);
        assert_eq!(s.open_connections, 1, "gauge tracks the last reap");
        assert_eq!(s.max_open_connections, 3, "and the high-watermark");
    }

    #[test]
    fn exposition_declares_every_contract_metric_even_when_fresh() {
        let page = Metrics::new().exposition(CacheStats::default());
        let parsed = groupsa_obs::expo::parse(&page).expect("a fresh page parses");
        for name in EXPOSITION_METRICS {
            assert!(parsed.declares(name), "missing # TYPE for {name}");
        }
    }

    #[test]
    fn exposition_reflects_counters_windows_and_slow_records() {
        use groupsa_obs::TelemetryConfig;
        let m = Metrics::with_telemetry(Telemetry::new(TelemetryConfig {
            sample_every: 1,
            slow_us: 0, // every observed record captures as slow
            ring_capacity: 64,
        }));
        m.note_submitted();
        m.note_completed(Duration::from_micros(400));
        m.note_write(Duration::from_micros(30));
        m.telemetry().observe(
            groupsa_obs::RequestRecord { id: 77, total_us: 123, ..Default::default() },
            true,
        );
        let page = m.exposition(CacheStats { latent_hits: 5, ..CacheStats::default() });
        let parsed = groupsa_obs::expo::parse(&page).unwrap();
        assert_eq!(parsed.value("groupsa_serve_submitted_total"), Some(1.0));
        assert_eq!(parsed.value("groupsa_serve_cache_latent_hits_total"), Some(5.0));
        assert_eq!(parsed.value("groupsa_serve_write_us_count"), Some(1.0));
        assert_eq!(parsed.value("groupsa_obs_sample_every"), Some(1.0));
        assert!(
            parsed
                .value_with("groupsa_serve_window_submitted_per_s", ("window", "10s"))
                .unwrap()
                > 0.0,
            "the windowed rate must see the submission"
        );
        let slow = parsed.all("groupsa_serve_slow_request_us");
        assert!(
            slow.iter().any(|s| s.labels.iter().any(|(k, v)| k == "id" && v == "77")),
            "the slow record must surface as a labelled sample: {page}"
        );
    }

    #[test]
    fn windows_stay_zero_without_telemetry_and_fill_with_it() {
        let off = Metrics::with_telemetry(Telemetry::disabled());
        off.note_submitted();
        off.note_completed(Duration::from_micros(10));
        let s = off.snapshot(CacheStats::default());
        assert_eq!(s.window_10s, WindowStats { window_s: 10, ..WindowStats::default() });

        let on = Metrics::with_telemetry(Telemetry::new(
            groupsa_obs::TelemetryConfig::sampling(1),
        ));
        for _ in 0..20 {
            on.note_submitted();
            on.note_completed(Duration::from_micros(100));
        }
        let s = on.snapshot(CacheStats::default());
        assert!(s.window_10s.submitted_per_s >= 2.0, "{:?}", s.window_10s);
        assert!(s.window_10s.completed_per_s >= 2.0);
        assert_eq!(s.window_10s.p95_latency_us, 128, "100 µs lands in (64,128]");
        assert!(s.window_60s.submitted_per_s > 0.0);
    }

    #[test]
    fn write_stage_feeds_its_histogram() {
        let m = Metrics::new();
        m.note_write(Duration::from_micros(10));
        m.note_write(Duration::from_micros(30));
        let s = m.snapshot(CacheStats::default());
        assert!((s.mean_write_us - 20.0).abs() < 1e-9);
        assert_eq!(s.p95_write_us, 32, "30 µs lands in (16,32]");
    }

    #[test]
    fn batch_ids_are_monotone_from_one() {
        let m = Metrics::new();
        assert_eq!(m.note_batch(3), 1);
        assert_eq!(m.note_batch(1), 2);
        assert_eq!(m.note_batch(5), 3);
    }

    #[test]
    fn snapshot_roundtrips_as_json() {
        let m = Metrics::new();
        m.note_submitted();
        m.note_completed(Duration::from_micros(42));
        let s = m.snapshot(CacheStats { num_users: 3, ..CacheStats::default() });
        let text = groupsa_json::to_string(&s);
        assert_eq!(groupsa_json::from_str::<StatsSnapshot>(&text).unwrap(), s);
    }
}
