//! Typed request-path errors.
//!
//! Everything that can go wrong between a request's admission and its
//! reply is an explicit [`ServeError`] variant — the request paths in
//! [`crate::engine`] and [`crate::server`] never `unwrap`/`expect`
//! (enforced mechanically by `groupsa-lint`'s `panic-path` rule). The
//! wire format is unchanged: errors still travel as
//! `Response::Error { id, error }`, with [`ServeError`]'s `Display`
//! rendering producing the exact strings clients already match on.

use crate::protocol::Response;
use std::fmt;

/// A typed failure on the serve request path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// Admission refused: the engine has begun shutting down.
    ShuttingDown,
    /// Admission refused: the bounded queue is at capacity.
    QueueFull {
        /// Requests waiting when admission was refused.
        pending: usize,
    },
    /// The request's deadline passed while it sat in the queue.
    DeadlineExceeded,
    /// Admission control shed the request: the observed queue wait
    /// predicted the deadline could not be met, so it was answered
    /// immediately instead of expiring late in the queue.
    Shed {
        /// Predicted queue wait at enqueue time (µs).
        predicted_wait_us: u64,
        /// The deadline the prediction exceeded (ms).
        deadline_ms: u64,
    },
    /// The client exceeded its per-connection token-bucket rate limit.
    RateLimited,
    /// A `Reload` request failed; the previously-published model keeps
    /// serving.
    Reload {
        /// Why the snapshot could not be published.
        message: String,
    },
    /// The worker's reply channel disconnected before an answer.
    WorkerLost,
    /// A shared lock was poisoned by a panicking thread; the request
    /// is answered with an error rather than propagating the panic.
    LockPoisoned {
        /// Which lock ("queue", "workers").
        what: &'static str,
    },
    /// The frozen model rejected the request (unknown id, empty
    /// group, …).
    Model {
        /// The model's explanation.
        message: String,
    },
    /// The request line did not parse, or named an unsupported
    /// operation.
    BadRequest {
        /// What was wrong with it.
        message: String,
    },
}

impl ServeError {
    /// The wire-level reply for this error, echoing `id`.
    pub fn into_response(self, id: u64) -> Response {
        Response::Error { id, error: self.to_string() }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::ShuttingDown => write!(f, "engine is shutting down"),
            ServeError::QueueFull { pending } => write!(f, "queue full ({pending} pending)"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded while queued"),
            ServeError::Shed { predicted_wait_us, deadline_ms } => write!(
                f,
                "shed: predicted queue wait {predicted_wait_us}us exceeds {deadline_ms}ms deadline"
            ),
            ServeError::RateLimited => write!(f, "rate limited"),
            ServeError::Reload { message } => write!(f, "reload failed: {message}"),
            ServeError::WorkerLost => write!(f, "worker dropped the request"),
            ServeError::LockPoisoned { what } => {
                write!(f, "internal error: {what} lock poisoned")
            }
            ServeError::Model { message } => write!(f, "{message}"),
            ServeError::BadRequest { message } => write!(f, "bad request: {message}"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_the_wire_strings_clients_grep_for() {
        assert_eq!(ServeError::ShuttingDown.to_string(), "engine is shutting down");
        assert_eq!(ServeError::QueueFull { pending: 7 }.to_string(), "queue full (7 pending)");
        assert_eq!(ServeError::DeadlineExceeded.to_string(), "deadline exceeded while queued");
        assert_eq!(ServeError::WorkerLost.to_string(), "worker dropped the request");
        assert_eq!(
            ServeError::Shed { predicted_wait_us: 9000, deadline_ms: 5 }.to_string(),
            "shed: predicted queue wait 9000us exceeds 5ms deadline"
        );
        assert_eq!(ServeError::RateLimited.to_string(), "rate limited");
        assert_eq!(
            ServeError::Reload { message: "bad magic".into() }.to_string(),
            "reload failed: bad magic"
        );
    }

    #[test]
    fn into_response_echoes_the_id() {
        let resp = ServeError::Model { message: "group 9 out of range".into() }.into_response(42);
        match resp {
            Response::Error { id, error } => {
                assert_eq!(id, 42);
                assert_eq!(error, "group 9 out of range");
            }
            other => panic!("expected Error, got {other:?}"),
        }
    }

    #[test]
    fn bad_request_prefixes_the_cause() {
        let e = ServeError::BadRequest { message: "no variant matches".into() };
        assert_eq!(e.to_string(), "bad request: no variant matches");
    }
}
