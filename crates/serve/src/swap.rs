//! Atomic snapshot hot-swap: the one mutable cell in the serving path.
//!
//! [`ModelSlot`] holds the *current* [`FrozenModel`] behind a
//! `Mutex<Arc<..>>` (std-only; the ArcSwap idea without the crate).
//! Readers take the lock only long enough to clone the `Arc` — a few
//! nanoseconds, once per drained *batch*, never per request — and then
//! score against their pinned snapshot with zero further
//! synchronisation. Publishing a retrained model is one pointer store
//! under the same lock, so a swap is atomic from every reader's point
//! of view:
//!
//! * a batch popped before the swap finishes scoring against the old
//!   snapshot (its `Arc` keeps the old tables alive until the last
//!   in-flight batch drops it);
//! * a batch popped after the swap scores entirely against the new one;
//! * no batch ever observes a half-published model, and no request is
//!   dropped or re-queued by a reload.
//!
//! Nothing in this module can panic while holding the lock (clone and
//! pointer store only), so poison is unreachable; it is still handled
//! by recovering the value rather than unwrapping, because this file
//! is on the serve request path (`groupsa-lint` panic-safety scope).

use crate::frozen::FrozenModel;
use std::sync::{Arc, Mutex, PoisonError};

/// The swappable handle to the currently-published frozen model.
pub(crate) struct ModelSlot {
    current: Mutex<Arc<FrozenModel>>,
}

impl ModelSlot {
    /// A slot initially publishing `frozen`.
    pub(crate) fn new(frozen: Arc<FrozenModel>) -> Self {
        Self { current: Mutex::new(frozen) }
    }

    /// Pins the currently-published snapshot: clones the `Arc` under
    /// the lock and releases it immediately.
    pub(crate) fn load(&self) -> Arc<FrozenModel> {
        Arc::clone(&self.current.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Atomically publishes `frozen`; readers that already pinned the
    /// old snapshot keep it alive until they finish their batch.
    pub(crate) fn store(&self, frozen: Arc<FrozenModel>) {
        *self.current.lock().unwrap_or_else(PoisonError::into_inner) = frozen;
    }
}
