//! NDJSON-over-TCP front end for the [`Engine`], with per-connection
//! request pipelining.
//!
//! One connection = one client; each line is a [`Request`], each reply
//! a [`Response`] on its own line. Reads and writes are decoupled: the
//! connection thread parses lines and submits them to the engine
//! without waiting for answers, while a dedicated writer thread drains
//! a response channel — so a client may keep many requests in flight
//! and match replies to requests by the echoed `id`. Responses arrive
//! in **completion order**, not submission order; `Stats`, `Reloaded`
//! and `Bye` replies ride the same channel, so every line a connection
//! ever receives comes from one writer.
//!
//! The accept loop polls a non-blocking listener, reaping finished
//! connection threads as it goes (the server's thread count tracks
//! *live* connections, not historical ones — visible as the
//! `open_connections` gauge). A `Shutdown` request flips a shared
//! stop flag: the loop stops admitting, refuses any backlogged
//! connection attempts with an explicit `engine is shutting down`
//! error line, gives live connections a grace period to finish, then
//! severs lingering sockets so `run` always returns.
//!
//! Optional per-connection token-bucket rate limiting
//! ([`ServerConfig::rate_limit`]) answers over-budget requests with
//! `rate limited` *before* they reach the engine — limited requests
//! are never counted as submitted.

use crate::admission::TokenBucket;
use crate::engine::{Engine, Outbound};
use crate::error::ServeError;
use crate::protocol::{Request, Response};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// How long the accept loop sleeps between polls when idle. Short
/// enough that accept latency is invisible next to scoring work; long
/// enough that an idle server burns no measurable CPU.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// How long shutdown waits for live connections to finish on their own
/// before severing their sockets.
const SHUTDOWN_GRACE: Duration = Duration::from_millis(500);

/// Connection-layer policy knobs (the engine has its own
/// [`crate::engine::EngineConfig`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerConfig {
    /// Per-connection sustained request budget (requests/second);
    /// `0` disables rate limiting.
    pub rate_limit: u64,
    /// Burst capacity on top of `rate_limit` (tokens; `0` means
    /// "same as the rate").
    pub rate_burst: u64,
}

/// Serves `engine` on `listener` with default connection policy (no
/// rate limiting) until a client sends `Shutdown`. Returns after every
/// connection has been answered or severed and the engine has drained.
pub fn run(listener: TcpListener, engine: Arc<Engine>) -> io::Result<()> {
    run_with(listener, engine, ServerConfig::default())
}

/// [`run`], with explicit [`ServerConfig`].
pub fn run_with(listener: TcpListener, engine: Arc<Engine>, cfg: ServerConfig) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    // Each live connection keeps its join handle plus a spare stream
    // handle, so shutdown can sever sockets whose clients never hang
    // up (a blocking `read_line` only returns once the socket dies).
    let mut live: Vec<(std::thread::JoinHandle<()>, Option<TcpStream>)> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(false).is_err() {
                    continue; // socket already dead
                }
                let spare = stream.try_clone().ok();
                let engine = Arc::clone(&engine);
                let stop = Arc::clone(&stop);
                match std::thread::Builder::new().name("serve-conn".into()).spawn(move || {
                    handle_connection(stream, &engine, &stop, cfg);
                }) {
                    Ok(handle) => live.push((handle, spare)),
                    Err(_) => {
                        // Out of threads: refuse rather than hang the
                        // client on an unserved connection.
                        if let Some(mut s) = spare {
                            let _ = send(&mut s, &ServeError::ShuttingDown.into_response(0));
                        }
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                reap_finished(&mut live, &engine);
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                // Listener broke: sever everything so `run` can report
                // the error instead of hanging on live connections.
                stop.store(true, Ordering::SeqCst);
                finish(live, &engine);
                engine.shutdown();
                return Err(e);
            }
        }
    }
    // Stop flag is up. Anything still sitting in the accept backlog is
    // a legitimate client that lost the race with shutdown — answer it
    // with a typed refusal instead of silently dropping the socket.
    loop {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let _ = send(&mut stream, &ServeError::ShuttingDown.into_response(0));
                let _ = stream.shutdown(Shutdown::Both);
            }
            Err(_) => break, // WouldBlock (backlog empty) or a dead listener
        }
    }
    finish(live, &engine);
    engine.shutdown();
    Ok(())
}

/// Joins finished connection threads and refreshes the
/// `open_connections` gauge. Called on every idle poll tick, so the
/// handle list tracks live connections instead of growing one entry
/// per connection for the lifetime of the server.
fn reap_finished(live: &mut Vec<(std::thread::JoinHandle<()>, Option<TcpStream>)>, engine: &Engine) {
    let mut still = Vec::with_capacity(live.len());
    for (handle, spare) in live.drain(..) {
        if handle.is_finished() {
            let _ = handle.join(); // finished: joins without blocking
        } else {
            still.push((handle, spare));
        }
    }
    *live = still;
    engine.metrics().note_open_connections(live.len());
}

/// Shutdown path for live connections: wait out a grace period, sever
/// whatever is left (unblocking readers parked in `read_line`), then
/// join every thread.
fn finish(mut live: Vec<(std::thread::JoinHandle<()>, Option<TcpStream>)>, engine: &Engine) {
    let deadline = Instant::now() + SHUTDOWN_GRACE;
    while Instant::now() < deadline {
        reap_finished(&mut live, engine);
        if live.is_empty() {
            return;
        }
        std::thread::sleep(ACCEPT_POLL);
    }
    for (handle, spare) in live {
        if let Some(stream) = spare {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let _ = handle.join();
    }
    engine.metrics().note_open_connections(0);
}

/// Runs one pipelined connection to completion.
///
/// The calling thread is the reader: it parses each line and either
/// answers it structurally (admission refusals, `Stats`, `Reload`,
/// `Shutdown`) or hands it to the engine — in both cases the response
/// travels through `tx` to the writer thread, which owns the socket's
/// write half. Dropping `tx` after the last line means the writer
/// naturally drains every in-flight response before hanging up: the
/// channel only disconnects once the engine has answered everything
/// this connection submitted.
///
/// The writer is also the final telemetry stage: when telemetry is
/// enabled it times each serialize-and-write, feeds the write
/// histogram, and files the [`Outbound`]'s pending lifecycle record —
/// the only point that knows when the response bytes actually left.
fn handle_connection(stream: TcpStream, engine: &Arc<Engine>, stop: &AtomicBool, cfg: ServerConfig) {
    let writer_stream = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let (tx, rx) = mpsc::channel::<Outbound>();
    let writer_engine = Arc::clone(engine);
    let writer = std::thread::Builder::new().name("serve-conn-writer".into()).spawn(move || {
        let mut stream = writer_stream;
        for outbound in rx {
            // One immutable-bool load when telemetry is off; the timed
            // path only exists for sampled/slow-capturing servers.
            let t0 = writer_engine.telemetry().enabled().then(Instant::now);
            let sent = send(&mut stream, &outbound.response);
            if let Some(t0) = t0 {
                let elapsed = t0.elapsed();
                writer_engine.metrics().note_write(elapsed);
                if let Some(pending) = outbound.record {
                    let (record, sampled) = pending.finish(elapsed);
                    writer_engine.telemetry().observe(record, sampled);
                }
            }
            if sent.is_err() {
                // Client stopped reading: sever the read half too so
                // the reader notices, then drain the channel so
                // in-flight submitters never block on a full pipe.
                let _ = stream.shutdown(Shutdown::Both);
                break;
            }
        }
    });
    let writer = match writer {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut bucket = (cfg.rate_limit > 0).then(|| {
        TokenBucket::new(
            cfg.rate_limit,
            if cfg.rate_burst > 0 { cfg.rate_burst } else { cfg.rate_limit },
        )
    });
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break, // client went away mid-line (or was severed)
        };
        if line.trim().is_empty() {
            continue;
        }
        let request = match groupsa_json::from_str::<Request>(&line) {
            Ok(request) => request,
            Err(e) => {
                let refusal = ServeError::BadRequest { message: e.to_string() }.into_response(0);
                if tx.send(Outbound::plain(refusal)).is_err() {
                    break;
                }
                continue;
            }
        };
        let id = request.id();
        if let Some(bucket) = bucket.as_mut() {
            if !bucket.admit(Instant::now()) {
                engine.metrics().note_limited();
                if tx.send(Outbound::plain(ServeError::RateLimited.into_response(id))).is_err() {
                    break;
                }
                continue;
            }
        }
        match request {
            Request::Stats { id } => {
                if tx.send(Outbound::plain(Response::Stats { id, stats: engine.stats() })).is_err()
                {
                    break;
                }
            }
            Request::MetricsDump { id } => {
                // Rendered on the reader thread, like `Stats`: the page
                // is a point-in-time snapshot and never blocks workers.
                let page = engine.exposition();
                if tx.send(Outbound::plain(Response::Metrics { id, page })).is_err() {
                    break;
                }
            }
            Request::Reload { id, dir } => {
                // Synchronous on the reader thread: later lines from
                // this connection see the new model, and in-flight
                // requests finish on whichever snapshot their batch
                // pinned.
                let response = match engine.reload_from_snapshot(&dir) {
                    Ok(()) => Response::Reloaded { id },
                    Err(message) => ServeError::Reload { message }.into_response(id),
                };
                if tx.send(Outbound::plain(response)).is_err() {
                    break;
                }
            }
            Request::Shutdown { id } => {
                stop.store(true, Ordering::SeqCst);
                let _ = tx.send(Outbound::plain(Response::Bye { id }));
                break;
            }
            request => match request.into_recommend() {
                Some(req) => engine.submit_streamed(req, tx.clone()),
                // Unreachable today (every variant is matched above),
                // but a future Request variant must degrade to an
                // error reply, not a server panic.
                None => {
                    let refusal = ServeError::BadRequest {
                        message: "unsupported operation".into(),
                    }
                    .into_response(id);
                    if tx.send(Outbound::plain(refusal)).is_err() {
                        break;
                    }
                }
            },
        }
    }
    // Close the reader's sender; once every in-flight job's clone is
    // gone too, the writer drains and exits. Joining it guarantees no
    // response is abandoned half-written when the thread retires.
    drop(tx);
    let _ = writer.join();
}

fn send(writer: &mut TcpStream, response: &Response) -> io::Result<()> {
    let mut text = groupsa_json::to_string(response);
    text.push('\n');
    writer.write_all(text.as_bytes())?;
    writer.flush()
}
