//! NDJSON-over-TCP front end for the [`Engine`].
//!
//! One connection = one client; each line is a [`Request`], each reply
//! a [`Response`] on its own line. Connections are handled on
//! dedicated threads (the engine's queue, not the connection count, is
//! the concurrency bound that matters). A `Shutdown` request stops the
//! accept loop, drains the engine, and returns.

use crate::engine::Engine;
use crate::error::ServeError;
use crate::protocol::{Request, Response};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Serves `engine` on `listener` until a client sends `Shutdown` (or
/// the listener errors). Returns after every connection thread has
/// been joined and the engine has drained.
pub fn run(listener: TcpListener, engine: Arc<Engine>) -> io::Result<()> {
    let stop = Arc::new(AtomicBool::new(false));
    let local = listener.local_addr()?;
    let mut handles = Vec::new();
    loop {
        let (stream, _) = listener.accept()?;
        if stop.load(Ordering::SeqCst) {
            break; // the self-connect wake-up (or a post-shutdown client)
        }
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            if handle_connection(stream, &engine, &stop) {
                // Shutdown requested: wake the accept loop, which
                // blocks in `accept` with no timeout.
                let _ = TcpStream::connect(local);
            }
        }));
    }
    for handle in handles {
        let _ = handle.join();
    }
    engine.shutdown();
    Ok(())
}

/// Runs one connection to completion; `true` when the client requested
/// shutdown.
fn handle_connection(stream: TcpStream, engine: &Engine, stop: &AtomicBool) -> bool {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return false,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break, // client went away mid-line
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = match groupsa_json::from_str::<Request>(&line) {
            Err(e) => {
                ServeError::BadRequest { message: e.to_string() }.into_response(0)
            }
            Ok(Request::Stats { id }) => Response::Stats { id, stats: engine.stats() },
            Ok(Request::Shutdown { id }) => {
                stop.store(true, Ordering::SeqCst);
                let _ = send(&mut writer, &Response::Bye { id });
                return true;
            }
            Ok(req) => {
                let id = req.id();
                match req.into_recommend() {
                    Some(req) => engine.submit(req),
                    // Unreachable today (Stats/Shutdown matched above),
                    // but a future Request variant must degrade to an
                    // error reply, not a server panic.
                    None => ServeError::BadRequest { message: "unsupported operation".into() }
                        .into_response(id),
                }
            }
        };
        if send(&mut writer, &response).is_err() {
            break; // client stopped reading
        }
    }
    false
}

fn send(writer: &mut TcpStream, response: &Response) -> io::Result<()> {
    let mut text = groupsa_json::to_string(response);
    text.push('\n');
    writer.write_all(text.as_bytes())?;
    writer.flush()
}
