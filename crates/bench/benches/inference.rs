//! Criterion B1 (DESIGN.md §5): the §II-F trade-off — latency of the
//! full voting path vs the fast average mode as group size grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use groupsa_core::{DataContext, GroupSa, GroupSaConfig, ScoreAggregation};
use groupsa_data::synthetic::{generate, SyntheticConfig};
use std::hint::black_box;

fn world() -> (groupsa_data::Dataset, DataContext, GroupSa) {
    let mut dataset = generate(&SyntheticConfig {
        name: "bench-inference".into(),
        seed: 4,
        num_users: 200,
        num_items: 150,
        num_groups: 50,
        num_topics: 4,
        latent_dim: 4,
        avg_items_per_user: 8.0,
        avg_friends_per_user: 5.0,
        avg_items_per_group: 1.2,
        mean_group_size: 4.0,
        zipf_exponent: 0.8,
        homophily: 0.5,
        social_influence: 0.2,
        expertise_sharpness: 3.0,
        taste_temperature: 0.3,
            consensus_blend: 0.5,
            connectedness_boost: 1.0,
    });
    // Append groups of exactly 2, 5, 10 members for controlled scaling.
    for &l in &[2usize, 5, 10] {
        dataset.groups.push((0..l).collect());
    }
    let cfg = GroupSaConfig::paper();
    let ctx = DataContext::from_train_view(&dataset, &cfg);
    let model = GroupSa::new(cfg, dataset.num_users, dataset.num_items);
    (dataset, ctx, model)
}

fn bench_full_vs_fast(c: &mut Criterion) {
    let (dataset, ctx, model) = world();
    let items: Vec<usize> = (0..101).collect();
    let base = dataset.num_groups() - 3;

    let mut group = c.benchmark_group("group_scoring_101_candidates");
    for (i, l) in [2usize, 5, 10].into_iter().enumerate() {
        let t = base + i;
        group.bench_with_input(BenchmarkId::new("full_voting", l), &t, |b, &t| {
            b.iter(|| black_box(model.score_group_items(&ctx, t, black_box(&items))))
        });
        group.bench_with_input(BenchmarkId::new("fast_average", l), &t, |b, &t| {
            b.iter(|| black_box(model.fast_group_scores(&ctx, t, black_box(&items), ScoreAggregation::Average)))
        });
    }
    group.finish();
}

fn bench_user_scoring(c: &mut Criterion) {
    let (_, ctx, model) = world();
    let items: Vec<usize> = (0..101).collect();
    c.bench_function("user_scoring_101_candidates", |b| {
        b.iter(|| black_box(model.score_user_items(&ctx, black_box(7), &items)))
    });
}

fn criterion_config() -> Criterion {
    Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench_full_vs_fast, bench_user_scoring
}
criterion_main!(benches);
