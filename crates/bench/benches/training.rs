//! Criterion B3 (DESIGN.md §5): BPR training throughput — cost of one
//! epoch on the user-item task vs the group-item task.

use criterion::{criterion_group, criterion_main, Criterion};
use groupsa_core::{DataContext, GroupSa, GroupSaConfig, Trainer};
use groupsa_data::synthetic::{generate, SyntheticConfig};
use std::hint::black_box;

fn world() -> (groupsa_data::Dataset, GroupSaConfig) {
    let dataset = generate(&SyntheticConfig {
        name: "bench-training".into(),
        seed: 6,
        num_users: 150,
        num_items: 120,
        num_groups: 120,
        num_topics: 4,
        latent_dim: 4,
        avg_items_per_user: 8.0,
        avg_friends_per_user: 5.0,
        avg_items_per_group: 1.2,
        mean_group_size: 4.0,
        zipf_exponent: 0.8,
        homophily: 0.5,
        social_influence: 0.2,
        expertise_sharpness: 3.0,
        taste_temperature: 0.3,
            consensus_blend: 0.5,
            connectedness_boost: 1.0,
    });
    (dataset, GroupSaConfig::paper())
}

fn bench_epochs(c: &mut Criterion) {
    let (dataset, cfg) = world();
    let ctx = DataContext::from_train_view(&dataset, &cfg);

    c.bench_function("user_task_epoch", |b| {
        b.iter_batched(
            || (GroupSa::new(cfg.clone(), dataset.num_users, dataset.num_items), Trainer::new(cfg.clone())),
            |(mut model, mut trainer)| black_box(trainer.user_epoch(&mut model, &ctx)),
            criterion::BatchSize::LargeInput,
        )
    });

    c.bench_function("group_task_epoch", |b| {
        b.iter_batched(
            || (GroupSa::new(cfg.clone(), dataset.num_users, dataset.num_items), Trainer::new(cfg.clone())),
            |(mut model, mut trainer)| black_box(trainer.group_epoch(&mut model, &ctx)),
            criterion::BatchSize::LargeInput,
        )
    });
}

fn criterion_config() -> Criterion {
    Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5))
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench_epochs
}
criterion_main!(benches);
