//! Criterion B4 (DESIGN.md §5): graph substrate costs — CSR
//! construction, PageRank, TF-IDF neighbour ranking, and the per-group
//! social mask build.

use criterion::{criterion_group, criterion_main, Criterion};
use groupsa_data::synthetic::{generate, SyntheticConfig};
use groupsa_graph::social::{group_mask, Closeness};
use groupsa_graph::{centrality, tfidf, CsrGraph};
use std::hint::black_box;

fn world() -> groupsa_data::Dataset {
    generate(&SyntheticConfig {
        name: "bench-graph".into(),
        seed: 8,
        num_users: 1000,
        num_items: 800,
        num_groups: 400,
        num_topics: 8,
        latent_dim: 6,
        avg_items_per_user: 12.0,
        avg_friends_per_user: 8.0,
        avg_items_per_group: 1.2,
        mean_group_size: 4.5,
        zipf_exponent: 0.8,
        homophily: 0.5,
        social_influence: 0.2,
        expertise_sharpness: 3.0,
        taste_temperature: 0.3,
            consensus_blend: 0.5,
            connectedness_boost: 1.0,
    })
}

fn bench_graph_ops(c: &mut Criterion) {
    let dataset = world();

    c.bench_function("csr_build_social_1k_users", |b| {
        b.iter(|| black_box(CsrGraph::from_edges(dataset.num_users, black_box(&dataset.social))))
    });

    let social = dataset.social_graph();
    c.bench_function("pagerank_1k_users", |b| {
        b.iter(|| black_box(centrality::pagerank(&social, 0.85, 1e-8, 100)))
    });

    let ui = dataset.user_item_graph();
    c.bench_function("tfidf_top5_items_all_users", |b| {
        b.iter(|| {
            for u in 0..dataset.num_users {
                black_box(tfidf::top_items(&ui, u, 5));
            }
        })
    });

    c.bench_function("group_masks_all_groups", |b| {
        b.iter(|| {
            for members in &dataset.groups {
                black_box(group_mask(&social, members, Closeness::Direct));
            }
        })
    });
}

fn criterion_config() -> Criterion {
    Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench_graph_ops
}
criterion_main!(benches);
