//! Criterion B2 (DESIGN.md §5): scaling of the social self-attention
//! kernel — forward and backward cost as a function of group size `l`
//! and stack depth `N_X`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use groupsa_nn::attention::social_bias_mask;
use groupsa_nn::{ParamStore, TransformerLayer};
use groupsa_tensor::rng::seeded;
use groupsa_tensor::{Graph, Matrix};
use std::hint::black_box;

const D: usize = 32;

fn build_layer(store: &mut ParamStore, name: &str) -> TransformerLayer {
    let mut rng = seeded(1);
    TransformerLayer::new(store, &mut rng, name, D, D, D, 0.0)
}

fn members(l: usize) -> Matrix {
    Matrix::from_fn(l, D, |r, c| ((r * D + c) as f32 * 0.13).sin())
}

fn ring_mask(l: usize) -> Matrix {
    let allowed: Vec<Vec<bool>> = (0..l)
        .map(|i| (0..l).map(|j| j == (i + 1) % l || i == (j + 1) % l).collect())
        .collect();
    social_bias_mask(&allowed)
}

fn bench_forward_by_group_size(c: &mut Criterion) {
    let mut store = ParamStore::new();
    let layer = build_layer(&mut store, "t");
    let mut group = c.benchmark_group("social_self_attention_forward");
    for l in [2usize, 4, 8, 15] {
        let x = members(l);
        let mask = ring_mask(l);
        group.bench_with_input(BenchmarkId::from_parameter(l), &l, |b, _| {
            b.iter(|| black_box(layer.forward_inference(&store, black_box(&x), Some(&mask))))
        });
    }
    group.finish();
}

fn bench_forward_backward_by_depth(c: &mut Criterion) {
    let mut store = ParamStore::new();
    let layers: Vec<TransformerLayer> = (0..3).map(|i| build_layer(&mut store, &format!("t{i}"))).collect();
    let x0 = members(5);
    let mask = ring_mask(5);
    let mut group = c.benchmark_group("voting_stack_train_step");
    for depth in [1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            b.iter(|| {
                let mut rng = seeded(0);
                let mut g = Graph::new();
                let mut x = g.leaf(x0.clone());
                for layer in &layers[..depth] {
                    x = layer.forward(&mut g, &store, &mut rng, x, Some(&mask), false);
                }
                let loss = g.mean_all(x);
                black_box(g.backward(loss));
            })
        });
    }
    group.finish();
}

fn criterion_config() -> Criterion {
    Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench_forward_by_group_size, bench_forward_backward_by_depth
}
criterion_main!(benches);
