//! Oracle ceiling probe (not part of the paper reproduction): scores
//! test groups with the *planted* ground truth to measure how much
//! headroom item-conditioned expertise voting has over uniform
//! averaging on the synthetic data.

use groupsa_bench::ExperimentEnv;
use groupsa_data::synthetic::yelp_sim;

fn main() {
    let mut synth = yelp_sim();
    let args: Vec<String> = std::env::args().collect();
    if let Some(groups) = args.get(1).and_then(|s| s.parse::<usize>().ok()) {
        synth.num_groups = groups;
    }
    if let Some(sharp) = args.get(2).and_then(|s| s.parse::<f64>().ok()) {
        synth.expertise_sharpness = sharp;
    }
    if let Some(h) = args.get(3).and_then(|s| s.parse::<f64>().ok()) {
        synth.homophily = h;
    }
    if let Some(t) = args.get(4).and_then(|s| s.parse::<f64>().ok()) {
        synth.taste_temperature = t;
    }
    let (_, truth) = groupsa_data::synthetic::generate_with_truth(&synth);
    let env = ExperimentEnv::prepare(&synth);
    let members = env.dataset.groups.clone();

    let dot = |a: &[f32], b: &[f32]| -> f32 { a.iter().zip(b).map(|(x, y)| x * y).sum() };

    // Oracle A: the true expertise-weighted vote.
    let sharp = synth.expertise_sharpness;
    let vote = |t: usize, items: &[usize]| -> Vec<f32> {
        items
            .iter()
            .map(|&v| {
                let topic = truth.item_topic[v];
                let raw: Vec<f64> = members[t].iter().map(|&u| (sharp * truth.expertise[u][topic] as f64).exp()).collect();
                let total: f64 = raw.iter().sum();
                members[t]
                    .iter()
                    .zip(&raw)
                    .map(|(&u, w)| (w / total) as f32 * dot(&truth.user_latent[u], &truth.item_latent[v]))
                    .sum()
            })
            .collect()
    };
    // Oracle B: uniform average of true member tastes.
    let avg = |t: usize, items: &[usize]| -> Vec<f32> {
        items
            .iter()
            .map(|&v| {
                members[t]
                    .iter()
                    .map(|&u| dot(&truth.user_latent[u], &truth.item_latent[v]))
                    .sum::<f32>()
                    / members[t].len() as f32
            })
            .collect()
    };

    let rv = env.eval_group(&vote);
    let ra = env.eval_group(&avg);
    println!("oracle-vote: HR@5={:.4} HR@10={:.4} NDCG@5={:.4}", rv.hr(5), rv.hr(10), rv.ndcg(5));
    println!("oracle-avg : HR@5={:.4} HR@10={:.4} NDCG@5={:.4}", ra.hr(5), ra.hr(10), ra.ndcg(5));
}
