//! Micro-calibration: times the pieces of one training step to find
//! the bottleneck (not part of the paper reproduction).

use groupsa_core::{DataContext, GroupSa, GroupSaConfig, Trainer};
use groupsa_data::synthetic::{generate, yelp_sim};
use std::time::Instant;

fn main() {
    let mut synth = yelp_sim();
    synth.num_users = 360;
    synth.num_items = 270;
    synth.num_groups = 240;
    let d = generate(&synth);
    let cfg = GroupSaConfig::paper();
    let split = groupsa_data::split_dataset(&d, 0.2, 0.1, 42);
    let ctx = DataContext::build(&d, &split, &cfg);
    let mut model = GroupSa::new(cfg.clone(), d.num_users, d.num_items);
    println!("params: {}", model.num_parameters());

    // Time a full user epoch.
    let mut trainer = Trainer::new(cfg.clone());
    let t = Instant::now();
    let loss = trainer.user_epoch(&mut model, &ctx);
    let n = ctx.train_user_item.len();
    println!("user epoch: {:?} for {} steps = {:.1}us/step (loss {loss})", t.elapsed(), n, t.elapsed().as_micros() as f64 / n as f64);

    let t = Instant::now();
    let loss = trainer.group_epoch(&mut model, &ctx);
    let n = ctx.train_group_item.len();
    println!("group epoch: {:?} for {} steps = {:.1}us/step (loss {loss})", t.elapsed(), n, t.elapsed().as_micros() as f64 / n as f64);

    // Forward-only timing.
    let t = Instant::now();
    let mut acc = 0.0f32;
    for i in 0..1000 {
        acc += model.score_user_items(&ctx, i % d.num_users, &[0, 1])[0];
    }
    println!("user fwd x1000: {:?} (acc {acc})", t.elapsed());
}
