//! Regenerates paper Figure 3 (component ablations).

fn main() {
    groupsa_bench::experiments::fig3();
}
