//! Load generator for the `groupsa-serve` subsystem.
//!
//! Five modes:
//!
//! * **In-process sweep** (default): freezes a tiny model, runs the
//!   engine at 1/2/4 workers under concurrent client threads, and
//!   writes throughput + exact client-side latency percentiles to
//!   `results/serve_bench.json`.
//! * **Overload sweep** (`--overload true`): saturates a 1-worker
//!   engine over a heavy group-voting world with a client sweep far
//!   past capacity, classifying every answer client-side (ok / shed /
//!   expired / queue-rejected / error) and recording how fast shed
//!   answers come back relative to the deadline they pre-empted.
//!   Gates on the conservation law `submitted == completed + errors +
//!   expired + shed` at every step and on shed answers being far
//!   under the deadline; writes `results/serve_bench_overload.json`.
//! * **Snapshot scale** (`--users N`): streams an `N`-user synthetic
//!   universe straight into a sharded binary snapshot (never holding
//!   the universe in memory), opens it lazily through
//!   `FrozenModel::from_snapshot` with a stub context, serves a mixed
//!   workload from it, and writes write/open timings, resident table
//!   bytes, disk bytes and peak RSS to
//!   `results/serve_bench_snapshot.json`. `--memory-budget-mb` turns
//!   the million-scale memory claim into a hard gate: the bench exits
//!   nonzero if peak RSS exceeds the budget.
//! * **Telemetry sweep** (`--telemetry true`): boots a real TCP server
//!   in-process and drives the pipelined wire path at sampling off,
//!   `1/64`, and `1/1` (injected via `EngineConfig`, not the
//!   environment), measuring what request-lifecycle telemetry costs.
//!   Each sampled run also fetches the `MetricsDump` page and
//!   schema-validates it (parses, declares every contract metric,
//!   agrees with the sampling rate). Writes per-mode throughput,
//!   latency percentiles, ring counters, and overhead relative to the
//!   telemetry-off baseline to `results/serve_bench_telemetry.json`.
//! * **TCP** (`--addr HOST:PORT`): drives a running `groupsa-serve`
//!   over NDJSON, validating every response (echoed id, ≤ k items,
//!   descending scores). Learns the id universe from a `Stats`
//!   request, so it works against any dataset. `--pipeline true`
//!   writes every request line before reading any response and
//!   matches replies by id — the pipelined wire path. `--reload DIR`
//!   first hot-swaps the server onto a snapshot directory (expects
//!   `Reloaded`) and then benches against the swapped model. With
//!   `--shutdown true` it finishes by asking the server to exit (and
//!   expects `Bye`) — this is the tier-1 smoke path. Exits nonzero on
//!   any malformed response. `--metrics true` additionally fetches a
//!   `MetricsDump` after the bench and fails unless the page parses
//!   and declares every contract metric.
//!
//! ```text
//! serve_bench [--clients N] [--requests N] [--k N] [--save true|false]
//!             [--addr HOST:PORT] [--shutdown true|false]
//!             [--pipeline true|false] [--reload DIR]
//!             [--metrics true|false] [--telemetry true|false]
//!             [--overload true|false] [--deadline-ms N]
//!             [--users N] [--items N] [--groups N] [--snapshot DIR]
//!             [--shards N] [--quant f32|f16|i8] [--chunk N]
//!             [--memory-budget-mb N]
//! ```
//! `--requests` is the per-client request count. `--save false` skips
//! writing results JSON (used by CI smoke runs that must not clobber
//! committed results).
//!
//! Every report carries a `schema_version` (like `BENCH_kernels.json`)
//! and an existing results file is schema-validated before it is
//! overwritten.
//!
//! The in-process sweep defaults `GROUPSA_TRACE` to
//! `results/serve_bench_trace.jsonl` so every sweep leaves a
//! machine-readable request/batch trace behind; set the variable
//! yourself (or run the TCP mode, which never defaults it) to override.

use groupsa_bench::output::RESULT_SCHEMA_VERSION;
use groupsa_core::{DataContext, GroupSa, GroupSaConfig};
use groupsa_data::synthetic::{generate, SyntheticConfig};
use groupsa_data::StreamConfig;
use groupsa_json::impl_json_struct;
use groupsa_obs::TelemetryConfig;
use groupsa_serve::engine::{Engine, EngineConfig};
use groupsa_serve::metrics::EXPOSITION_METRICS;
use groupsa_serve::protocol::{RecommendRequest, Request, Response, ServeMode, Target};
use groupsa_serve::server::{self, ServerConfig};
use groupsa_serve::FrozenModel;
use groupsa_snapshot::{Quant, SnapshotMeta, SnapshotWriter};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

// ---------------------------------------------------------------- CLI

fn parse_flags() -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut args = std::env::args().skip(1);
    while let Some(key) = args.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("unexpected argument `{key}` (flags are --key value)"));
        };
        let value = args.next().ok_or_else(|| format!("--{name} needs a value"))?;
        flags.insert(name.to_string(), value);
    }
    Ok(flags)
}

fn num<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{key}: cannot parse `{v}`")),
    }
}

// ----------------------------------------------------------- workload

/// Deterministic mixed workload over a known-valid id universe.
fn workload(n: usize, per_client_offset: usize, k: usize, users: usize, groups: usize) -> Vec<RecommendRequest> {
    let modes = [
        ServeMode::Voting,
        ServeMode::FastAverage,
        ServeMode::FastLeastMisery,
        ServeMode::FastMaxSatisfaction,
    ];
    (0..n)
        .map(|j| {
            let i = per_client_offset + j;
            let target = if i % 3 == 0 {
                Target::Group { id: (i * 7) % groups.max(1) }
            } else {
                Target::User { id: (i * 11) % users.max(1) }
            };
            RecommendRequest {
                id: (i + 1) as u64,
                target,
                k,
                exclude_seen: i % 2 == 0,
                mode: modes[i % modes.len()],
                deadline_ms: 0,
            }
        })
        .collect()
}

/// Validates one recommend response against its request; returns the
/// failure reason, if any.
fn validate(req: &RecommendRequest, resp: &Response) -> Result<(), String> {
    match resp {
        Response::Recommend { id, items } => {
            if *id != req.id {
                return Err(format!("response id {id} != request id {}", req.id));
            }
            if items.len() > req.k {
                return Err(format!("{} items for k={}", items.len(), req.k));
            }
            for w in items.windows(2) {
                // NaN never outranks a real score, so >= with NaN-last
                // ordering reduces to: not (prev < next).
                if w[0].score < w[1].score {
                    return Err(format!("scores not descending: {} < {}", w[0].score, w[1].score));
                }
            }
            Ok(())
        }
        Response::Error { error, .. } => Err(format!("server error: {error}")),
        other => Err(format!("unexpected response kind: {other:?}")),
    }
}

// ----------------------------------------------------- result payload

/// One measured configuration.
#[derive(Clone, Debug)]
struct RunResult {
    workers: usize,
    clients: usize,
    requests: u64,
    elapsed_ms: f64,
    throughput_rps: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    mean_us: f64,
}

impl_json_struct!(RunResult {
    workers,
    clients,
    requests,
    elapsed_ms,
    throughput_rps,
    p50_us,
    p95_us,
    p99_us,
    mean_us,
});

#[derive(Clone, Debug)]
struct BenchReport {
    schema_version: u64,
    dataset: String,
    num_users: usize,
    num_items: usize,
    num_groups: usize,
    k: usize,
    runs: Vec<RunResult>,
}

impl_json_struct!(BenchReport { schema_version, dataset, num_users, num_items, num_groups, k, runs });

/// The snapshot-scale report (`results/serve_bench_snapshot.json`):
/// how long the streamed write and the lazy open took, how many bytes
/// stay resident versus live on disk, and what the engine sustained
/// serving out of the snapshot.
#[derive(Clone, Debug)]
struct SnapshotReport {
    schema_version: u64,
    num_users: usize,
    num_items: usize,
    num_groups: usize,
    dim: usize,
    shards: u64,
    quant: String,
    chunk_users: usize,
    snapshot_id: String,
    snapshot_write_s: f64,
    snapshot_open_ms: f64,
    snapshot_disk_bytes: u64,
    /// Bytes the lazy backing keeps resident (presence bitmap + group
    /// index) — the floor the serving process pays per snapshot.
    resident_table_bytes: u64,
    /// What the same tables would occupy fully materialised in f32.
    full_table_bytes: u64,
    /// Peak RSS of this process (VmHWM), 0 where /proc is unavailable.
    peak_rss_bytes: u64,
    memory_budget_bytes: u64,
    k: usize,
    runs: Vec<RunResult>,
}

impl_json_struct!(SnapshotReport {
    schema_version,
    num_users,
    num_items,
    num_groups,
    dim,
    shards,
    quant,
    chunk_users,
    snapshot_id,
    snapshot_write_s,
    snapshot_open_ms,
    snapshot_disk_bytes,
    resident_table_bytes,
    full_table_bytes,
    peak_rss_bytes,
    memory_budget_bytes,
    k,
    runs,
});

/// Exact percentiles from raw per-request latencies (µs).
fn exact_percentiles(latencies: &mut [u64]) -> (u64, u64, u64, f64) {
    latencies.sort_unstable();
    let pick = |q: f64| {
        let rank = ((q * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len());
        latencies[rank - 1]
    };
    let mean = latencies.iter().sum::<u64>() as f64 / latencies.len() as f64;
    (pick(0.50), pick(0.95), pick(0.99), mean)
}

// ----------------------------------------------------- in-process mode

/// The tiny serve-bench world shared by the in-process and telemetry
/// sweeps: (dataset name, frozen model, users, items, groups).
fn tiny_world() -> (String, Arc<FrozenModel>, usize, usize, usize) {
    let syn = SyntheticConfig {
        name: "serve-bench".into(),
        seed: 7,
        num_users: 60,
        num_items: 40,
        num_groups: 25,
        num_topics: 4,
        latent_dim: 4,
        avg_items_per_user: 8.0,
        avg_friends_per_user: 5.0,
        avg_items_per_group: 1.5,
        mean_group_size: 3.5,
        zipf_exponent: 0.8,
        homophily: 0.8,
        social_influence: 0.3,
        expertise_sharpness: 2.0,
        taste_temperature: 0.3,
        consensus_blend: 0.5,
        connectedness_boost: 1.0,
    };
    let dataset = generate(&syn);
    let model = GroupSa::new(GroupSaConfig::tiny(), dataset.num_users, dataset.num_items);
    let ctx = DataContext::from_train_view(&dataset, model.config());
    let (users, groups) = (ctx.num_users, ctx.num_groups());
    let num_items = ctx.num_items;
    (syn.name, Arc::new(FrozenModel::freeze(model, ctx)), users, num_items, groups)
}

fn in_process_sweep(clients: usize, per_client: usize, k: usize, save: bool) -> Result<(), String> {
    let unset = std::env::var(groupsa_obs::TRACE_ENV).map(|v| v.trim().is_empty()).unwrap_or(true);
    if unset {
        std::env::set_var(groupsa_obs::TRACE_ENV, "results/serve_bench_trace.jsonl");
    }
    groupsa_obs::emit("run", &[("label", groupsa_obs::to_json(&"serve_bench_sweep"))]);
    let (dataset_name, frozen, users, num_items, groups) = tiny_world();

    let mut runs = Vec::new();
    for workers in [1usize, 2, 4] {
        let engine =
            Engine::start(Arc::clone(&frozen), EngineConfig { workers, ..EngineConfig::default() });
        let started = Instant::now();
        let mut handles = Vec::new();
        for c in 0..clients {
            let engine = Arc::clone(&engine);
            let reqs = workload(per_client, c * per_client, k, users, groups);
            handles.push(std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(reqs.len());
                for req in reqs {
                    let t = Instant::now();
                    let resp = engine.submit(req.clone());
                    latencies.push(t.elapsed().as_micros() as u64);
                    validate(&req, &resp)?;
                }
                Ok::<Vec<u64>, String>(latencies)
            }));
        }
        let mut latencies = Vec::new();
        for handle in handles {
            latencies.extend(handle.join().map_err(|_| "client thread panicked".to_string())??);
        }
        let elapsed = started.elapsed();
        engine.shutdown();

        let (p50, p95, p99, mean) = exact_percentiles(&mut latencies);
        let total = latencies.len() as u64;
        let run = RunResult {
            workers,
            clients,
            requests: total,
            elapsed_ms: elapsed.as_secs_f64() * 1e3,
            throughput_rps: total as f64 / elapsed.as_secs_f64(),
            p50_us: p50,
            p95_us: p95,
            p99_us: p99,
            mean_us: mean,
        };
        println!(
            "workers={} clients={} requests={} throughput={:.0} req/s p50={}us p95={}us p99={}us",
            run.workers, run.clients, run.requests, run.throughput_rps, run.p50_us, run.p95_us, run.p99_us
        );
        runs.push(run);
    }

    if save {
        groupsa_bench::output::check_schema("serve_bench", RESULT_SCHEMA_VERSION)?;
        let report = BenchReport {
            schema_version: RESULT_SCHEMA_VERSION,
            dataset: dataset_name,
            num_users: users,
            num_items,
            num_groups: groups,
            k,
            runs,
        };
        let path = groupsa_bench::output::save_json("serve_bench", &report).map_err(|e| e.to_string())?;
        println!("[saved {}]", path.display());
    } else {
        println!("[--save false: skipped results/serve_bench.json]");
    }
    Ok(())
}

// ------------------------------------------------------ telemetry mode

/// One sampling mode of the telemetry sweep.
#[derive(Clone, Debug)]
struct TelemetryRun {
    mode: String,
    sample_every: u64,
    requests: u64,
    elapsed_ms: f64,
    throughput_rps: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    mean_us: f64,
    /// Lifecycle records the ring accepted / overwrote-and-dropped,
    /// as the exposition page reported them at the end of the run.
    ring_pushed: u64,
    ring_dropped: u64,
    /// Records still resident in the ring after shutdown.
    records_captured: u64,
    /// Throughput lost relative to the telemetry-off run of the same
    /// sweep, in percent (0 for the off run itself; negative when a
    /// sampled run happened to measure faster).
    overhead_pct: f64,
}

impl_json_struct!(TelemetryRun {
    mode,
    sample_every,
    requests,
    elapsed_ms,
    throughput_rps,
    p50_us,
    p95_us,
    p99_us,
    mean_us,
    ring_pushed,
    ring_dropped,
    records_captured,
    overhead_pct,
});

/// The telemetry report (`results/serve_bench_telemetry.json`): what
/// request-lifecycle telemetry costs on the pipelined wire path, per
/// sampling rate, against the telemetry-off baseline.
#[derive(Clone, Debug)]
struct TelemetryReport {
    schema_version: u64,
    dataset: String,
    num_users: usize,
    num_items: usize,
    num_groups: usize,
    workers: usize,
    clients: usize,
    requests_per_client: usize,
    k: usize,
    runs: Vec<TelemetryRun>,
}

impl_json_struct!(TelemetryReport {
    schema_version,
    dataset,
    num_users,
    num_items,
    num_groups,
    workers,
    clients,
    requests_per_client,
    k,
    runs,
});

/// Fetches a `MetricsDump` over `conn` and checks the exposition
/// contract: the page parses and declares every metric in
/// [`EXPOSITION_METRICS`]. Returns the parsed page.
fn fetch_metrics_page(
    conn: &mut Connection,
    id: u64,
) -> Result<groupsa_obs::expo::ParsedPage, String> {
    let page = match conn.roundtrip(&Request::MetricsDump { id })? {
        Response::Metrics { id: got, page } if got == id => page,
        other => return Err(format!("expected Metrics response, got {other:?}")),
    };
    let parsed = groupsa_obs::expo::parse(&page)
        .map_err(|e| format!("metrics page does not parse: {e}"))?;
    for name in EXPOSITION_METRICS {
        if !parsed.declares(name) {
            return Err(format!("metrics page is missing # TYPE for {name}"));
        }
    }
    Ok(parsed)
}

/// The telemetry cost sweep: the same pipelined TCP workload against a
/// fresh server at sampling off, `1/64`, and `1/1` — configs injected
/// through [`EngineConfig`] so the environment cannot skew a mode —
/// with the `MetricsDump` page validated in every mode.
fn telemetry_sweep(flags: &HashMap<String, String>) -> Result<(), String> {
    let clients: usize = num(flags, "clients", 4)?;
    let per_client: usize = num(flags, "requests", 256)?;
    let k: usize = num(flags, "k", 5)?;
    let workers: usize = num(flags, "workers", 2)?;
    let reps: usize = num(flags, "reps", 5)?.max(1);
    let save = !matches!(flags.get("save").map(String::as_str), Some("false"));
    let (dataset, frozen, users, items, groups) = tiny_world();
    println!(
        "telemetry sweep: pipelined TCP, {workers} workers, {clients} clients × {per_client} \
         requests, best of {reps}"
    );

    let mut runs: Vec<TelemetryRun> = Vec::new();
    for (mode, telemetry) in [
        ("off", TelemetryConfig::disabled()),
        ("1/64", TelemetryConfig::sampling(64)),
        ("1/1", TelemetryConfig::sampling(1)),
    ] {
        let engine = Engine::start(
            Arc::clone(&frozen),
            EngineConfig {
                workers,
                // The whole pipelined burst may be in flight at once;
                // this sweep measures telemetry cost, not overload
                // behaviour, so the queue must swallow it.
                queue_capacity: (clients * per_client).max(256),
                telemetry: Some(telemetry),
                ..EngineConfig::default()
            },
        );
        let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
        let addr = listener.local_addr().map_err(|e| e.to_string())?.to_string();
        let server = {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || server::run_with(listener, engine, ServerConfig::default()))
        };

        // Best-of-`reps` bursts against the same server: one 40 ms
        // burst is far too noisy to support an overhead comparison, and
        // the fastest rep is the one least polluted by scheduler luck.
        let mut best: Option<(Vec<u64>, std::time::Duration)> = None;
        for _ in 0..reps {
            let started = Instant::now();
            let mut handles = Vec::new();
            for c in 0..clients {
                let addr = addr.clone();
                let reqs = workload(per_client, c * per_client, k, users, groups);
                handles.push(std::thread::spawn(move || {
                    let mut conn = Connection::open(&addr)?;
                    pipelined_batch(&mut conn, &reqs)
                }));
            }
            let mut latencies = Vec::new();
            for handle in handles {
                latencies
                    .extend(handle.join().map_err(|_| "client thread panicked".to_string())??);
            }
            let elapsed = started.elapsed();
            if best.as_ref().is_none_or(|(_, fastest)| elapsed < *fastest) {
                best = Some((latencies, elapsed));
            }
        }
        let (mut latencies, elapsed) = best.expect("reps >= 1");

        // The exposition contract holds in every mode, off included.
        let mut probe = Connection::open(&addr)?;
        let parsed = fetch_metrics_page(&mut probe, 9_000)?;
        if parsed.value("groupsa_obs_sample_every") != Some(telemetry.sample_every as f64) {
            return Err(format!("page reports the wrong sampling rate for mode {mode}"));
        }
        let ring_pushed = parsed.value("groupsa_obs_ring_pushed_total").unwrap_or(0.0) as u64;
        let ring_dropped = parsed.value("groupsa_obs_ring_dropped_total").unwrap_or(0.0) as u64;
        match probe.roundtrip(&Request::Shutdown { id: 9_001 })? {
            Response::Bye { id: 9_001 } => {}
            other => return Err(format!("expected Bye, got {other:?}")),
        }
        server
            .join()
            .map_err(|_| "server thread panicked".to_string())?
            .map_err(|e| e.to_string())?;
        let records_captured = engine.telemetry().records().len() as u64;

        let (p50, p95, p99, mean) = exact_percentiles(&mut latencies);
        let total = latencies.len() as u64;
        let throughput_rps = total as f64 / elapsed.as_secs_f64();
        let overhead_pct = runs
            .first()
            .map(|off| (off.throughput_rps - throughput_rps) / off.throughput_rps * 100.0)
            .unwrap_or(0.0);
        let run = TelemetryRun {
            mode: mode.to_string(),
            sample_every: telemetry.sample_every,
            requests: total,
            elapsed_ms: elapsed.as_secs_f64() * 1e3,
            throughput_rps,
            p50_us: p50,
            p95_us: p95,
            p99_us: p99,
            mean_us: mean,
            ring_pushed,
            ring_dropped,
            records_captured,
            overhead_pct,
        };
        println!(
            "  mode={:<5} {:>7.0} req/s p50={}us p95={}us ring={}/{}dropped records={} overhead={:+.1}%",
            run.mode,
            run.throughput_rps,
            run.p50_us,
            run.p95_us,
            run.ring_pushed,
            run.ring_dropped,
            run.records_captured,
            run.overhead_pct
        );
        runs.push(run);
    }

    if save {
        groupsa_bench::output::check_schema("serve_bench_telemetry", RESULT_SCHEMA_VERSION)?;
        let report = TelemetryReport {
            schema_version: RESULT_SCHEMA_VERSION,
            dataset,
            num_users: users,
            num_items: items,
            num_groups: groups,
            workers,
            clients,
            requests_per_client: per_client,
            k,
            runs,
        };
        let path = groupsa_bench::output::save_json("serve_bench_telemetry", &report)
            .map_err(|e| e.to_string())?;
        println!("[saved {}]", path.display());
    } else {
        println!("[--save false: skipped results/serve_bench_telemetry.json]");
    }
    Ok(())
}

// ------------------------------------------------------- overload mode

/// Client-side classification of one answer under overload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Outcome {
    Ok,
    Shed,
    Expired,
    Rejected,
    Error,
}

fn classify(resp: &Response) -> Outcome {
    match resp {
        Response::Recommend { .. } => Outcome::Ok,
        Response::Error { error, .. } if error.starts_with("shed:") => Outcome::Shed,
        Response::Error { error, .. } if error.contains("deadline exceeded") => Outcome::Expired,
        Response::Error { error, .. } if error.contains("queue full") => Outcome::Rejected,
        _ => Outcome::Error,
    }
}

/// One step of the past-saturation client sweep.
#[derive(Clone, Debug)]
struct OverloadStep {
    clients: usize,
    requests: u64,
    ok: u64,
    shed: u64,
    expired: u64,
    rejected: u64,
    errors: u64,
    throughput_rps: f64,
    ok_p50_us: u64,
    ok_p95_us: u64,
    /// Latency of the answers admission control *refused* — the point
    /// of shedding is that these are orders of magnitude under the
    /// deadline (0 when nothing was shed at this step).
    shed_p50_us: u64,
    shed_p95_us: u64,
}

impl_json_struct!(OverloadStep {
    clients,
    requests,
    ok,
    shed,
    expired,
    rejected,
    errors,
    throughput_rps,
    ok_p50_us,
    ok_p95_us,
    shed_p50_us,
    shed_p95_us,
});

/// The overload report (`results/serve_bench_overload.json`).
#[derive(Clone, Debug)]
struct OverloadReport {
    schema_version: u64,
    workers: usize,
    queue_capacity: usize,
    deadline_ms: u64,
    num_users: usize,
    num_items: usize,
    num_groups: usize,
    /// Sub-saturation throughput with shedding disabled / enabled on
    /// the same workload — shedding must not tax the healthy regime.
    baseline_rps_shed_off: f64,
    baseline_rps_shed_on: f64,
    steps: Vec<OverloadStep>,
}

impl_json_struct!(OverloadReport {
    schema_version,
    workers,
    queue_capacity,
    deadline_ms,
    num_users,
    num_items,
    num_groups,
    baseline_rps_shed_off,
    baseline_rps_shed_on,
    steps,
});

/// A heavy world: group-voting over a wide catalog, so a single worker
/// saturates at a handful of concurrent clients.
fn heavy_frozen(seed: u64) -> (Arc<FrozenModel>, usize, usize, usize) {
    let syn = SyntheticConfig {
        name: format!("serve-overload-{seed}"),
        seed,
        num_users: 60,
        num_items: 400,
        num_groups: 25,
        num_topics: 4,
        latent_dim: 4,
        avg_items_per_user: 8.0,
        avg_friends_per_user: 5.0,
        avg_items_per_group: 1.5,
        mean_group_size: 3.5,
        zipf_exponent: 0.8,
        homophily: 0.8,
        social_influence: 0.3,
        expertise_sharpness: 2.0,
        taste_temperature: 0.3,
        consensus_blend: 0.5,
        connectedness_boost: 1.0,
    };
    let dataset = generate(&syn);
    let model = GroupSa::new(GroupSaConfig::tiny(), dataset.num_users, dataset.num_items);
    let ctx = DataContext::from_train_view(&dataset, model.config());
    let (u, i, g) = (ctx.num_users, ctx.num_items, ctx.num_groups());
    (Arc::new(FrozenModel::freeze(model, ctx)), u, i, g)
}

fn heavy_request(id: u64, groups: usize, k: usize, deadline_ms: u64) -> RecommendRequest {
    RecommendRequest {
        id,
        target: Target::Group { id: id as usize % groups.max(1) },
        k,
        exclude_seen: false,
        mode: ServeMode::Voting,
        deadline_ms,
    }
}

/// Drives `clients` blocking submitters of heavy group-voting requests
/// through a fresh engine; returns (outcome counts, ok latencies µs,
/// shed latencies µs, elapsed seconds), after checking the engine's
/// own conservation law.
fn overload_step(
    frozen: &Arc<FrozenModel>,
    groups: usize,
    k: usize,
    clients: usize,
    per_client: usize,
    deadline_ms: u64,
    shed: bool,
) -> Result<(Vec<(Outcome, u64)>, f64), String> {
    let engine = Engine::start(
        Arc::clone(frozen),
        EngineConfig {
            workers: 1,
            queue_capacity: 64,
            max_batch: 4,
            default_deadline_ms: 0,
            shed,
            telemetry: None,
        },
    );
    let started = Instant::now();
    let mut handles = Vec::new();
    for c in 0..clients {
        let engine = Arc::clone(&engine);
        handles.push(std::thread::spawn(move || {
            let mut out = Vec::with_capacity(per_client);
            for j in 0..per_client {
                let req =
                    heavy_request((c * per_client + j) as u64, groups, k, deadline_ms);
                let t = Instant::now();
                let resp = engine.submit(req);
                out.push((classify(&resp), t.elapsed().as_micros() as u64));
            }
            out
        }));
    }
    let mut outcomes = Vec::new();
    for handle in handles {
        outcomes.extend(handle.join().map_err(|_| "client thread panicked".to_string())?);
    }
    let elapsed = started.elapsed().as_secs_f64();
    let stats = engine.shutdown();
    if stats.submitted != stats.completed + stats.errors + stats.expired + stats.shed {
        return Err(format!(
            "conservation violated at {clients} clients: submitted {} != {} + {} + {} + {}",
            stats.submitted, stats.completed, stats.errors, stats.expired, stats.shed
        ));
    }
    Ok((outcomes, elapsed))
}

fn percentiles_or_zero(mut latencies: Vec<u64>) -> (u64, u64) {
    if latencies.is_empty() {
        return (0, 0);
    }
    let (p50, p95, _, _) = exact_percentiles(&mut latencies);
    (p50, p95)
}

/// The past-saturation sweep: 1 worker, deadline-carrying heavy
/// requests, client counts far beyond capacity. Past saturation the
/// engine must shed early (answers in µs, not after the deadline
/// burned), and shedding must not cost throughput below saturation.
fn overload_sweep(flags: &HashMap<String, String>) -> Result<(), String> {
    let per_client: usize = num(flags, "requests", 24)?;
    let k: usize = num(flags, "k", 10)?;
    // ~5 ms: an order of magnitude over one request's service time on
    // this world, so the healthy regime never sheds, but a queue a few
    // dozen deep predicts past it.
    let deadline_ms: u64 = num(flags, "deadline-ms", 5)?;
    let save = !matches!(flags.get("save").map(String::as_str), Some("false"));
    let (frozen, users, items, groups) = heavy_frozen(7);
    println!(
        "overload sweep: 1 worker, {items}-item voting world, {deadline_ms} ms deadline, \
         {per_client} requests/client"
    );

    // Sub-saturation baseline, shed off vs on: identical workloads, so
    // any shedding overhead in the healthy regime shows up directly.
    let (base_off, elapsed_off) =
        overload_step(&frozen, groups, k, 2, per_client, deadline_ms, false)?;
    let (base_on, elapsed_on) =
        overload_step(&frozen, groups, k, 2, per_client, deadline_ms, true)?;
    let baseline_rps_shed_off = base_off.len() as f64 / elapsed_off;
    let baseline_rps_shed_on = base_on.len() as f64 / elapsed_on;
    println!(
        "  baseline (2 clients): shed-off {baseline_rps_shed_off:.0} req/s, \
         shed-on {baseline_rps_shed_on:.0} req/s"
    );

    let mut steps = Vec::new();
    for clients in [1usize, 2, 4, 8, 16, 32] {
        let (outcomes, elapsed) =
            overload_step(&frozen, groups, k, clients, per_client, deadline_ms, true)?;
        let count = |o: Outcome| outcomes.iter().filter(|(kind, _)| *kind == o).count() as u64;
        let lat = |o: Outcome| {
            outcomes.iter().filter(|(kind, _)| *kind == o).map(|(_, us)| *us).collect::<Vec<_>>()
        };
        let (ok_p50, ok_p95) = percentiles_or_zero(lat(Outcome::Ok));
        let (shed_p50, shed_p95) = percentiles_or_zero(lat(Outcome::Shed));
        let step = OverloadStep {
            clients,
            requests: outcomes.len() as u64,
            ok: count(Outcome::Ok),
            shed: count(Outcome::Shed),
            expired: count(Outcome::Expired),
            rejected: count(Outcome::Rejected),
            errors: count(Outcome::Error),
            throughput_rps: outcomes.len() as f64 / elapsed,
            ok_p50_us: ok_p50,
            ok_p95_us: ok_p95,
            shed_p50_us: shed_p50,
            shed_p95_us: shed_p95,
        };
        println!(
            "  clients={:<2} ok={:<3} shed={:<3} expired={:<3} rejected={:<3} errors={:<2} \
             {:>6.0} req/s ok_p95={}us shed_p95={}us",
            step.clients,
            step.ok,
            step.shed,
            step.expired,
            step.rejected,
            step.errors,
            step.throughput_rps,
            step.ok_p95_us,
            step.shed_p95_us
        );
        // The whole point of shedding: a shed answer must come back
        // far before the deadline it refused to chase. "Far" = a tenth
        // of the budget; in practice it is microseconds.
        if step.shed > 0 && step.shed_p95_us * 10 > deadline_ms * 1000 {
            return Err(format!(
                "shed answers too slow at {clients} clients: p95 {}us vs {deadline_ms}ms deadline",
                step.shed_p95_us
            ));
        }
        steps.push(step);
    }
    let total_shed: u64 = steps.iter().map(|s| s.shed).sum();
    if total_shed == 0 {
        return Err("sweep never shed — the overload regime was not reached".into());
    }

    if save {
        groupsa_bench::output::check_schema("serve_bench_overload", RESULT_SCHEMA_VERSION)?;
        let report = OverloadReport {
            schema_version: RESULT_SCHEMA_VERSION,
            workers: 1,
            queue_capacity: 64,
            deadline_ms,
            num_users: users,
            num_items: items,
            num_groups: groups,
            baseline_rps_shed_off,
            baseline_rps_shed_on,
            steps,
        };
        let path = groupsa_bench::output::save_json("serve_bench_overload", &report)
            .map_err(|e| e.to_string())?;
        println!("[saved {}]", path.display());
    } else {
        println!("[--save false: skipped results/serve_bench_overload.json]");
    }
    Ok(())
}

// ------------------------------------------------------ snapshot scale

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or 0 where that interface does not exist.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

fn dir_bytes(dir: &Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else { return 0 };
    entries
        .filter_map(|e| e.ok())
        .filter_map(|e| e.metadata().ok())
        .filter(|m| m.is_file())
        .map(|m| m.len())
        .sum()
}

/// Streams `users` synthetic users into a sharded binary snapshot,
/// opens it lazily, and serves a mixed workload out of it — the
/// million-scale path, measured instead of asserted.
#[allow(clippy::too_many_arguments)]
fn snapshot_scale(flags: &HashMap<String, String>) -> Result<(), String> {
    let users: usize = num(flags, "users", 1_000_000)?;
    let items: usize = num(flags, "items", 50_000)?;
    let groups: usize = num(flags, "groups", 10_000)?;
    let shards: u32 = num(flags, "shards", 16)?;
    let chunk: usize = num(flags, "chunk", 65_536)?;
    let clients: usize = num(flags, "clients", 4)?;
    let per_client: usize = num(flags, "requests", 64)?;
    let k: usize = num(flags, "k", 10)?;
    let budget_mb: u64 = num(flags, "memory-budget-mb", 1024)?;
    let save = !matches!(flags.get("save").map(String::as_str), Some("false"));
    let quant = match flags.get("quant").map(String::as_str) {
        None => Quant::F32,
        Some(name) => Quant::from_name(name).map_err(|e| format!("--quant: {e}"))?,
    };
    let dir: PathBuf = match flags.get("snapshot") {
        Some(d) => PathBuf::from(d),
        None => std::env::temp_dir().join(format!("groupsa-serve-bench-snap-{}", std::process::id())),
    };
    if users == 0 || items == 0 || groups == 0 {
        return Err("--users/--items/--groups must be positive".into());
    }

    let mut cfg = GroupSaConfig::tiny();
    cfg.embed_dim = 16;
    let model = GroupSa::new(cfg, users, items);
    let dim = model.user_embedding_table().cols();
    let stream = StreamConfig::serving(77, users, items, groups);
    println!(
        "snapshot scale: {users} users, {items} items, {groups} groups, dim {dim}, \
         {shards} shard(s), {} encoding, chunk {chunk}",
        quant.name()
    );

    // 1. Stream the universe into the snapshot, chunk by chunk. The
    // latent table never exists in memory: each chunk's latents are
    // computed, written and dropped.
    let _ = std::fs::remove_dir_all(&dir);
    let started = Instant::now();
    let meta = SnapshotMeta { num_users: users, num_items: items, num_groups: groups, dim, shards, quant };
    let mut writer = SnapshotWriter::create(&dir, meta).map_err(|e| e.to_string())?;
    let mut present_users = 0u64;
    for chunk_profiles in stream.user_chunks(chunk) {
        for p in &chunk_profiles {
            let latent = model.user_latent_from_lists(p.user, &p.top_items, &p.top_friends);
            present_users += latent.is_some() as u64;
            writer.push_user(latent.as_ref().map(|m| m.as_slice())).map_err(|e| e.to_string())?;
        }
    }
    let members = stream.all_group_members();
    let mut group_rep_rows = 0u64;
    for m in &members {
        let reps = model.member_reps_from_parts(m, None, |u| {
            let p = stream.user_profile(u);
            model.user_latent_from_lists(u, &p.top_items, &p.top_friends)
        });
        group_rep_rows += reps.rows() as u64;
        writer.push_group(&reps).map_err(|e| e.to_string())?;
    }
    let snapshot_id = writer.finish().map_err(|e| e.to_string())?;
    let write_s = started.elapsed().as_secs_f64();
    let disk = dir_bytes(&dir);
    println!(
        "  wrote snapshot {snapshot_id:016x} in {write_s:.1}s: {present_users}/{users} users \
         with latents, {group_rep_rows} group rep rows, {:.1} MiB on disk",
        disk as f64 / (1024.0 * 1024.0)
    );

    // 2. Open it lazily behind a stub context — exactly what a serving
    // process at this scale would hold.
    let opened = Instant::now();
    let ctx = DataContext::serving_stub(users, items, members);
    let frozen = Arc::new(FrozenModel::from_snapshot(model, ctx, &dir)?);
    let open_ms = opened.elapsed().as_secs_f64() * 1e3;
    let resident = frozen.resident_table_bytes() as u64;
    let full_bytes = (users as u64 + group_rep_rows) * dim as u64 * 4;
    println!(
        "  opened in {open_ms:.1} ms; resident table bytes {} ({:.4}% of the {:.1} MiB f32 tables)",
        resident,
        resident as f64 / full_bytes as f64 * 100.0,
        full_bytes as f64 / (1024.0 * 1024.0)
    );

    // 3. Serve a mixed workload straight off the snapshot.
    let mut runs = Vec::new();
    for workers in [1usize, 2, 4] {
        let engine = Engine::start(Arc::clone(&frozen), EngineConfig { workers, ..EngineConfig::default() });
        let started = Instant::now();
        let mut handles = Vec::new();
        for c in 0..clients {
            let engine = Arc::clone(&engine);
            let reqs = workload(per_client, c * per_client, k, users, groups);
            handles.push(std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(reqs.len());
                for req in reqs {
                    let t = Instant::now();
                    let resp = engine.submit(req.clone());
                    latencies.push(t.elapsed().as_micros() as u64);
                    validate(&req, &resp)?;
                }
                Ok::<Vec<u64>, String>(latencies)
            }));
        }
        let mut latencies = Vec::new();
        for handle in handles {
            latencies.extend(handle.join().map_err(|_| "client thread panicked".to_string())??);
        }
        let elapsed = started.elapsed();
        engine.shutdown();
        let (p50, p95, p99, mean) = exact_percentiles(&mut latencies);
        let total = latencies.len() as u64;
        let run = RunResult {
            workers,
            clients,
            requests: total,
            elapsed_ms: elapsed.as_secs_f64() * 1e3,
            throughput_rps: total as f64 / elapsed.as_secs_f64(),
            p50_us: p50,
            p95_us: p95,
            p99_us: p99,
            mean_us: mean,
        };
        println!(
            "  workers={} clients={} requests={} throughput={:.0} req/s p50={}us p95={}us p99={}us",
            run.workers, run.clients, run.requests, run.throughput_rps, run.p50_us, run.p95_us, run.p99_us
        );
        runs.push(run);
    }

    // 4. The memory claim, enforced.
    let peak = peak_rss_bytes();
    let budget = budget_mb * 1024 * 1024;
    if peak > 0 {
        println!(
            "  peak RSS {:.1} MiB (budget {budget_mb} MiB)",
            peak as f64 / (1024.0 * 1024.0)
        );
        if peak > budget {
            return Err(format!(
                "peak RSS {} bytes exceeds the {budget_mb} MiB memory budget",
                peak
            ));
        }
    } else {
        println!("  peak RSS unavailable on this platform; budget not enforced");
    }

    if save {
        groupsa_bench::output::check_schema("serve_bench_snapshot", RESULT_SCHEMA_VERSION)?;
        let report = SnapshotReport {
            schema_version: RESULT_SCHEMA_VERSION,
            num_users: users,
            num_items: items,
            num_groups: groups,
            dim,
            shards: shards as u64,
            quant: quant.name().to_string(),
            chunk_users: chunk,
            snapshot_id: format!("{snapshot_id:016x}"),
            snapshot_write_s: write_s,
            snapshot_open_ms: open_ms,
            snapshot_disk_bytes: disk,
            resident_table_bytes: resident,
            full_table_bytes: full_bytes,
            peak_rss_bytes: peak,
            memory_budget_bytes: budget,
            k,
            runs,
        };
        let path =
            groupsa_bench::output::save_json("serve_bench_snapshot", &report).map_err(|e| e.to_string())?;
        println!("[saved {}]", path.display());
    } else {
        println!("[--save false: skipped results/serve_bench_snapshot.json]");
    }
    if flags.get("snapshot").is_none() {
        let _ = std::fs::remove_dir_all(&dir);
    }
    Ok(())
}

// ------------------------------------------------------------ TCP mode

struct Connection {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Connection {
    fn open(addr: &str) -> Result<Self, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        let reader =
            BufReader::new(stream.try_clone().map_err(|e| format!("clone stream: {e}"))?);
        Ok(Self { writer: stream, reader })
    }

    fn roundtrip(&mut self, request: &Request) -> Result<Response, String> {
        let mut text = groupsa_json::to_string(request);
        text.push('\n');
        self.writer.write_all(text.as_bytes()).map_err(|e| format!("send: {e}"))?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).map_err(|e| format!("recv: {e}"))?;
        if n == 0 {
            return Err("server closed the connection".into());
        }
        groupsa_json::from_str::<Response>(&line).map_err(|e| format!("bad response: {e}"))
    }
}

/// Sends every request line on one connection before reading anything,
/// then matches the responses (completion-ordered) back to requests by
/// id and validates each. Returns per-request wall latencies measured
/// from the *first* write — pipelined latency is a queueing number, not
/// a round-trip number.
fn pipelined_batch(conn: &mut Connection, reqs: &[RecommendRequest]) -> Result<Vec<u64>, String> {
    let mut text = String::new();
    for req in reqs {
        text.push_str(&groupsa_json::to_string(&Request::Recommend {
            id: req.id,
            target: req.target,
            k: req.k,
            exclude_seen: req.exclude_seen,
            mode: req.mode,
            deadline_ms: req.deadline_ms,
        }));
        text.push('\n');
    }
    let started = Instant::now();
    conn.writer.write_all(text.as_bytes()).map_err(|e| format!("send: {e}"))?;
    let by_id: HashMap<u64, &RecommendRequest> = reqs.iter().map(|r| (r.id, r)).collect();
    let mut latencies = Vec::with_capacity(reqs.len());
    let mut seen = std::collections::HashSet::new();
    for _ in 0..reqs.len() {
        let mut line = String::new();
        let n = conn.reader.read_line(&mut line).map_err(|e| format!("recv: {e}"))?;
        if n == 0 {
            return Err("server closed the connection mid-pipeline".into());
        }
        let resp =
            groupsa_json::from_str::<Response>(&line).map_err(|e| format!("bad response: {e}"))?;
        let id = match &resp {
            Response::Recommend { id, .. } | Response::Error { id, .. } => *id,
            other => return Err(format!("unexpected response kind: {other:?}")),
        };
        let req = by_id.get(&id).ok_or_else(|| format!("response for unknown id {id}"))?;
        if !seen.insert(id) {
            return Err(format!("duplicate response for id {id}"));
        }
        validate(req, &resp)?;
        latencies.push(started.elapsed().as_micros() as u64);
    }
    Ok(latencies)
}

#[allow(clippy::too_many_arguments)]
fn tcp_bench(
    addr: &str,
    clients: usize,
    per_client: usize,
    k: usize,
    shutdown: bool,
    pipeline: bool,
    metrics: bool,
    reload: Option<&str>,
) -> Result<(), String> {
    // Learn the id universe from the server itself.
    let mut probe = Connection::open(addr)?;
    let stats = match probe.roundtrip(&Request::Stats { id: 1 })? {
        Response::Stats { stats, .. } => stats,
        other => return Err(format!("expected Stats response, got {other:?}")),
    };
    println!(
        "server universe: {} users, {} items, {} groups",
        stats.num_users, stats.num_items, stats.num_groups
    );

    if let Some(dir) = reload {
        match probe.roundtrip(&Request::Reload { id: 10, dir: dir.to_string() })? {
            Response::Reloaded { id: 10 } => println!("server hot-swapped onto {dir}"),
            other => return Err(format!("expected Reloaded, got {other:?}")),
        }
    }

    let started = Instant::now();
    let mut handles = Vec::new();
    for c in 0..clients {
        let addr = addr.to_string();
        let (users, groups) = (stats.num_users, stats.num_groups);
        handles.push(std::thread::spawn(move || {
            let mut conn = Connection::open(&addr)?;
            let reqs = workload(per_client, c * per_client, k, users, groups);
            if pipeline {
                return pipelined_batch(&mut conn, &reqs);
            }
            let mut latencies = Vec::with_capacity(per_client);
            for req in reqs {
                let t = Instant::now();
                let resp = conn.roundtrip(&Request::Recommend {
                    id: req.id,
                    target: req.target,
                    k: req.k,
                    exclude_seen: req.exclude_seen,
                    mode: req.mode,
                    deadline_ms: req.deadline_ms,
                })?;
                latencies.push(t.elapsed().as_micros() as u64);
                validate(&req, &resp)?;
            }
            Ok::<Vec<u64>, String>(latencies)
        }));
    }
    let mut latencies = Vec::new();
    for handle in handles {
        latencies.extend(handle.join().map_err(|_| "client thread panicked".to_string())??);
    }
    let elapsed = started.elapsed();
    let (p50, p95, p99, mean) = exact_percentiles(&mut latencies);
    println!(
        "tcp{}: {} requests in {:.1} ms ({:.0} req/s) p50={}us p95={}us p99={}us mean={:.0}us",
        if pipeline { " (pipelined)" } else { "" },
        latencies.len(),
        elapsed.as_secs_f64() * 1e3,
        latencies.len() as f64 / elapsed.as_secs_f64(),
        p50,
        p95,
        p99,
        mean
    );

    // Server-side accounting must have seen our requests.
    let stats = match probe.roundtrip(&Request::Stats { id: 2 })? {
        Response::Stats { stats, .. } => stats,
        other => return Err(format!("expected Stats response, got {other:?}")),
    };
    let expected = (clients * per_client) as u64;
    if stats.submitted < expected {
        return Err(format!("server saw {} submissions, expected at least {expected}", stats.submitted));
    }
    println!(
        "server stats: submitted={} completed={} errors={} batches={} mean_batch={:.2}",
        stats.submitted, stats.completed, stats.errors, stats.batches, stats.mean_batch
    );

    if metrics {
        let parsed = fetch_metrics_page(&mut probe, 4)?;
        let submitted = parsed.value("groupsa_serve_submitted_total").unwrap_or(-1.0);
        if submitted < expected as f64 {
            return Err(format!(
                "metrics page reports {submitted} submissions, expected at least {expected}"
            ));
        }
        println!(
            "metrics page ok: {} contract metrics declared, submitted={submitted}",
            EXPOSITION_METRICS.len()
        );
    }

    if shutdown {
        match probe.roundtrip(&Request::Shutdown { id: 3 })? {
            Response::Bye { id: 3 } => println!("server acknowledged shutdown"),
            other => return Err(format!("expected Bye, got {other:?}")),
        }
    }
    Ok(())
}

// ---------------------------------------------------------------- main

fn run() -> Result<(), String> {
    let flags = parse_flags()?;
    let clients: usize = num(&flags, "clients", 4)?;
    let per_client: usize = num(&flags, "requests", 64)?;
    let k: usize = num(&flags, "k", 5)?;
    match flags.get("addr") {
        Some(addr) => {
            let shutdown = matches!(flags.get("shutdown").map(String::as_str), Some("true"));
            let pipeline = matches!(flags.get("pipeline").map(String::as_str), Some("true"));
            let metrics = matches!(flags.get("metrics").map(String::as_str), Some("true"));
            tcp_bench(addr, clients, per_client, k, shutdown, pipeline, metrics, flags.get("reload").map(String::as_str))
        }
        None if matches!(flags.get("telemetry").map(String::as_str), Some("true")) => {
            telemetry_sweep(&flags)
        }
        None if matches!(flags.get("overload").map(String::as_str), Some("true")) => {
            overload_sweep(&flags)
        }
        None if flags.contains_key("users") || flags.contains_key("snapshot") => snapshot_scale(&flags),
        None => {
            let save = !matches!(flags.get("save").map(String::as_str), Some("false"));
            in_process_sweep(clients, per_client, k, save)
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve_bench: {e}");
            ExitCode::FAILURE
        }
    }
}
