//! Reproduces the §II-F fast-recommendation comparison.

fn main() {
    groupsa_bench::experiments::fast_vs_full();
}
