//! Regenerates paper Table 4 (see DESIGN.md §5).

fn main() {
    groupsa_bench::experiments::table4();
}
