//! Regenerates paper Table 7 (see DESIGN.md §5).

fn main() {
    groupsa_bench::experiments::table7();
}
