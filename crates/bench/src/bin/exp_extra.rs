//! Extension ablations beyond the paper: closeness function (Eq. 5
//! alternatives), voting input, and group-head variants.

fn main() {
    groupsa_bench::experiments::extra_ablations();
}
