//! Regenerates paper Table 2 (see DESIGN.md §5).

fn main() {
    groupsa_bench::experiments::table2();
}
