//! Regenerates paper Table 9 (see DESIGN.md §5).

fn main() {
    groupsa_bench::experiments::table9();
}
