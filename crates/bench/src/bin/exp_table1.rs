//! Regenerates paper Table 1 (see DESIGN.md §5).

fn main() {
    groupsa_bench::experiments::table1();
}
