//! Regenerates paper Table 8 (see DESIGN.md §5).

fn main() {
    groupsa_bench::experiments::table8();
}
