//! Regenerates paper Table 3 (see DESIGN.md §5).

fn main() {
    groupsa_bench::experiments::table3();
}
