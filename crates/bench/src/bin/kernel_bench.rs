//! Hot-path kernel microbenchmarks and the perf-regression gate.
//!
//! Measures the workspace's serving/training hot kernels through the
//! in-tree criterion harness ([`criterion::Criterion::bench_stats`])
//! and persists machine-readable results:
//!
//! * **Full run** (default): serve-realistic shapes, written to
//!   `BENCH_kernels.json` at the repo root — the committed baseline
//!   the gate compares against.
//! * **`--check`**: fast smoke shapes, written to
//!   `results/kernel_bench_smoke.json`; proves every kernel still runs
//!   and produces sane timings. This is the tier-1 path.
//! * **`--gate <baseline.json>`**: re-measures the full shapes and
//!   fails (exit 1) if any kernel regressed more than
//!   [`GATE_RATIO`]× in ns/op against the baseline file.
//!
//! Kernels with a retained naive reference (`matmul` vs
//! `matmul_naive`, bounded-heap `top_k` vs sort-and-truncate, the
//! fused serve scan vs score-all-then-select, …) are marked `gated`
//! and record their `speedup_vs_naive`; the bit-identity of each
//! fast/naive pair is pinned separately by the kernel-equivalence
//! tests, so this binary only has to measure.
//!
//! `ns_per_op` is the **minimum** observed sample — the least-noisy
//! estimator of a kernel's true cost and the number the gate compares.
//! `throughput_m_per_s` is `work_per_op` units (multiply-adds for
//! matmuls, elements for the rest) per microsecond of that minimum.

use criterion::{black_box, BatchSize, Bencher, Criterion};
use groupsa_core::{top_k, DataContext, GroupMode, GroupSa, GroupSaConfig, Recommendation};
use groupsa_data::synthetic::{generate, SyntheticConfig};
use groupsa_json::impl_json_struct;
use groupsa_nn::attention::social_bias_mask;
use groupsa_nn::loss::bpr_one_vs_rest;
use groupsa_nn::{ParamStore, TransformerLayer};
use groupsa_serve::protocol::Target;
use groupsa_serve::FrozenModel;
use groupsa_tensor::rng::seeded;
use groupsa_tensor::{ops, Graph, Matrix};
use std::cmp::Ordering;
use std::process::ExitCode;
use std::time::Duration;

/// Gate threshold: a kernel fails when its measured ns/op exceeds the
/// baseline by more than this factor (>25% regression).
const GATE_RATIO: f64 = 1.25;

/// Results-schema version, bumped on any field change so downstream
/// tooling can detect incompatible baselines instead of misreading
/// them.
const SCHEMA_VERSION: u64 = 1;

// ------------------------------------------------------------- schema

#[derive(Clone, Debug)]
struct KernelRecord {
    kernel: String,
    shape: String,
    ns_per_op: f64,
    /// Work units per op: f32 multiply-adds for matmul-shaped kernels,
    /// elements touched for everything else.
    work_per_op: f64,
    /// Millions of work units per second at `ns_per_op`.
    throughput_m_per_s: f64,
    /// ns/op of the retained naive reference; `0.0` when the kernel
    /// has no naive twin.
    naive_ns_per_op: f64,
    /// `naive_ns_per_op / ns_per_op`; `0.0` when ungated.
    speedup_vs_naive: f64,
    /// Whether this kernel has a retained naive reference it is
    /// measured against.
    gated: bool,
}

impl_json_struct!(KernelRecord {
    kernel,
    shape,
    ns_per_op,
    work_per_op,
    throughput_m_per_s,
    naive_ns_per_op,
    speedup_vs_naive,
    gated,
});

#[derive(Clone, Debug)]
struct KernelReport {
    schema_version: u64,
    mode: String,
    kernels: Vec<KernelRecord>,
}

impl_json_struct!(KernelReport { schema_version, mode, kernels });

// ------------------------------------------------------------ profile

/// Measurement scale: smoke (`--check`) keeps tier-1 fast; full runs
/// produce the committed baseline and feed the gate.
#[derive(Clone, Copy)]
struct Profile {
    smoke: bool,
    sample_size: usize,
    measurement: Duration,
    warm_up: Duration,
}

impl Profile {
    fn full() -> Self {
        Self {
            smoke: false,
            sample_size: 12,
            measurement: Duration::from_millis(600),
            warm_up: Duration::from_millis(200),
        }
    }

    fn smoke() -> Self {
        Self {
            smoke: true,
            sample_size: 5,
            measurement: Duration::from_millis(60),
            warm_up: Duration::from_millis(20),
        }
    }

    fn criterion(&self) -> Criterion {
        Criterion::default()
            .sample_size(self.sample_size)
            .measurement_time(self.measurement)
            .warm_up_time(self.warm_up)
    }
}

// ----------------------------------------------------------- helpers

/// Deterministic dense fill (no RNG state to thread through).
fn mat(rows: usize, cols: usize, phase: f32) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| ((r * cols + c) as f32 * phase).sin() * 0.5)
}

fn record(
    c: &mut Criterion,
    out: &mut Vec<KernelRecord>,
    kernel: &str,
    shape: String,
    work_per_op: f64,
    f: impl FnMut(&mut Bencher),
) {
    let stats = c.bench_stats(&format!("{kernel}/{shape}"), f);
    out.push(KernelRecord {
        kernel: kernel.to_string(),
        shape,
        ns_per_op: stats.min_ns,
        work_per_op,
        throughput_m_per_s: work_per_op / stats.min_ns * 1e3,
        naive_ns_per_op: 0.0,
        speedup_vs_naive: 0.0,
        gated: false,
    });
}

/// Measures a kernel *and* its retained naive reference, recording the
/// speedup of the restructured implementation.
fn record_gated(
    c: &mut Criterion,
    out: &mut Vec<KernelRecord>,
    kernel: &str,
    shape: String,
    work_per_op: f64,
    fast: impl FnMut(&mut Bencher),
    naive: impl FnMut(&mut Bencher),
) {
    let fast_stats = c.bench_stats(&format!("{kernel}/{shape}"), fast);
    let naive_stats = c.bench_stats(&format!("{kernel}_naive/{shape}"), naive);
    out.push(KernelRecord {
        kernel: kernel.to_string(),
        shape,
        ns_per_op: fast_stats.min_ns,
        work_per_op,
        throughput_m_per_s: work_per_op / fast_stats.min_ns * 1e3,
        naive_ns_per_op: naive_stats.min_ns,
        speedup_vs_naive: naive_stats.min_ns / fast_stats.min_ns,
        gated: true,
    });
}

/// Sort-and-truncate Top-K, retained as the naive reference for the
/// bounded-heap `top_k`: same total order (descending score, NaN last,
/// ties by ascending item id), O(n log n) instead of O(n log k).
fn top_k_naive(mut scored: Vec<Recommendation>, k: usize) -> Vec<Recommendation> {
    scored.sort_by(|a, b| {
        let ord = match (a.score.is_nan(), b.score.is_nan()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            (false, false) => b.score.partial_cmp(&a.score).expect("both non-NaN"),
        };
        ord.then(a.item.cmp(&b.item))
    });
    scored.truncate(k);
    scored
}

/// A frozen serving world at the profile's scale.
fn frozen_world(p: Profile) -> FrozenModel {
    let (users, items, groups, cfg) = if p.smoke {
        (40, 30, 10, GroupSaConfig::tiny())
    } else {
        (120, 400, 40, GroupSaConfig::paper())
    };
    let dataset = generate(&SyntheticConfig {
        name: "kernel-bench".into(),
        seed: 11,
        num_users: users,
        num_items: items,
        num_groups: groups,
        num_topics: 4,
        latent_dim: 4,
        avg_items_per_user: 8.0,
        avg_friends_per_user: 5.0,
        avg_items_per_group: 1.5,
        mean_group_size: 3.5,
        zipf_exponent: 0.8,
        homophily: 0.8,
        social_influence: 0.3,
        expertise_sharpness: 2.0,
        taste_temperature: 0.3,
        consensus_blend: 0.5,
        connectedness_boost: 1.0,
    });
    let ctx = DataContext::from_train_view(&dataset, &cfg);
    let model = GroupSa::new(cfg, dataset.num_users, dataset.num_items);
    FrozenModel::freeze(model, ctx)
}

// ------------------------------------------------------------ kernels

fn measure(p: Profile) -> Vec<KernelRecord> {
    let mut c = p.criterion();
    let mut out = Vec::new();

    // 1. Blocked matmul at the serve prediction-tower shape
    //    (chunk×3d · 3d×d) vs the retained naive i-k-j kernel.
    let (m, k, n) = if p.smoke { (32, 24, 8) } else { (256, 96, 32) };
    let a = mat(m, k, 0.13);
    let b = mat(k, n, 0.29);
    record_gated(
        &mut c,
        &mut out,
        "matmul",
        format!("{m}x{k}*{k}x{n}"),
        (m * k * n) as f64,
        |ben| ben.iter(|| black_box(black_box(&a).matmul(&b))),
        |ben| ben.iter(|| black_box(black_box(&a).matmul_naive(&b))),
    );

    // 2. Register-blocked A·Bᵀ at the attention-scores shape
    //    (l×d · (l×d)ᵀ) vs the dot-per-element naive kernel.
    let (l, d) = if p.smoke { (16, 8) } else { (64, 32) };
    let qa = mat(l, d, 0.17);
    let kb = mat(l, d, 0.31);
    record_gated(
        &mut c,
        &mut out,
        "matmul_transpose_b",
        format!("{l}x{d}*({l}x{d})T"),
        (l * l * d) as f64,
        |ben| ben.iter(|| black_box(black_box(&qa).matmul_transpose_b(&kb))),
        |ben| ben.iter(|| black_box(black_box(&qa).matmul_transpose_b_naive(&kb))),
    );

    // 3. In-place row softmax vs the allocating reference.
    let (sr, sc) = if p.smoke { (16, 16) } else { (64, 64) };
    let soft_base = mat(sr, sc, 0.37);
    record_gated(
        &mut c,
        &mut out,
        "softmax_rows_inplace",
        format!("{sr}x{sc}"),
        (sr * sc) as f64,
        |ben| {
            ben.iter_batched(
                || soft_base.clone(),
                |mut m| {
                    ops::softmax_rows_inplace(&mut m);
                    m
                },
                BatchSize::SmallInput,
            )
        },
        |ben| ben.iter(|| black_box(ops::softmax_rows(black_box(&soft_base)))),
    );

    // 4. Social self-attention inference (one voting layer) over a
    //    ring-connected group.
    let (gl, gd) = if p.smoke { (4, 8) } else { (8, 32) };
    let mut store = ParamStore::new();
    let mut rng = seeded(1);
    let layer = TransformerLayer::new(&mut store, &mut rng, "kb", gd, gd, gd, 0.0);
    let x = mat(gl, gd, 0.41);
    let allowed: Vec<Vec<bool>> = (0..gl)
        .map(|i| (0..gl).map(|j| j == (i + 1) % gl || i == (j + 1) % gl).collect())
        .collect();
    let mask = social_bias_mask(&allowed);
    record(
        &mut c,
        &mut out,
        "attention_forward_inference",
        format!("l={gl},d={gd}"),
        (gl * gl * gd) as f64,
        |ben| ben.iter(|| black_box(layer.forward_inference(&store, black_box(&x), Some(&mask)))),
    );

    // 5. BPR one-vs-rest forward + backward through a two-layer tower
    //    (1 positive + the negative slate, §II-E shape).
    let (rows, feat, hid) = if p.smoke { (17, 24, 8) } else { (65, 96, 32) };
    let x0 = mat(rows, feat, 0.19);
    let w1 = mat(feat, hid, 0.23);
    let w2 = mat(hid, 1, 0.43);
    record(
        &mut c,
        &mut out,
        "bpr_forward_backward",
        format!("{rows}x{feat}->{hid}->1"),
        (rows * feat * hid) as f64,
        |ben| {
            ben.iter(|| {
                let mut g = Graph::new();
                let xn = g.leaf(x0.clone());
                let w1n = g.leaf(w1.clone());
                let w2n = g.leaf(w2.clone());
                let h = g.matmul(xn, w1n);
                let h = g.relu(h);
                let s = g.matmul(h, w2n);
                let loss = bpr_one_vs_rest(&mut g, s);
                black_box(g.backward(loss))
            })
        },
    );

    // -- frozen serving kernels ----------------------------------------
    let frozen = frozen_world(p);
    let num_items = frozen.context().num_items;
    let model = frozen.model();
    let all_items: Vec<usize> = (0..num_items).collect();
    let latent7 = model.user_latent_frozen(frozen.context(), 7);

    // 6. Frozen single-user scoring over the full catalog (the serve
    //    hot loop's unit of work).
    record(
        &mut c,
        &mut out,
        "frozen_user_scoring",
        format!("1x{num_items}"),
        num_items as f64,
        |ben| {
            ben.iter(|| black_box(model.score_user_items_frozen(7, black_box(&all_items), latent7.as_ref())))
        },
    );

    // 7. Fused score+select catalog scan vs the retained
    //    score-everything-then-top-k composition.
    record_gated(
        &mut c,
        &mut out,
        "fused_recommend_scan",
        format!("user,catalog={num_items},k=10"),
        num_items as f64,
        |ben| {
            ben.iter(|| black_box(frozen.recommend(Target::User { id: 7 }, 10, false, GroupMode::Voting)))
        },
        |ben| {
            ben.iter(|| {
                let scores = model.score_user_items_frozen(7, &all_items, latent7.as_ref());
                let scored: Vec<Recommendation> = all_items
                    .iter()
                    .zip(scores)
                    .map(|(&item, score)| Recommendation { item, score })
                    .collect();
                black_box(top_k(scored, 10))
            })
        },
    );

    // 8. Batched multi-user scoring (one stacked tower pass) vs a
    //    per-user loop over the same chunk.
    let chunk: Vec<usize> = (0..num_items.min(256)).collect();
    let users: Vec<usize> = (0..8usize).collect();
    let latents: Vec<Option<Matrix>> =
        users.iter().map(|&u| model.user_latent_frozen(frozen.context(), u)).collect();
    let latent_refs: Vec<Option<&Matrix>> = latents.iter().map(|h| h.as_ref()).collect();
    record_gated(
        &mut c,
        &mut out,
        "batched_user_scoring",
        format!("{}users x {}items", users.len(), chunk.len()),
        (users.len() * chunk.len()) as f64,
        |ben| {
            ben.iter(|| black_box(model.score_users_items_frozen(&users, &latent_refs, black_box(&chunk))))
        },
        |ben| {
            ben.iter(|| {
                let per_user: Vec<Vec<f32>> = users
                    .iter()
                    .zip(&latent_refs)
                    .map(|(&u, latent)| model.score_user_items_frozen(u, &chunk, *latent))
                    .collect();
                black_box(per_user)
            })
        },
    );

    // 9. Bounded-heap Top-K vs sort-and-truncate at catalog scale.
    let tk_n = if p.smoke { 2_000 } else { 10_000 };
    let scored: Vec<Recommendation> = (0..tk_n)
        .map(|i| Recommendation { item: i, score: ((i * 37 + 11) % 101) as f32 * 0.1 })
        .collect();
    record_gated(
        &mut c,
        &mut out,
        "top_k",
        format!("n={tk_n},k=10"),
        tk_n as f64,
        |ben| ben.iter_batched(|| scored.clone(), |v| black_box(top_k(v, 10)), BatchSize::SmallInput),
        |ben| {
            ben.iter_batched(|| scored.clone(), |v| black_box(top_k_naive(v, 10)), BatchSize::SmallInput)
        },
    );

    out
}

// --------------------------------------------------------------- gate

fn load_baseline(path: &str) -> Result<KernelReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let report: KernelReport =
        groupsa_json::from_str(&text).map_err(|e| format!("parse {path}: {e}"))?;
    if report.schema_version != SCHEMA_VERSION {
        return Err(format!(
            "baseline {path} has schema v{}, this binary writes v{SCHEMA_VERSION} — re-baseline first",
            report.schema_version
        ));
    }
    Ok(report)
}

fn gate(baseline_path: &str) -> Result<(), String> {
    let baseline = load_baseline(baseline_path)?;
    let current = measure(Profile::full());
    let mut regressions = Vec::new();
    for base in &baseline.kernels {
        let Some(cur) = current
            .iter()
            .find(|c| c.kernel == base.kernel && c.shape == base.shape)
        else {
            regressions.push(format!("{}/{}: kernel missing from current build", base.kernel, base.shape));
            continue;
        };
        let ratio = cur.ns_per_op / base.ns_per_op;
        let verdict = if ratio > GATE_RATIO { "REGRESSED" } else { "ok" };
        println!(
            "gate {:<28} {:<28} base {:>12.1} ns  now {:>12.1} ns  ratio {:>5.2}  {verdict}",
            base.kernel, base.shape, base.ns_per_op, cur.ns_per_op, ratio
        );
        if ratio > GATE_RATIO {
            regressions.push(format!(
                "{}/{}: {:.1} ns -> {:.1} ns ({:.2}x > {GATE_RATIO}x budget)",
                base.kernel, base.shape, base.ns_per_op, cur.ns_per_op, ratio
            ));
        }
    }
    if regressions.is_empty() {
        println!("gate: all {} kernels within {GATE_RATIO}x of baseline", baseline.kernels.len());
        Ok(())
    } else {
        Err(format!("{} kernel(s) regressed:\n  {}", regressions.len(), regressions.join("\n  ")))
    }
}

// --------------------------------------------------------------- main

fn sanity(records: &[KernelRecord]) -> Result<(), String> {
    for r in records {
        if !(r.ns_per_op.is_finite() && r.ns_per_op > 0.0) {
            return Err(format!("{}/{}: non-positive timing {}", r.kernel, r.shape, r.ns_per_op));
        }
        if r.gated && !(r.speedup_vs_naive.is_finite() && r.speedup_vs_naive > 0.0) {
            return Err(format!("{}/{}: bad speedup {}", r.kernel, r.shape, r.speedup_vs_naive));
        }
    }
    Ok(())
}

fn summarize(records: &[KernelRecord]) {
    println!();
    for r in records {
        if r.gated {
            println!(
                "{:<28} {:<28} {:>12.1} ns/op  {:>9.1} Mu/s  naive {:>12.1} ns  speedup {:.2}x",
                r.kernel, r.shape, r.ns_per_op, r.throughput_m_per_s, r.naive_ns_per_op, r.speedup_vs_naive
            );
        } else {
            println!(
                "{:<28} {:<28} {:>12.1} ns/op  {:>9.1} Mu/s",
                r.kernel, r.shape, r.ns_per_op, r.throughput_m_per_s
            );
        }
    }
}

fn run() -> Result<(), String> {
    let mut check = false;
    let mut gate_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--gate" => gate_path = Some(args.next().ok_or("--gate needs a baseline path")?),
            other => {
                return Err(format!(
                    "unknown argument `{other}` (usage: kernel_bench [--check | --gate BASELINE.json])"
                ))
            }
        }
    }
    if check && gate_path.is_some() {
        return Err("--check and --gate are mutually exclusive".into());
    }
    if let Some(path) = gate_path {
        return gate(&path);
    }

    let profile = if check { Profile::smoke() } else { Profile::full() };
    let records = measure(profile);
    sanity(&records)?;
    summarize(&records);
    let report = KernelReport {
        schema_version: SCHEMA_VERSION,
        mode: if check { "check".into() } else { "full".into() },
        kernels: records,
    };
    if check {
        let path = groupsa_bench::output::save_json("kernel_bench_smoke", &report)
            .map_err(|e| e.to_string())?;
        println!("[saved {}]", path.display());
    } else {
        let path = "BENCH_kernels.json";
        std::fs::write(path, groupsa_json::to_string_pretty(&report))
            .map_err(|e| format!("write {path}: {e}"))?;
        println!("[saved {path}]");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("kernel_bench: {e}");
            ExitCode::FAILURE
        }
    }
}
