//! Runs the complete experiment suite — every table and figure of the
//! paper — in order. Results are printed and persisted to `results/`.

use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    groupsa_bench::experiments::table1();
    groupsa_bench::experiments::table2();
    groupsa_bench::experiments::table3();
    groupsa_bench::experiments::table4();
    groupsa_bench::experiments::fig3();
    groupsa_bench::experiments::table5();
    groupsa_bench::experiments::table6();
    groupsa_bench::experiments::table7();
    groupsa_bench::experiments::table8();
    groupsa_bench::experiments::table9();
    groupsa_bench::experiments::fast_vs_full();
    println!("\n[exp_all finished in {:?}]", t0.elapsed());
}
