//! Regenerates paper Table 5 (see DESIGN.md §5).

fn main() {
    groupsa_bench::experiments::table5();
}
