//! Calibration probe (not part of the paper reproduction): times one
//! GroupSA training run and prints headline metrics, to size the
//! experiment configurations.

use groupsa_bench::methods::{eval_groupsa, train_groupsa};
use groupsa_bench::ExperimentEnv;
use groupsa_core::GroupSaConfig;
use groupsa_data::synthetic::yelp_sim;
use std::time::Instant;

fn main() {
    let mut synth = yelp_sim();
    let args: Vec<String> = std::env::args().collect();
    if let Some(scale) = args.get(1).and_then(|s| s.parse::<f64>().ok()) {
        synth.num_users = (synth.num_users as f64 * scale) as usize;
        synth.num_items = (synth.num_items as f64 * scale) as usize;
        synth.num_groups = (synth.num_groups as f64 * scale) as usize;
    }
    if let Some(groups) = args.get(4).and_then(|s| s.parse::<usize>().ok()) {
        synth.num_groups = groups;
    }
    if let Some(sharp) = args.get(5).and_then(|s| s.parse::<f64>().ok()) {
        synth.expertise_sharpness = sharp;
    }
    if let Some(temp) = args.get(6).and_then(|s| s.parse::<f64>().ok()) {
        synth.taste_temperature = temp;
    }
    if let Some(h) = args.get(8).and_then(|s| s.parse::<f64>().ok()) {
        synth.homophily = h;
    }
    if let Some(si) = args.get(9).and_then(|s| s.parse::<f64>().ok()) {
        synth.social_influence = si;
    }
    let t0 = Instant::now();
    let env = ExperimentEnv::prepare(&synth);
    println!("{}", env.stats());
    println!("[gen {:?}] train ui={} gi={} test ui={} gi={}",
        t0.elapsed(),
        env.split.train_user_item.len(),
        env.split.train_group_item.len(),
        env.split.test_user_item.len(),
        env.split.test_group_item.len());

    let mut cfg = GroupSaConfig::paper();
    if let Some(ue) = args.get(2).and_then(|s| s.parse::<usize>().ok()) {
        cfg.user_epochs = ue;
    }
    if let Some(ge) = args.get(3).and_then(|s| s.parse::<usize>().ok()) {
        cfg.group_epochs = ge;
    }
    if let Some(wu) = args.get(7).and_then(|s| s.parse::<f32>().ok()) {
        cfg.w_u = wu;
    }
    if let Some(n) = args.get(10).and_then(|s| s.parse::<usize>().ok()) {
        cfg.num_negatives = n;
    }
    if let Some(sh) = args.get(11).and_then(|s| s.parse::<u8>().ok()) {
        cfg.lean_group_head = sh != 0;
    }
    let t1 = Instant::now();
    let trained = train_groupsa(&env, cfg);
    println!("[train {:?}] user loss {:?} group loss {:?}",
        t1.elapsed(),
        trained.report.final_user_loss(),
        trained.report.final_group_loss());

    let t2 = Instant::now();
    let (user, group) = eval_groupsa(&env, &trained);
    println!("[eval {:?}]", t2.elapsed());
    println!("user : HR@5={:.4} NDCG@5={:.4} HR@10={:.4} NDCG@10={:.4}", user.hr(5), user.ndcg(5), user.hr(10), user.ndcg(10));
    println!("group: HR@5={:.4} NDCG@5={:.4} HR@10={:.4} NDCG@10={:.4}", group.hr(5), group.ndcg(5), group.hr(10), group.ndcg(10));

    for (label, res) in groupsa_bench::methods::eval_static_aggregations(&env, &trained) {
        println!("{label}: HR@5={:.4} NDCG@5={:.4} HR@10={:.4} NDCG@10={:.4}", res.hr(5), res.ndcg(5), res.hr(10), res.ndcg(10));
    }
}
