//! Calibration probe: GroupSA vs the attention baselines on the group
//! task (not part of the paper reproduction).

use groupsa_baselines::BaselineConfig;
use groupsa_bench::methods;
use groupsa_bench::ExperimentEnv;
use groupsa_core::GroupSaConfig;
use groupsa_data::synthetic::yelp_sim;
use std::time::Instant;

fn main() {
    let env = ExperimentEnv::prepare(&yelp_sim());
    let t = Instant::now();
    let mut cfg = GroupSaConfig::paper();
    if std::env::args().nth(1).as_deref() == Some("emb") {
        cfg.voting_input = groupsa_core::VotingInput::Embedding;
    }
    let trained = methods::train_groupsa(&env, cfg);
    let (gu, gg) = methods::eval_groupsa(&env, &trained);
    println!("[GroupSA {:?}] user HR@5={:.4}  group HR@5={:.4} NDCG@5={:.4} HR@10={:.4}", t.elapsed(), gu.hr(5), gg.hr(5), gg.ndcg(5), gg.hr(10));
    println!("valid curve: {:?}", trained.report.valid_hr.iter().map(|v| (v * 1000.0).round() / 1000.0).collect::<Vec<_>>());
    println!("group losses: {:?}", trained.report.group_losses.iter().map(|v| (v * 1000.0).round() / 1000.0).collect::<Vec<_>>());
    for (label, res) in methods::eval_static_aggregations(&env, &trained) {
        println!("[{label}] group HR@5={:.4} NDCG@5={:.4} HR@10={:.4}", res.hr(5), res.ndcg(5), res.hr(10));
    }
    let t = Instant::now();
    let (su, sg) = methods::run_sigr(&env, BaselineConfig::paper());
    println!("[SIGR {:?}] user HR@5={:.4}  group HR@5={:.4} NDCG@5={:.4} HR@10={:.4}", t.elapsed(), su.hr(5), sg.hr(5), sg.ndcg(5), sg.hr(10));
    let t = Instant::now();
    let (au, ag) = methods::run_agree(&env, BaselineConfig::paper());
    println!("[AGREE {:?}] user HR@5={:.4}  group HR@5={:.4} NDCG@5={:.4} HR@10={:.4}", t.elapsed(), au.hr(5), ag.hr(5), ag.ndcg(5), ag.hr(10));
    let (pu, pg) = methods::run_pop(&env);
    println!("[Pop] user HR@5={:.4}  group HR@5={:.4}", pu.hr(5), pg.hr(5));
}
