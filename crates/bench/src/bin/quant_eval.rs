//! Quantization accuracy sweep for binary model snapshots.
//!
//! Trains a GroupSA model, freezes it, writes the frozen tables as
//! f32 / f16 / i8 snapshots, and evaluates the paper's HR/NDCG
//! protocol **through each snapshot's tables** — so the reported
//! deltas measure exactly what serving from a quantized snapshot
//! costs, not an abstract rounding error.
//!
//! Contract checks built in:
//!
//! * the f32 snapshot's metrics must equal the in-memory frozen
//!   metrics exactly (bit-identical scores ⇒ identical ranks);
//! * quantized evaluation is deterministic (evaluated twice, compared).
//!
//! Writes `results/quant_eval.json` (schema-versioned, validated
//! before overwrite). `--save false` skips the write for smoke runs.

use groupsa_bench::methods::train_groupsa;
use groupsa_bench::output::RESULT_SCHEMA_VERSION;
use groupsa_bench::ExperimentEnv;
use groupsa_core::GroupSaConfig;
use groupsa_data::synthetic::SyntheticConfig;
use groupsa_eval::EvalResult;
use groupsa_json::impl_json_struct;
use groupsa_serve::FrozenModel;
use groupsa_snapshot::{Quant, Snapshot};
use std::path::PathBuf;
use std::process::ExitCode;

const SHARDS: u32 = 4;

fn quant_world() -> SyntheticConfig {
    SyntheticConfig {
        name: "quant-eval".into(),
        seed: 0x51_4541, // "QEA"
        num_users: 400,
        num_items: 300,
        num_groups: 1600,
        num_topics: 6,
        latent_dim: 8,
        avg_items_per_user: 12.0,
        avg_friends_per_user: 7.0,
        avg_items_per_group: 1.3,
        mean_group_size: 4.0,
        zipf_exponent: 0.8,
        homophily: 0.6,
        social_influence: 0.2,
        expertise_sharpness: 3.0,
        taste_temperature: 0.3,
        consensus_blend: 0.5,
        connectedness_boost: 1.0,
    }
}

/// One evaluated table encoding.
#[derive(Clone, Debug)]
struct VariantResult {
    quant: String,
    disk_bytes: u64,
    /// Disk size relative to the f32 snapshot (1.0 = no saving).
    bytes_vs_f32: f64,
    user_hr_10: f64,
    user_ndcg_10: f64,
    group_hr_10: f64,
    group_ndcg_10: f64,
    /// Absolute metric deltas vs the f32 snapshot (negative = loss).
    user_hr_10_delta: f64,
    user_ndcg_10_delta: f64,
    group_hr_10_delta: f64,
    group_ndcg_10_delta: f64,
}

impl_json_struct!(VariantResult {
    quant,
    disk_bytes,
    bytes_vs_f32,
    user_hr_10,
    user_ndcg_10,
    group_hr_10,
    group_ndcg_10,
    user_hr_10_delta,
    user_ndcg_10_delta,
    group_hr_10_delta,
    group_ndcg_10_delta,
});

#[derive(Clone, Debug)]
struct QuantEvalReport {
    schema_version: u64,
    dataset: String,
    num_users: usize,
    num_items: usize,
    num_groups: usize,
    dim: usize,
    user_test_pairs: usize,
    group_test_pairs: usize,
    variants: Vec<VariantResult>,
    note: String,
}

impl_json_struct!(QuantEvalReport {
    schema_version,
    dataset,
    num_users,
    num_items,
    num_groups,
    dim,
    user_test_pairs,
    group_test_pairs,
    variants,
    note,
});

fn dir_bytes(dir: &PathBuf) -> u64 {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .filter_map(|e| e.metadata().ok())
                .filter(|m| m.is_file())
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0)
}

/// `(user-task, group-task)` evaluation through one snapshot's tables.
fn eval_snapshot(env: &ExperimentEnv, frozen: &FrozenModel, snap: &Snapshot) -> (EvalResult, EvalResult) {
    let model = frozen.model();
    let user_scorer = |u: usize, items: &[usize]| -> Vec<f32> {
        let latent = snap.user_latent(u).expect("snapshot user read");
        model.score_user_items_frozen(u, items, latent.as_ref())
    };
    let group_scorer = |g: usize, items: &[usize]| -> Vec<f32> {
        let reps = snap.group_rep(g).expect("snapshot group read");
        model.score_group_items_frozen(&reps, items)
    };
    (env.eval_user(&user_scorer), env.eval_group(&group_scorer))
}

fn run(save: bool) -> Result<(), String> {
    let syn = quant_world();
    let env = ExperimentEnv::prepare(&syn);
    println!(
        "quant_eval: {} users, {} items, {} groups; {} user / {} group test pairs",
        syn.num_users,
        syn.num_items,
        syn.num_groups,
        env.split.test_user_item.len(),
        env.split.test_group_item.len()
    );
    let trained = train_groupsa(&env, GroupSaConfig::tiny());
    let frozen = FrozenModel::freeze(trained.model, trained.ctx);
    let dim = frozen.model().user_embedding_table().cols();

    // In-memory reference: the frozen tables exactly as `freeze` built
    // them, scored through the same frozen scoring twins.
    let model = frozen.model();
    let ctx = frozen.context();
    let latents: Vec<_> = (0..ctx.num_users).map(|u| model.user_latent_frozen(ctx, u)).collect();
    let reps: Vec<_> = (0..ctx.num_groups()).map(|g| model.member_reps_frozen(ctx, g, &latents)).collect();
    let mem_user_scorer =
        |u: usize, items: &[usize]| -> Vec<f32> { model.score_user_items_frozen(u, items, latents[u].as_ref()) };
    let mem_group_scorer =
        |g: usize, items: &[usize]| -> Vec<f32> { model.score_group_items_frozen(&reps[g], items) };
    let mem_user = env.eval_user(&mem_user_scorer);
    let mem_group = env.eval_group(&mem_group_scorer);
    println!(
        "  memory    user HR@10={:.4} NDCG@10={:.4}   group HR@10={:.4} NDCG@10={:.4}",
        mem_user.hr(10),
        mem_user.ndcg(10),
        mem_group.hr(10),
        mem_group.ndcg(10)
    );

    let base_dir = std::env::temp_dir().join(format!("groupsa-quant-eval-{}", std::process::id()));
    let mut variants = Vec::new();
    let mut f32_bytes = 0u64;
    let mut f32_user = mem_user.clone();
    let mut f32_group = mem_group.clone();
    for quant in [Quant::F32, Quant::F16, Quant::I8] {
        let dir = base_dir.join(quant.name());
        let _ = std::fs::remove_dir_all(&dir);
        frozen.write_snapshot(&dir, SHARDS, quant).map_err(|e| e.to_string())?;
        let snap = Snapshot::open(&dir).map_err(|e| e.to_string())?;
        let (user, group) = eval_snapshot(&env, &frozen, &snap);
        // Quantized reads are deterministic: a second pass must agree.
        let (user2, group2) = eval_snapshot(&env, &frozen, &snap);
        if user != user2 || group != group2 {
            return Err(format!("{} evaluation is not deterministic", quant.name()));
        }
        let disk = dir_bytes(&dir);
        if matches!(quant, Quant::F32) {
            f32_bytes = disk;
            f32_user = user.clone();
            f32_group = group.clone();
            // The core contract: f32 snapshot tables serve the exact
            // bits of the in-memory tables, so metrics are identical.
            if user.per_k != mem_user.per_k || group.per_k != mem_group.per_k {
                return Err("f32 snapshot metrics diverged from the in-memory frozen model".into());
            }
            println!("  f32 snapshot metrics are identical to memory (asserted)");
        }
        let v = VariantResult {
            quant: quant.name().to_string(),
            disk_bytes: disk,
            bytes_vs_f32: disk as f64 / f32_bytes as f64,
            user_hr_10: user.hr(10),
            user_ndcg_10: user.ndcg(10),
            group_hr_10: group.hr(10),
            group_ndcg_10: group.ndcg(10),
            user_hr_10_delta: user.hr(10) - f32_user.hr(10),
            user_ndcg_10_delta: user.ndcg(10) - f32_user.ndcg(10),
            group_hr_10_delta: group.hr(10) - f32_group.hr(10),
            group_ndcg_10_delta: group.ndcg(10) - f32_group.ndcg(10),
        };
        println!(
            "  {:<4} {:>9} bytes ({:.2}x)  user HR@10={:.4} ({:+.4})  group NDCG@10={:.4} ({:+.4})",
            v.quant,
            v.disk_bytes,
            v.bytes_vs_f32,
            v.user_hr_10,
            v.user_hr_10_delta,
            v.group_ndcg_10,
            v.group_ndcg_10_delta
        );
        variants.push(v);
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&base_dir);

    if save {
        groupsa_bench::output::check_schema("quant_eval", RESULT_SCHEMA_VERSION)?;
        let report = QuantEvalReport {
            schema_version: RESULT_SCHEMA_VERSION,
            dataset: syn.name.clone(),
            num_users: syn.num_users,
            num_items: syn.num_items,
            num_groups: syn.num_groups,
            dim,
            user_test_pairs: env.split.test_user_item.len(),
            group_test_pairs: env.split.test_group_item.len(),
            variants,
            note: "Metrics evaluated through snapshot-backed tables (paper protocol, 100 negatives). \
                   f32 is asserted identical to the in-memory frozen model; deltas are absolute \
                   differences vs the f32 snapshot."
                .into(),
        };
        let path = groupsa_bench::output::save_json("quant_eval", &report).map_err(|e| e.to_string())?;
        println!("[saved {}]", path.display());
    } else {
        println!("[--save false: skipped results/quant_eval.json]");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let save = !args.windows(2).any(|w| w[0] == "--save" && w[1] == "false");
    match run(save) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("quant_eval: {e}");
            ExitCode::FAILURE
        }
    }
}
