//! Regenerates paper Table 6 (see DESIGN.md §5).

fn main() {
    groupsa_bench::experiments::table6();
}
