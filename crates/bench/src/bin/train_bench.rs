//! Throughput benchmark for the deterministic data-parallel trainer.
//!
//! Two modes:
//!
//! * **Sweep** (default): trains the same synthetic world at 1/2/4
//!   workers, asserts the final parameters are **bit-identical** across
//!   thread counts, and writes per-thread-count throughput and speedup
//!   (plus the machine's core count — speedup is bounded by it) to
//!   `results/train_bench.json`.
//! * **Digest** (`--digest`): runs a short fixed training with the
//!   worker count taken from `GROUPSA_TRAIN_THREADS` (the trainer's
//!   normal env knob) and prints the `TrainReport` plus a parameter
//!   checksum as one JSON line. CI runs this at two thread counts and
//!   diffs the output — any divergence breaks the determinism
//!   contract.

use groupsa_core::{DataContext, GroupSa, GroupSaConfig, TrainReport, Trainer};
use groupsa_data::synthetic::{generate, SyntheticConfig};
use groupsa_data::Dataset;
use groupsa_json::impl_json_struct;
use std::time::Instant;

/// Sweep runs default to writing a machine-readable trace under
/// `results/` unless the caller set `GROUPSA_TRACE` themselves (any
/// non-empty value, including a different path). Digest mode does NOT
/// call this: its stdout must be byte-identical across configurations,
/// and tracing stays a caller decision there.
fn default_trace_path(name: &str) {
    let unset = std::env::var(groupsa_obs::TRACE_ENV).map(|v| v.trim().is_empty()).unwrap_or(true);
    if unset {
        std::env::set_var(groupsa_obs::TRACE_ENV, format!("results/{name}_trace.jsonl"));
    }
}

fn world(seed: u64, cfg: &GroupSaConfig) -> (Dataset, DataContext) {
    let dataset = generate(&SyntheticConfig {
        name: format!("train-bench-{seed}"),
        seed,
        num_users: 150,
        num_items: 80,
        num_groups: 50,
        num_topics: 4,
        latent_dim: 4,
        avg_items_per_user: 10.0,
        avg_friends_per_user: 5.0,
        avg_items_per_group: 2.0,
        mean_group_size: 3.5,
        zipf_exponent: 0.8,
        homophily: 0.8,
        social_influence: 0.3,
        expertise_sharpness: 2.0,
        taste_temperature: 0.3,
        consensus_blend: 0.5,
        connectedness_boost: 1.0,
    });
    let ctx = DataContext::from_train_view(&dataset, cfg);
    (dataset, ctx)
}

/// FNV-1a over the bit patterns of every parameter scalar — equal
/// checksums mean bit-identical models.
fn param_checksum(model: &GroupSa) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for m in model.store().snapshot_values() {
        for &v in m.as_slice() {
            for b in v.to_bits().to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
    }
    format!("{h:016x}")
}

fn bench_cfg() -> GroupSaConfig {
    let mut cfg = GroupSaConfig::tiny();
    cfg.dropout = 0.2; // exercise the per-example mask streams
    cfg.num_negatives = 4;
    cfg
}

// ------------------------------------------------------------- sweep

#[derive(Debug)]
struct ThreadRun {
    threads: usize,
    elapsed_s: f64,
    examples_per_sec: f64,
    speedup_vs_serial: f64,
    param_checksum: String,
}

impl_json_struct!(ThreadRun { threads, elapsed_s, examples_per_sec, speedup_vs_serial, param_checksum });

#[derive(Debug)]
struct TrainBenchReport {
    schema_version: u64,
    machine_cores: usize,
    user_examples_per_epoch: usize,
    group_examples_per_epoch: usize,
    timed_user_epochs: usize,
    timed_group_epochs: usize,
    runs: Vec<ThreadRun>,
    note: String,
}

impl_json_struct!(TrainBenchReport {
    schema_version,
    machine_cores,
    user_examples_per_epoch,
    group_examples_per_epoch,
    timed_user_epochs,
    timed_group_epochs,
    runs,
    note,
});

fn sweep() {
    const USER_EPOCHS: usize = 2;
    const GROUP_EPOCHS: usize = 4;
    default_trace_path("train_bench");
    groupsa_obs::emit("run", &[("label", groupsa_obs::to_json(&"train_bench_sweep"))]);
    let cfg = bench_cfg();
    let (d, ctx) = world(41, &cfg);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "train_bench: {} user pairs, {} group pairs, {} core(s)",
        ctx.train_user_item.len(),
        ctx.train_group_item.len(),
        cores
    );

    let mut runs: Vec<ThreadRun> = Vec::new();
    for threads in [1usize, 2, 4] {
        let mut model = GroupSa::new(cfg.clone(), d.num_users, d.num_items);
        let mut trainer = Trainer::new(cfg.clone()).with_threads(threads);
        // Warmup (untimed): one user epoch to touch every code path and
        // fault in allocations.
        trainer.user_epoch(&mut model, &ctx);
        let start = Instant::now();
        for _ in 0..USER_EPOCHS {
            trainer.user_epoch(&mut model, &ctx);
        }
        for _ in 0..GROUP_EPOCHS {
            trainer.group_epoch(&mut model, &ctx);
        }
        let elapsed = start.elapsed().as_secs_f64();
        let examples =
            USER_EPOCHS * ctx.train_user_item.len() + GROUP_EPOCHS * ctx.train_group_item.len();
        let throughput = examples as f64 / elapsed;
        let speedup = if runs.is_empty() { 1.0 } else { throughput / runs[0].examples_per_sec };
        let checksum = param_checksum(&model);
        println!(
            "  T={threads}: {elapsed:.3}s, {throughput:.0} examples/s, speedup {speedup:.2}x, checksum {checksum}"
        );
        runs.push(ThreadRun {
            threads,
            elapsed_s: elapsed,
            examples_per_sec: throughput,
            speedup_vs_serial: speedup,
            param_checksum: checksum,
        });
    }

    // The determinism contract, enforced on every sweep: thread count
    // must not change a single parameter bit.
    for run in &runs[1..] {
        assert_eq!(
            run.param_checksum, runs[0].param_checksum,
            "T={} diverged from serial training",
            run.threads
        );
    }

    if let Err(e) = groupsa_bench::output::check_schema("train_bench", groupsa_bench::output::RESULT_SCHEMA_VERSION) {
        eprintln!("[error] {e}");
        std::process::exit(1);
    }
    let report = TrainBenchReport {
        schema_version: groupsa_bench::output::RESULT_SCHEMA_VERSION,
        machine_cores: cores,
        user_examples_per_epoch: ctx.train_user_item.len(),
        group_examples_per_epoch: ctx.train_group_item.len(),
        timed_user_epochs: USER_EPOCHS,
        timed_group_epochs: GROUP_EPOCHS,
        runs,
        note: "All thread counts produce bit-identical parameters (checksums asserted equal). \
               Speedup is bounded by machine_cores; on a single-core machine extra workers only \
               add scheduling overhead."
            .into(),
    };
    match groupsa_bench::output::save_json("train_bench", &report) {
        Ok(path) => println!("[saved {}]", path.display()),
        Err(e) => {
            eprintln!("[error] could not save train_bench.json: {e}");
            std::process::exit(1);
        }
    }
}

// ------------------------------------------------------------ digest

#[derive(Debug)]
struct Digest {
    report: TrainReport,
    param_checksum: String,
}

impl_json_struct!(Digest { report, param_checksum });

/// A short fixed training whose serialized outcome must be identical at
/// every `GROUPSA_TRAIN_THREADS` value — and whether or not
/// `GROUPSA_TRACE` is set (observability must not perturb training).
/// The worker count goes to stderr so stdout can be diffed verbatim;
/// wall-clock epoch times are zeroed before serialising for the same
/// reason (they are the one legitimately nondeterministic field).
fn digest() {
    let mut cfg = bench_cfg();
    cfg.user_epochs = 1;
    cfg.group_epochs = 2;
    let (d, ctx) = world(43, &cfg);
    let mut model = GroupSa::new(cfg.clone(), d.num_users, d.num_items);
    let mut trainer = Trainer::new(cfg);
    eprintln!("train_bench --digest: {} worker(s)", trainer.threads());
    groupsa_obs::emit("run", &[("label", groupsa_obs::to_json(&"train_bench_digest"))]);
    let mut report = trainer.fit(&mut model, &ctx);
    report.zero_wall_clock();
    let digest = Digest { report, param_checksum: param_checksum(&model) };
    println!("{}", groupsa_json::to_string(&digest));
}

fn main() {
    let digest_mode = std::env::args().skip(1).any(|a| a == "--digest");
    if digest_mode {
        digest();
    } else {
        sweep();
    }
}
