//! Train-and-evaluate drivers for every method in the paper's tables.

use crate::env::ExperimentEnv;
use groupsa_baselines::aggregation::{StaticAggregation, ALL_STRATEGIES};
use groupsa_baselines::{Agree, BaselineConfig, Ncf, Pop, SigrLike};
use groupsa_core::{DataContext, GroupSa, GroupSaConfig, TrainReport, Trainer};
use groupsa_eval::EvalResult;

/// A trained GroupSA model bundled with its data context.
pub struct TrainedGroupSa {
    /// The trained model.
    pub model: GroupSa,
    /// The context it was trained with.
    pub ctx: DataContext,
    /// Loss curves.
    pub report: TrainReport,
}

/// Trains GroupSA (or an ablated variant, per `cfg.ablation`) on the
/// environment's training split.
pub fn train_groupsa(env: &ExperimentEnv, cfg: GroupSaConfig) -> TrainedGroupSa {
    let ctx = DataContext::build(&env.dataset, &env.split, &cfg);
    let mut model = GroupSa::new(cfg.clone(), env.dataset.num_users, env.dataset.num_items);
    let report = Trainer::new(cfg).fit(&mut model, &ctx);
    TrainedGroupSa { model, ctx, report }
}

/// `(user-task result, group-task result)` for a trained GroupSA.
pub fn eval_groupsa(env: &ExperimentEnv, trained: &TrainedGroupSa) -> (EvalResult, EvalResult) {
    let user = env.eval_user(&trained.model.user_scorer(&trained.ctx));
    let group = env.eval_group(&trained.model.group_scorer(&trained.ctx));
    (user, group)
}

/// Evaluates the three static score-aggregation baselines on top of a
/// trained GroupSA, in paper order (avg, lm, ms).
pub fn eval_static_aggregations(env: &ExperimentEnv, trained: &TrainedGroupSa) -> Vec<(&'static str, EvalResult)> {
    ALL_STRATEGIES
        .iter()
        .map(|&s| {
            let scorer = StaticAggregation::new(&trained.model, &trained.ctx, s);
            let label = scorer.label();
            (label, env.eval_group(&scorer))
        })
        .collect()
}

/// Trains and evaluates the Pop baseline (training popularity over both
/// relations): `(user result, group result)`.
pub fn run_pop(env: &ExperimentEnv) -> (EvalResult, EvalResult) {
    let train = env.split.train_view(&env.dataset);
    let ui = train.user_item_graph();
    let gi = train.group_item_graph();
    let pop = Pop::fit_many(&[&ui, &gi]);
    (env.eval_user(&pop), env.eval_group(&pop))
}

/// Trains NCF twice — on user-item pairs, and on group-item pairs with
/// groups as virtual users — returning `(user result, group result)`.
pub fn run_ncf(env: &ExperimentEnv, cfg: BaselineConfig) -> (EvalResult, EvalResult) {
    let train = env.split.train_view(&env.dataset);
    let ui = train.user_item_graph();
    let gi = train.group_item_graph();

    // The user-side NCF trains as long as the other methods' user stage.
    let mut user_model = Ncf::new(cfg.clone(), env.dataset.num_users, env.dataset.num_items);
    for _ in 0..cfg.user_epochs {
        user_model.epoch(&train.user_item, &ui);
    }
    // The group-side NCF treats every group as a virtual user.
    let mut group_model = Ncf::new(cfg.clone(), env.dataset.num_groups(), env.dataset.num_items);
    for _ in 0..cfg.group_epochs {
        group_model.epoch(&train.group_item, &gi);
    }

    let user = env.eval_user(&user_model.scorer());
    let group = env.eval_group(&group_model.scorer());
    (user, group)
}

/// Trains and evaluates AGREE: `(user result, group result)`.
pub fn run_agree(env: &ExperimentEnv, cfg: BaselineConfig) -> (EvalResult, EvalResult) {
    let train = env.split.train_view(&env.dataset);
    let ui = train.user_item_graph();
    let gi = train.group_item_graph();
    let mut agree = Agree::new(cfg, env.dataset.num_users, env.dataset.num_items, env.dataset.groups.clone());
    let _ = agree.fit(&train.user_item, &ui, &train.group_item, &gi);
    let user = env.eval_user(&agree.user_scorer());
    let group = env.eval_group(&agree.group_scorer());
    (user, group)
}

/// Trains and evaluates the SIGR-like baseline: `(user, group)`.
pub fn run_sigr(env: &ExperimentEnv, cfg: BaselineConfig) -> (EvalResult, EvalResult) {
    let train = env.split.train_view(&env.dataset);
    let ui = train.user_item_graph();
    let gi = train.group_item_graph();
    let social = train.social_graph();
    let mut sigr = SigrLike::new(cfg, env.dataset.num_users, env.dataset.num_items, env.dataset.groups.clone(), &social);
    let _ = sigr.fit(&train.user_item, &ui, &train.group_item, &gi);
    let user = env.eval_user(&sigr.user_scorer());
    let group = env.eval_group(&sigr.group_scorer());
    (user, group)
}
