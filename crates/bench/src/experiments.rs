//! One function per paper table/figure, shared by the `exp_*` binaries
//! and `exp_all`.

use crate::env::ExperimentEnv;
use crate::methods;
use crate::output;
use groupsa_baselines::BaselineConfig;
use groupsa_core::{Ablation, GroupSaConfig, ScoreAggregation};
use groupsa_data::synthetic::{douban_sim, yelp_sim, SyntheticConfig};
use groupsa_eval::report::Row;
use groupsa_eval::stats::paired_t_test;
use groupsa_eval::{EvalResult, Leaderboard};
use std::time::Instant;

/// Reduced-epoch configuration for the hyper-parameter sweeps
/// (Tables VI–VIII) and the ablation figure, so the whole suite runs in
/// reasonable wall-clock on one core. The comparisons within each sweep
/// are still apples-to-apples (every arm uses the same budget).
pub fn sweep_config() -> GroupSaConfig {
    GroupSaConfig { user_epochs: 10, group_epochs: 40, ..GroupSaConfig::paper() }
}

fn banner(what: &str) {
    println!("\n######## {what} ########");
}

/// **Table I** — dataset statistics of both synthetic datasets.
pub fn table1() {
    banner("Table I: dataset statistics");
    for cfg in [yelp_sim(), douban_sim()] {
        let env = ExperimentEnv::prepare(&cfg);
        println!("{}", env.stats());
        let _ = output::save_json(&format!("table1_{}", cfg.name), &env.stats());
    }
}

/// One overall-comparison table (Tables II and III): every method on
/// the user and group tasks. Returns the two leaderboards
/// `(user, group)`.
pub fn overall_comparison(synth: &SyntheticConfig, label: &str) -> (Leaderboard, Leaderboard) {
    banner(&format!("{label}: overall Top-K comparison on {}", synth.name));
    let env = ExperimentEnv::prepare(&synth.clone());
    let mut user_lb = Leaderboard::new(format!("{label} — user task ({})", synth.name));
    let mut group_lb = Leaderboard::new(format!("{label} — group task ({})", synth.name));

    let t = Instant::now();
    let (pop_u, pop_g) = methods::run_pop(&env);
    println!("[Pop {:?}]", t.elapsed());
    let t = Instant::now();
    let (ncf_u, ncf_g) = methods::run_ncf(&env, BaselineConfig::paper());
    println!("[NCF {:?}]", t.elapsed());
    let t = Instant::now();
    let (agree_u, agree_g) = methods::run_agree(&env, BaselineConfig::paper());
    println!("[AGREE {:?}]", t.elapsed());
    let t = Instant::now();
    let (sigr_u, sigr_g) = methods::run_sigr(&env, BaselineConfig::paper());
    println!("[SIGR {:?}]", t.elapsed());

    let t = Instant::now();
    let trained = methods::train_groupsa(&env, GroupSaConfig::paper());
    let (gsa_u, gsa_g) = methods::eval_groupsa(&env, &trained);
    let statics = methods::eval_static_aggregations(&env, &trained);
    println!("[GroupSA {:?}]", t.elapsed());

    user_lb.push("NCF", &ncf_u);
    user_lb.push("Pop", &pop_u);
    user_lb.push("AGREE", &agree_u);
    user_lb.push("SIGR", &sigr_u);
    user_lb.push("GroupSA", &gsa_u);

    group_lb.push("NCF", &ncf_g);
    group_lb.push("Pop", &pop_g);
    group_lb.push("AGREE", &agree_g);
    group_lb.push("SIGR", &sigr_g);
    for (name, res) in &statics {
        group_lb.push(*name, res);
    }
    group_lb.push("GroupSA", &gsa_g);

    // Significance of GroupSA over the strongest learned baseline
    // (the paper reports p < 0.01 everywhere).
    let strongest: &EvalResult = &statics[0].1; // Group+avg
    let tt = paired_t_test(&gsa_g.hr_vector(5), &strongest.hr_vector(5));
    println!(
        "paired t-test GroupSA vs Group+avg (group HR@5): t={:.3}, p≈{:.4}, mean Δ={:.4}",
        tt.t, tt.p_two_sided, tt.mean_diff
    );

    output::emit(&format!("{}_user", slug(label)), &user_lb);
    output::emit(&format!("{}_group", slug(label)), &group_lb);
    (user_lb, group_lb)
}

fn slug(label: &str) -> String {
    label.to_ascii_lowercase().replace([' ', ':'], "_")
}

/// **Table II** — overall comparison on the Yelp-like dataset.
pub fn table2() -> (Leaderboard, Leaderboard) {
    overall_comparison(&yelp_sim(), "Table II")
}

/// **Table III** — overall comparison on the Douban-like dataset.
pub fn table3() -> (Leaderboard, Leaderboard) {
    overall_comparison(&douban_sim(), "Table III")
}

/// **Table IV** — case study: member attention weights of GroupSA vs
/// Group-S for positive and negative items of one sampled group.
pub fn table4() {
    banner("Table IV: case study (member weights, GroupSA vs Group-S)");
    let synth = yelp_sim();
    let env = ExperimentEnv::prepare(&synth);
    let cfg = sweep_config();
    let full = methods::train_groupsa(&env, cfg.clone());
    let group_s = methods::train_groupsa(&env, cfg.with_ablation(Ablation::group_s()));

    // A test group with ≥3 members and a held-out positive.
    let (group, positive) = env
        .split
        .test_group_item
        .iter()
        .copied()
        .find(|&(t, _)| env.dataset.groups[t].len() >= 3)
        .expect("some test group has ≥3 members");
    // A training positive of the same group, if any, plus two random negatives.
    let mut items = vec![positive];
    if let Some(&(_, other)) = env.split.train_group_item.iter().find(|&&(t, _)| t == group) {
        items.push(other);
    }
    let negatives: Vec<usize> = (0..env.dataset.num_items)
        .filter(|&i| !env.full_group_item.has_interaction(group, i))
        .take(2)
        .collect();
    items.extend(negatives);

    println!("group #{group} members: {:?}", env.dataset.groups[group]);
    let mut rows = Vec::new();
    for (which, trained) in [("GroupSA", &full), ("Group-S", &group_s)] {
        for (idx, &item) in items.items_iter() {
            let e = trained.model.explain_group_prediction(&trained.ctx, group, item);
            let kind = if idx == 0 { "pos(test)" } else if idx == 1 && items.len() == 4 { "pos(train)" } else { "neg" };
            println!(
                "{which:8} item #{item:4} [{kind:10}] weights {:?} -> r̂={:.4}",
                e.member_weights.iter().map(|w| format!("{w:.3}")).collect::<Vec<_>>(),
                e.probability
            );
            rows.push((which.to_string(), item, kind.to_string(), e));
        }
    }
    let _ = output::save_json("table4_case_study", &rows.iter().map(|(w, i, k, e)| {
        groupsa_json::json!({"model": w, "item": i, "kind": k, "weights": e.member_weights, "probability": e.probability})
    }).collect::<Vec<_>>());
}

trait ItemsIter {
    fn items_iter(&self) -> std::iter::Enumerate<std::slice::Iter<'_, usize>>;
}
impl ItemsIter for Vec<usize> {
    fn items_iter(&self) -> std::iter::Enumerate<std::slice::Iter<'_, usize>> {
        self.iter().enumerate()
    }
}

/// **Figure 3** — ablation study: GroupSA vs Group-A/S/I/F on the group
/// task of both datasets.
pub fn fig3() -> Vec<Leaderboard> {
    banner("Figure 3: component ablations (group task)");
    let mut boards = Vec::new();
    for synth in [yelp_sim(), douban_sim()] {
        let env = ExperimentEnv::prepare(&synth);
        let mut lb = Leaderboard::new(format!("Figure 3 — group task ({})", synth.name));
        let variants = [
            ("Group-A", Ablation::group_a()),
            ("Group-S", Ablation::group_s()),
            ("Group-I", Ablation::group_i()),
            ("Group-F", Ablation::group_f()),
            ("GroupSA", Ablation::full()),
        ];
        for (name, ablation) in variants {
            let t = Instant::now();
            let trained = methods::train_groupsa(&env, sweep_config().with_ablation(ablation));
            let (_, group) = methods::eval_groupsa(&env, &trained);
            println!("[{name} on {} {:?}] HR@5={:.4}", synth.name, t.elapsed(), group.hr(5));
            lb.push(name, &group);
        }
        output::emit(&format!("fig3_{}", synth.name), &lb);
        boards.push(lb);
    }
    boards
}

/// **Table V** — importance of the user-item data: NCF vs Group-G vs
/// GroupSA on the group task of both datasets.
pub fn table5() -> Vec<Leaderboard> {
    banner("Table V: importance of user-item interaction data");
    let mut boards = Vec::new();
    for synth in [yelp_sim(), douban_sim()] {
        let env = ExperimentEnv::prepare(&synth);
        let mut lb = Leaderboard::new(format!("Table V — group task ({})", synth.name));
        let (_, ncf_g) = methods::run_ncf(&env, BaselineConfig::paper());
        lb.push("NCF", &ncf_g);
        let gg = methods::train_groupsa(&env, GroupSaConfig::paper().with_ablation(Ablation::group_g()));
        let (_, gg_res) = methods::eval_groupsa(&env, &gg);
        lb.push("Group-G", &gg_res);
        let full = methods::train_groupsa(&env, GroupSaConfig::paper());
        let (_, full_res) = methods::eval_groupsa(&env, &full);
        lb.push("GroupSA", &full_res);
        output::emit(&format!("table5_{}", synth.name), &lb);
        boards.push(lb);
    }
    boards
}

/// A one-parameter sweep on the Yelp-like dataset's group task.
fn sweep<T: std::fmt::Display + Copy>(
    title: &str,
    file: &str,
    values: &[T],
    mut configure: impl FnMut(GroupSaConfig, T) -> GroupSaConfig,
) -> Leaderboard {
    banner(title);
    let env = ExperimentEnv::prepare(&yelp_sim());
    let mut lb = Leaderboard::new(title.to_string());
    for &v in values {
        let cfg = configure(sweep_config(), v);
        let t = Instant::now();
        let trained = methods::train_groupsa(&env, cfg);
        let (_, group) = methods::eval_groupsa(&env, &trained);
        println!("[{v} {:?}] {}", t.elapsed(), output::fmt_per_k(&group.per_k));
        lb.push_row(Row { method: v.to_string(), per_k: group.per_k.clone() });
    }
    output::emit(file, &lb);
    lb
}

/// **Table VI** — impact of the number of voting layers `N_X`.
pub fn table6() -> Leaderboard {
    sweep("Table VI: impact of N_X (yelp-sim, group task)", "table6_nx", &[1usize, 2, 3, 4, 5], |cfg, nx| {
        GroupSaConfig { num_voting_layers: nx, ..cfg }
    })
}

/// **Table VII** — impact of the blend weight `wᵘ`.
pub fn table7() -> Leaderboard {
    sweep(
        "Table VII: impact of w_u (yelp-sim, group task)",
        "table7_wu",
        &[0.1f32, 0.3, 0.5, 0.7, 0.9, 1.0],
        |cfg, wu| GroupSaConfig { w_u: wu, ..cfg },
    )
}

/// **Table VIII** — impact of the number of negatives `N`.
pub fn table8() -> Leaderboard {
    sweep("Table VIII: impact of N (yelp-sim, group task)", "table8_n", &[1usize, 2, 3, 4, 5], |cfg, n| {
        GroupSaConfig { num_negatives: n, ..cfg }
    })
}

/// **Table IX** — performance by group size (`l < 3`, `3 ≤ l ≤ 7`,
/// `l > 7`) on the Yelp-like dataset.
pub fn table9() -> Leaderboard {
    banner("Table IX: performance by group size (yelp-sim)");
    let env = ExperimentEnv::prepare(&yelp_sim());
    let trained = methods::train_groupsa(&env, GroupSaConfig::paper());
    let (_, group) = methods::eval_groupsa(&env, &trained);
    let sizes: Vec<usize> = env.dataset.groups.iter().map(Vec::len).collect();
    let mut lb = Leaderboard::new("Table IX — GroupSA by group size (yelp-sim, group task)");
    let bins: [(&str, Box<dyn Fn(usize) -> bool>); 3] = [
        ("l<3", Box::new(|l| l < 3)),
        ("3<=l<=7", Box::new(|l| (3..=7).contains(&l))),
        ("l>7", Box::new(|l| l > 7)),
    ];
    for (name, pred) in &bins {
        match group.filtered(&[5, 10], |o| pred(sizes[o.entity])) {
            Some(res) => {
                println!("{name:8} ({} groups): {}", res.outcomes.len(), output::fmt_per_k(&res.per_k));
                lb.push_row(Row { method: name.to_string(), per_k: res.per_k.clone() });
            }
            None => println!("{name:8}: no test groups in this bin"),
        }
    }
    output::emit("table9_group_size", &lb);
    lb
}

/// Extension ablations beyond the paper (DESIGN.md §3's implementation
/// choices and Eq. 5's alternative closeness functions), on the
/// Yelp-like group task.
pub fn extra_ablations() -> Leaderboard {
    banner("Extra ablations: closeness / voting input / group head (yelp-sim, group task)");
    use groupsa_core::VotingInput;
    use groupsa_graph::social::Closeness;
    let env = ExperimentEnv::prepare(&yelp_sim());
    let mut lb = Leaderboard::new("Extra ablations — group task (yelp-sim)");
    let variants: Vec<(&str, GroupSaConfig)> = vec![
        ("closeness=common-nbrs", GroupSaConfig { closeness: Closeness::CommonNeighbors { min_common: 1 }, ..sweep_config() }),
        ("closeness=all(no-mask)", GroupSaConfig { closeness: Closeness::All, ..sweep_config() }),
        ("input=enhanced", GroupSaConfig { voting_input: VotingInput::Enhanced, ..sweep_config() }),
        ("head=paper-literal", GroupSaConfig { lean_group_head: false, ..sweep_config() }),
        ("default", sweep_config()),
    ];
    for (name, cfg) in variants {
        let t = Instant::now();
        let trained = methods::train_groupsa(&env, cfg);
        let (_, group) = methods::eval_groupsa(&env, &trained);
        println!("[{name} {:?}] {}", t.elapsed(), output::fmt_per_k(&group.per_k));
        lb.push(name, &group);
    }
    output::emit("extra_ablations", &lb);
    lb
}

/// Fast vs full inference quality (§II-F): the fast average mode should
/// be competitive with the full voting path, at a fraction of the cost.
pub fn fast_vs_full() {
    banner("§II-F: fast vs full group recommendation");
    let env = ExperimentEnv::prepare(&yelp_sim());
    let trained = methods::train_groupsa(&env, GroupSaConfig::paper());
    let (_, full) = methods::eval_groupsa(&env, &trained);
    let t = Instant::now();
    let fast = env.eval_group(&trained.model.fast_group_scorer(&trained.ctx, ScoreAggregation::Average));
    let fast_time = t.elapsed();
    let t = Instant::now();
    let _ = env.eval_group(&trained.model.group_scorer(&trained.ctx));
    let full_time = t.elapsed();
    println!("full : {} ({full_time:?})", output::fmt_per_k(&full.per_k));
    println!("fast : {} ({fast_time:?})", output::fmt_per_k(&fast.per_k));
}
