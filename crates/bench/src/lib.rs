//! # groupsa-bench
//!
//! The experiment harness: one binary per table/figure of the paper
//! (see DESIGN.md §5 for the full index), all built on the shared
//! machinery in this library:
//!
//! * [`env::ExperimentEnv`] — dataset + split + evaluation graphs for
//!   one synthetic dataset;
//! * [`methods`] — train-and-evaluate drivers for GroupSA, every
//!   baseline and every ablation variant;
//! * [`output`] — result persistence (`results/*.json`) and the
//!   paper-style text tables printed to stdout.
//!
//! Run everything with `cargo run -p groupsa-bench --release --bin
//! exp_all`, or a single experiment with e.g. `… --bin exp_table2`.

#![warn(missing_docs)]

pub mod env;
pub mod experiments;
pub mod methods;
pub mod output;

pub use env::ExperimentEnv;
