//! Result persistence and paper-style table rendering.

use groupsa_eval::Leaderboard;
use groupsa_json::ToJson;
use std::io;
use std::path::{Path, PathBuf};

/// Directory (relative to the workspace root / current dir) where
/// experiment binaries drop their JSON artifacts.
pub const RESULTS_DIR: &str = "results";

/// Ensures `results/` exists and returns the path for `name.json`.
pub fn results_path(name: &str) -> io::Result<PathBuf> {
    let dir = Path::new(RESULTS_DIR);
    std::fs::create_dir_all(dir)?;
    Ok(dir.join(format!("{name}.json")))
}

/// Serialises any result payload to `results/<name>.json` (pretty).
pub fn save_json<T: ToJson>(name: &str, payload: &T) -> io::Result<PathBuf> {
    let path = results_path(name)?;
    let json = groupsa_json::to_string_pretty(payload);
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Schema version stamped into versioned bench reports
/// (`serve_bench`, `train_bench`, `serve_bench_snapshot`,
/// `quant_eval`) — the same contract `BENCH_kernels.json` uses. Bump
/// it whenever a report's field set or meaning changes.
pub const RESULT_SCHEMA_VERSION: u64 = 1;

/// Validates the `schema_version` of an existing `results/<name>.json`
/// before a bench overwrites it: a file written by a *newer* (or
/// otherwise different) schema is refused instead of silently
/// clobbered, so committed results and the binaries that read them
/// cannot drift apart unnoticed. Unversioned or unparsable files only
/// warn — they predate versioning and the rewrite upgrades them.
pub fn check_schema(name: &str, expected: u64) -> Result<(), String> {
    check_schema_file(&Path::new(RESULTS_DIR).join(format!("{name}.json")), expected)
}

/// [`check_schema`] against an explicit path.
pub fn check_schema_file(path: &Path, expected: u64) -> Result<(), String> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Ok(()); // nothing on disk yet
    };
    match groupsa_json::Json::parse(&text) {
        Ok(json) => match json.get("schema_version").and_then(|v| v.as_f64()) {
            Some(v) if v as u64 == expected => Ok(()),
            Some(v) => Err(format!(
                "{} has schema v{}, this binary writes v{expected} — delete or re-baseline it first",
                path.display(),
                v as u64
            )),
            None => {
                eprintln!("[warn] {} predates schema versioning; rewriting as v{expected}", path.display());
                Ok(())
            }
        },
        Err(e) => {
            eprintln!("[warn] {} is not valid JSON ({e}); rewriting as v{expected}", path.display());
            Ok(())
        }
    }
}

/// Prints a leaderboard with a separating banner, and persists it.
pub fn emit(name: &str, lb: &Leaderboard) {
    println!("==================================================================");
    println!("{lb}");
    match save_json(name, lb) {
        Ok(path) => println!("[saved {}]", path.display()),
        Err(e) => eprintln!("[warn] could not save {name}: {e}"),
    }
}

/// Formats a `(K, HR, NDCG)` triple list compactly, e.g. for sweep
/// tables (Tables VI–IX).
pub fn fmt_per_k(per_k: &[(usize, f64, f64)]) -> String {
    per_k
        .iter()
        .map(|&(k, hr, ndcg)| format!("HR@{k}={hr:.4} NDCG@{k}={ndcg:.4}"))
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_per_k_renders_all_cutoffs() {
        let s = fmt_per_k(&[(5, 0.8339, 0.6886), (10, 0.9257, 0.7186)]);
        assert!(s.contains("HR@5=0.8339"));
        assert!(s.contains("NDCG@10=0.7186"));
    }

    #[test]
    fn check_schema_accepts_matching_and_rejects_mismatched() {
        let dir = std::env::temp_dir().join(format!("groupsa-bench-schema-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("r.json");
        // Missing file: fine.
        let _ = std::fs::remove_file(&path);
        assert!(check_schema_file(&path, 1).is_ok());
        // Matching version: fine.
        std::fs::write(&path, "{\"schema_version\": 1, \"runs\": []}").unwrap();
        assert!(check_schema_file(&path, 1).is_ok());
        // Mismatched version: refused.
        let err = check_schema_file(&path, 2).unwrap_err();
        assert!(err.contains("schema v1"), "{err}");
        // Unversioned legacy file: warns but proceeds.
        std::fs::write(&path, "{\"runs\": []}").unwrap();
        assert!(check_schema_file(&path, 1).is_ok());
        // Garbage: warns but proceeds (it will be rewritten).
        std::fs::write(&path, "not json").unwrap();
        assert!(check_schema_file(&path, 1).is_ok());
    }

    #[test]
    fn save_json_roundtrips() {
        let dir = std::env::temp_dir().join("groupsa-bench-test");
        std::fs::create_dir_all(&dir).unwrap();
        let old = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();
        let path = save_json("unit", &vec![1, 2, 3]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::env::set_current_dir(old).unwrap();
        assert!(text.contains('1') && text.contains('3'));
    }
}
