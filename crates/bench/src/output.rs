//! Result persistence and paper-style table rendering.

use groupsa_eval::Leaderboard;
use groupsa_json::ToJson;
use std::io;
use std::path::{Path, PathBuf};

/// Directory (relative to the workspace root / current dir) where
/// experiment binaries drop their JSON artifacts.
pub const RESULTS_DIR: &str = "results";

/// Ensures `results/` exists and returns the path for `name.json`.
pub fn results_path(name: &str) -> io::Result<PathBuf> {
    let dir = Path::new(RESULTS_DIR);
    std::fs::create_dir_all(dir)?;
    Ok(dir.join(format!("{name}.json")))
}

/// Serialises any result payload to `results/<name>.json` (pretty).
pub fn save_json<T: ToJson>(name: &str, payload: &T) -> io::Result<PathBuf> {
    let path = results_path(name)?;
    let json = groupsa_json::to_string_pretty(payload);
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Prints a leaderboard with a separating banner, and persists it.
pub fn emit(name: &str, lb: &Leaderboard) {
    println!("==================================================================");
    println!("{lb}");
    match save_json(name, lb) {
        Ok(path) => println!("[saved {}]", path.display()),
        Err(e) => eprintln!("[warn] could not save {name}: {e}"),
    }
}

/// Formats a `(K, HR, NDCG)` triple list compactly, e.g. for sweep
/// tables (Tables VI–IX).
pub fn fmt_per_k(per_k: &[(usize, f64, f64)]) -> String {
    per_k
        .iter()
        .map(|&(k, hr, ndcg)| format!("HR@{k}={hr:.4} NDCG@{k}={ndcg:.4}"))
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_per_k_renders_all_cutoffs() {
        let s = fmt_per_k(&[(5, 0.8339, 0.6886), (10, 0.9257, 0.7186)]);
        assert!(s.contains("HR@5=0.8339"));
        assert!(s.contains("NDCG@10=0.7186"));
    }

    #[test]
    fn save_json_roundtrips() {
        let dir = std::env::temp_dir().join("groupsa-bench-test");
        std::fs::create_dir_all(&dir).unwrap();
        let old = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();
        let path = save_json("unit", &vec![1, 2, 3]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::env::set_current_dir(old).unwrap();
        assert!(text.contains('1') && text.contains('3'));
    }
}
