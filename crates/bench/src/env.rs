//! Shared experiment environment: dataset, split, evaluation tasks.

use groupsa_data::{split_dataset, synthetic::SyntheticConfig, Dataset, DatasetStats, Split};
use groupsa_eval::{EvalResult, EvalTask, Scorer};
use groupsa_graph::Bipartite;

/// The evaluation seed shared by every method so all of them rank the
/// *same* candidate sets.
pub const EVAL_SEED: u64 = 0xE7A1;

/// Everything an experiment needs about one dataset: the generated
/// data, its 80/10/10 split, and full-interaction graphs for clean
/// negative sampling at evaluation time.
pub struct ExperimentEnv {
    /// The generated dataset.
    pub dataset: Dataset,
    /// Its train/valid/test split (paper ratios, seed 42).
    pub split: Split,
    /// All user–item interactions (train ∪ valid ∪ test) — negatives
    /// sampled for the user task must avoid these.
    pub full_user_item: Bipartite,
    /// All group–item interactions.
    pub full_group_item: Bipartite,
}

impl ExperimentEnv {
    /// Generates the dataset and prepares the evaluation graphs.
    pub fn prepare(cfg: &SyntheticConfig) -> Self {
        let dataset = groupsa_data::synthetic::generate(cfg);
        let split = split_dataset(&dataset, 0.2, 0.1, 42);
        let full_user_item = dataset.user_item_graph();
        let full_group_item = dataset.group_item_graph();
        Self { dataset, split, full_user_item, full_group_item }
    }

    /// Table-I statistics of the generated dataset.
    pub fn stats(&self) -> DatasetStats {
        DatasetStats::compute(&self.dataset)
    }

    /// The user-task evaluation task (100 negatives, K ∈ {5, 10}).
    pub fn user_task(&self) -> EvalTask<'_> {
        EvalTask::paper(&self.split.test_user_item, &self.full_user_item, EVAL_SEED)
    }

    /// The group-task evaluation task.
    pub fn group_task(&self) -> EvalTask<'_> {
        EvalTask::paper(&self.split.test_group_item, &self.full_group_item, EVAL_SEED)
    }

    /// Evaluates a scorer on the user task.
    pub fn eval_user(&self, scorer: &dyn Scorer) -> EvalResult {
        groupsa_eval::evaluate(scorer, &self.user_task())
    }

    /// Evaluates a scorer on the group task.
    pub fn eval_group(&self, scorer: &dyn Scorer) -> EvalResult {
        groupsa_eval::evaluate(scorer, &self.group_task())
    }
}
