//! Joint two-stage training (paper §II-E).
//!
//! Stage 1 optimises the user-item BPR loss `L_R` (Eq. 24) over the
//! plentiful user-item interactions, learning the shared user/item
//! embeddings plus the user-modeling towers. Stage 2 fine-tunes on the
//! sparse group-item BPR loss `L_G` (Eq. 21), training the voting
//! network and group tower while continuing to update the shared
//! embeddings. Group-G ablates stage 1.
//!
//! Following the paper, each gradient step draws one positive example
//! and `N` negatives (per-example Adam with row-sparse embedding
//! updates).

use crate::config::GroupSaConfig;
use crate::context::DataContext;
use crate::model::GroupSa;
use groupsa_data::sampling::bpr_epoch;
use groupsa_eval::{evaluate, EvalTask};
use groupsa_nn::loss::bpr_one_vs_rest;
use groupsa_nn::optim::{Adam, Optimizer};
use groupsa_tensor::rng::{seeded, StdRng};
use groupsa_tensor::Graph;
use groupsa_json::impl_json_struct;

/// Per-epoch mean losses recorded during training.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TrainReport {
    /// Mean BPR loss per stage-1 (user-item) epoch.
    pub user_losses: Vec<f32>,
    /// Mean BPR loss per stage-2 (group-item) epoch.
    pub group_losses: Vec<f32>,
    /// Validation HR@10 after each stage-2 epoch (empty without a
    /// validation split).
    pub valid_hr: Vec<f64>,
}

impl_json_struct!(TrainReport { user_losses, group_losses, valid_hr });

impl TrainReport {
    /// Final stage-1 epoch loss, if stage 1 ran.
    pub fn final_user_loss(&self) -> Option<f32> {
        self.user_losses.last().copied()
    }

    /// Final stage-2 epoch loss, if stage 2 ran.
    pub fn final_group_loss(&self) -> Option<f32> {
        self.group_losses.last().copied()
    }
}

/// Drives the two-stage optimisation of a [`GroupSa`] model.
pub struct Trainer {
    cfg: GroupSaConfig,
    sample_rng: StdRng,
    dropout_rng: StdRng,
    optimizer: Adam,
}

impl Trainer {
    /// A trainer with Adam configured from `cfg` (§III-E).
    pub fn new(cfg: GroupSaConfig) -> Self {
        let optimizer = Adam { weight_decay: cfg.weight_decay, ..Adam::new(cfg.learning_rate) };
        Self {
            sample_rng: seeded(cfg.seed.wrapping_add(0x5A4D)),
            dropout_rng: seeded(cfg.seed.wrapping_add(0xD0)),
            cfg,
            optimizer,
        }
    }

    /// Runs the full two-stage schedule on `model` over `ctx`.
    ///
    /// # Panics
    /// If the group-item training set is empty, or stage 1 is enabled
    /// with an empty user-item training set.
    pub fn fit(&mut self, model: &mut GroupSa, ctx: &DataContext) -> TrainReport {
        let mut report = TrainReport::default();
        if self.cfg.ablation.joint_training {
            for _ in 0..self.cfg.user_epochs {
                report.user_losses.push(self.user_epoch(model, ctx));
            }
            // Fresh optimizer state for fine-tuning: stage-1 second
            // moments would otherwise shrink the group-task steps.
            model.store_mut().reset_optimizer_state();
        }
        // Early stopping on the validation split (paper §III-C tunes on
        // a 10% validation set): keep the parameters of the epoch with
        // the best validation HR@10 and stop after `PATIENCE` epochs
        // without improvement. Skipped when no validation pairs exist.
        const PATIENCE: usize = 15;
        let mut best_hr = f64::NEG_INFINITY;
        let mut best_snapshot: Option<Vec<groupsa_tensor::Matrix>> = None;
        let mut since_best = 0;
        for _ in 0..self.cfg.group_epochs {
            report.group_losses.push(self.group_epoch(model, ctx));
            // Joint optimisation (abstract: both tasks are learned
            // "simultaneously"): every group epoch is followed by a
            // *fractional* user epoch so the shared embeddings keep
            // serving both objectives. The fraction balances the step
            // counts of the two tasks — a full user epoch would
            // out-muscle the sparse group data and yank the group head
            // around (observed as validation dips).
            if self.cfg.ablation.joint_training {
                let frac = (ctx.train_group_item.len() as f64 / ctx.train_user_item.len().max(1) as f64).min(1.0);
                self.partial_user_epoch(model, ctx, frac);
            }
            if !ctx.valid_group_item.is_empty() {
                let hr = self.validation_hr(model, ctx);
                report.valid_hr.push(hr);
                if hr > best_hr {
                    best_hr = hr;
                    best_snapshot = Some(model.store().snapshot_values());
                    since_best = 0;
                } else {
                    since_best += 1;
                    // Plateau schedule: halve the learning rate while
                    // validation stalls (floor 1e-3), then stop.
                    let lr = (self.optimizer.learning_rate() * 0.5).max(1e-3);
                    self.optimizer.set_learning_rate(lr);
                    if since_best >= PATIENCE {
                        break;
                    }
                }
            }
        }
        if let Some(snapshot) = best_snapshot {
            model.store_mut().restore_values(&snapshot);
        }
        report
    }

    /// Validation quality of the group task over the held-out
    /// validation pairs (mean of HR@10 and NDCG@5 against 50 sampled
    /// negatives — the blend tracks both list recall and top-heaviness).
    fn validation_hr(&self, model: &GroupSa, ctx: &DataContext) -> f64 {
        let task = EvalTask {
            test_pairs: &ctx.valid_group_item,
            full_interactions: &ctx.group_item_graph,
            num_candidates: 50,
            ks: vec![5, 10],
            seed: self.cfg.seed ^ 0xA11D,
        };
        let res = evaluate(&model.group_scorer(ctx), &task);
        (res.hr(10) + res.ndcg(5)) / 2.0
    }

    /// One stage-1 epoch: every training user-item pair once, in a
    /// shuffled order, with fresh negatives. Returns the mean loss.
    pub fn user_epoch(&mut self, model: &mut GroupSa, ctx: &DataContext) -> f32 {
        assert!(!ctx.train_user_item.is_empty(), "stage 1 requires user-item training data");
        let examples: Vec<_> = bpr_epoch(
            &mut self.sample_rng,
            &ctx.train_user_item,
            &ctx.user_item_graph,
            self.cfg.num_negatives,
        )
        .collect();
        let mut total = 0.0;
        for (i, ex) in examples.iter().enumerate() {
            let mut items = Vec::with_capacity(1 + ex.negatives.len());
            items.push(ex.positive);
            items.extend_from_slice(&ex.negatives);

            let mut g = Graph::new();
            let scores = model.user_scores_graph(&mut g, ctx, ex.entity, &items);
            let loss = bpr_one_vs_rest(&mut g, scores);
            total += g.value(loss).scalar();
            let grads = g.backward(loss);
            model.store_mut().accumulate(&g, &grads);
            if (i + 1) % self.cfg.batch_size == 0 || i + 1 == examples.len() {
                self.optimizer.step(model.store_mut());
            }
        }
        total / examples.len() as f32
    }

    /// A partial user-task epoch over a random `frac` of the training
    /// pairs (stage-2 joint mixing).
    fn partial_user_epoch(&mut self, model: &mut GroupSa, ctx: &DataContext, frac: f64) {
        let take = ((ctx.train_user_item.len() as f64 * frac).ceil() as usize).max(1);
        let examples: Vec<_> = bpr_epoch(
            &mut self.sample_rng,
            &ctx.train_user_item,
            &ctx.user_item_graph,
            self.cfg.num_negatives,
        )
        .take(take)
        .collect();
        for (i, ex) in examples.iter().enumerate() {
            let mut items = Vec::with_capacity(1 + ex.negatives.len());
            items.push(ex.positive);
            items.extend_from_slice(&ex.negatives);
            let mut g = Graph::new();
            let scores = model.user_scores_graph(&mut g, ctx, ex.entity, &items);
            let loss = bpr_one_vs_rest(&mut g, scores);
            let grads = g.backward(loss);
            model.store_mut().accumulate(&g, &grads);
            if (i + 1) % self.cfg.batch_size == 0 || i + 1 == examples.len() {
                self.optimizer.step(model.store_mut());
            }
        }
    }

    /// One stage-2 epoch over the group-item pairs. Returns the mean
    /// loss.
    pub fn group_epoch(&mut self, model: &mut GroupSa, ctx: &DataContext) -> f32 {
        assert!(!ctx.train_group_item.is_empty(), "stage 2 requires group-item training data");
        let examples: Vec<_> = bpr_epoch(
            &mut self.sample_rng,
            &ctx.train_group_item,
            &ctx.group_item_graph,
            self.cfg.num_negatives,
        )
        .collect();
        let mut total = 0.0;
        for (i, ex) in examples.iter().enumerate() {
            let mut items = Vec::with_capacity(1 + ex.negatives.len());
            items.push(ex.positive);
            items.extend_from_slice(&ex.negatives);

            let mut g = Graph::new();
            let scores =
                model.group_scores_graph(&mut g, &mut self.dropout_rng, ctx, ex.entity, &items, true);
            let loss = bpr_one_vs_rest(&mut g, scores);
            total += g.value(loss).scalar();
            let grads = g.backward(loss);
            model.store_mut().accumulate(&g, &grads);
            if (i + 1) % self.cfg.batch_size == 0 || i + 1 == examples.len() {
                self.optimizer.step(model.store_mut());
            }
        }
        total / examples.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Ablation;
    use crate::test_fixtures::tiny_world;
    use groupsa_eval::{evaluate, EvalTask};

    #[test]
    fn losses_decrease_over_training() {
        let (d, ctx) = tiny_world(21);
        let mut cfg = GroupSaConfig::tiny();
        cfg.user_epochs = 4;
        cfg.group_epochs = 6;
        let mut model = GroupSa::new(cfg.clone(), d.num_users, d.num_items);
        let report = Trainer::new(cfg).fit(&mut model, &ctx);
        assert_eq!(report.user_losses.len(), 4);
        assert_eq!(report.group_losses.len(), 6);
        let first = report.user_losses[0];
        let last = report.final_user_loss().unwrap();
        assert!(last < first, "user loss should fall: {first} → {last}");
        assert!(
            report.final_group_loss().unwrap() < report.group_losses[0],
            "group loss should fall: {:?}",
            report.group_losses
        );
        assert!(report.user_losses.iter().all(|l| l.is_finite()));
        assert!(report.group_losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn group_g_skips_stage_one() {
        let (d, _) = tiny_world(21);
        let cfg = GroupSaConfig::tiny().with_ablation(Ablation::group_g());
        let ctx = DataContext::from_train_view(&d, &cfg);
        let mut model = GroupSa::new(cfg.clone(), d.num_users, d.num_items);
        let report = Trainer::new(cfg).fit(&mut model, &ctx);
        assert!(report.user_losses.is_empty());
        assert!(!report.group_losses.is_empty());
    }

    #[test]
    fn training_is_deterministic_in_seed() {
        let (d, ctx) = tiny_world(21);
        let mut cfg = GroupSaConfig::tiny();
        cfg.user_epochs = 2;
        cfg.group_epochs = 2;
        let run = |cfg: &GroupSaConfig| {
            let mut model = GroupSa::new(cfg.clone(), d.num_users, d.num_items);
            let rep = Trainer::new(cfg.clone()).fit(&mut model, &ctx);
            (rep, model.score_group_items(&ctx, 0, &[0, 1, 2]))
        };
        let (r1, s1) = run(&cfg);
        let (r2, s2) = run(&cfg);
        assert_eq!(r1, r2);
        assert_eq!(s1, s2);
        let mut cfg2 = cfg.clone();
        cfg2.seed += 1;
        let (_, s3) = run(&cfg2);
        assert_ne!(s1, s3);
    }

    #[test]
    fn trained_model_beats_untrained_on_user_ranking() {
        let (d, ctx) = tiny_world(22);
        let mut cfg = GroupSaConfig::tiny();
        cfg.user_epochs = 6;
        cfg.group_epochs = 2;
        let untrained = GroupSa::new(cfg.clone(), d.num_users, d.num_items);
        let mut trained = GroupSa::new(cfg.clone(), d.num_users, d.num_items);
        Trainer::new(cfg).fit(&mut trained, &ctx);

        // Evaluate on *training* pairs (smoke test: the model must at
        // least fit what it saw) with 20 candidates.
        let full = ctx.user_item_graph.clone();
        let pairs: Vec<_> = ctx.train_user_item.iter().copied().take(60).collect();
        let task = EvalTask { test_pairs: &pairs, full_interactions: &full, num_candidates: 20, ks: vec![5], seed: 9 };
        let hr_untrained = evaluate(&untrained.user_scorer(&ctx), &task).hr(5);
        let hr_trained = evaluate(&trained.user_scorer(&ctx), &task).hr(5);
        assert!(
            hr_trained > hr_untrained + 0.1,
            "training must help: untrained {hr_untrained}, trained {hr_trained}"
        );
    }

    #[test]
    fn trained_model_fits_group_interactions() {
        let (d, ctx) = tiny_world(23);
        let mut cfg = GroupSaConfig::tiny();
        cfg.user_epochs = 4;
        cfg.group_epochs = 10;
        let mut model = GroupSa::new(cfg.clone(), d.num_users, d.num_items);
        Trainer::new(cfg).fit(&mut model, &ctx);

        let full = ctx.group_item_graph.clone();
        let pairs: Vec<_> = ctx.train_group_item.iter().copied().take(40).collect();
        let task = EvalTask { test_pairs: &pairs, full_interactions: &full, num_candidates: 20, ks: vec![5], seed: 9 };
        let hr = evaluate(&model.group_scorer(&ctx), &task).hr(5);
        // Random ranking would land near 5/21 ≈ 0.24.
        assert!(hr > 0.45, "group task must fit training data: HR@5 = {hr}");
    }
}
