//! Joint two-stage training (paper §II-E).
//!
//! Stage 1 optimises the user-item BPR loss `L_R` (Eq. 24) over the
//! plentiful user-item interactions, learning the shared user/item
//! embeddings plus the user-modeling towers. Stage 2 fine-tunes on the
//! sparse group-item BPR loss `L_G` (Eq. 21), training the voting
//! network and group tower while continuing to update the shared
//! embeddings. Group-G ablates stage 1.
//!
//! Following the paper, each gradient step draws one positive example
//! and `N` negatives (per-example Adam with row-sparse embedding
//! updates).
//!
//! # Deterministic data parallelism
//!
//! Training is data-parallel over each `batch_size` window: a
//! `std::thread::scope` worker pool reads the model immutably, each
//! worker builds its own [`Graph`] per example, runs forward/backward,
//! and hands back a detached [`GradSink`]; the training thread merges
//! the sinks **in ascending example order** and applies one optimizer
//! step per window. Because
//!
//! 1. every example's negatives and dropout masks come from an RNG
//!    stream keyed by `(seed, round, example_index)` (never from a
//!    shared sequential generator),
//! 2. parameters are only mutated between windows, so every example in
//!    a window sees identical parameters, and
//! 3. the reduction replays the same floating-point additions in the
//!    same order regardless of which thread produced each sink,
//!
//! training with `T` workers is *bit-identical* to `T = 1`. The worker
//! count comes from the `GROUPSA_TRAIN_THREADS` environment variable
//! (`0` = all available cores, unset = 1) or [`Trainer::with_threads`].

use crate::config::GroupSaConfig;
use crate::context::DataContext;
use crate::model::GroupSa;
use groupsa_data::sampling::{bpr_epoch_streams, BprExample};
use groupsa_eval::{evaluate, EvalTask};
use groupsa_json::impl_json_struct;
use groupsa_nn::loss::bpr_one_vs_rest;
use groupsa_nn::optim::{Adam, Optimizer};
use groupsa_nn::GradSink;
use groupsa_tensor::rng::stream_rng;
use groupsa_tensor::Graph;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Salt folded into the seed for dropout-mask streams, so an example's
/// dropout RNG never collides with its negative-sampling RNG (which
/// shares the same `(round, index)` key).
const DROPOUT_SALT: u64 = 0xD80F_0D20_57A7_1C55;

/// Per-epoch mean losses, wall-clock times, and effective learning
/// rates recorded during training.
///
/// Equality deliberately ignores the wall-clock fields
/// (`user_epoch_seconds` / `group_epoch_seconds`): determinism tests
/// compare reports across worker counts and re-runs, and elapsed time
/// is the one thing allowed to differ. Every deterministic field —
/// losses, validation HR, per-epoch learning rates — must still match
/// exactly.
#[derive(Clone, Debug, Default)]
pub struct TrainReport {
    /// Mean BPR loss per stage-1 (user-item) epoch.
    pub user_losses: Vec<f32>,
    /// Mean BPR loss per stage-2 (group-item) epoch.
    pub group_losses: Vec<f32>,
    /// Validation HR@10 after each stage-2 epoch (empty without a
    /// validation split).
    pub valid_hr: Vec<f64>,
    /// Wall-clock seconds per stage-1 epoch (excluded from `==`).
    pub user_epoch_seconds: Vec<f64>,
    /// Wall-clock seconds per stage-2 epoch, including the joint
    /// mixing pass and validation scoring (excluded from `==`).
    pub group_epoch_seconds: Vec<f64>,
    /// Effective learning rate at the start of each stage-1 epoch.
    pub user_epoch_lr: Vec<f32>,
    /// Effective learning rate at the start of each stage-2 epoch —
    /// makes the plateau schedule's halvings visible in the report.
    pub group_epoch_lr: Vec<f32>,
}

impl PartialEq for TrainReport {
    fn eq(&self, other: &Self) -> bool {
        // Wall-clock vectors are intentionally not compared.
        self.user_losses == other.user_losses
            && self.group_losses == other.group_losses
            && self.valid_hr == other.valid_hr
            && self.user_epoch_lr == other.user_epoch_lr
            && self.group_epoch_lr == other.group_epoch_lr
    }
}

impl_json_struct!(TrainReport {
    user_losses,
    group_losses,
    valid_hr,
    user_epoch_seconds,
    group_epoch_seconds,
    user_epoch_lr,
    group_epoch_lr
});

impl TrainReport {
    /// Final stage-1 epoch loss, if stage 1 ran.
    pub fn final_user_loss(&self) -> Option<f32> {
        self.user_losses.last().copied()
    }

    /// Final stage-2 epoch loss, if stage 2 ran.
    pub fn final_group_loss(&self) -> Option<f32> {
        self.group_losses.last().copied()
    }

    /// Zeroes the wall-clock vectors in place (lengths are kept, so
    /// the epoch count stays visible). Digest outputs that must be
    /// byte-identical across runs call this before serialising.
    pub fn zero_wall_clock(&mut self) {
        self.user_epoch_seconds.iter_mut().for_each(|s| *s = 0.0);
        self.group_epoch_seconds.iter_mut().for_each(|s| *s = 0.0);
    }
}

/// Which BPR task an epoch trains (selects the forward graph).
#[derive(Clone, Copy)]
enum Task {
    User,
    Group,
}

/// Worker count from `GROUPSA_TRAIN_THREADS`: unset or unparsable → 1,
/// `0` → all available cores, `n` → `n`.
fn threads_from_env() -> usize {
    match std::env::var("GROUPSA_TRAIN_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(0) => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            Ok(n) => n,
            Err(_) => 1,
        },
        Err(_) => 1,
    }
}

/// Per-window forward/backward time accumulators, shared read-only
/// across the worker pool. Only allocated when `GROUPSA_TRACE` is on —
/// the untraced hot path passes `None` and never reads the clock.
#[derive(Default)]
struct PassTimers {
    forward_us: AtomicU64,
    backward_us: AtomicU64,
}

/// One example's forward/backward, self-contained: reads the model
/// immutably and derives its dropout stream from the example's own key,
/// so it can run on any thread. With `timers` set, the forward
/// (graph build + loss value) and backward (gradients + sink collect)
/// phases are accumulated into the window's totals.
fn example_pass(
    model: &GroupSa,
    ctx: &DataContext,
    cfg: &GroupSaConfig,
    task: Task,
    round: u64,
    index: usize,
    ex: &BprExample,
    timers: Option<&PassTimers>,
) -> (f32, GradSink) {
    let mut items = Vec::with_capacity(1 + ex.negatives.len());
    items.push(ex.positive);
    items.extend_from_slice(&ex.negatives);
    let mut g = Graph::new();
    let forward_started = timers.map(|_| Instant::now());
    let scores = match task {
        Task::User => model.user_scores_graph(&mut g, ctx, ex.entity, &items),
        Task::Group => {
            let mut dropout_rng = stream_rng(cfg.seed ^ DROPOUT_SALT, round, index as u64);
            model.group_scores_graph(&mut g, &mut dropout_rng, ctx, ex.entity, &items, true)
        }
    };
    let loss = bpr_one_vs_rest(&mut g, scores);
    let value = g.value(loss).scalar();
    let backward_started = timers.map(|t| {
        let started = forward_started.expect("forward_started set whenever timers are");
        t.forward_us.fetch_add(started.elapsed().as_micros() as u64, Ordering::Relaxed);
        Instant::now()
    });
    let grads = g.backward(loss);
    let sink = GradSink::collect(&g, &grads);
    if let (Some(t), Some(started)) = (timers, backward_started) {
        t.backward_us.fetch_add(started.elapsed().as_micros() as u64, Ordering::Relaxed);
    }
    (value, sink)
}

/// What [`Trainer::run_examples`] hands back: the summed loss (folded
/// in example order, exactly as before instrumentation) plus the
/// traced time breakdown (all zeros when tracing is disabled).
#[derive(Default)]
struct EpochTotals {
    loss_sum: f32,
    examples: usize,
    forward_us: u64,
    backward_us: u64,
    merge_us: u64,
    step_us: u64,
}

/// Drives the two-stage optimisation of a [`GroupSa`] model.
pub struct Trainer {
    cfg: GroupSaConfig,
    optimizer: Adam,
    threads: usize,
    /// Monotone pass counter: every epoch-like pass (stage-1 epoch,
    /// stage-2 epoch, partial mixing pass) consumes one round, keying
    /// that pass's shuffle, negative-sampling and dropout streams.
    round: u64,
    /// Stage-1 epochs run so far — the `epoch` index in trace events.
    user_epochs_run: usize,
    /// Stage-2 epochs run so far.
    group_epochs_run: usize,
    /// Joint mixing passes run so far.
    mix_passes_run: usize,
}

impl Trainer {
    /// A trainer with Adam configured from `cfg` (§III-E) and the
    /// worker count from `GROUPSA_TRAIN_THREADS`.
    pub fn new(cfg: GroupSaConfig) -> Self {
        let optimizer = Adam { weight_decay: cfg.weight_decay, ..Adam::new(cfg.learning_rate) };
        Self {
            cfg,
            optimizer,
            threads: threads_from_env(),
            round: 0,
            user_epochs_run: 0,
            group_epochs_run: 0,
            mix_passes_run: 0,
        }
    }

    /// Overrides the worker count (`0` is clamped to 1). Any `T`
    /// produces bit-identical training results.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The data-parallel worker count in use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The optimizer's current learning rate (moves under the plateau
    /// schedule during [`Trainer::fit`]).
    pub fn learning_rate(&self) -> f32 {
        self.optimizer.learning_rate()
    }

    /// The plateau schedule's next learning rate: halve, but never
    /// below `min(initial, 1e-3)`. The floor is *relative to the
    /// configured rate* — an absolute `max(1e-3)` would silently
    /// *raise* any sweep configured below 1e-3 (e.g. 5e-4) on its first
    /// non-improving epoch.
    fn plateau_lr(current: f32, initial: f32) -> f32 {
        (current * 0.5).max(initial.min(1e-3))
    }

    fn next_round(&mut self) -> u64 {
        let r = self.round;
        self.round += 1;
        r
    }

    /// Runs the full two-stage schedule on `model` over `ctx`.
    ///
    /// # Panics
    /// If the group-item training set is empty, or stage 1 is enabled
    /// with an empty user-item training set.
    pub fn fit(&mut self, model: &mut GroupSa, ctx: &DataContext) -> TrainReport {
        let _fit_span = groupsa_obs::span!("fit", "threads" => self.threads);
        let mut report = TrainReport::default();
        if self.cfg.ablation.joint_training {
            for _ in 0..self.cfg.user_epochs {
                report.user_epoch_lr.push(self.optimizer.learning_rate());
                let started = Instant::now();
                report.user_losses.push(self.user_epoch(model, ctx));
                report.user_epoch_seconds.push(started.elapsed().as_secs_f64());
            }
            // Fresh optimizer state for fine-tuning: stage-1 second
            // moments would otherwise shrink the group-task steps.
            model.store_mut().reset_optimizer_state();
        }
        // Early stopping on the validation split (paper §III-C tunes on
        // a 10% validation set): keep the parameters of the epoch with
        // the best validation HR@10 and stop after `PATIENCE` epochs
        // without improvement. Skipped when no validation pairs exist.
        const PATIENCE: usize = 15;
        let mut best_hr = f64::NEG_INFINITY;
        let mut best_snapshot: Option<Vec<groupsa_tensor::Matrix>> = None;
        let mut since_best = 0;
        for _ in 0..self.cfg.group_epochs {
            report.group_epoch_lr.push(self.optimizer.learning_rate());
            let started = Instant::now();
            report.group_losses.push(self.group_epoch(model, ctx));
            // Joint optimisation (abstract: both tasks are learned
            // "simultaneously"): every group epoch is followed by a
            // *fractional* user epoch so the shared embeddings keep
            // serving both objectives. The fraction balances the step
            // counts of the two tasks — a full user epoch would
            // out-muscle the sparse group data and yank the group head
            // around (observed as validation dips).
            if self.cfg.ablation.joint_training {
                let frac = (ctx.train_group_item.len() as f64 / ctx.train_user_item.len().max(1) as f64).min(1.0);
                self.partial_user_epoch(model, ctx, frac);
            }
            let mut stop = false;
            if !ctx.valid_group_item.is_empty() {
                let hr = self.validation_hr(model, ctx);
                report.valid_hr.push(hr);
                if hr > best_hr {
                    best_hr = hr;
                    best_snapshot = Some(model.store().snapshot_values());
                    since_best = 0;
                } else {
                    since_best += 1;
                    // Plateau schedule: halve the learning rate while
                    // validation stalls, then stop.
                    let lr = Self::plateau_lr(self.optimizer.learning_rate(), self.cfg.learning_rate);
                    self.optimizer.set_learning_rate(lr);
                    stop = since_best >= PATIENCE;
                }
            }
            report.group_epoch_seconds.push(started.elapsed().as_secs_f64());
            if stop {
                break;
            }
        }
        if let Some(snapshot) = best_snapshot {
            model.store_mut().restore_values(&snapshot);
        }
        // One registry dump per fit: the cross-cutting timers (the
        // `nn.*` per-call histograms) land in the trace as a single
        // summarising `metrics` event.
        if groupsa_obs::enabled() {
            groupsa_obs::emit(
                "metrics",
                &[("registry", groupsa_obs::to_json(&groupsa_obs::global().snapshot()))],
            );
        }
        report
    }

    /// Validation quality of the group task over the held-out
    /// validation pairs (mean of HR@10 and NDCG@5 against 50 sampled
    /// negatives — the blend tracks both list recall and top-heaviness).
    fn validation_hr(&self, model: &GroupSa, ctx: &DataContext) -> f64 {
        let task = EvalTask {
            test_pairs: &ctx.valid_group_item,
            full_interactions: &ctx.group_item_graph,
            num_candidates: 50,
            ks: vec![5, 10],
            seed: self.cfg.seed ^ 0xA11D,
        };
        let res = evaluate(&model.group_scorer(ctx), &task);
        (res.hr(10) + res.ndcg(5)) / 2.0
    }

    /// Emits one `epoch` trace event (no-op when tracing is off):
    /// stage, epoch index, loss, current LR, wall-clock seconds,
    /// throughput, and the summed per-window time breakdown.
    fn emit_epoch_event(
        &self,
        stage: &'static str,
        epoch: usize,
        loss: f32,
        elapsed: Duration,
        totals: &EpochTotals,
    ) {
        if !groupsa_obs::enabled() {
            return;
        }
        let seconds = elapsed.as_secs_f64();
        let examples_per_sec = if seconds > 0.0 { totals.examples as f64 / seconds } else { 0.0 };
        groupsa_obs::emit(
            "epoch",
            &[
                ("stage", groupsa_obs::to_json(&stage)),
                ("epoch", groupsa_obs::to_json(&epoch)),
                ("loss", groupsa_obs::to_json(&loss)),
                ("lr", groupsa_obs::to_json(&self.optimizer.learning_rate())),
                ("seconds", groupsa_obs::to_json(&seconds)),
                ("examples", groupsa_obs::to_json(&totals.examples)),
                ("examples_per_sec", groupsa_obs::to_json(&examples_per_sec)),
                ("forward_us", groupsa_obs::to_json(&totals.forward_us)),
                ("backward_us", groupsa_obs::to_json(&totals.backward_us)),
                ("merge_us", groupsa_obs::to_json(&totals.merge_us)),
                ("step_us", groupsa_obs::to_json(&totals.step_us)),
            ],
        );
    }

    /// One stage-1 epoch: every training user-item pair once, in a
    /// shuffled order, with fresh negatives. Returns the mean loss.
    pub fn user_epoch(&mut self, model: &mut GroupSa, ctx: &DataContext) -> f32 {
        assert!(!ctx.train_user_item.is_empty(), "stage 1 requires user-item training data");
        let round = self.next_round();
        let epoch = self.user_epochs_run;
        self.user_epochs_run += 1;
        let _span = groupsa_obs::span!("user_epoch", "round" => round, "epoch" => epoch);
        let started = Instant::now();
        let examples =
            bpr_epoch_streams(self.cfg.seed, round, &ctx.train_user_item, &ctx.user_item_graph, self.cfg.num_negatives);
        let totals = self.run_examples(model, ctx, &examples, Task::User, round, "user");
        let mean = totals.loss_sum / examples.len() as f32;
        self.emit_epoch_event("user", epoch, mean, started.elapsed(), &totals);
        mean
    }

    /// A partial user-task epoch over a random `frac` of the training
    /// pairs (stage-2 joint mixing).
    fn partial_user_epoch(&mut self, model: &mut GroupSa, ctx: &DataContext, frac: f64) {
        let take = ((ctx.train_user_item.len() as f64 * frac).ceil() as usize).max(1);
        let round = self.next_round();
        let epoch = self.mix_passes_run;
        self.mix_passes_run += 1;
        let _span = groupsa_obs::span!("mix_pass", "round" => round, "epoch" => epoch);
        let started = Instant::now();
        let mut examples =
            bpr_epoch_streams(self.cfg.seed, round, &ctx.train_user_item, &ctx.user_item_graph, self.cfg.num_negatives);
        examples.truncate(take);
        let totals = self.run_examples(model, ctx, &examples, Task::User, round, "mix");
        let mean = totals.loss_sum / examples.len() as f32;
        self.emit_epoch_event("mix", epoch, mean, started.elapsed(), &totals);
    }

    /// One stage-2 epoch over the group-item pairs. Returns the mean
    /// loss.
    pub fn group_epoch(&mut self, model: &mut GroupSa, ctx: &DataContext) -> f32 {
        assert!(!ctx.train_group_item.is_empty(), "stage 2 requires group-item training data");
        let round = self.next_round();
        let epoch = self.group_epochs_run;
        self.group_epochs_run += 1;
        let _span = groupsa_obs::span!("group_epoch", "round" => round, "epoch" => epoch);
        let started = Instant::now();
        let examples =
            bpr_epoch_streams(self.cfg.seed, round, &ctx.train_group_item, &ctx.group_item_graph, self.cfg.num_negatives);
        let totals = self.run_examples(model, ctx, &examples, Task::Group, round, "group");
        let mean = totals.loss_sum / examples.len() as f32;
        self.emit_epoch_event("group", epoch, mean, started.elapsed(), &totals);
        mean
    }

    /// Trains over `examples` window by window: each `batch_size`
    /// window is sharded across the worker pool, the per-example
    /// [`GradSink`]s are merged in ascending example order, and one
    /// optimizer step is applied per window. With `GROUPSA_TRACE` set,
    /// each window additionally emits a `window` trace event with its
    /// forward/backward/merge/step time breakdown; the instrumentation
    /// never touches an RNG and only reads the clock when enabled, so
    /// the numeric results are identical either way.
    fn run_examples(
        &mut self,
        model: &mut GroupSa,
        ctx: &DataContext,
        examples: &[BprExample],
        task: Task,
        round: u64,
        stage: &'static str,
    ) -> EpochTotals {
        let threads = self.threads.max(1);
        let traced = groupsa_obs::enabled();
        let mut totals = EpochTotals::default();
        let mut start = 0;
        while start < examples.len() {
            let end = (start + self.cfg.batch_size).min(examples.len());
            let window = &examples[start..end];
            let pass_timers = traced.then(PassTimers::default);
            let timers = pass_timers.as_ref();
            let results: Vec<(f32, GradSink)> = if threads == 1 || window.len() == 1 {
                window
                    .iter()
                    .enumerate()
                    .map(|(j, ex)| example_pass(model, ctx, &self.cfg, task, round, start + j, ex, timers))
                    .collect()
            } else {
                let shared: &GroupSa = model;
                let cfg = &self.cfg;
                std::thread::scope(|s| {
                    // Strided sharding: worker w takes window offsets
                    // w, w+T, w+2T, … — a static assignment, so no
                    // work-stealing nondeterminism.
                    let workers: Vec<_> = (0..threads.min(window.len()))
                        .map(|w| {
                            s.spawn(move || {
                                window
                                    .iter()
                                    .enumerate()
                                    .skip(w)
                                    .step_by(threads)
                                    .map(|(j, ex)| {
                                        (j, example_pass(shared, ctx, cfg, task, round, start + j, ex, timers))
                                    })
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    let mut slots: Vec<Option<(f32, GradSink)>> = Vec::new();
                    slots.resize_with(window.len(), || None);
                    for worker in workers {
                        for (j, result) in worker.join().expect("training worker panicked") {
                            slots[j] = Some(result);
                        }
                    }
                    slots.into_iter().map(|r| r.expect("every window offset has a worker")).collect()
                })
            };
            // Fixed-order reduction: losses and gradients are folded in
            // example order, exactly as the sequential loop would.
            let merge_started = traced.then(Instant::now);
            for (loss, sink) in &results {
                totals.loss_sum += loss;
                model.store_mut().merge(sink);
            }
            let merge_us = merge_started.map_or(0, |t| t.elapsed().as_micros() as u64);
            let step_started = traced.then(Instant::now);
            self.optimizer.step(model.store_mut());
            let step_us = step_started.map_or(0, |t| t.elapsed().as_micros() as u64);
            totals.examples += window.len();
            if traced {
                let forward_us = timers.map_or(0, |t| t.forward_us.load(Ordering::Relaxed));
                let backward_us = timers.map_or(0, |t| t.backward_us.load(Ordering::Relaxed));
                totals.forward_us += forward_us;
                totals.backward_us += backward_us;
                totals.merge_us += merge_us;
                totals.step_us += step_us;
                groupsa_obs::emit(
                    "window",
                    &[
                        ("stage", groupsa_obs::to_json(&stage)),
                        ("round", groupsa_obs::to_json(&round)),
                        ("start", groupsa_obs::to_json(&start)),
                        ("len", groupsa_obs::to_json(&window.len())),
                        ("forward_us", groupsa_obs::to_json(&forward_us)),
                        ("backward_us", groupsa_obs::to_json(&backward_us)),
                        ("merge_us", groupsa_obs::to_json(&merge_us)),
                        ("step_us", groupsa_obs::to_json(&step_us)),
                    ],
                );
            }
            start = end;
        }
        totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Ablation;
    use crate::test_fixtures::tiny_world;
    use groupsa_data::split_dataset;
    use groupsa_eval::{evaluate, EvalTask};

    #[test]
    fn losses_decrease_over_training() {
        let (d, ctx) = tiny_world(21);
        let mut cfg = GroupSaConfig::tiny();
        cfg.user_epochs = 4;
        cfg.group_epochs = 6;
        let mut model = GroupSa::new(cfg.clone(), d.num_users, d.num_items);
        let report = Trainer::new(cfg).fit(&mut model, &ctx);
        assert_eq!(report.user_losses.len(), 4);
        assert_eq!(report.group_losses.len(), 6);
        let first = report.user_losses[0];
        let last = report.final_user_loss().unwrap();
        assert!(last < first, "user loss should fall: {first} → {last}");
        assert!(
            report.final_group_loss().unwrap() < report.group_losses[0],
            "group loss should fall: {:?}",
            report.group_losses
        );
        assert!(report.user_losses.iter().all(|l| l.is_finite()));
        assert!(report.group_losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn group_g_skips_stage_one() {
        let (d, _) = tiny_world(21);
        let cfg = GroupSaConfig::tiny().with_ablation(Ablation::group_g());
        let ctx = DataContext::from_train_view(&d, &cfg);
        let mut model = GroupSa::new(cfg.clone(), d.num_users, d.num_items);
        let report = Trainer::new(cfg).fit(&mut model, &ctx);
        assert!(report.user_losses.is_empty());
        assert!(!report.group_losses.is_empty());
    }

    #[test]
    fn training_is_deterministic_in_seed() {
        let (d, ctx) = tiny_world(21);
        let mut cfg = GroupSaConfig::tiny();
        cfg.user_epochs = 2;
        cfg.group_epochs = 2;
        let run = |cfg: &GroupSaConfig| {
            let mut model = GroupSa::new(cfg.clone(), d.num_users, d.num_items);
            let rep = Trainer::new(cfg.clone()).with_threads(1).fit(&mut model, &ctx);
            (rep, model.score_group_items(&ctx, 0, &[0, 1, 2]))
        };
        let (r1, s1) = run(&cfg);
        let (r2, s2) = run(&cfg);
        assert_eq!(r1, r2);
        assert_eq!(s1, s2);
        let mut cfg2 = cfg.clone();
        cfg2.seed += 1;
        let (_, s3) = run(&cfg2);
        assert_ne!(s1, s3);
    }

    /// The tentpole invariant: training with 2 or 4 workers produces a
    /// byte-identical `TrainReport` and bit-identical final parameters
    /// to single-threaded training.
    #[test]
    fn parallel_matches_serial() {
        let (d, ctx) = tiny_world(21);
        let mut cfg = GroupSaConfig::tiny();
        cfg.user_epochs = 2;
        cfg.group_epochs = 3;
        // Non-zero dropout so the per-example mask streams are part of
        // what must match.
        cfg.dropout = 0.2;
        let run = |threads: usize| {
            let mut model = GroupSa::new(cfg.clone(), d.num_users, d.num_items);
            let report = Trainer::new(cfg.clone()).with_threads(threads).fit(&mut model, &ctx);
            (report, model.store().snapshot_values())
        };
        let (serial_report, serial_params) = run(1);
        for t in [2usize, 4] {
            let (report, params) = run(t);
            assert_eq!(serial_report, report, "TrainReport must be identical at T={t}");
            assert_eq!(serial_params.len(), params.len());
            for (i, (a, b)) in serial_params.iter().zip(&params).enumerate() {
                assert_eq!(a, b, "parameter {i} must be bit-identical at T={t}");
            }
        }
    }

    /// Regression (pre-fix: `(lr * 0.5).max(1e-3)`): a sweep configured
    /// below the absolute floor, e.g. 5e-4, must never be *raised* by
    /// the plateau schedule.
    #[test]
    fn plateau_floor_is_relative_to_configured_rate() {
        assert_eq!(Trainer::plateau_lr(0.02, 0.02), 0.01);
        // Large initial rates keep the absolute 1e-3 floor…
        assert_eq!(Trainer::plateau_lr(1.5e-3, 0.02), 1e-3);
        assert_eq!(Trainer::plateau_lr(1e-3, 0.02), 1e-3);
        // …but a small configured rate floors at itself: the schedule
        // must never exceed it (pre-fix this returned 1e-3 > 5e-4).
        let lr = Trainer::plateau_lr(5e-4, 5e-4);
        assert!(lr <= 5e-4, "schedule raised the lr: {lr} > 5e-4");
        assert!(lr > 0.0);
    }

    /// End-to-end form of the same regression: after a full fit with
    /// `learning_rate = 5e-4` and a validation split (so the plateau
    /// schedule actually fires), the lr must not exceed its initial
    /// value.
    #[test]
    fn lr_never_exceeds_initial_during_fit() {
        let (d, _) = tiny_world(24);
        let mut cfg = GroupSaConfig::tiny();
        cfg.learning_rate = 5e-4;
        cfg.user_epochs = 1;
        cfg.group_epochs = 8;
        let split = split_dataset(&d, 0.2, 0.2, 5);
        let ctx = DataContext::build(&d, &split, &cfg);
        let mut model = GroupSa::new(cfg.clone(), d.num_users, d.num_items);
        let mut trainer = Trainer::new(cfg.clone());
        let report = trainer.fit(&mut model, &ctx);
        assert!(!report.valid_hr.is_empty(), "validation split must be in play");
        assert!(
            trainer.learning_rate() <= cfg.learning_rate,
            "plateau schedule raised the lr: {} > {}",
            trainer.learning_rate(),
            cfg.learning_rate
        );
    }

    /// Satellite: the report records wall-clock seconds and effective
    /// LR per epoch, one entry per loss entry.
    #[test]
    fn report_records_wall_clock_and_lr_per_epoch() {
        let (d, ctx) = tiny_world(21);
        let mut cfg = GroupSaConfig::tiny();
        cfg.user_epochs = 3;
        cfg.group_epochs = 4;
        let mut model = GroupSa::new(cfg.clone(), d.num_users, d.num_items);
        let report = Trainer::new(cfg.clone()).fit(&mut model, &ctx);
        assert_eq!(report.user_epoch_seconds.len(), report.user_losses.len());
        assert_eq!(report.user_epoch_lr.len(), report.user_losses.len());
        assert_eq!(report.group_epoch_seconds.len(), report.group_losses.len());
        assert_eq!(report.group_epoch_lr.len(), report.group_losses.len());
        assert!(report.user_epoch_seconds.iter().all(|s| s.is_finite() && *s >= 0.0));
        assert!(report.group_epoch_seconds.iter().all(|s| s.is_finite() && *s >= 0.0));
        // The schedule starts at the configured rate and never raises it.
        assert_eq!(report.user_epoch_lr[0], cfg.learning_rate);
        assert_eq!(report.group_epoch_lr[0], cfg.learning_rate);
        assert!(report.group_epoch_lr.iter().all(|lr| *lr <= cfg.learning_rate));
    }

    /// `TrainReport` equality must ignore wall-clock time (it is what
    /// the determinism tests compare across worker counts) but must
    /// still see every deterministic field.
    #[test]
    fn report_equality_ignores_wall_clock_only() {
        let mut a = TrainReport {
            user_losses: vec![1.0, 0.5],
            group_losses: vec![0.9],
            valid_hr: vec![0.4],
            user_epoch_seconds: vec![1.25, 1.5],
            group_epoch_seconds: vec![2.0],
            user_epoch_lr: vec![0.02, 0.02],
            group_epoch_lr: vec![0.02],
        };
        let mut b = a.clone();
        b.user_epoch_seconds = vec![9.0, 9.0];
        b.group_epoch_seconds = vec![9.0];
        assert_eq!(a, b, "wall-clock differences must not break equality");
        b.group_epoch_lr = vec![0.01];
        assert_ne!(a, b, "LR differences are deterministic and must be seen");
        a.zero_wall_clock();
        assert_eq!(a.user_epoch_seconds, vec![0.0, 0.0]);
        assert_eq!(a.group_epoch_seconds, vec![0.0]);
    }

    #[test]
    fn trained_model_beats_untrained_on_user_ranking() {
        let (d, ctx) = tiny_world(22);
        let mut cfg = GroupSaConfig::tiny();
        cfg.user_epochs = 6;
        cfg.group_epochs = 2;
        let untrained = GroupSa::new(cfg.clone(), d.num_users, d.num_items);
        let mut trained = GroupSa::new(cfg.clone(), d.num_users, d.num_items);
        Trainer::new(cfg).fit(&mut trained, &ctx);

        // Evaluate on *training* pairs (smoke test: the model must at
        // least fit what it saw) with 20 candidates.
        let full = ctx.user_item_graph.clone();
        let pairs: Vec<_> = ctx.train_user_item.iter().copied().take(60).collect();
        let task = EvalTask { test_pairs: &pairs, full_interactions: &full, num_candidates: 20, ks: vec![5], seed: 9 };
        let hr_untrained = evaluate(&untrained.user_scorer(&ctx), &task).hr(5);
        let hr_trained = evaluate(&trained.user_scorer(&ctx), &task).hr(5);
        assert!(
            hr_trained > hr_untrained + 0.1,
            "training must help: untrained {hr_untrained}, trained {hr_trained}"
        );
    }

    #[test]
    fn trained_model_fits_group_interactions() {
        let (d, ctx) = tiny_world(23);
        let mut cfg = GroupSaConfig::tiny();
        cfg.user_epochs = 4;
        cfg.group_epochs = 10;
        let mut model = GroupSa::new(cfg.clone(), d.num_users, d.num_items);
        Trainer::new(cfg).fit(&mut model, &ctx);

        let full = ctx.group_item_graph.clone();
        let pairs: Vec<_> = ctx.train_group_item.iter().copied().take(40).collect();
        let task = EvalTask { test_pairs: &pairs, full_interactions: &full, num_candidates: 20, ks: vec![5], seed: 9 };
        let hr = evaluate(&model.group_scorer(&ctx), &task).hr(5);
        // Random ranking would land near 5/21 ≈ 0.24.
        assert!(hr > 0.45, "group task must fit training data: HR@5 = {hr}");
    }
}
