//! Fast group recommendation (paper §II-F) and the static score
//! aggregation strategies used both by §II-F and by the Group+avg /
//! Group+lm / Group+ms baselines of §III-D.
//!
//! Instead of running the multi-layer voting network at inference time,
//! the fast mode scores every member *individually* via the user tower
//! (Eq. 23) — whose embeddings already carry group-mates' interests
//! through training — and combines the member scores with a predefined
//! strategy.

use crate::context::DataContext;
use crate::model::GroupSa;
use groupsa_eval::Scorer;
use groupsa_json::impl_json_enum;

/// A predefined per-item combination of member scores.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScoreAggregation {
    /// Mean of member scores — every member contributes equally
    /// (the paper's §II-F illustration and the Group+avg baseline).
    Average,
    /// Minimum of member scores — "the least satisfied member
    /// determines the decision" (Group+lm).
    LeastMisery,
    /// Maximum of member scores — maximise the happiest member
    /// (Group+ms, "maximum satisfaction/pleasure").
    MaxSatisfaction,
}

impl_json_enum!(ScoreAggregation { Average, LeastMisery, MaxSatisfaction });

impl ScoreAggregation {
    /// Combines one item's member scores.
    ///
    /// # Panics
    /// If `scores` is empty.
    pub fn combine(self, scores: &[f32]) -> f32 {
        assert!(!scores.is_empty(), "ScoreAggregation::combine: no member scores");
        match self {
            ScoreAggregation::Average => scores.iter().sum::<f32>() / scores.len() as f32,
            ScoreAggregation::LeastMisery => scores.iter().copied().fold(f32::INFINITY, f32::min),
            ScoreAggregation::MaxSatisfaction => scores.iter().copied().fold(f32::NEG_INFINITY, f32::max),
        }
    }

    /// Display name matching the paper's method names.
    pub fn label(self) -> &'static str {
        match self {
            ScoreAggregation::Average => "Group+avg",
            ScoreAggregation::LeastMisery => "Group+lm",
            ScoreAggregation::MaxSatisfaction => "Group+ms",
        }
    }
}

impl GroupSa {
    /// Fast group scores (§II-F): per-member user-task scores combined
    /// by `agg`, skipping the voting network entirely.
    pub fn fast_group_scores(
        &self,
        ctx: &DataContext,
        group: usize,
        items: &[usize],
        agg: ScoreAggregation,
    ) -> Vec<f32> {
        let members = &ctx.members[group];
        assert!(!members.is_empty(), "group {group} has no members");
        let per_member: Vec<Vec<f32>> = members
            .iter()
            .map(|&u| self.score_user_items(ctx, u, items))
            .collect();
        (0..items.len())
            .map(|idx| {
                let column: Vec<f32> = per_member.iter().map(|row| row[idx]).collect();
                agg.combine(&column)
            })
            .collect()
    }

    /// A [`Scorer`] over groups using the fast mode.
    pub fn fast_group_scorer<'a>(&'a self, ctx: &'a DataContext, agg: ScoreAggregation) -> impl Scorer + 'a {
        move |group: usize, items: &[usize]| self.fast_group_scores(ctx, group, items, agg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GroupSaConfig;
    use crate::test_fixtures::tiny_world;

    #[test]
    fn combine_strategies() {
        let s = [0.2f32, 0.8, 0.5];
        assert!((ScoreAggregation::Average.combine(&s) - 0.5).abs() < 1e-6);
        assert_eq!(ScoreAggregation::LeastMisery.combine(&s), 0.2);
        assert_eq!(ScoreAggregation::MaxSatisfaction.combine(&s), 0.8);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(ScoreAggregation::Average.label(), "Group+avg");
        assert_eq!(ScoreAggregation::LeastMisery.label(), "Group+lm");
        assert_eq!(ScoreAggregation::MaxSatisfaction.label(), "Group+ms");
    }

    #[test]
    #[should_panic(expected = "no member scores")]
    fn combine_empty_panics() {
        let _ = ScoreAggregation::Average.combine(&[]);
    }

    #[test]
    fn strategies_order_correctly_on_model_scores() {
        let (d, ctx) = tiny_world(13);
        let model = GroupSa::new(GroupSaConfig::tiny(), d.num_users, d.num_items);
        let t = (0..ctx.num_groups()).find(|&t| ctx.members[t].len() >= 2).unwrap();
        let items: Vec<usize> = (0..5).collect();
        let avg = model.fast_group_scores(&ctx, t, &items, ScoreAggregation::Average);
        let lm = model.fast_group_scores(&ctx, t, &items, ScoreAggregation::LeastMisery);
        let ms = model.fast_group_scores(&ctx, t, &items, ScoreAggregation::MaxSatisfaction);
        for i in 0..items.len() {
            assert!(lm[i] <= avg[i] + 1e-6, "min ≤ mean");
            assert!(avg[i] <= ms[i] + 1e-6, "mean ≤ max");
        }
    }

    #[test]
    fn singleton_group_strategies_coincide() {
        let (mut d, _) = tiny_world(13);
        d.groups.push(vec![2]);
        let cfg = GroupSaConfig::tiny();
        let ctx = DataContext::from_train_view(&d, &cfg);
        let model = GroupSa::new(cfg, d.num_users, d.num_items);
        let t = ctx.num_groups() - 1;
        let items = [0usize, 1, 2];
        let avg = model.fast_group_scores(&ctx, t, &items, ScoreAggregation::Average);
        let lm = model.fast_group_scores(&ctx, t, &items, ScoreAggregation::LeastMisery);
        let ms = model.fast_group_scores(&ctx, t, &items, ScoreAggregation::MaxSatisfaction);
        assert_eq!(avg, lm);
        assert_eq!(avg, ms);
        // And they equal the member's own user scores.
        assert_eq!(avg, model.score_user_items(&ctx, 2, &items));
    }

    #[test]
    fn fast_mode_differs_from_full_voting_path() {
        let (d, ctx) = tiny_world(13);
        let model = GroupSa::new(GroupSaConfig::tiny(), d.num_users, d.num_items);
        let items: Vec<usize> = (0..4).collect();
        let fast = model.fast_group_scores(&ctx, 0, &items, ScoreAggregation::Average);
        let full = model.score_group_items(&ctx, 0, &items);
        assert_ne!(fast, full, "fast mode is an approximation, not the same computation");
    }
}
