//! Shared test fixtures for the core crate's unit tests.

use crate::config::GroupSaConfig;
use crate::context::DataContext;
use groupsa_data::synthetic::{generate, SyntheticConfig};
use groupsa_data::Dataset;

/// A small but structurally complete synthetic world (users, items,
/// groups, social ties) plus a context built with the tiny model
/// configuration.
pub(crate) fn tiny_world(seed: u64) -> (Dataset, DataContext) {
    let dataset = generate(&SyntheticConfig {
        name: format!("tiny-world-{seed}"),
        seed,
        num_users: 60,
        num_items: 40,
        num_groups: 25,
        num_topics: 4,
        latent_dim: 4,
        avg_items_per_user: 8.0,
        avg_friends_per_user: 5.0,
        avg_items_per_group: 1.5,
        mean_group_size: 3.5,
        zipf_exponent: 0.8,
        homophily: 0.8,
        social_influence: 0.3,
        expertise_sharpness: 2.0,
        taste_temperature: 0.3,
            consensus_blend: 0.5,
            connectedness_boost: 1.0,
    });
    let ctx = DataContext::from_train_view(&dataset, &GroupSaConfig::tiny());
    (dataset, ctx)
}
