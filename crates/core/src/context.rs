//! Precomputed training/inference context derived from a dataset.
//!
//! Everything the model needs repeatedly — Top-H TF-IDF item and friend
//! lists per user (paper §II-D), per-group member lists, and per-group
//! social bias masks (Eq. 4–5) — is computed once here from the
//! *training* view of a dataset.

use crate::config::GroupSaConfig;
use groupsa_data::{Dataset, Split};
use groupsa_graph::{social, tfidf, Bipartite, CsrGraph};
use groupsa_nn::attention::social_bias_mask;
use groupsa_tensor::Matrix;

/// Immutable, precomputed views shared by training and inference.
pub struct DataContext {
    /// Number of users.
    pub num_users: usize,
    /// Number of items.
    pub num_items: usize,
    /// Training user–item pairs (stage-1 positives).
    pub train_user_item: Vec<(usize, usize)>,
    /// Training group–item pairs (stage-2 positives).
    pub train_group_item: Vec<(usize, usize)>,
    /// Training user–item bipartite graph (negative sampling).
    pub user_item_graph: Bipartite,
    /// Training group–item bipartite graph (negative sampling).
    pub group_item_graph: Bipartite,
    /// The social network `R^S`.
    pub social_graph: CsrGraph,
    /// Member list of every group, truncated to
    /// [`GroupSaConfig::max_group_size`].
    pub members: Vec<Vec<usize>>,
    /// Per-group additive social bias matrix `S` (Eq. 4–5) —
    /// `l×l` of `{0, −∞}`, `None` when the social mask is ablated.
    pub group_masks: Vec<Option<Matrix>>,
    /// Per-user Top-H TF-IDF interacted items (possibly shorter or
    /// empty for cold users).
    pub top_items: Vec<Vec<usize>>,
    /// Per-user Top-H TF-IDF friends.
    pub top_friends: Vec<Vec<usize>>,
    /// Held-out validation group–item pairs (paper §III-C: 10% of the
    /// training records) used for early stopping in stage 2. Empty when
    /// the context was built without a split.
    pub valid_group_item: Vec<(usize, usize)>,
}

impl DataContext {
    /// Builds the context from the full dataset, its split and the
    /// model configuration. Only training interactions are consulted
    /// for Top-H lists and negative-sampling graphs.
    pub fn build(dataset: &Dataset, split: &Split, cfg: &GroupSaConfig) -> Self {
        let train = split.train_view(dataset);
        let mut ctx = Self::from_train_view(&train, cfg);
        ctx.valid_group_item = split.valid_group_item.clone();
        ctx
    }

    /// Builds the context directly from a training-view dataset.
    pub fn from_train_view(train: &Dataset, cfg: &GroupSaConfig) -> Self {
        let user_item_graph = train.user_item_graph();
        let group_item_graph = train.group_item_graph();
        let social_graph = train.social_graph();

        let members: Vec<Vec<usize>> = train
            .groups
            .iter()
            .map(|g| g.iter().copied().take(cfg.max_group_size).collect())
            .collect();

        let group_masks = members
            .iter()
            .map(|m| {
                if cfg.ablation.social_mask {
                    let allowed = social::group_mask(&social_graph, m, cfg.closeness);
                    Some(social_bias_mask(&allowed))
                } else {
                    None
                }
            })
            .collect();

        let top_items = (0..train.num_users)
            .map(|u| tfidf::top_items(&user_item_graph, u, cfg.top_h))
            .collect();
        let top_friends = (0..train.num_users)
            .map(|u| tfidf::top_friends(&social_graph, u, cfg.top_h))
            .collect();

        Self {
            num_users: train.num_users,
            num_items: train.num_items,
            train_user_item: train.user_item.clone(),
            train_group_item: train.group_item.clone(),
            user_item_graph,
            group_item_graph,
            social_graph,
            members,
            group_masks,
            top_items,
            top_friends,
            valid_group_item: Vec::new(),
        }
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.members.len()
    }

    /// A minimal context for snapshot-backed serving: universe sizes
    /// and member lists only, with empty interaction graphs and no
    /// Top-H lists or masks.
    ///
    /// The serving path (`FrozenModel::recommend`) touches exactly
    /// `num_users` / `num_items`, the interaction graphs (for
    /// `exclude_seen` filtering — empty graphs mean nothing is ever
    /// excluded) and `members` (Fast-mode aggregation); the expensive
    /// per-user/per-group intermediates come from the snapshot tables,
    /// which were precomputed against the *real* context at freeze
    /// time. A stub context cannot recompute those tables — serve's
    /// `FrozenModel` refuses to `rebuild` on top of one.
    pub fn serving_stub(num_users: usize, num_items: usize, members: Vec<Vec<usize>>) -> Self {
        let num_groups = members.len();
        Self {
            num_users,
            num_items,
            train_user_item: Vec::new(),
            train_group_item: Vec::new(),
            user_item_graph: Bipartite::from_pairs(num_users, num_items, &[]),
            group_item_graph: Bipartite::from_pairs(num_groups, num_items, &[]),
            social_graph: CsrGraph::empty(num_users),
            members,
            group_masks: (0..num_groups).map(|_| None).collect(),
            top_items: vec![Vec::new(); num_users],
            top_friends: vec![Vec::new(); num_users],
            valid_group_item: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use groupsa_data::split_dataset;
    use groupsa_data::synthetic::{generate, SyntheticConfig};

    fn dataset() -> Dataset {
        generate(&SyntheticConfig {
            name: "ctx".into(),
            seed: 5,
            num_users: 80,
            num_items: 50,
            num_groups: 30,
            num_topics: 4,
            latent_dim: 4,
            avg_items_per_user: 8.0,
            avg_friends_per_user: 5.0,
            avg_items_per_group: 1.3,
            mean_group_size: 4.0,
            zipf_exponent: 0.8,
            homophily: 0.8,
            social_influence: 0.3,
            expertise_sharpness: 2.0,
            taste_temperature: 0.35,
            consensus_blend: 0.5,
            connectedness_boost: 1.0,
        })
    }

    #[test]
    fn context_shapes_are_consistent() {
        let d = dataset();
        let split = split_dataset(&d, 0.2, 0.1, 1);
        let cfg = GroupSaConfig::tiny();
        let ctx = DataContext::build(&d, &split, &cfg);
        assert_eq!(ctx.num_users, d.num_users);
        assert_eq!(ctx.num_groups(), d.num_groups());
        assert_eq!(ctx.top_items.len(), d.num_users);
        assert_eq!(ctx.top_friends.len(), d.num_users);
        for (m, mask) in ctx.members.iter().zip(&ctx.group_masks) {
            assert!(m.len() <= cfg.max_group_size);
            let mask = mask.as_ref().expect("social mask enabled in tiny config");
            assert_eq!(mask.shape(), (m.len(), m.len()));
        }
        for items in &ctx.top_items {
            assert!(items.len() <= cfg.top_h);
        }
    }

    #[test]
    fn context_uses_only_training_interactions() {
        let d = dataset();
        let split = split_dataset(&d, 0.3, 0.0, 1);
        let ctx = DataContext::build(&d, &split, &GroupSaConfig::tiny());
        assert_eq!(ctx.train_user_item.len(), split.train_user_item.len());
        assert!(ctx.user_item_graph.num_interactions() < d.user_item.len());
        // Held-out pairs are invisible to the sampling graph.
        for &(u, i) in split.test_user_item.iter().take(20) {
            let in_train = split.train_user_item.contains(&(u, i));
            assert_eq!(ctx.user_item_graph.has_interaction(u, i), in_train);
        }
    }

    #[test]
    fn mask_diagonal_is_open_and_nonedges_blocked() {
        let d = dataset();
        let split = split_dataset(&d, 0.2, 0.1, 1);
        let ctx = DataContext::build(&d, &split, &GroupSaConfig::tiny());
        let s = &ctx.social_graph;
        for (members, mask) in ctx.members.iter().zip(&ctx.group_masks).take(10) {
            let mask = mask.as_ref().unwrap();
            for i in 0..members.len() {
                assert_eq!(mask[(i, i)], 0.0, "diagonal must stay open");
                for j in 0..members.len() {
                    if i != j {
                        let expected = if s.has_edge(members[i], members[j]) { 0.0 } else { f32::NEG_INFINITY };
                        assert_eq!(mask[(i, j)], expected);
                    }
                }
            }
        }
    }

    #[test]
    fn ablating_social_mask_removes_masks() {
        let d = dataset();
        let split = split_dataset(&d, 0.2, 0.1, 1);
        let mut cfg = GroupSaConfig::tiny();
        cfg.ablation.social_mask = false;
        let ctx = DataContext::build(&d, &split, &cfg);
        assert!(ctx.group_masks.iter().all(Option::is_none));
    }

    #[test]
    fn oversized_groups_are_truncated() {
        let d = dataset();
        let split = split_dataset(&d, 0.2, 0.1, 1);
        let mut cfg = GroupSaConfig::tiny();
        cfg.max_group_size = 2;
        let ctx = DataContext::build(&d, &split, &cfg);
        assert!(ctx.members.iter().all(|m| m.len() <= 2));
    }
}
