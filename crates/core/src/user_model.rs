//! User modeling: the enhanced user latent factor `h_j` (paper §II-D)
//! and the blended user-task scores (Eq. 22–23).

use crate::context::DataContext;
use crate::model::GroupSa;
use groupsa_tensor::{Graph, NodeId};

impl GroupSa {
    /// Records the item-aggregation branch `hⱽ_j` (Eq. 11–14): an
    /// attention over the user's Top-H TF-IDF items in item-space,
    /// guided by the user's embedding, then `σ(W·agg + b)`.
    ///
    /// Returns `None` when the branch is ablated or the user has no
    /// interacted items.
    fn item_aggregation_graph(&self, g: &mut Graph, ctx: &DataContext, user: usize, emb_u: NodeId) -> Option<NodeId> {
        if !self.cfg.ablation.item_aggregation {
            return None;
        }
        let items = &ctx.top_items[user];
        if items.is_empty() {
            return None;
        }
        let xs = self.lat_item.lookup(g, &self.store, items); // H×d
        let eu_rep = g.repeat_rows(emb_u, items.len());
        let rows = g.concat_cols(eu_rep, xs); // H×2d — [embᵁ_j ⊕ xⱽ_h]
        let agg = self.item_att.aggregate(g, &self.store, rows, xs); // 1×d
        let lin = self.item_agg_out.forward(g, &self.store, agg);
        Some(g.relu(lin))
    }

    /// Records the social-aggregation branch `hˢ_j` (Eq. 15–18) over
    /// the user's Top-H TF-IDF friends in social-space.
    fn social_aggregation_graph(&self, g: &mut Graph, ctx: &DataContext, user: usize, emb_u: NodeId) -> Option<NodeId> {
        if !self.cfg.ablation.social_aggregation {
            return None;
        }
        let friends = &ctx.top_friends[user];
        if friends.is_empty() {
            return None;
        }
        let xs = self.lat_social.lookup(g, &self.store, friends); // H×d
        let eu_rep = g.repeat_rows(emb_u, friends.len());
        let rows = g.concat_cols(eu_rep, xs); // H×2d — [embᵁ_j ⊕ xˢ_j']
        let agg = self.social_att.aggregate(g, &self.store, rows, xs); // 1×d
        let lin = self.social_agg_out.forward(g, &self.store, agg);
        Some(g.relu(lin))
    }

    /// Records the final user latent factor `h_j` (Eq. 19): the fusion
    /// MLP over `[hⱽ ⊕ hˢ]`, degrading gracefully to a single branch
    /// when the other is ablated or empty, and to `None` when neither
    /// is available.
    pub(crate) fn user_latent_graph(&self, g: &mut Graph, ctx: &DataContext, user: usize) -> Option<NodeId> {
        if !self.cfg.ablation.user_modeling() {
            return None;
        }
        let emb_u = self.emb_user.lookup(g, &self.store, &[user]); // 1×d
        let hv = self.item_aggregation_graph(g, ctx, user, emb_u);
        let hs = self.social_aggregation_graph(g, ctx, user, emb_u);
        match (hv, hs) {
            (Some(hv), Some(hs)) => {
                let cat = g.concat_cols(hv, hs); // 1×2d
                Some(self.fusion.forward(g, &self.store, cat))
            }
            (Some(hv), None) => Some(hv),
            (None, Some(hs)) => Some(hs),
            (None, None) => None,
        }
    }

    /// Records the user-task scores of `items` (Eq. 22–23):
    /// `r = (1 − wᵘ)·MLP([embᵁ ⊕ embⱽ]) + wᵘ·MLP([h ⊕ xⱽ])`, both
    /// through the *same* prediction tower. Falls back to `r₁` when
    /// user modeling yields nothing for this user or `wᵘ = 0`.
    ///
    /// Returns an `items.len()×1` node.
    pub(crate) fn user_scores_graph(&self, g: &mut Graph, ctx: &DataContext, user: usize, items: &[usize]) -> NodeId {
        assert!(!items.is_empty(), "user_scores_graph: no items to score");
        let n = items.len();
        let emb_u = self.emb_user.lookup(g, &self.store, &[user]); // 1×d
        let eu_rep = g.repeat_rows(emb_u, n);
        let ev = self.emb_item.lookup(g, &self.store, items); // n×d
        let cat1 = g.concat_cols(eu_rep, ev);
        let prod1 = g.mul_elem(eu_rep, ev);
        let cat1 = g.concat_cols(cat1, prod1); // n×3d — [embᵁ ⊕ embⱽ ⊕ embᵁ⊙embⱽ]
        let r1 = self.pred_user.forward(g, &self.store, cat1); // n×1

        let w = self.cfg.w_u;
        // Exact-zero gate on a config weight (w_u = 0.0 disables the
        // latent tower), not a computed value.
        if w == 0.0 { // lint: allow(float-eq)
            return r1;
        }
        let Some(h) = self.user_latent_graph(g, ctx, user) else {
            return r1;
        };
        let h_rep = g.repeat_rows(h, n);
        let xv = self.lat_item.lookup(g, &self.store, items); // n×d
        let cat2 = g.concat_cols(h_rep, xv);
        let prod2 = g.mul_elem(h_rep, xv);
        let cat2 = g.concat_cols(cat2, prod2); // n×3d
        let r2 = self.pred_user.forward(g, &self.store, cat2); // n×1

        let a = g.scale(r1, 1.0 - w);
        let b = g.scale(r2, w);
        g.add(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Ablation, GroupSaConfig};
    use crate::test_fixtures::tiny_world;

    #[test]
    fn latent_factor_has_model_width() {
        let (d, ctx) = tiny_world(3);
        let model = GroupSa::new(GroupSaConfig::tiny(), d.num_users, d.num_items);
        let mut g = Graph::new();
        // user 0 always has interactions in the fixture.
        let h = model.user_latent_graph(&mut g, &ctx, 0).expect("user 0 has history and friends");
        assert_eq!(g.value(h).shape(), (1, 8));
        assert!(g.value(h).is_finite());
    }

    #[test]
    fn latent_is_none_when_both_branches_ablated() {
        let (d, _) = tiny_world(3);
        let cfg = GroupSaConfig::tiny().with_ablation(Ablation::group_a());
        let ctx = DataContext::from_train_view(&d, &cfg);
        let model = GroupSa::new(cfg, d.num_users, d.num_items);
        let mut g = Graph::new();
        assert!(model.user_latent_graph(&mut g, &ctx, 0).is_none());
    }

    #[test]
    fn single_branch_variants_still_produce_latents() {
        let (d, _) = tiny_world(3);
        for ab in [Ablation::group_i(), Ablation::group_f()] {
            let cfg = GroupSaConfig::tiny().with_ablation(ab);
            let ctx = DataContext::from_train_view(&d, &cfg);
            let model = GroupSa::new(cfg, d.num_users, d.num_items);
            let mut g = Graph::new();
            let h = model.user_latent_graph(&mut g, &ctx, 0).expect("one branch remains");
            assert_eq!(g.value(h).shape(), (1, 8));
        }
    }

    #[test]
    fn w_u_zero_reduces_to_plain_ncf_scoring() {
        let (d, _) = tiny_world(3);
        let mut cfg = GroupSaConfig::tiny();
        cfg.w_u = 0.0;
        let ctx = DataContext::from_train_view(&d, &cfg);
        let model = GroupSa::new(cfg.clone(), d.num_users, d.num_items);

        // With w_u = 0 the latent branch must not affect scores; a model
        // with ablated user modeling and the same seed scores identically.
        let cfg2 = cfg.with_ablation(Ablation::group_a());
        let ctx2 = DataContext::from_train_view(&d, &cfg2);
        let model2 = GroupSa::new(cfg2, d.num_users, d.num_items);
        let items = [0usize, 1, 2];
        assert_eq!(
            model.score_user_items(&ctx, 0, &items),
            model2.score_user_items(&ctx2, 0, &items)
        );
    }

    #[test]
    fn blend_changes_scores_when_w_u_positive() {
        let (d, _) = tiny_world(3);
        let mut cfg_lo = GroupSaConfig::tiny();
        cfg_lo.w_u = 0.0;
        let mut cfg_hi = cfg_lo.clone();
        cfg_hi.w_u = 0.9;
        let ctx = DataContext::from_train_view(&d, &cfg_lo);
        let m_lo = GroupSa::new(cfg_lo, d.num_users, d.num_items);
        let m_hi = GroupSa::new(cfg_hi, d.num_users, d.num_items);
        let items = [0usize, 1, 2];
        assert_ne!(m_lo.score_user_items(&ctx, 0, &items), m_hi.score_user_items(&ctx, 0, &items));
    }

    #[test]
    fn cold_user_without_history_falls_back_to_r1() {
        let (mut d, _) = tiny_world(3);
        // Give the last user no interactions and no friends.
        let cold = d.num_users - 1;
        d.user_item.retain(|&(u, _)| u != cold);
        d.social.retain(|&(a, b)| a != cold && b != cold);
        let cfg = GroupSaConfig::tiny();
        let ctx = DataContext::from_train_view(&d, &cfg);
        let model = GroupSa::new(cfg, d.num_users, d.num_items);
        let s = model.score_user_items(&ctx, cold, &[0, 1]);
        assert!(s.iter().all(|x| x.is_finite()));
    }

    #[test]
    #[should_panic(expected = "no items to score")]
    fn empty_item_list_panics() {
        let (d, ctx) = tiny_world(3);
        let model = GroupSa::new(GroupSaConfig::tiny(), d.num_users, d.num_items);
        let mut g = Graph::new();
        let _ = model.user_scores_graph(&mut g, &ctx, 0, &[]);
    }
}
